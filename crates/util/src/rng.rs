//! Seedable pseudo-random number generators.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — tiny, fast, passes BigCrush on its 64-bit output;
//!   used for seeding and for cheap per-call randomness.
//! * [`Xoshiro256pp`] — the workhorse generator for simulations
//!   (long period 2^256−1, excellent statistical quality).
//!
//! Both implement [`Rng64`], which also supplies the derived draws the
//! library needs (unit-interval doubles, exponentials, bounded integers,
//! shuffles). Implementing these in-repo (rather than depending on `rand`)
//! keeps every simulation in the workspace reproducible from a single `u64`
//! seed, independent of external crate version bumps.

/// Multiplicative constant of the SplitMix64 finalizer.
const SM64_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A 64-bit pseudo-random generator.
///
/// All derived draws (`unit_f64`, `exp`, `range_usize`, …) are provided
/// methods so every implementor samples identically from the same bit
/// stream.
pub trait Rng64 {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    ///
    /// The value `1.0` is never returned, and `0.0` occurs with probability
    /// `2^-53` — matching the paper's `r(j) ~ U[0,1]` ranks for which
    /// `P(r = 1) = 0`.
    #[inline]
    fn unit_f64(&mut self) -> f64 {
        // Take the top 53 bits; multiply by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from the *open* interval `(0, 1)`.
    ///
    /// Useful where a later `ln` must not see zero.
    #[inline]
    fn open_unit_f64(&mut self) -> f64 {
        loop {
            let u = self.unit_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// An exponentially distributed draw with rate `lambda`.
    ///
    /// Ranks with parameter `β(j)` (Section 9 of the paper) are sampled this
    /// way: `Exp(β)` via inverse CDF `-ln(1-U)/β`.
    #[inline]
    fn exp(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0, "exponential rate must be positive");
        -(-self.unit_f64()).ln_1p() / lambda
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method; unbiased.
    #[inline]
    fn range_usize(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "range bound must be positive");
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as usize;
            }
            // Rejection zone: accept unless low < 2^64 mod bound.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// A uniform integer in `[0, bound)` for `u64` bounds.
    #[inline]
    fn range_u64(&mut self, bound: u64) -> u64 {
        self.range_usize(bound as usize) as u64
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Fisher–Yates shuffle of `slice`, in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// A random permutation of `0..n` (0-based permutation ranks).
    fn permutation(&mut self, n: usize) -> Vec<u32> {
        let mut p: Vec<u32> = (0..n as u32).collect();
        self.shuffle(&mut p);
        p
    }

    /// Samples from a geometric distribution: the number of failures before
    /// the first success of a Bernoulli(`p`) sequence. Used for skip-based
    /// G(n,p) generation.
    #[inline]
    fn geometric(&mut self, p: f64) -> u64 {
        debug_assert!(p > 0.0 && p <= 1.0);
        if p >= 1.0 {
            return 0;
        }
        let u = self.open_unit_f64();
        (u.ln() / (-p).ln_1p()).floor() as u64
    }
}

/// SplitMix64: a tiny splittable generator (Steele, Lea, Flood 2014).
///
/// The stream is `mix(seed + γ·n)` for increasing `n`; `mix` is the
/// avalanche finalizer also used by [`crate::hashing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; distinct seeds give independent
    /// streams for practical purposes.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

/// The SplitMix64 avalanche finalizer: a high-quality 64→64 bit mixer.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(SM64_GAMMA);
        mix64(self.state)
    }
}

/// Xoshiro256++ (Blackman & Vigna 2019): fast, 2^256−1 period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the four state words from a SplitMix64 stream, as recommended
    /// by the generator's authors (avoids the all-zero state).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Equivalent to 2^128 `next_u64` calls; yields non-overlapping
    /// subsequences for parallel workers.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut t = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j >> b) & 1 == 1 {
                    for (ti, si) in t.iter_mut().zip(self.s.iter()) {
                        *ti ^= si;
                    }
                }
                self.next_u64();
            }
        }
        self.s = t;
    }
}

impl Rng64 for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn xoshiro_known_seed_changes_state() {
        let mut x = Xoshiro256pp::new(7);
        let first = x.next_u64();
        let second = x.next_u64();
        assert_ne!(first, second);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = Xoshiro256pp::new(3);
        for _ in 0..10_000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn unit_f64_mean_is_half() {
        let mut r = Xoshiro256pp::new(11);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.unit_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn exp_mean_matches_rate() {
        let mut r = Xoshiro256pp::new(5);
        let lambda = 3.0;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(lambda)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / lambda).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn range_usize_covers_and_bounds() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.range_usize(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_usize_is_uniform() {
        let mut r = Xoshiro256pp::new(17);
        let mut counts = [0usize; 7];
        let n = 140_000;
        for _ in 0..n {
            counts[r.range_usize(7)] += 1;
        }
        let expected = n as f64 / 7.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i}: count {c}, expected {expected}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(123);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn permutation_uniformity_smoke() {
        // Position of element 0 should be uniform across 0..5.
        let mut counts = [0usize; 5];
        for seed in 0..5_000u64 {
            let mut r = SplitMix64::new(seed);
            let p = r.permutation(5);
            let pos = p.iter().position(|&x| x == 0).unwrap();
            counts[pos] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 1000.0).abs() < 150.0, "counts = {counts:?}");
        }
    }

    #[test]
    fn geometric_mean_matches() {
        let mut r = Xoshiro256pp::new(29);
        let p = 0.25;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.geometric(p) as f64).sum::<f64>() / n as f64;
        let expect = (1.0 - p) / p;
        assert!(
            (mean - expect).abs() < 0.1,
            "mean = {mean}, expect = {expect}"
        );
    }

    #[test]
    fn jump_decorrelates() {
        let mut a = Xoshiro256pp::new(4);
        let mut b = a.clone();
        b.jump();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
