//! Low-level primitives shared by the `adsketch` workspace.
//!
//! The crate owns everything that must be *deterministic and reproducible*
//! across the library:
//!
//! * [`rng`] — seedable pseudo-random number generators (SplitMix64 and
//!   Xoshiro256++) with the handful of distributions the sketches need
//!   (unit-interval, exponential, ranges, shuffles). Owning the RNG keeps
//!   every sketch, simulation, and test bit-reproducible given a seed.
//! * [`hashing`] — stateless hash-derived *ranks*: the random permutations
//!   `r(v) ~ U[0,1)` that MinHash sketches and all-distances sketches are
//!   defined over, plus bucket assignment for k-partition sketches.
//! * [`ranks`] — base-b rank discretization (Section 4.4 / 5.6 of the
//!   paper): rounded ranks `r' = b^{-⌈-log_b r⌉}` stored as small integers.
//! * [`stats`] — Welford accumulators and the error metrics the paper
//!   reports (NRMSE — which equals the CV for unbiased estimators — and
//!   MRE), plus closed-form CV/MRE reference values.
//! * [`topk`] — bounded "k smallest values" heaps used to maintain bottom-k
//!   thresholds incrementally.
//! * [`harmonic`] — harmonic numbers and the expected-ADS-size formulas of
//!   Lemma 2.2.
//! * [`args`] — the tiny `--name value` argument parser shared by the
//!   experiment and benchmark binaries.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod harmonic;
pub mod hashing;
pub mod ranks;
pub mod rng;
pub mod stats;
pub mod topk;

pub use hashing::RankHasher;
pub use ranks::BaseB;
pub use rng::{Rng64, SplitMix64, Xoshiro256pp};
pub use stats::{ErrorStats, RunningStat};
pub use topk::KSmallest;
