//! Harmonic numbers and the expected-ADS-size formulas of Lemma 2.2.

/// Euler–Mascheroni constant.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// The n-th harmonic number `H_n = Σ_{j=1..n} 1/j`.
///
/// Exact summation for small n; the asymptotic expansion
/// `ln n + γ + 1/(2n) − 1/(12n²)` (error < 1e-12 for n ≥ 1000) otherwise.
pub fn harmonic(n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if n <= 10_000 {
        (1..=n).map(|j| 1.0 / j as f64).sum()
    } else {
        let nf = n as f64;
        nf.ln() + EULER_GAMMA + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf)
    }
}

/// Expected size of a bottom-k ADS over `n` reachable nodes:
/// `k + k(H_n − H_k)` (Lemma 2.2). For `n ≤ k` every node is included.
pub fn expected_bottomk_ads_size(n: u64, k: usize) -> f64 {
    let k64 = k as u64;
    if n <= k64 {
        return n as f64;
    }
    k as f64 + k as f64 * (harmonic(n) - harmonic(k64))
}

/// Expected size of a k-partition ADS: `k · H_{n/k} ≈ k ln(n/k)` (Lemma 2.2).
pub fn expected_kpartition_ads_size(n: u64, k: usize) -> f64 {
    if n as usize <= k {
        return n as f64;
    }
    k as f64 * harmonic(n / k as u64)
}

/// Expected size of a k-mins ADS: `k · H_n` — k independent bottom-1 ADSs,
/// each of expected size `H_n` (Cohen 1997).
pub fn expected_kmins_ads_size(n: u64, k: usize) -> f64 {
    k as f64 * harmonic(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_harmonics() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-15);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-15);
    }

    #[test]
    fn asymptotic_matches_exact_at_crossover() {
        // Compare exact summation against the expansion at n just above the
        // crossover point.
        let exact: f64 = (1..=20_000u64).map(|j| 1.0 / j as f64).sum();
        let approx = harmonic(20_000);
        assert!((exact - approx).abs() < 1e-10, "diff {}", exact - approx);
    }

    #[test]
    fn ads_size_small_n_is_exact() {
        assert_eq!(expected_bottomk_ads_size(3, 8), 3.0);
        assert_eq!(expected_kpartition_ads_size(3, 8), 3.0);
    }

    #[test]
    fn ads_size_matches_k_ln_n_over_k() {
        let n = 1_000_000u64;
        let k = 64usize;
        let exact = expected_bottomk_ads_size(n, k);
        let approx = k as f64 * (1.0 + (n as f64).ln() - (k as f64).ln());
        assert!(
            (exact - approx).abs() / exact < 0.01,
            "exact {exact}, approx {approx}"
        );
    }

    #[test]
    fn kmins_size_exceeds_bottomk() {
        // k-mins ADS keeps k·H_n entries vs k(1 + H_n − H_k): strictly more
        // for n > k ≥ 2.
        let n = 10_000;
        let k = 16;
        assert!(expected_kmins_ads_size(n, k) > expected_bottomk_ads_size(n, k));
    }
}
