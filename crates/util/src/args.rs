//! Minimal `--name value` argument parsing for the workspace's
//! experiment and benchmark binaries (`adsketch-bench`'s `fig*`/`tbl_*`
//! tables and `adsketch-serve`'s `loadgen`).
//!
//! Deliberately tiny — the binaries need exactly three shapes (integer,
//! string, bare flag) with defaults, and the workspace builds offline,
//! so no external parser crate is used. Unparseable or missing values
//! warn to stderr and fall back to the default rather than aborting a
//! long experiment run.

/// Parses `--name value` from the process arguments as an integer, with
/// a default.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == flag {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
            eprintln!("warning: could not parse value for {flag}; using {default}");
        }
    }
    default
}

/// Parses `--name value` as a string from the process arguments, with a
/// default.
pub fn arg_str(name: &str, default: &str) -> String {
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == flag {
            if let Some(v) = args.get(i + 1) {
                return v.clone();
            }
            eprintln!("warning: missing value for {flag}; using {default}");
        }
    }
    default.to_string()
}

/// True iff the bare flag `--name` is present in the process arguments.
pub fn arg_flag(name: &str) -> bool {
    let flag = format!("--{name}");
    std::env::args().any(|a| a == flag)
}
