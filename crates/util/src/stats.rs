//! Estimation-quality statistics.
//!
//! The paper evaluates estimators by their Coefficient of Variation
//! (CV = sd/mean), Normalized Root Mean Square Error (NRMSE — equal to the
//! CV for unbiased estimators), and Mean Relative Error (MRE). This module
//! provides numerically stable accumulators for those metrics plus the
//! closed-form reference values quoted in the paper's figures.

/// Welford online mean/variance accumulator.
///
/// # Examples
///
/// ```
/// use adsketch_util::RunningStat;
///
/// let mut s = RunningStat::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12); // sample variance
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStat {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStat {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (divides by n).
    #[inline]
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[inline]
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Coefficient of variation sd/|mean| (0 if mean is 0).
    #[inline]
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean.abs()
        }
    }

    /// Merges another accumulator into this one (Chan et al. parallel
    /// combination).
    pub fn merge(&mut self, other: &RunningStat) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        *self = Self { n, mean, m2 };
    }
}

/// Accumulates estimate-vs-truth pairs for a *fixed* true value and reports
/// the paper's error metrics.
///
/// NRMSE = `sqrt(E[(n − n̂)²]) / n`, MRE = `E[|n − n̂|] / n`,
/// relative bias = `(E[n̂] − n) / n`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ErrorStats {
    n: u64,
    sum_err: f64,
    sum_sq_err: f64,
    sum_abs_err: f64,
    truth: f64,
}

impl ErrorStats {
    /// An accumulator for estimates of the true value `truth`.
    pub fn new(truth: f64) -> Self {
        Self {
            truth,
            ..Self::default()
        }
    }

    /// Records one estimate.
    #[inline]
    pub fn push(&mut self, estimate: f64) {
        let err = estimate - self.truth;
        self.n += 1;
        self.sum_err += err;
        self.sum_sq_err += err * err;
        self.sum_abs_err += err.abs();
    }

    /// Number of recorded estimates.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The fixed true value.
    #[inline]
    pub fn truth(&self) -> f64 {
        self.truth
    }

    /// Normalized root mean square error.
    #[inline]
    pub fn nrmse(&self) -> f64 {
        if self.n == 0 || self.truth == 0.0 {
            0.0
        } else {
            (self.sum_sq_err / self.n as f64).sqrt() / self.truth
        }
    }

    /// Mean relative error.
    #[inline]
    pub fn mre(&self) -> f64 {
        if self.n == 0 || self.truth == 0.0 {
            0.0
        } else {
            self.sum_abs_err / self.n as f64 / self.truth
        }
    }

    /// Relative bias `(mean estimate − truth)/truth`.
    #[inline]
    pub fn relative_bias(&self) -> f64 {
        if self.n == 0 || self.truth == 0.0 {
            0.0
        } else {
            self.sum_err / self.n as f64 / self.truth
        }
    }

    /// Standard error of the relative bias — used by unbiasedness tests to
    /// convert bias into a z-score.
    pub fn bias_std_error(&self) -> f64 {
        if self.n < 2 || self.truth == 0.0 {
            return 0.0;
        }
        let mean_err = self.sum_err / self.n as f64;
        let var = (self.sum_sq_err / self.n as f64 - mean_err * mean_err).max(0.0);
        (var / self.n as f64).sqrt() / self.truth
    }

    /// Merges another accumulator (must share the same truth).
    pub fn merge(&mut self, other: &ErrorStats) {
        assert_eq!(self.truth, other.truth, "merging mismatched truths");
        self.n += other.n;
        self.sum_err += other.sum_err;
        self.sum_sq_err += other.sum_sq_err;
        self.sum_abs_err += other.sum_abs_err;
    }
}

/// Natural-log gamma via the Lanczos approximation (g = 7, n = 9), accurate
/// to ~1e-13 for positive arguments; used by the closed-form MRE formulas.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires positive argument, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Exact CV of the basic k-mins estimator: `1/sqrt(k-2)` (Section 4.1).
/// Also an upper bound on the basic bottom-k estimator's CV (Lemma 4.3).
pub fn cv_basic(k: usize) -> f64 {
    assert!(k > 2, "basic-estimator CV is finite only for k > 2");
    1.0 / ((k - 2) as f64).sqrt()
}

/// First-order upper bound on the bottom-k HIP estimator CV:
/// `1/sqrt(2(k-1))` (Theorem 5.1).
pub fn cv_hip(k: usize) -> f64 {
    assert!(k > 1, "HIP CV bound requires k > 1");
    1.0 / (2.0 * (k - 1) as f64).sqrt()
}

/// Asymptotic lower bound on any unbiased ADS cardinality estimator CV:
/// `1/sqrt(2k)` (Theorem 5.2).
pub fn cv_lower_bound(k: usize) -> f64 {
    assert!(k > 0);
    1.0 / (2.0 * k as f64).sqrt()
}

/// Exact MRE of the basic k-mins estimator,
/// `2(k-1)^{k-2} / ((k-2)! · e^{k-1})` (Section 4.1), evaluated in log-space
/// so it does not overflow for large k.
pub fn mre_basic_exact(k: usize) -> f64 {
    assert!(k > 2);
    let kf = (k - 1) as f64;
    // ln MRE = ln 2 + (k-2) ln(k-1) − ln((k-2)!) − (k-1)
    let ln_mre = (2.0f64).ln() + (k as f64 - 2.0) * kf.ln() - ln_gamma(k as f64 - 1.0) - kf;
    ln_mre.exp()
}

/// First-order approximation of the basic estimator MRE:
/// `sqrt(2/(π(k-2)))` (Section 4.1).
pub fn mre_basic_approx(k: usize) -> f64 {
    assert!(k > 2);
    (2.0 / (std::f64::consts::PI * (k - 2) as f64)).sqrt()
}

/// Reference MRE for the HIP estimator plotted in Figure 2:
/// `sqrt(1/(π(k-1)))`.
pub fn mre_hip_approx(k: usize) -> f64 {
    assert!(k > 1);
    (1.0 / (std::f64::consts::PI * (k - 1) as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stat_basics() {
        let mut s = RunningStat::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        s.push(2.0);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.variance(), 0.0);
        s.push(4.0);
        assert_eq!(s.mean(), 3.0);
        assert!((s.variance() - 2.0).abs() < 1e-12);
        assert!((s.cv() - 2.0f64.sqrt() / 3.0).abs() < 1e-12);
    }

    #[test]
    fn running_stat_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStat::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = RunningStat::new();
        let mut right = RunningStat::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn running_stat_merge_with_empty() {
        let mut a = RunningStat::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&RunningStat::new());
        assert_eq!(a, before);
        let mut e = RunningStat::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn error_stats_metrics() {
        let mut e = ErrorStats::new(10.0);
        e.push(8.0); // err -2
        e.push(12.0); // err +2
        assert_eq!(e.relative_bias(), 0.0);
        assert!((e.nrmse() - 0.2).abs() < 1e-12);
        assert!((e.mre() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn error_stats_bias() {
        let mut e = ErrorStats::new(100.0);
        for _ in 0..10 {
            e.push(110.0);
        }
        assert!((e.relative_bias() - 0.1).abs() < 1e-12);
        assert!((e.nrmse() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn error_stats_merge() {
        let mut a = ErrorStats::new(5.0);
        a.push(4.0);
        let mut b = ErrorStats::new(5.0);
        b.push(6.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.relative_bias(), 0.0);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..15u64 {
            let fact: f64 = (1..n).map(|i| i as f64).product();
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-9,
                "ln_gamma({n})"
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn cv_reference_values() {
        assert!((cv_basic(6) - 0.5).abs() < 1e-12);
        assert!((cv_hip(3) - 0.5).abs() < 1e-12);
        assert!((cv_lower_bound(2) - 0.5).abs() < 1e-12);
        // HIP beats basic by ~sqrt(2) for large k.
        let ratio = cv_basic(100) / cv_hip(100);
        assert!((ratio - 2f64.sqrt()).abs() < 0.03, "ratio {ratio}");
    }

    #[test]
    fn mre_exact_close_to_approx_for_large_k() {
        for &k in &[10usize, 50, 200] {
            let exact = mre_basic_exact(k);
            let approx = mre_basic_approx(k);
            // The closed form approaches the first-order approximation from
            // below as k grows (Stirling); the gap is ~7% at k=10.
            assert!(exact < approx, "k={k}: exact {exact} ≥ approx {approx}");
            let rel = (approx - exact) / approx;
            let tol = 0.8 / (k as f64).sqrt();
            assert!(
                rel < tol,
                "k={k}: exact {exact}, approx {approx}, rel {rel}"
            );
        }
    }

    #[test]
    fn mre_hip_below_basic() {
        for &k in &[5usize, 10, 50] {
            assert!(mre_hip_approx(k) < mre_basic_approx(k));
        }
    }
}
