//! Base-b rank discretization (paper Sections 4.4 and 5.6).
//!
//! Full-precision ranks `r ~ U[0,1)` are effectively element identifiers.
//! For cardinality-style queries the paper rounds ranks *down* to powers of
//! a base `b > 1`:
//!
//! ```text
//! r' = b^{-h},   h = ⌈ -log_b r ⌉
//! ```
//!
//! so only the small integer `h` (the *level*) needs to be stored — roughly
//! `log2 log_b n` bits. The cost is extra estimator variance: HIP variance
//! inflates by a factor ≈ `(1+b)/2` (Section 5.6), giving
//! CV ≈ `sqrt((1+b)/(4(k-1)))`. HyperLogLog is the special case `b = 2`
//! with 5-bit saturating levels.

/// A rank-rounding base `b > 1`.
///
/// # Examples
///
/// ```
/// use adsketch_util::BaseB;
///
/// let b2 = BaseB::new(2.0);
/// assert_eq!(b2.level(0.3), 2);               // 2^-2 = 0.25 ≤ 0.3 < 0.5
/// assert_eq!(b2.discretize(0.3), 0.25);
/// assert!(b2.discretize(0.3) <= 0.3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaseB {
    b: f64,
    ln_b: f64,
}

/// Levels are capped so `b^-level` stays a normal positive double.
const MAX_LEVEL: u32 = 1 << 20;

impl BaseB {
    /// Creates a base; panics if `b ≤ 1` (no rounding would occur).
    pub fn new(b: f64) -> Self {
        assert!(b > 1.0, "discretization base must exceed 1, got {b}");
        Self { b, ln_b: b.ln() }
    }

    /// Convenience constructor for `b = 2^(1/i)` (Section 6 discusses
    /// fractional-power-of-two bases as an HLL refinement).
    pub fn two_pow_inv(i: u32) -> Self {
        assert!(i > 0);
        Self::new(2f64.powf(1.0 / i as f64))
    }

    /// The base value `b`.
    #[inline]
    pub fn base(&self) -> f64 {
        self.b
    }

    /// The level `h = ⌈ -log_b r ⌉` of a rank `r ∈ (0,1)`; the rounded rank
    /// is `b^-h ≤ r`. A rank of exactly `0` maps to the level cap.
    #[inline]
    pub fn level(&self, r: f64) -> u32 {
        debug_assert!((0.0..1.0).contains(&r), "rank out of range: {r}");
        if r <= 0.0 {
            return MAX_LEVEL;
        }
        // Guard against float noise pushing an exact power of 1/b (whose
        // level should be h) up to h+1: nudge by one ulp-scale epsilon
        // before taking the ceiling.
        let h = (-r.ln() / self.ln_b - 1e-9).ceil();
        if h < 1.0 {
            // r very close to 1 can give h = 0 (e.g. r = 0.999..): the paper's
            // rounding maps such ranks to b^0 = 1? No: h = ⌈-log_b r⌉ ≥ 0 and
            // h = 0 only when r = 1, which U[0,1) excludes; guard for float
            // round-off by clamping to level 1 ⇒ r' = 1/b < 1.
            1
        } else if h >= MAX_LEVEL as f64 {
            MAX_LEVEL
        } else {
            h as u32
        }
    }

    /// The rank value `b^-level` a level represents.
    #[inline]
    pub fn value(&self, level: u32) -> f64 {
        self.b.powi(-(level.min(MAX_LEVEL) as i32))
    }

    /// Rounds a rank down to the nearest power of `1/b`: `b^{-level(r)}`.
    #[inline]
    pub fn discretize(&self, r: f64) -> f64 {
        self.value(self.level(r))
    }

    /// Expected multiplicative variance inflation of HIP estimates under
    /// base-b rounding: `(1+b)/2` (Section 5.6 back-of-the-envelope, shown
    /// there to match simulation).
    #[inline]
    pub fn variance_inflation(&self) -> f64 {
        (1.0 + self.b) / 2.0
    }

    /// First-order CV of the base-b bottom-k HIP estimator:
    /// `sqrt((1+b)/(4(k-1)))` (Section 5.6).
    #[inline]
    pub fn hip_cv(&self, k: usize) -> f64 {
        assert!(k > 1);
        ((1.0 + self.b) / (4.0 * (k - 1) as f64)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn base_must_exceed_one() {
        let _ = BaseB::new(1.0);
    }

    #[test]
    fn level_value_roundtrip() {
        let b = BaseB::new(2.0);
        for h in 1..40u32 {
            assert_eq!(b.level(b.value(h)), h, "level(value({h}))");
        }
    }

    #[test]
    fn discretize_never_exceeds_rank() {
        let b = BaseB::new(1.3);
        let mut r = 0.9999;
        while r > 1e-12 {
            let d = b.discretize(r);
            assert!(d <= r + 1e-15, "discretize({r}) = {d} > r");
            assert!(d >= r / b.base() - 1e-15, "discretize({r}) = {d} too small");
            r *= 0.63;
        }
    }

    #[test]
    fn base2_matches_hll_convention() {
        // HLL stores ⌈-log2 r⌉; spot-check boundary behaviour.
        let b = BaseB::new(2.0);
        assert_eq!(b.level(0.5), 1); // -log2(0.5) = 1, ceil = 1
        assert_eq!(b.level(0.5000001), 1);
        assert_eq!(b.level(0.4999999), 2);
        assert_eq!(b.level(0.25), 2);
    }

    #[test]
    fn zero_rank_maps_to_cap() {
        let b = BaseB::new(2.0);
        assert_eq!(b.level(0.0), MAX_LEVEL);
        assert!(b.value(MAX_LEVEL) >= 0.0);
    }

    #[test]
    fn near_one_rank_clamps_to_level_one() {
        let b = BaseB::new(2.0);
        let r = 0.999_999_999_999;
        assert_eq!(b.level(r), 1);
        assert!(b.discretize(r) <= r);
    }

    #[test]
    fn two_pow_inv_base() {
        let b = BaseB::two_pow_inv(2);
        assert!((b.base() - 2f64.sqrt()).abs() < 1e-12);
        // Level of 0.5 under b = sqrt(2): -log_b(0.5) = 2.
        assert_eq!(b.level(0.5), 2);
    }

    #[test]
    fn expected_rounding_ratio_matches_half_one_plus_b() {
        // E[r / discretize(r)] over uniform ranks ≈ (1+b)/2 (Section 5.6).
        use crate::rng::{Rng64, Xoshiro256pp};
        for &base in &[2.0, 1.5, 1.1] {
            let b = BaseB::new(base);
            let mut rng = Xoshiro256pp::new(8);
            let n = 200_000;
            let mean: f64 = (0..n)
                .map(|_| {
                    let r = rng.open_unit_f64();
                    r / b.discretize(r)
                })
                .sum::<f64>()
                / n as f64;
            let expect = b.variance_inflation();
            assert!(
                (mean - expect).abs() / expect < 0.02,
                "base {base}: mean ratio {mean}, expect {expect}"
            );
        }
    }

    #[test]
    fn hip_cv_formula() {
        let b = BaseB::new(2.0);
        let cv = b.hip_cv(16);
        assert!((cv - (3.0f64 / 60.0).sqrt()).abs() < 1e-12);
    }
}
