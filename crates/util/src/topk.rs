//! Bounded "k smallest values" maintenance.
//!
//! Bottom-k sketches and HIP estimation both need the same primitive: scan a
//! stream of `(rank, id)` pairs and know, at every step, the current k-th
//! smallest rank (the *inclusion threshold* `τ`). [`KSmallest`] maintains the
//! k smallest items in a max-heap keyed by `(rank, id)`, giving O(log k)
//! insertion and O(1) threshold queries.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(rank, id)` pair ordered lexicographically with `f64::total_cmp`.
///
/// Ties on rank are broken by id so the order is total even if two elements
/// hash to the same rank (relevant for discretized ranks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedItem {
    /// The rank value (any finite float; smaller = "earlier in permutation").
    pub rank: f64,
    /// The element identifier.
    pub id: u64,
}

impl Eq for RankedItem {}

impl PartialOrd for RankedItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RankedItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank
            .total_cmp(&other.rank)
            .then(self.id.cmp(&other.id))
    }
}

/// Maintains the k smallest [`RankedItem`]s seen so far.
///
/// # Examples
///
/// ```
/// use adsketch_util::KSmallest;
///
/// let mut ks = KSmallest::new(2);
/// assert_eq!(ks.threshold(), None); // fewer than k items: threshold is sup
/// ks.offer(0.9, 1);
/// ks.offer(0.5, 2);
/// ks.offer(0.7, 3); // evicts 0.9
/// assert_eq!(ks.threshold().unwrap().rank, 0.7);
/// assert!(!ks.would_enter(0.8, 4));
/// assert!(ks.would_enter(0.1, 5));
/// ```
#[derive(Debug, Clone)]
pub struct KSmallest {
    k: usize,
    heap: BinaryHeap<RankedItem>, // max-heap: peek() is the k-th smallest
}

impl KSmallest {
    /// Creates an empty structure retaining the `k` smallest items.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The retention parameter k.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of retained items (≤ k).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no items have been offered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current k-th smallest item, or `None` while fewer than k items
    /// are retained (the paper's convention: the threshold is then the
    /// supremum of the rank domain).
    #[inline]
    pub fn threshold(&self) -> Option<RankedItem> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().copied()
        }
    }

    /// The threshold as a plain rank value, with `sup` standing in for the
    /// under-filled case.
    #[inline]
    pub fn threshold_rank_or(&self, sup: f64) -> f64 {
        self.threshold().map_or(sup, |t| t.rank)
    }

    /// Whether `(rank, id)` would be retained if offered now (i.e. is
    /// strictly below the threshold in the `(rank, id)` total order).
    #[inline]
    pub fn would_enter(&self, rank: f64, id: u64) -> bool {
        match self.threshold() {
            None => true,
            Some(t) => RankedItem { rank, id } < t,
        }
    }

    /// Offers an item; returns `true` if it was retained (and possibly
    /// evicted the previous k-th smallest).
    ///
    /// The caller is responsible for not offering the same id twice —
    /// bottom-k set semantics (distinct elements) are enforced one level up
    /// where a membership structure is available.
    #[inline]
    pub fn offer(&mut self, rank: f64, id: u64) -> bool {
        let item = RankedItem { rank, id };
        if self.heap.len() < self.k {
            self.heap.push(item);
            true
        } else if item < *self.heap.peek().expect("non-empty at capacity") {
            self.heap.pop();
            self.heap.push(item);
            true
        } else {
            false
        }
    }

    /// The retained items in ascending `(rank, id)` order.
    pub fn sorted_items(&self) -> Vec<RankedItem> {
        let mut v: Vec<RankedItem> = self.heap.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Removes all items.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = KSmallest::new(0);
    }

    #[test]
    fn keeps_exactly_k_smallest() {
        let mut ks = KSmallest::new(3);
        for (i, r) in [0.9, 0.1, 0.5, 0.3, 0.7, 0.2].iter().enumerate() {
            ks.offer(*r, i as u64);
        }
        let items: Vec<f64> = ks.sorted_items().iter().map(|i| i.rank).collect();
        assert_eq!(items, vec![0.1, 0.2, 0.3]);
        assert_eq!(ks.threshold().unwrap().rank, 0.3);
    }

    #[test]
    fn threshold_none_until_full() {
        let mut ks = KSmallest::new(2);
        assert!(ks.threshold().is_none());
        ks.offer(0.4, 0);
        assert!(ks.threshold().is_none());
        ks.offer(0.6, 1);
        assert_eq!(ks.threshold().unwrap().rank, 0.6);
        assert_eq!(ks.threshold_rank_or(1.0), 0.6);
    }

    #[test]
    fn threshold_rank_or_returns_sup_when_underfilled() {
        let ks = KSmallest::new(5);
        assert_eq!(ks.threshold_rank_or(1.0), 1.0);
    }

    #[test]
    fn would_enter_matches_offer() {
        let mut ks = KSmallest::new(2);
        ks.offer(0.2, 0);
        ks.offer(0.4, 1);
        assert!(ks.would_enter(0.3, 2));
        assert!(!ks.would_enter(0.5, 3));
        // Exact tie on rank: id breaks the tie.
        assert!(ks.would_enter(0.4, 0)); // (0.4, 0) < (0.4, 1)
        assert!(!ks.would_enter(0.4, 2)); // (0.4, 2) > (0.4, 1)
    }

    #[test]
    fn offer_reports_retention() {
        let mut ks = KSmallest::new(1);
        assert!(ks.offer(0.5, 0));
        assert!(!ks.offer(0.9, 1));
        assert!(ks.offer(0.1, 2));
        assert_eq!(ks.len(), 1);
        assert_eq!(ks.sorted_items()[0].id, 2);
    }

    #[test]
    fn matches_naive_on_random_stream() {
        use crate::rng::{Rng64, SplitMix64};
        let mut rng = SplitMix64::new(77);
        for k in [1usize, 2, 5, 16] {
            let mut ks = KSmallest::new(k);
            let mut all: Vec<RankedItem> = Vec::new();
            for id in 0..500u64 {
                let r = rng.unit_f64();
                ks.offer(r, id);
                all.push(RankedItem { rank: r, id });
            }
            all.sort_unstable();
            all.truncate(k);
            assert_eq!(ks.sorted_items(), all, "k = {k}");
        }
    }

    #[test]
    fn clear_resets() {
        let mut ks = KSmallest::new(2);
        ks.offer(0.1, 0);
        ks.offer(0.2, 1);
        ks.clear();
        assert!(ks.is_empty());
        assert!(ks.threshold().is_none());
    }
}
