//! Stateless hash-derived ranks, permutations, and bucket assignments.
//!
//! MinHash and all-distances sketches are defined with respect to random
//! permutations of the node/element domain, specified by assigning each
//! element a rank `r(v) ~ U[0,1)` (Section 2 of the paper). [`RankHasher`]
//! realizes these permutations with a seeded avalanche hash so that
//!
//! * the same element always gets the same rank (sketches of different
//!   nodes/sets are *coordinated*, the property ADS estimators rely on), and
//! * `k` independent permutations (for k-mins sketches) are obtained by
//!   mixing a permutation index into the seed.
//!
//! Ranks are produced both as raw `u64`s (fast total order, no collisions in
//! practice) and as unit-interval `f64`s (what the estimators consume).

use crate::rng::mix64;

/// Converts 64 uniform bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
pub fn u64_to_unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A seeded family of random permutations over `u64` element identifiers.
///
/// # Examples
///
/// ```
/// use adsketch_util::RankHasher;
///
/// let h = RankHasher::new(42);
/// let r = h.rank(7);
/// assert!((0.0..1.0).contains(&r));
/// assert_eq!(r, RankHasher::new(42).rank(7), "ranks are deterministic");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankHasher {
    seed: u64,
}

impl RankHasher {
    /// Creates the rank family identified by `seed`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The seed this family was built from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Raw 64-bit rank of `element` in the primary permutation.
    #[inline]
    pub fn rank_bits(&self, element: u64) -> u64 {
        mix64(
            element
                .wrapping_add(0x632B_E59B_D9B4_E019)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ self.seed,
        )
    }

    /// Rank `r(element) ~ U[0,1)` in the primary permutation.
    #[inline]
    pub fn rank(&self, element: u64) -> f64 {
        u64_to_unit_f64(self.rank_bits(element))
    }

    /// Raw 64-bit rank in the `index`-th independent permutation
    /// (for k-mins sketches).
    #[inline]
    pub fn perm_rank_bits(&self, element: u64, index: u32) -> u64 {
        let salt = mix64((index as u64).wrapping_add(0xA076_1D64_78BD_642F));
        mix64(
            element
                .wrapping_add(0x632B_E59B_D9B4_E019)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ self.seed
                ^ salt,
        )
    }

    /// Rank in the `index`-th independent permutation, as `U[0,1)`.
    #[inline]
    pub fn perm_rank(&self, element: u64, index: u32) -> f64 {
        u64_to_unit_f64(self.perm_rank_bits(element, index))
    }

    /// Uniform bucket assignment in `[0, k)` for k-partition sketches.
    ///
    /// Derived from an independent hash stream, so the bucket is independent
    /// of the element's rank.
    #[inline]
    pub fn bucket(&self, element: u64, k: usize) -> usize {
        debug_assert!(k > 0);
        let bits = mix64(
            element
                .wrapping_mul(0xD6E8_FEB8_6659_FD93)
                .wrapping_add(0x2545_F491_4F6C_DD1D)
                ^ self.seed.rotate_left(32),
        );
        // Multiply-shift range reduction (negligible bias for k << 2^64).
        ((bits as u128 * k as u128) >> 64) as usize
    }

    /// Exponentially distributed rank with rate `beta` (Section 9:
    /// non-uniform node weights). Larger `beta` ⇒ stochastically smaller
    /// rank ⇒ higher inclusion probability.
    #[inline]
    pub fn exp_rank(&self, element: u64, beta: f64) -> f64 {
        debug_assert!(beta > 0.0, "node weight must be positive");
        let u = self.rank(element);
        -(-u).ln_1p() / beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_deterministic_and_seed_sensitive() {
        let a = RankHasher::new(1);
        let b = RankHasher::new(2);
        assert_eq!(a.rank_bits(5), RankHasher::new(1).rank_bits(5));
        assert_ne!(a.rank_bits(5), b.rank_bits(5));
    }

    #[test]
    fn ranks_are_uniformish() {
        let h = RankHasher::new(99);
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|e| h.rank(e)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
        // Kolmogorov–Smirnov-style coarse check on deciles.
        let mut deciles = [0usize; 10];
        for e in 0..n {
            deciles[(h.rank(e) * 10.0) as usize] += 1;
        }
        for (i, &c) in deciles.iter().enumerate() {
            let dev = (c as f64 - n as f64 / 10.0).abs() / (n as f64 / 10.0);
            assert!(dev < 0.05, "decile {i}: {c}");
        }
    }

    #[test]
    fn permutations_are_independent() {
        let h = RankHasher::new(7);
        // Correlation between permutation 0 and 1 ranks should be ~0.
        let n = 50_000u64;
        let (mut sx, mut sy, mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for e in 0..n {
            let x = h.perm_rank(e, 0);
            let y = h.perm_rank(e, 1);
            sx += x;
            sy += y;
            sxy += x * y;
            sxx += x * x;
            syy += y * y;
        }
        let nf = n as f64;
        let cov = sxy / nf - (sx / nf) * (sy / nf);
        let vx = sxx / nf - (sx / nf).powi(2);
        let vy = syy / nf - (sy / nf).powi(2);
        let corr = cov / (vx * vy).sqrt();
        assert!(corr.abs() < 0.02, "corr = {corr}");
    }

    #[test]
    fn perm_zero_differs_from_primary() {
        // perm_rank(e, i) must not collide with rank(e) systematically.
        let h = RankHasher::new(13);
        let same = (0..1000u64)
            .filter(|&e| h.perm_rank_bits(e, 0) == h.rank_bits(e))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn buckets_are_balanced_and_independent_of_rank() {
        let h = RankHasher::new(21);
        let k = 16;
        let n = 160_000u64;
        let mut counts = vec![0usize; k];
        // Mean rank per bucket should be ~0.5 (independence).
        let mut rank_sums = vec![0.0f64; k];
        for e in 0..n {
            let b = h.bucket(e, k);
            assert!(b < k);
            counts[b] += 1;
            rank_sums[b] += h.rank(e);
        }
        for b in 0..k {
            let dev = (counts[b] as f64 - n as f64 / k as f64).abs() / (n as f64 / k as f64);
            assert!(dev < 0.05, "bucket {b} count {}", counts[b]);
            let mean_rank = rank_sums[b] / counts[b] as f64;
            assert!(
                (mean_rank - 0.5).abs() < 0.02,
                "bucket {b} mean rank {mean_rank}"
            );
        }
    }

    #[test]
    fn exp_rank_scales_with_beta() {
        let h = RankHasher::new(3);
        let n = 100_000u64;
        let m1: f64 = (0..n).map(|e| h.exp_rank(e, 1.0)).sum::<f64>() / n as f64;
        let m4: f64 = (0..n).map(|e| h.exp_rank(e, 4.0)).sum::<f64>() / n as f64;
        assert!((m1 - 1.0).abs() < 0.02, "m1 = {m1}");
        assert!((m4 - 0.25).abs() < 0.01, "m4 = {m4}");
    }

    #[test]
    fn u64_to_unit_f64_extremes() {
        assert_eq!(u64_to_unit_f64(0), 0.0);
        let max = u64_to_unit_f64(u64::MAX);
        assert!(max < 1.0 && max > 0.999_999);
    }
}
