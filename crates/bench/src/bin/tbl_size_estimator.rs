//! SIZE-EST experiment (paper, Section 8): the size-only estimator
//! `E_s = k(1+1/k)^{s−k+1} − 1` is unbiased but weaker than both the basic
//! MinHash estimator and HIP — the information hierarchy in one table.
//!
//! ```text
//! cargo run --release -p adsketch-bench --bin tbl_size_estimator [--runs 3000]
//! ```

use adsketch_bench::table::f;
use adsketch_bench::{arg_u64, Table};
use adsketch_core::{reference, size_est};
use adsketch_graph::NodeId;
use adsketch_util::stats::{cv_basic, cv_hip, ErrorStats};
use adsketch_util::RankHasher;

fn main() {
    let runs = arg_u64("runs", 3000);
    for &k in &[8usize, 16] {
        let mut t = Table::new(vec![
            "n",
            "size NRMSE",
            "size bias",
            "basic NRMSE",
            "HIP NRMSE",
        ]);
        for &n in &[100usize, 1_000, 10_000] {
            let order: Vec<(NodeId, f64)> = (0..n).map(|i| (i as NodeId, i as f64)).collect();
            let mut se = ErrorStats::new(n as f64);
            let mut be = ErrorStats::new(n as f64);
            let mut he = ErrorStats::new(n as f64);
            for seed in 0..runs {
                let h = RankHasher::new(seed * 3 + k as u64);
                let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
                let ads = reference::bottomk_from_order(k, &order, &ranks);
                se.push(size_est::size_estimator(ads.len(), k));
                be.push(adsketch_core::basic::reachable(&ads));
                he.push(ads.hip_weights().reachable_estimate());
            }
            t.row(vec![
                n.to_string(),
                f(se.nrmse()),
                f(se.relative_bias()),
                f(be.nrmse()),
                f(he.nrmse()),
            ]);
        }
        println!(
            "\n=== size-only vs basic vs HIP (k={k}, {runs} runs); CV refs: basic {} HIP {} ===\n{}",
            f(cv_basic(k)),
            f(cv_hip(k)),
            t.render()
        );
    }
}
