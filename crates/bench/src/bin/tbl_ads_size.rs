//! ADS-SIZE experiment (Lemma 2.2): measured expected sketch sizes vs the
//! closed forms `k + k(H_n − H_k)` (bottom-k), `k·H_{n/k}` (k-partition),
//! and `k·H_n` (k-mins) — plus the storage cost of those entries in the
//! heap build representation vs the frozen columnar store (resident and
//! bytes on disk), extending the paper's ADS-size table with a
//! persistence column.
//!
//! The second table reports the frozen store's two on-disk formats side
//! by side — full-width v1 vs compressed v2 bytes/entry (`--full` adds
//! the n = 100 000, k = 16 benchmark cell).
//!
//! ```text
//! cargo run --release -p adsketch-bench --bin tbl_ads_size [--runs 400] [--full]
//! ```

use adsketch_bench::table::f;
use adsketch_bench::{arg_u64, Table};
use adsketch_core::{reference, AdsSet, StoreFormat};
use adsketch_graph::{generators, NodeId};
use adsketch_util::harmonic::{
    expected_bottomk_ads_size, expected_kmins_ads_size, expected_kpartition_ads_size,
};
use adsketch_util::RankHasher;

fn main() {
    let runs = arg_u64("runs", 400);
    let mut t = Table::new(vec![
        "n",
        "k",
        "botk meas",
        "botk thy",
        "kpart meas",
        "kpart thy",
        "kmins meas",
        "kmins thy",
    ]);
    for &n in &[1_000usize, 10_000] {
        let order: Vec<(NodeId, f64)> = (0..n).map(|i| (i as NodeId, i as f64)).collect();
        for &k in &[4usize, 16, 64] {
            let (mut sb, mut sp, mut sm) = (0usize, 0usize, 0usize);
            for seed in 0..runs {
                let h = RankHasher::new(seed * 7 + k as u64);
                let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
                sb += reference::bottomk_from_order(k, &order, &ranks).len();
                sp += reference::kpartition_from_order(k, &order, &h).len();
                sm += reference::kmins_from_order(k, &order, &h).len();
            }
            let r = runs as f64;
            t.row(vec![
                n.to_string(),
                k.to_string(),
                f(sb as f64 / r),
                f(expected_bottomk_ads_size(n as u64, k)),
                f(sp as f64 / r),
                f(expected_kpartition_ads_size(n as u64, k)),
                f(sm as f64 / r),
                f(expected_kmins_ads_size(n as u64, k)),
            ]);
        }
    }
    println!(
        "=== ADS sizes: measured vs Lemma 2.2 ({runs} runs) ===\n{}",
        t.render()
    );
    println!("note: k·H_(n/k) for k-partition assumes exactly n/k per bucket; the\nmultinomial bucket sizes push the measured value slightly above it.");

    // Storage cost of a full bottom-k ADS set (one PrunedDijkstra build
    // per cell on a Barabási–Albert graph): heap build representation vs
    // the frozen store in both on-disk formats — full-width v1 and the
    // compressed v2 (delta+varint columns). The n = 100 000, k = 16 cell
    // is the repo's standing benchmark configuration (`--full` only; it
    // builds a 100k-node ADS set per run).
    let full = adsketch_bench::arg_flag("full");
    let mut st = Table::new(vec![
        "n",
        "k",
        "entries/node",
        "heap B/node",
        "v1 B/entry",
        "v2 B/entry",
        "v1/v2",
    ]);
    let cells: &[(usize, &[usize])] = if full {
        &[
            (1_000, &[4, 16, 64]),
            (10_000, &[4, 16, 64]),
            (100_000, &[16]),
        ]
    } else {
        &[(1_000, &[4, 16, 64]), (10_000, &[4, 16, 64])]
    };
    for &(n, ks) in cells {
        let g = generators::barabasi_albert(n, 4, 7);
        for &k in ks {
            let ads = AdsSet::build_parallel(&g, k, 42, 0);
            let frozen = ads.freeze();
            let heap = ads.approx_heap_bytes() as f64;
            let entries = frozen.num_entries() as f64;
            let v1 = frozen.serialized_len() as f64;
            let v2 = frozen.to_bytes_format(StoreFormat::V2).len() as f64;
            st.row(vec![
                n.to_string(),
                k.to_string(),
                f(ads.mean_entries()),
                f(heap / n as f64),
                f(v1 / entries),
                f(v2 / entries),
                format!("{:.2}x", v1 / v2),
            ]);
        }
    }
    println!(
        "\n=== Store size: heap build form vs frozen store v1/v2 (BA m=4, one build per cell) ===\n{}",
        st.render()
    );
    println!(
        "heap counts sketch vectors by capacity (per node); v1 is the exact full-width\n\
         serialized length (header + CSR offsets + node/dist/rank/weight columns,\n\
         28 B/entry amortized); v2 is the compressed format (per-row delta+varint\n\
         node ids, dictionary-coded distances, 7-byte rank mantissas, 1/τ weight\n\
         back-references — bitwise-lossless, escape columns where needed)."
    );
}
