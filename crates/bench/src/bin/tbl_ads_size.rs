//! ADS-SIZE experiment (Lemma 2.2): measured expected sketch sizes vs the
//! closed forms `k + k(H_n − H_k)` (bottom-k), `k·H_{n/k}` (k-partition),
//! and `k·H_n` (k-mins).
//!
//! ```text
//! cargo run --release -p adsketch-bench --bin tbl_ads_size [--runs 400]
//! ```

use adsketch_bench::table::f;
use adsketch_bench::{arg_u64, Table};
use adsketch_core::reference;
use adsketch_graph::NodeId;
use adsketch_util::harmonic::{
    expected_bottomk_ads_size, expected_kmins_ads_size, expected_kpartition_ads_size,
};
use adsketch_util::RankHasher;

fn main() {
    let runs = arg_u64("runs", 400);
    let mut t = Table::new(vec![
        "n",
        "k",
        "botk meas",
        "botk thy",
        "kpart meas",
        "kpart thy",
        "kmins meas",
        "kmins thy",
    ]);
    for &n in &[1_000usize, 10_000] {
        let order: Vec<(NodeId, f64)> = (0..n).map(|i| (i as NodeId, i as f64)).collect();
        for &k in &[4usize, 16, 64] {
            let (mut sb, mut sp, mut sm) = (0usize, 0usize, 0usize);
            for seed in 0..runs {
                let h = RankHasher::new(seed * 7 + k as u64);
                let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
                sb += reference::bottomk_from_order(k, &order, &ranks).len();
                sp += reference::kpartition_from_order(k, &order, &h).len();
                sm += reference::kmins_from_order(k, &order, &h).len();
            }
            let r = runs as f64;
            t.row(vec![
                n.to_string(),
                k.to_string(),
                f(sb as f64 / r),
                f(expected_bottomk_ads_size(n as u64, k)),
                f(sp as f64 / r),
                f(expected_kpartition_ads_size(n as u64, k)),
                f(sm as f64 / r),
                f(expected_kmins_ads_size(n as u64, k)),
            ]);
        }
    }
    println!(
        "=== ADS sizes: measured vs Lemma 2.2 ({runs} runs) ===\n{}",
        t.render()
    );
    println!("note: k·H_(n/k) for k-partition assumes exactly n/k per bucket; the\nmultinomial bucket sizes push the measured value slightly above it.");
}
