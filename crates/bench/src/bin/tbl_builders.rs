//! BUILDERS experiment (paper, Section 3 + Appendix B): the three
//! construction algorithms produce identical sketches; their costs differ.
//! Reports wall time, relaxations (vs the O(km·ln n) bound), insertions,
//! retractions and rounds, plus the (1+ε)-approximate LocalUpdates
//! variants.
//!
//! ```text
//! cargo run --release -p adsketch-bench --bin tbl_builders [--n 4000] [--k 16]
//! ```

use adsketch_bench::table::f;
use adsketch_bench::{arg_u64, Table};
use adsketch_core::builder::{dp, local_updates, pruned_dijkstra, BuildStats};
use adsketch_core::{uniform_ranks, AdsSet};
use adsketch_graph::{generators, Graph};

fn main() {
    let n = arg_u64("n", 4_000) as usize;
    let k = arg_u64("k", 16) as usize;

    for (name, g) in [
        (
            "Barabási–Albert m=4 (unweighted)",
            generators::barabasi_albert(n, 4, 7),
        ),
        (
            "G(n,p), mean degree 8 (unweighted)",
            generators::gnp(n, 8.0 / n as f64, 9),
        ),
        (
            "random weighted digraph, deg 6",
            generators::random_weighted_digraph(n, 6, 0.5, 2.5, 11),
        ),
    ] {
        run_case(name, &g, k);
    }
}

fn run_case(name: &str, g: &Graph, k: usize) {
    let n = g.num_nodes();
    let m = g.num_arcs();
    let ranks = uniform_ranks(n, 13);
    let bound = k as f64 * m as f64 * (n as f64).ln();
    println!("\n=== {name}: n={n}, arcs={m}, k={k}; km·ln n = {bound:.2e} ===");
    let mut t = Table::new(vec![
        "algorithm",
        "time",
        "relaxations",
        "rel/bound",
        "insertions",
        "removals",
        "rounds",
        "identical",
    ]);

    let t0 = std::time::Instant::now();
    let (pd, pd_stats) = pruned_dijkstra::build_with_stats(g, k, &ranks).unwrap();
    let pd_time = t0.elapsed();
    push_row(&mut t, "PrunedDijkstra", pd_time, &pd_stats, bound, true);

    if !g.is_weighted() {
        let t0 = std::time::Instant::now();
        let (dp_set, dp_stats) = dp::build_with_stats(g, k, &ranks).unwrap();
        push_row(&mut t, "DP", t0.elapsed(), &dp_stats, bound, dp_set == pd);
    }

    let t0 = std::time::Instant::now();
    let (lu, lu_stats) = local_updates::build_with_stats(g, k, &ranks).unwrap();
    push_row(
        &mut t,
        "LocalUpdates",
        t0.elapsed(),
        &lu_stats,
        bound,
        lu == pd,
    );

    for eps in [0.1, 0.25] {
        let t0 = std::time::Instant::now();
        let (ap, ap_stats) = local_updates::build_approx_with_stats(g, k, &ranks, eps).unwrap();
        push_row(
            &mut t,
            &format!("LocalUpdates ε={eps}"),
            t0.elapsed(),
            &ap_stats,
            bound,
            approx_close(&ap, &pd),
        );
    }
    println!("{}", t.render());
    println!(
        "mean sketch size: {:.1} entries (Lemma 2.2: {:.1})",
        pd.mean_entries(),
        adsketch_util::harmonic::expected_bottomk_ads_size(n as u64, k)
    );
}

fn push_row(
    t: &mut Table,
    name: &str,
    time: std::time::Duration,
    s: &BuildStats,
    bound: f64,
    identical: bool,
) {
    t.row(vec![
        name.to_string(),
        format!("{time:.2?}"),
        s.relaxations.to_string(),
        f(s.relaxations as f64 / bound),
        s.insertions.to_string(),
        s.removals.to_string(),
        s.rounds.to_string(),
        if identical {
            "yes".into()
        } else {
            "≈ (ε)".to_string()
        },
    ]);
}

/// For ε > 0 the sketches are only approximately equal: require that the
/// approximate set is a subset with (1+ε)-justified omissions (the formal
/// guarantee is asserted in the unit tests; here we just sanity-check
/// subset-ness).
fn approx_close(ap: &AdsSet, exact: &AdsSet) -> bool {
    for v in 0..exact.num_nodes() as u32 {
        for e in ap.sketch(v).entries() {
            if exact.sketch(v).get(e.node).is_none() {
                return false; // approx may only drop entries, never add
            }
        }
    }
    true
}
