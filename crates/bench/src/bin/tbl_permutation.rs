//! PERM experiment (paper, Section 5.4): the permutation estimator vs
//! plain HIP as the queried cardinality approaches the domain size. The
//! paper reports parity below ≈ 0.2·n and a clear permutation win above.
//!
//! ```text
//! cargo run --release -p adsketch-bench --bin tbl_permutation [--runs 2000] [--n 2000]
//! ```

use adsketch_bench::table::f;
use adsketch_bench::{arg_u64, Table};
use adsketch_core::sim::StreamSim;
use adsketch_util::stats::ErrorStats;

fn main() {
    let runs = arg_u64("runs", 2000);
    let n = arg_u64("n", 2000);
    let k = 10usize;
    let fracs = [0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95, 1.0];
    let marks: Vec<u64> = fracs
        .iter()
        .map(|fr| ((fr * n as f64) as u64).max(1))
        .collect();

    let mut hip: Vec<ErrorStats> = marks.iter().map(|&m| ErrorStats::new(m as f64)).collect();
    let mut perm = hip.clone();
    for seed in 0..runs {
        let mut sim = StreamSim::new(k, seed * 13 + 5, Some(n));
        let mut next = 0usize;
        for step in 1..=n {
            sim.step();
            while next < marks.len() && marks[next] == step {
                hip[next].push(sim.bottomk_hip());
                perm[next].push(sim.permutation().expect("enabled"));
                next += 1;
            }
        }
    }
    let mut t = Table::new(vec![
        "s/n",
        "HIP NRMSE",
        "perm NRMSE",
        "perm/HIP",
        "perm bias",
    ]);
    for (i, fr) in fracs.iter().enumerate() {
        t.row(vec![
            format!("{fr:.2}"),
            f(hip[i].nrmse()),
            f(perm[i].nrmse()),
            f(perm[i].nrmse() / hip[i].nrmse()),
            f(perm[i].relative_bias()),
        ]);
    }
    println!(
        "=== permutation vs HIP (k={k}, domain n={n}, {runs} runs) ===\n{}",
        t.render()
    );
    println!("paper: comparable below s ≈ 0.2n, significant permutation advantage above.");
}
