//! QG-GAP experiment (paper, end of Section 5.1): for statistics `Q_g`
//! whose mass concentrates on *close* nodes, the naive estimator (uniform
//! k-sample of the reachable set × cardinality estimate) suffers up to an
//! n/k-factor variance penalty vs HIP, which samples close nodes densely.
//!
//! `g` is a threshold indicator on the closest `frac·n` nodes; we sweep
//! the fraction down and watch the variance ratio blow up toward n/k.
//!
//! ```text
//! cargo run --release -p adsketch-bench --bin tbl_qg_gap [--n 4000] [--runs 800]
//! ```

use adsketch_bench::table::f;
use adsketch_bench::{arg_u64, Table};
use adsketch_core::{basic, reference};
use adsketch_graph::NodeId;
use adsketch_util::stats::ErrorStats;
use adsketch_util::RankHasher;

fn main() {
    let n = arg_u64("n", 4_000) as usize;
    let runs = arg_u64("runs", 800);
    let k = 16usize;
    let order: Vec<(NodeId, f64)> = (0..n).map(|i| (i as NodeId, i as f64)).collect();

    let mut t = Table::new(vec![
        "g = 1 on closest",
        "truth",
        "HIP NRMSE",
        "naive NRMSE",
        "var ratio",
        "n/k",
    ]);
    for &frac in &[1.0f64, 0.2, 0.05, 0.01] {
        let cutoff = (frac * n as f64).max(1.0);
        let truth = cutoff.floor();
        let mut hip_err = ErrorStats::new(truth);
        let mut naive_err = ErrorStats::new(truth);
        for seed in 0..runs {
            let h = RankHasher::new(seed * 11 + 3);
            let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
            let ads = reference::bottomk_from_order(k, &order, &ranks);
            let g = |_: NodeId, d: f64| if d < cutoff { 1.0 } else { 0.0 };
            hip_err.push(ads.hip_weights().qg(g));
            naive_err.push(basic::naive_qg(&ads, g));
        }
        let ratio = (naive_err.nrmse() / hip_err.nrmse()).powi(2);
        t.row(vec![
            format!("{:.0}% of nodes", frac * 100.0),
            f(truth),
            f(hip_err.nrmse()),
            f(naive_err.nrmse()),
            f(ratio),
            f(n as f64 / k as f64),
        ]);
    }
    println!(
        "=== Q_g variance: HIP vs naive MinHash-sample estimator (n={n}, k={k}, {runs} runs) ===\n{}",
        t.render()
    );
    println!(
        "the ratio grows without bound as g concentrates on close nodes: the naive\n\
         estimator's variance stays ≈ (n/k)·Σg² while HIP samples the closest nodes\n\
         with probability → 1 (the paper's n/k factor compares both against Σg²)."
    );
}
