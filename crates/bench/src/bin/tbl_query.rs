//! QUERY experiment: batch HIP query throughput, frozen columnar store
//! vs per-node heap queries (the read-path counterpart of `tbl_parallel`).
//!
//! Workload: closeness (harmonic) centrality over **all** nodes of a
//! Barabási–Albert graph, plus a full-node neighborhood-cardinality
//! batch. The heap baseline is one [`AdsSet::hip`] call per node (the
//! pre-freeze API: per-call `HipWeights` allocation + threshold-scan
//! recompute); the frozen rows serve the same queries from a
//! [`FrozenAdsSet`] through [`QueryEngine`]. Every configuration is
//! asserted **bitwise identical** to the heap baseline before it is
//! timed. With `--json PATH` the measurements are written as a
//! machine-readable snapshot (see `tools/bench_snapshot.sh`, which
//! maintains `BENCH_query.json`).
//!
//! ```text
//! cargo run --release -p adsketch-bench --bin tbl_query \
//!     [--n 100000] [--k 16] [--json BENCH_query.json] [--smoke]
//! ```
//!
//! `--smoke` shrinks the graph to CI size (compile + one run per
//! configuration, no timing gates).

use std::time::Instant;

use adsketch_bench::table::f;
use adsketch_bench::{arg_flag, arg_str, arg_u64, Table};
use adsketch_core::{centrality, AdsSet, FrozenAdsSet, QueryEngine};
use adsketch_graph::{generators, NodeId};

/// One measured query configuration.
struct Record {
    workload: &'static str,
    host_threads: usize,
    n: usize,
    m: usize,
    k: usize,
    backend: String,
    threads: usize,
    ns_per_batch: u128,
    speedup_vs_heap: f64,
}

fn main() {
    let smoke = arg_flag("smoke");
    let n = if smoke {
        2_000
    } else {
        arg_u64("n", 100_000) as usize
    };
    let k = arg_u64("k", 16) as usize;
    let json = arg_str("json", "");

    let g = generators::barabasi_albert(n, 4, 7);
    println!(
        "=== barabasi_albert_m4: n={n}, arcs={}, k={k} ===",
        g.num_arcs()
    );
    let t0 = Instant::now();
    let ads = AdsSet::build_parallel(&g, k, 13, 0);
    println!("build: {:.2?}", t0.elapsed());
    let t0 = Instant::now();
    let frozen = ads.freeze();
    println!(
        "freeze: {:.2?} ({} entries, heap ≈ {} B, frozen {} B resident, {} B on disk)",
        t0.elapsed(),
        frozen.num_entries(),
        ads.approx_heap_bytes(),
        frozen.resident_bytes(),
        frozen.serialized_len()
    );

    let mut records = Vec::new();
    run_harmonic(&g, &ads, &frozen, k, &mut records);
    run_cardinality(&g, &ads, &frozen, k, &mut records);

    if !json.is_empty() {
        std::fs::write(&json, render_json(&records)).expect("write json snapshot");
        eprintln!("snapshot written to {json}");
    }
}

/// Closeness-centrality batch: harmonic centrality of every node.
fn run_harmonic(
    g: &adsketch_graph::Graph,
    ads: &AdsSet,
    frozen: &FrozenAdsSet,
    k: usize,
    records: &mut Vec<Record>,
) {
    let n = ads.num_nodes();
    let mut t = Table::new(vec!["backend", "threads", "time", "speedup", "identical"]);

    // Heap baseline: one AdsSet::hip call per node.
    let t0 = Instant::now();
    let baseline: Vec<f64> = (0..n as NodeId)
        .map(|v| centrality::harmonic(&ads.hip(v)))
        .collect();
    let base_ns = t0.elapsed().as_nanos();
    push(
        records,
        &mut t,
        "harmonic_all",
        g,
        k,
        "heap_per_node_hip",
        1,
        base_ns,
        base_ns,
        true,
    );

    type Backend<'a> = (&'static str, Box<dyn Fn() -> Vec<f64> + 'a>);
    let configs: Vec<Backend> = vec![
        (
            "heap_engine",
            Box::new(|| QueryEngine::with_threads(ads, 1).harmonic_all()),
        ),
        (
            "frozen_engine",
            Box::new(|| QueryEngine::with_threads(frozen, 1).harmonic_all()),
        ),
        (
            "frozen_engine_allcores",
            Box::new(|| QueryEngine::new(frozen).harmonic_all()),
        ),
    ];
    for (name, run) in configs {
        let threads = if name.ends_with("allcores") { 0 } else { 1 };
        let t0 = Instant::now();
        let got = run();
        let ns = t0.elapsed().as_nanos();
        let identical = got == baseline;
        assert!(identical, "harmonic_all/{name}: output diverged");
        push(
            records,
            &mut t,
            "harmonic_all",
            g,
            k,
            name,
            threads,
            ns,
            base_ns,
            identical,
        );
    }
    println!(
        "\n--- harmonic centrality over all {n} nodes ---\n{}",
        t.render()
    );
}

/// Neighborhood-cardinality batch: |N_3(v)| for every node.
fn run_cardinality(
    g: &adsketch_graph::Graph,
    ads: &AdsSet,
    frozen: &FrozenAdsSet,
    k: usize,
    records: &mut Vec<Record>,
) {
    let n = ads.num_nodes();
    let queries: Vec<(NodeId, f64)> = (0..n as NodeId).map(|v| (v, 3.0)).collect();
    let mut t = Table::new(vec!["backend", "threads", "time", "speedup", "identical"]);

    let t0 = Instant::now();
    let baseline: Vec<f64> = queries
        .iter()
        .map(|&(v, d)| ads.hip(v).cardinality_at(d))
        .collect();
    let base_ns = t0.elapsed().as_nanos();
    push(
        records,
        &mut t,
        "cardinality_at_3",
        g,
        k,
        "heap_per_node_hip",
        1,
        base_ns,
        base_ns,
        true,
    );

    for threads in [1usize, 0] {
        let engine = QueryEngine::with_threads(frozen, threads);
        let t0 = Instant::now();
        let got = engine.cardinality_batch(&queries);
        let ns = t0.elapsed().as_nanos();
        let identical = got == baseline;
        assert!(identical, "cardinality/frozen/{threads}: output diverged");
        push(
            records,
            &mut t,
            "cardinality_at_3",
            g,
            k,
            "frozen_engine",
            threads,
            ns,
            base_ns,
            identical,
        );
    }
    println!(
        "\n--- neighborhood cardinality |N_3(v)| over all {n} nodes ---\n{}",
        t.render()
    );
}

#[allow(clippy::too_many_arguments)]
fn push(
    records: &mut Vec<Record>,
    t: &mut Table,
    workload: &'static str,
    g: &adsketch_graph::Graph,
    k: usize,
    backend: &str,
    threads: usize,
    ns: u128,
    base_ns: u128,
    identical: bool,
) {
    let speedup = base_ns as f64 / ns as f64;
    t.row(vec![
        backend.to_string(),
        threads.to_string(),
        format!("{:.2?}", std::time::Duration::from_nanos(ns as u64)),
        format!("{}x", f(speedup)),
        if identical { "yes" } else { "NO" }.to_string(),
    ]);
    records.push(Record {
        workload,
        host_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        n: g.num_nodes(),
        m: g.num_arcs(),
        k,
        backend: backend.to_string(),
        threads,
        ns_per_batch: ns,
        speedup_vs_heap: speedup,
    });
}

fn render_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "  {{\"workload\": \"{}\", \"host_threads\": {}, \"n\": {}, \"m\": {}, ",
                "\"k\": {}, \"backend\": \"{}\", \"threads\": {}, ",
                "\"ns_per_batch\": {}, \"speedup_vs_heap\": {:.4}}}{}\n"
            ),
            r.workload,
            r.host_threads,
            r.n,
            r.m,
            r.k,
            r.backend,
            r.threads,
            r.ns_per_batch,
            r.speedup_vs_heap,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}
