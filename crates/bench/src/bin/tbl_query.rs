//! QUERY experiment: batch HIP query throughput, frozen columnar store
//! vs per-node heap queries (the read-path counterpart of `tbl_parallel`).
//!
//! Workload: closeness (harmonic) centrality over **all** nodes of a
//! Barabási–Albert graph, plus a full-node neighborhood-cardinality
//! batch. The heap baseline is one [`AdsSet::hip`] call per node (the
//! pre-freeze API: per-call `HipWeights` allocation + threshold-scan
//! recompute); the frozen rows serve the same queries from a
//! [`FrozenAdsSet`] through [`QueryEngine`] — in both store formats:
//! full-width v1 and the compressed v2 (delta+varint columns,
//! block-decoded query path). Every configuration runs once untimed and
//! is asserted **bitwise identical** to the heap baseline before it is
//! timed (the untimed pass also triggers the v2 store's one-time thaw
//! into full-width columns — this binary sizes the decode budget to
//! allow it, the steady-state a resident query server runs at), then
//! reports the best of [`TIMED_RUNS`] timed repetitions. The rounds are
//! **interleaved round-robin across backends** — every backend is timed
//! once per round, and each backend records its own minimum — so a slow
//! host phase (throttling, a background job) lands on all backends
//! alike instead of masquerading as a format regression for whichever
//! backend happened to run during it. Each record carries
//! the serving store's format and on-disk bytes, so the snapshot tracks
//! the compression win alongside throughput. With `--json PATH` the
//! measurements are written as a machine-readable snapshot (see
//! `tools/bench_snapshot.sh`, which maintains `BENCH_query.json`).
//!
//! ```text
//! cargo run --release -p adsketch-bench --bin tbl_query \
//!     [--n 100000] [--k 16] [--json BENCH_query.json] [--smoke]
//! ```
//!
//! `--smoke` shrinks the graph to CI size (compile + one run per
//! configuration, no timing gates).

use std::time::Instant;

use adsketch_bench::table::f;
use adsketch_bench::{arg_flag, arg_str, arg_u64, Table};
use adsketch_core::{centrality, AdsSet, FrozenAdsSet, QueryEngine, StoreFormat};
use adsketch_graph::{generators, NodeId};

/// Timed repetitions per configuration; the recorded figure is the
/// minimum (the run least disturbed by unrelated host load).
const TIMED_RUNS: usize = 10;

/// One measured query configuration.
struct Record {
    workload: &'static str,
    host_threads: usize,
    n: usize,
    m: usize,
    k: usize,
    backend: String,
    threads: usize,
    ns_per_batch: u128,
    speedup_vs_heap: f64,
    /// Store representation serving this row: `heap`, `v1`, or `v2`.
    store_format: &'static str,
    /// Bytes of that representation (serialized length for the frozen
    /// formats, approximate heap footprint for `heap`).
    store_bytes: usize,
}

/// The serving store's format + size, stamped onto each record.
#[derive(Clone, Copy)]
struct StoreInfo {
    format: &'static str,
    bytes: usize,
}

fn main() {
    let smoke = arg_flag("smoke");
    let n = if smoke {
        2_000
    } else {
        arg_u64("n", 100_000) as usize
    };
    let k = arg_u64("k", 16) as usize;
    let json = arg_str("json", "");

    let g = generators::barabasi_albert(n, 4, 7);
    println!(
        "=== barabasi_albert_m4: n={n}, arcs={}, k={k} ===",
        g.num_arcs()
    );
    let t0 = Instant::now();
    let ads = AdsSet::build_parallel(&g, k, 13, 0);
    println!("build: {:.2?}", t0.elapsed());
    let t0 = Instant::now();
    let frozen = ads.freeze();
    println!(
        "freeze: {:.2?} ({} entries, heap ≈ {} B, frozen {} B resident, {} B on disk)",
        t0.elapsed(),
        frozen.num_entries(),
        ads.approx_heap_bytes(),
        frozen.resident_bytes(),
        frozen.serialized_len()
    );

    // The same store in the compressed v2 format. The decode budget is
    // sized to the whole decoded store, so the untimed warm-up/identity
    // pass thaws it once into shared full-width columns and every timed
    // sweep serves from those — the steady-state of a resident query
    // server. Both serving stores are loaded through `from_bytes`, like
    // a query server loads them from disk, so the two formats are
    // compared on the same footing (the `freeze()` output only feeds the
    // encoders and the heap rows).
    let t0 = Instant::now();
    let v1_bytes = frozen.to_bytes();
    let v2_bytes = frozen.to_bytes_format(StoreFormat::V2);
    adsketch_core::frozen::set_block_cache_budget(
        (frozen.resident_bytes() + frozen.resident_bytes() / 4).max(64 << 20),
    );
    let frozen = FrozenAdsSet::from_bytes(&v1_bytes).expect("v1 store decodes");
    let frozen_v2 = FrozenAdsSet::from_bytes(&v2_bytes).expect("v2 store decodes");
    println!(
        "v2 encode: {:.2?} ({} B on disk, {:.2}x smaller than v1)",
        t0.elapsed(),
        v2_bytes.len(),
        v1_bytes.len() as f64 / v2_bytes.len() as f64,
    );
    let info_v1 = StoreInfo {
        format: "v1",
        bytes: v1_bytes.len(),
    };
    let info_v2 = StoreInfo {
        format: "v2",
        bytes: v2_bytes.len(),
    };

    let mut records = Vec::new();
    run_harmonic(
        &g,
        &ads,
        &frozen,
        &frozen_v2,
        info_v1,
        info_v2,
        k,
        &mut records,
    );
    run_cardinality(
        &g,
        &ads,
        &frozen,
        &frozen_v2,
        info_v1,
        info_v2,
        k,
        &mut records,
    );

    if !json.is_empty() {
        std::fs::write(&json, render_json(&records)).expect("write json snapshot");
        eprintln!("snapshot written to {json}");
    }
}

/// Closeness-centrality batch: harmonic centrality of every node.
#[allow(clippy::too_many_arguments)]
fn run_harmonic(
    g: &adsketch_graph::Graph,
    ads: &AdsSet,
    frozen: &FrozenAdsSet,
    frozen_v2: &FrozenAdsSet,
    info_v1: StoreInfo,
    info_v2: StoreInfo,
    k: usize,
    records: &mut Vec<Record>,
) {
    let n = ads.num_nodes();
    let mut t = Table::new(vec!["backend", "threads", "time", "speedup", "identical"]);
    let info_heap = StoreInfo {
        format: "heap",
        bytes: ads.approx_heap_bytes(),
    };

    // Heap baseline: one AdsSet::hip call per node.
    let t0 = Instant::now();
    let baseline: Vec<f64> = (0..n as NodeId)
        .map(|v| centrality::harmonic(&ads.hip(v)))
        .collect();
    let base_ns = t0.elapsed().as_nanos();
    push(
        records,
        &mut t,
        "harmonic_all",
        g,
        k,
        "heap_per_node_hip",
        1,
        base_ns,
        base_ns,
        info_heap,
    );

    type Backend<'a> = (&'static str, StoreInfo, Box<dyn Fn() -> Vec<f64> + 'a>);
    let configs: Vec<Backend> = vec![
        (
            "heap_engine",
            info_heap,
            Box::new(|| QueryEngine::with_threads(ads, 1).harmonic_all()),
        ),
        (
            "frozen_engine",
            info_v1,
            Box::new(|| QueryEngine::with_threads(frozen, 1).harmonic_all()),
        ),
        (
            "frozen_engine_allcores",
            info_v1,
            Box::new(|| QueryEngine::new(frozen).harmonic_all()),
        ),
        (
            "frozen_v2_engine",
            info_v2,
            Box::new(|| QueryEngine::with_threads(frozen_v2, 1).harmonic_all()),
        ),
        (
            "frozen_v2_engine_allcores",
            info_v2,
            Box::new(|| QueryEngine::new(frozen_v2).harmonic_all()),
        ),
    ];
    // Untimed identity gate per backend (doubles as warm-up: pages,
    // branch predictors, and the v2 store's one-time thaw).
    for (name, _, run) in &configs {
        assert!(run() == baseline, "harmonic_all/{name}: output diverged");
    }
    // Interleaved rounds: every backend timed once per round, each
    // keeping its own minimum, so host-load drift hits all alike.
    let mut mins = vec![u128::MAX; configs.len()];
    for _ in 0..TIMED_RUNS {
        for ((name, _, run), min_ns) in configs.iter().zip(&mut mins) {
            let t0 = Instant::now();
            let got = run();
            *min_ns = (*min_ns).min(t0.elapsed().as_nanos());
            assert!(got == baseline, "harmonic_all/{name}: output diverged");
        }
    }
    for ((name, info, _), ns) in configs.iter().zip(mins) {
        let threads = if name.ends_with("allcores") { 0 } else { 1 };
        push(
            records,
            &mut t,
            "harmonic_all",
            g,
            k,
            name,
            threads,
            ns,
            base_ns,
            *info,
        );
    }
    println!(
        "\n--- harmonic centrality over all {n} nodes ---\n{}",
        t.render()
    );
}

/// Neighborhood-cardinality batch: |N_3(v)| for every node.
#[allow(clippy::too_many_arguments)]
fn run_cardinality(
    g: &adsketch_graph::Graph,
    ads: &AdsSet,
    frozen: &FrozenAdsSet,
    frozen_v2: &FrozenAdsSet,
    info_v1: StoreInfo,
    info_v2: StoreInfo,
    k: usize,
    records: &mut Vec<Record>,
) {
    let n = ads.num_nodes();
    let queries: Vec<(NodeId, f64)> = (0..n as NodeId).map(|v| (v, 3.0)).collect();
    let mut t = Table::new(vec!["backend", "threads", "time", "speedup", "identical"]);

    let t0 = Instant::now();
    let baseline: Vec<f64> = queries
        .iter()
        .map(|&(v, d)| ads.hip(v).cardinality_at(d))
        .collect();
    let base_ns = t0.elapsed().as_nanos();
    push(
        records,
        &mut t,
        "cardinality_at_3",
        g,
        k,
        "heap_per_node_hip",
        1,
        base_ns,
        base_ns,
        StoreInfo {
            format: "heap",
            bytes: ads.approx_heap_bytes(),
        },
    );

    let configs: Vec<(&'static str, QueryEngine<'_>, usize, StoreInfo)> = [
        ("frozen_engine", frozen, info_v1),
        ("frozen_v2_engine", frozen_v2, info_v2),
    ]
    .into_iter()
    .flat_map(|(name, store, info)| {
        [1usize, 0].map(|threads| {
            (
                name,
                QueryEngine::with_threads(store, threads),
                threads,
                info,
            )
        })
    })
    .collect();
    // Untimed identity gate + warm-up, as in the harmonic sweep.
    for (name, engine, threads, _) in &configs {
        assert!(
            engine.cardinality_batch(&queries) == baseline,
            "cardinality/{name}/{threads}: output diverged"
        );
    }
    // Interleaved rounds (see the harmonic sweep).
    let mut mins = vec![u128::MAX; configs.len()];
    for _ in 0..TIMED_RUNS {
        for ((name, engine, threads, _), min_ns) in configs.iter().zip(&mut mins) {
            let t0 = Instant::now();
            let got = engine.cardinality_batch(&queries);
            *min_ns = (*min_ns).min(t0.elapsed().as_nanos());
            assert!(
                got == baseline,
                "cardinality/{name}/{threads}: output diverged"
            );
        }
    }
    for ((name, _, threads, info), ns) in configs.iter().zip(mins) {
        push(
            records,
            &mut t,
            "cardinality_at_3",
            g,
            k,
            name,
            *threads,
            ns,
            base_ns,
            *info,
        );
    }
    println!(
        "\n--- neighborhood cardinality |N_3(v)| over all {n} nodes ---\n{}",
        t.render()
    );
}

#[allow(clippy::too_many_arguments)]
fn push(
    records: &mut Vec<Record>,
    t: &mut Table,
    workload: &'static str,
    g: &adsketch_graph::Graph,
    k: usize,
    backend: &str,
    threads: usize,
    ns: u128,
    base_ns: u128,
    info: StoreInfo,
) {
    let speedup = base_ns as f64 / ns as f64;
    t.row(vec![
        backend.to_string(),
        threads.to_string(),
        format!("{:.2?}", std::time::Duration::from_nanos(ns as u64)),
        format!("{}x", f(speedup)),
        // Reaching a row at all means its identity gate passed.
        "yes".to_string(),
    ]);
    records.push(Record {
        workload,
        host_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        n: g.num_nodes(),
        m: g.num_arcs(),
        k,
        backend: backend.to_string(),
        threads,
        ns_per_batch: ns,
        speedup_vs_heap: speedup,
        store_format: info.format,
        store_bytes: info.bytes,
    });
}

fn render_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "  {{\"workload\": \"{}\", \"host_threads\": {}, \"n\": {}, \"m\": {}, ",
                "\"k\": {}, \"backend\": \"{}\", \"threads\": {}, ",
                "\"ns_per_batch\": {}, \"speedup_vs_heap\": {:.4}, ",
                "\"store_format\": \"{}\", \"store_bytes\": {}}}{}\n"
            ),
            r.workload,
            r.host_threads,
            r.n,
            r.m,
            r.k,
            r.backend,
            r.threads,
            r.ns_per_batch,
            r.speedup_vs_heap,
            r.store_format,
            r.store_bytes,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}
