//! BASE-B experiment (paper, Section 5.6): HIP with base-b rounded ranks.
//! Measured NRMSE vs the analysis `sqrt((1+b)/(4(k−1)))`, and the
//! variance-inflation factor vs `(1+b)/2`.
//!
//! ```text
//! cargo run --release -p adsketch-bench --bin tbl_base_b [--runs 1500] [--n 20000]
//! ```

use adsketch_bench::table::f;
use adsketch_bench::{arg_u64, Table};
use adsketch_core::sim::{BaseBHipSim, StreamSim};
use adsketch_util::ranks::BaseB;
use adsketch_util::stats::ErrorStats;

fn main() {
    let runs = arg_u64("runs", 1500);
    let n = arg_u64("n", 20_000);
    let k = 16usize;

    // Full-precision HIP reference variance at the same (k, n).
    let mut full = ErrorStats::new(n as f64);
    for seed in 0..runs {
        let mut sim = StreamSim::new(k, seed * 3 + 1, None);
        for _ in 0..n {
            sim.step();
        }
        full.push(sim.bottomk_hip());
    }

    let mut t = Table::new(vec![
        "base",
        "bits/reg*",
        "NRMSE",
        "analysis",
        "var infl",
        "(1+b)/2",
        "bias",
    ]);
    for &(label, b) in &[
        ("2", 2.0f64),
        ("sqrt(2)", std::f64::consts::SQRT_2),
        ("2^(1/4)", 2f64.powf(0.25)),
        ("1.1", 1.1),
        ("1.02", 1.02),
    ] {
        let base = BaseB::new(b);
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..runs {
            let mut sim = BaseBHipSim::new(k, base, seed * 3 + 1);
            for _ in 0..n {
                sim.step();
            }
            err.push(sim.estimate());
        }
        let inflation = (err.nrmse() / full.nrmse()).powi(2);
        // Register stores ⌈−log_b r⌉ ≈ log_b n levels ⇒ log2 log_b n bits.
        let bits = ((n as f64).log2() / b.log2()).log2().ceil();
        t.row(vec![
            label.to_string(),
            format!("{bits:.0}"),
            f(err.nrmse()),
            f(base.hip_cv(k)),
            f(inflation),
            f(base.variance_inflation()),
            f(err.relative_bias()),
        ]);
    }
    println!(
        "=== base-b HIP, k={k}, n={n}, {runs} runs; full-rank NRMSE = {} ===\n{}",
        f(full.nrmse()),
        t.render()
    );
    println!("*bits to store one rounded rank level for this n.");
}
