//! CENTRALITY experiment (paper, Corollary 5.2): HIP distance-decay
//! centrality estimates vs exact values on generated graphs; observed CV
//! vs the `1/sqrt(2(k−1))` bound, including β-filtered queries where the
//! filter is chosen after sketching.
//!
//! ```text
//! cargo run --release -p adsketch-bench --bin tbl_centrality [--n 2000] [--runs 120]
//! ```

use adsketch_bench::table::f;
use adsketch_bench::{arg_u64, Table};
use adsketch_core::centrality::{self, DecayKernel};
use adsketch_core::AdsSet;
use adsketch_graph::{exact, generators, NodeId};
use adsketch_util::rng::{Rng64, SplitMix64};
use adsketch_util::stats::{cv_hip, ErrorStats};

fn main() {
    let n = arg_u64("n", 2_000) as usize;
    let runs = arg_u64("runs", 120);
    let g = generators::barabasi_albert(n, 4, 21);
    let probe: NodeId = 0;

    // A random 20% node filter, fixed across runs, applied at query time.
    let mut rng = SplitMix64::new(5);
    let flags: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.2)).collect();
    let beta = |v: NodeId| if flags[v as usize] { 1.0 } else { 0.0 };

    let queries: Vec<(&str, DecayKernel, bool)> = vec![
        ("harmonic", DecayKernel::Harmonic, false),
        ("exp 2^-d", DecayKernel::Exponential { base: 2.0 }, false),
        ("|N_2(v)|", DecayKernel::Threshold(2.0), false),
        ("harmonic·β", DecayKernel::Harmonic, true),
        ("|N_2(v)|·β", DecayKernel::Threshold(2.0), true),
    ];

    for &k in &[8usize, 16, 32, 64] {
        let mut t = Table::new(vec!["query", "exact", "mean est", "CV", "bound"]);
        let mut errs: Vec<ErrorStats> = queries
            .iter()
            .map(|(_, kern, filt)| {
                let truth = exact::centrality_exact(
                    &g,
                    probe,
                    |d| kern.eval(d),
                    |v| if *filt { beta(v) } else { 1.0 },
                );
                ErrorStats::new(truth)
            })
            .collect();
        for seed in 0..runs {
            let ads = AdsSet::build(&g, k, seed);
            let hip = ads.hip(probe);
            for (qi, (_, kern, filt)) in queries.iter().enumerate() {
                let est = if *filt {
                    centrality::decay_filtered(&hip, *kern, beta)
                } else {
                    centrality::decay(&hip, *kern)
                };
                errs[qi].push(est);
            }
        }
        for (qi, (name, _, _)) in queries.iter().enumerate() {
            t.row(vec![
                name.to_string(),
                f(errs[qi].truth()),
                f(errs[qi].truth() * (1.0 + errs[qi].relative_bias())),
                f(errs[qi].nrmse()),
                f(cv_hip(k)),
            ]);
        }
        println!(
            "\n=== centrality on BA(n={n}, m=4), node {probe}, k={k}, {runs} sketch seeds ===\n{}",
            t.render()
        );
        println!(
            "the 1/sqrt(2(k−1)) bound covers the uniform-β rows (Cor. 5.2); β-filtered\n\
             rows are unbiased but only Cor.-5.3-bounded unless sketches are built with\n\
             β-weighted ranks (Section 9 / adsketch-core::weighted)."
        );
    }
}
