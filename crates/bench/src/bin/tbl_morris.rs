//! MORRIS experiment (paper, Section 7): approximate counters with
//! arbitrary positive increments and merging.
//!
//! * small-increment accuracy across bases `b = 1 + 2^{−j}`: the Flajolet
//!   analysis gives CV ≈ `sqrt((b−1)/2)` in this regime (each extra bit
//!   halves the variance). The paper's tighter CV ≈ `b−1` applies to the
//!   HIP-accumulator regime where increments grow with the running total
//!   and updates are mostly deterministic — exercised by the Morris-backed
//!   HIP counter tests in `adsketch-stream`.
//! * weighted adds and merges stay unbiased,
//! * representation size is `O(log log n)`.
//!
//! ```text
//! cargo run --release -p adsketch-bench --bin tbl_morris [--runs 3000] [--n 100000]
//! ```

use adsketch_bench::table::f;
use adsketch_bench::{arg_u64, Table};
use adsketch_stream::MorrisCounter;
use adsketch_util::stats::ErrorStats;

fn main() {
    let runs = arg_u64("runs", 3000);
    let n = arg_u64("n", 100_000);

    let mut t = Table::new(vec![
        "base",
        "NRMSE",
        "sqrt((b-1)/2)",
        "bias",
        "mean exponent",
        "exact bits",
    ]);
    for j in 0..=6u32 {
        let b = 1.0 + 1.0 / (1u64 << j) as f64;
        let mut err = ErrorStats::new(n as f64);
        let mut exp_sum = 0u64;
        for seed in 0..runs {
            let mut c = MorrisCounter::new(b, seed * 5 + 1);
            // Mixed update sizes summing to n per run.
            let mut total = 0u64;
            let mut step = 1u64;
            while total < n {
                let add = step.min(n - total);
                c.add(add as f64);
                total += add;
                step = step % 7 + 1;
            }
            err.push(c.estimate());
            exp_sum += c.exponent() as u64;
        }
        t.row(vec![
            format!("1+2^-{j}"),
            f(err.nrmse()),
            f(((b - 1.0) / 2.0).sqrt()),
            f(err.relative_bias()),
            format!("{:.1}", exp_sum as f64 / runs as f64),
            format!("{:.0}", (n as f64).log2().ceil()),
        ]);
    }
    println!(
        "=== Morris counters, total count {n}, {runs} runs ===\n{}",
        t.render()
    );

    // Merge experiment: two counters vs one.
    let mut err = ErrorStats::new(2.0 * n as f64);
    for seed in 0..runs {
        let mut a = MorrisCounter::new(1.0625, seed);
        let mut b = MorrisCounter::new(1.0625, seed + runs);
        for _ in 0..n / 100 {
            a.add(100.0);
            b.add(100.0);
        }
        a.merge(&b);
        err.push(a.estimate());
    }
    println!(
        "merge of two half-streams (b=1.0625): NRMSE {} bias {}",
        f(err.nrmse()),
        f(err.relative_bias())
    );
}
