//! Figure 2 reproduction: NRMSE and MRE of the five neighborhood-size
//! estimators as a function of cardinality.
//!
//! Panels (paper defaults): k=5 (1000 runs, n ≤ 10⁴), k=10 (500 runs,
//! n ≤ 10⁴), k=50 (250 runs, n ≤ 5·10⁴). Series: k-mins / k-partition /
//! bottom-k basic estimators, bottom-k HIP, permutation; reference lines
//! `1/sqrt(k−2)` (basic CV), `1/sqrt(2(k−1))` (HIP CV),
//! `sqrt(2/(π(k−2)))` (basic MRE), `sqrt(1/(π(k−1)))` (HIP MRE).
//!
//! ```text
//! cargo run --release -p adsketch-bench --bin fig2 [--runs-scale 100]
//! ```
//!
//! `--runs-scale P` scales the paper's run counts to P percent (default
//! 100).

use adsketch_bench::table::f;
use adsketch_bench::{arg_u64, checkpoints, Table};
use adsketch_core::sim::StreamSim;
use adsketch_util::stats::{cv_basic, cv_hip, mre_basic_approx, mre_hip_approx, ErrorStats};

struct Panel {
    k: usize,
    runs: u64,
    n_max: u64,
}

fn main() {
    let scale = arg_u64("runs-scale", 100).max(1);
    let panels = [
        Panel {
            k: 5,
            runs: 1000,
            n_max: 10_000,
        },
        Panel {
            k: 10,
            runs: 500,
            n_max: 10_000,
        },
        Panel {
            k: 50,
            runs: 250,
            n_max: 50_000,
        },
    ];
    for p in panels {
        let runs = (p.runs * scale / 100).max(2);
        run_panel(p.k, runs, p.n_max);
    }
}

fn run_panel(k: usize, runs: u64, n_max: u64) {
    let marks = checkpoints(n_max);
    // err[estimator][checkpoint]
    const NAMES: [&str; 5] = ["kmins", "kpart", "botk", "botkHIP", "perm"];
    let mut errs: Vec<Vec<ErrorStats>> = (0..NAMES.len())
        .map(|_| marks.iter().map(|&m| ErrorStats::new(m as f64)).collect())
        .collect();
    let t0 = std::time::Instant::now();
    for run in 0..runs {
        let mut sim = StreamSim::new(k, run.wrapping_mul(0x9E37_79B9) + 1, Some(n_max));
        let mut next = 0usize;
        for step in 1..=n_max {
            sim.step();
            if next < marks.len() && marks[next] == step {
                errs[0][next].push(sim.kmins_basic());
                errs[1][next].push(sim.kpartition_basic());
                errs[2][next].push(sim.bottomk_basic());
                errs[3][next].push(sim.bottomk_hip());
                errs[4][next].push(sim.permutation().expect("perm enabled"));
                next += 1;
            }
        }
    }
    println!(
        "\n=== Figure 2 panel: k={k}, {runs} runs, max n = {n_max}  ({:.1?}) ===",
        t0.elapsed()
    );
    println!(
        "reference: basic CV = {:.4}, HIP CV = {:.4}, basic MRE ≈ {:.4}, HIP MRE ≈ {:.4}",
        cv_basic(k),
        cv_hip(k),
        mre_basic_approx(k),
        mre_hip_approx(k)
    );
    for (metric, get) in [
        ("NRMSE", ErrorStats::nrmse as fn(&ErrorStats) -> f64),
        ("MRE", ErrorStats::mre as fn(&ErrorStats) -> f64),
    ] {
        let mut t = Table::new(vec!["size", "kmins", "kpart", "botk", "botkHIP", "perm"]);
        for (ci, &m) in marks.iter().enumerate() {
            // Thin out rows: keep 1,2,5 per decade plus the endpoint.
            let lead = m / 10u64.pow((m as f64).log10().floor() as u32);
            if !(lead == 1 || lead == 2 || lead == 5) && m != n_max {
                continue;
            }
            t.row(vec![
                m.to_string(),
                f(get(&errs[0][ci])),
                f(get(&errs[1][ci])),
                f(get(&errs[2][ci])),
                f(get(&errs[3][ci])),
                f(get(&errs[4][ci])),
            ]);
        }
        println!("\n{metric} (k={k}):\n{}", t.render());
    }
}
