//! DISTINCT experiment (paper, Section 6): HIP distinct counters across
//! sketch flavors, and the register-budget claim — HLL needs ≈ 0.56k more
//! registers than HIP-on-HLL for the same squared error
//! ((1.04/0.866)² ≈ 1.44…1.56 depending on the HLL constant).
//!
//! ```text
//! cargo run --release -p adsketch-bench --bin tbl_distinct [--runs 400] [--n 100000]
//! ```

use adsketch_bench::table::f;
use adsketch_bench::{arg_u64, Table};
use adsketch_stream::counter::{
    DistinctCounter, HipBottomKCounter, HipKMinsCounter, HipKPartitionCounter,
};
use adsketch_stream::HipHll;
use adsketch_util::stats::{cv_hip, ErrorStats};
use adsketch_util::RankHasher;

fn main() {
    let runs = arg_u64("runs", 400);
    let n = arg_u64("n", 100_000);

    // Flavor comparison at fixed k.
    let k = 32usize;
    let mut t = Table::new(vec!["counter", "NRMSE", "bias", "reference"]);
    let mut err_bot = ErrorStats::new(n as f64);
    let mut err_km = ErrorStats::new(n as f64);
    let mut err_kp = ErrorStats::new(n as f64);
    let mut err_hip_hll = ErrorStats::new(n as f64);
    let mut err_hll = ErrorStats::new(n as f64);
    for seed in 0..runs {
        let mut b = HipBottomKCounter::new(k, seed);
        let mut m = HipKMinsCounter::new(k, seed);
        let mut p = HipKPartitionCounter::new(k, seed);
        let h = RankHasher::new(seed);
        let mut hh = HipHll::new(k);
        for e in 0..n {
            b.insert(e);
            m.insert(e);
            p.insert(e);
            hh.insert(&h, e);
        }
        err_bot.push(b.estimate());
        err_km.push(m.estimate());
        err_kp.push(p.estimate());
        err_hip_hll.push(hh.estimate());
        err_hll.push(hh.sketch().estimate());
    }
    for (name, e, reference) in [
        ("HIP bottom-k (full ranks)", &err_bot, cv_hip(k)),
        ("HIP k-mins (full ranks)", &err_km, cv_hip(k)),
        ("HIP k-partition (full ranks)", &err_kp, cv_hip(k)),
        (
            "HIP on HLL sketch (base 2)",
            &err_hip_hll,
            (3.0 / (4.0 * (k as f64 - 1.0))).sqrt(),
        ),
        (
            "HyperLogLog (corrected)",
            &err_hll,
            1.04 / (k as f64).sqrt(),
        ),
    ] {
        t.row(vec![
            name.to_string(),
            f(e.nrmse()),
            f(e.relative_bias()),
            f(reference),
        ]);
    }
    println!(
        "=== distinct counters, k={k}, n={n}, {runs} runs ===\n{}",
        t.render()
    );

    // Register-budget claim: find the HLL k matching HIP's error at k=32.
    println!("register-budget comparison (squared-error ratio HLL/HIP at equal k):");
    let mut t2 = Table::new(vec!["k", "HLL NRMSE", "HIP NRMSE", "(HLL/HIP)^2"]);
    for &k in &[16usize, 32, 64] {
        let mut ehll = ErrorStats::new(n as f64);
        let mut ehip = ErrorStats::new(n as f64);
        for seed in 0..runs {
            let h = RankHasher::new(seed + 1_000_000);
            let mut c = HipHll::new(k);
            for e in 0..n {
                c.insert(&h, e);
            }
            ehll.push(c.sketch().estimate());
            ehip.push(c.estimate());
        }
        t2.row(vec![
            k.to_string(),
            f(ehll.nrmse()),
            f(ehip.nrmse()),
            f((ehll.nrmse() / ehip.nrmse()).powi(2)),
        ]);
    }
    println!("{}", t2.render());
    println!("paper: HLL needs ≈ 1.56× the registers of HIP for equal squared error.");
}
