//! PARALLEL experiment: what the wave-parallel PrunedDijkstra, its
//! unweighted BFS fast path and the relax-time frontier pruning buy over
//! the original sequential heap-based builder (paper, Appendix B.4
//! motivates pipelining the rank-ordered searches; this measures the
//! batched-wave realization). The `pruned_seq` row is the
//! pop-time-pruning-only PR-2 fast path and `pruned_relax_seq` the same
//! core with the push-time threshold filter, so the committed snapshot
//! records the before/after of relax-time pruning on both graph families.
//!
//! Every configuration is asserted bitwise identical to the sequential
//! builder before its row is reported. With `--json PATH` the measurements
//! are also written as a machine-readable snapshot (see
//! `tools/bench_snapshot.sh`, which maintains `BENCH_build.json`).
//!
//! ```text
//! cargo run --release -p adsketch-bench --bin tbl_parallel \
//!     [--n 100000] [--k 16] [--json BENCH_build.json] [--smoke]
//! ```
//!
//! `--smoke` shrinks the graphs to CI size (compile + one iteration per
//! configuration, no timing gates).

use std::time::Instant;

use adsketch_bench::table::f;
use adsketch_bench::{arg_flag, arg_str, arg_u64, Table};
use adsketch_core::builder::pruned_dijkstra;
use adsketch_core::{uniform_ranks, AdsSet, CoreError};
use adsketch_graph::{generators, Graph};

/// One measured build configuration.
struct Record {
    family: &'static str,
    weighted: bool,
    host_threads: usize,
    n: usize,
    m: usize,
    k: usize,
    algorithm: String,
    threads: usize,
    ns_per_op: u128,
    relaxations: u64,
    heap_pushes: u64,
    pruned_at_relax: u64,
    speedup_vs_baseline: f64,
}

fn main() {
    let smoke = arg_flag("smoke");
    let n = if smoke {
        2_000
    } else {
        arg_u64("n", 100_000) as usize
    };
    let k = arg_u64("k", 16) as usize;
    let json = arg_str("json", "");

    let mut records = Vec::new();
    // The headline family: unweighted scale-free, the regime the paper
    // targets (social/web graphs) and the acceptance gate for the BFS
    // fast path.
    run_case(
        "barabasi_albert_m4",
        &generators::barabasi_albert(n, 4, 7),
        k,
        &mut records,
    );
    // Weighted control: same machinery, heap path, smaller n (the brute
    // baseline is O(n) allocations per source).
    let nw = (n / 5).max(500);
    run_case(
        "random_weighted_digraph_deg4",
        &generators::random_weighted_digraph(nw, 4, 0.5, 2.5, 11),
        k,
        &mut records,
    );

    if !json.is_empty() {
        std::fs::write(&json, render_json(&records)).expect("write json snapshot");
        eprintln!("snapshot written to {json}");
    }
}

fn run_case(family: &'static str, g: &Graph, k: usize, records: &mut Vec<Record>) {
    let n = g.num_nodes();
    let m = g.num_arcs();
    let ranks = uniform_ranks(n, 13);
    println!(
        "\n=== {family}: n={n}, arcs={m}, k={k}, unit_weight={} ===",
        g.is_unit_weight()
    );
    let mut t = Table::new(vec![
        "algorithm",
        "threads",
        "time",
        "speedup",
        "relaxations",
        "pushes",
        "pruned@relax",
        "identical",
    ]);

    // PR-1 baseline: sequential binary-heap Dijkstra, per-source allocs
    // (its frontier is not instrumented: pushes report 0).
    let t0 = Instant::now();
    let (base_set, base_stats) = pruned_dijkstra::build_baseline_with_stats(g, k, &ranks).unwrap();
    let base_ns = t0.elapsed().as_nanos();
    push(
        records,
        &mut t,
        family,
        g,
        k,
        "baseline_heap_seq",
        1,
        base_ns,
        &base_stats,
        base_ns,
        true,
    );

    // The perf trajectory: PR-2's pop-time-pruning-only sequential fast
    // path (arena + BFS when unit-weight), the PR-4 relax-time-pruned
    // sequential core, and the wave-parallel builds (relax-pruned against
    // frozen thresholds).
    let timed: Vec<(String, usize, Box<Builder>)> = vec![
        (
            "pruned_seq".into(),
            1,
            Box::new(|g, k, ranks, _| pruned_dijkstra::build_pop_prune_with_stats(g, k, ranks)),
        ),
        (
            "pruned_relax_seq".into(),
            1,
            Box::new(|g, k, ranks, _| pruned_dijkstra::build_with_stats(g, k, ranks)),
        ),
        ("parallel".into(), 1, Box::new(par)),
        ("parallel".into(), 2, Box::new(par)),
        ("parallel".into(), 4, Box::new(par)),
        ("parallel".into(), 0, Box::new(par)),
    ];
    for (name, threads, build) in timed {
        let t0 = Instant::now();
        let (set, stats) = build(g, k, &ranks, threads).unwrap();
        let ns = t0.elapsed().as_nanos();
        let identical = set == base_set;
        assert!(identical, "{family}/{name}/{threads}: output diverged");
        assert!(
            stats.relaxations <= base_stats.relaxations || name == "parallel",
            "{family}/{name}: sequential relax pruning may never settle more \
             nodes than the baseline ({} vs {})",
            stats.relaxations,
            base_stats.relaxations
        );
        push(
            records, &mut t, family, g, k, &name, threads, ns, &stats, base_ns, identical,
        );
    }
    println!("{}", t.render());
}

type Builder = dyn Fn(
    &Graph,
    usize,
    &[f64],
    usize,
) -> Result<(AdsSet, adsketch_core::builder::BuildStats), CoreError>;

fn par(
    g: &Graph,
    k: usize,
    ranks: &[f64],
    threads: usize,
) -> Result<(AdsSet, adsketch_core::builder::BuildStats), CoreError> {
    pruned_dijkstra::build_parallel_with_stats(g, k, ranks, threads)
}

#[allow(clippy::too_many_arguments)]
fn push(
    records: &mut Vec<Record>,
    t: &mut Table,
    family: &'static str,
    g: &Graph,
    k: usize,
    algorithm: &str,
    threads: usize,
    ns: u128,
    stats: &adsketch_core::builder::BuildStats,
    base_ns: u128,
    identical: bool,
) {
    let speedup = base_ns as f64 / ns as f64;
    t.row(vec![
        algorithm.to_string(),
        threads.to_string(),
        format!("{:.2?}", std::time::Duration::from_nanos(ns as u64)),
        format!("{}x", f(speedup)),
        stats.relaxations.to_string(),
        stats.heap_pushes.to_string(),
        stats.pruned_at_relax.to_string(),
        if identical { "yes" } else { "NO" }.to_string(),
    ]);
    records.push(Record {
        family,
        weighted: g.is_weighted(),
        host_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        n: g.num_nodes(),
        m: g.num_arcs(),
        k,
        algorithm: algorithm.to_string(),
        threads,
        ns_per_op: ns,
        relaxations: stats.relaxations,
        heap_pushes: stats.heap_pushes,
        pruned_at_relax: stats.pruned_at_relax,
        speedup_vs_baseline: speedup,
    });
}

fn render_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "  {{\"family\": \"{}\", \"weighted\": {}, \"host_threads\": {}, ",
                "\"n\": {}, \"m\": {}, ",
                "\"k\": {}, \"algorithm\": \"{}\", \"threads\": {}, ",
                "\"ns_per_op\": {}, \"relaxations\": {}, ",
                "\"heap_pushes\": {}, \"pruned_at_relax\": {}, ",
                "\"speedup_vs_baseline\": {:.4}}}{}\n"
            ),
            r.family,
            r.weighted,
            r.host_threads,
            r.n,
            r.m,
            r.k,
            r.algorithm,
            r.threads,
            r.ns_per_op,
            r.relaxations,
            r.heap_pushes,
            r.pruned_at_relax,
            r.speedup_vs_baseline,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}
