//! Figure 3 reproduction: approximate distinct counting — HyperLogLog
//! (raw and bias-corrected) vs HIP on the *same* k-partition base-2 5-bit
//! sketch.
//!
//! Panels (paper defaults): k=16 (5000 runs), k=32 (5000 runs), k=64
//! (2000 runs), cardinalities up to 10⁶; reference curve for HIP:
//! `sqrt((b+1)/(4(k−1)))` with b = 2.
//!
//! ```text
//! cargo run --release -p adsketch-bench --bin fig3 \
//!     [--runs-scale 100] [--nmax 1000000]
//! ```

use adsketch_bench::table::f;
use adsketch_bench::{arg_u64, checkpoints, Table};
use adsketch_stream::HipHll;
use adsketch_util::stats::ErrorStats;
use adsketch_util::RankHasher;

fn main() {
    let scale = arg_u64("runs-scale", 100).max(1);
    let n_max = arg_u64("nmax", 1_000_000);
    for (k, paper_runs) in [(16usize, 5000u64), (32, 5000), (64, 2000)] {
        let runs = (paper_runs * scale / 100).max(2);
        run_panel(k, runs, n_max);
    }
}

fn run_panel(k: usize, runs: u64, n_max: u64) {
    let marks = checkpoints(n_max);
    let mut raw_err: Vec<ErrorStats> = marks.iter().map(|&m| ErrorStats::new(m as f64)).collect();
    let mut hll_err = raw_err.clone();
    let mut hip_err = raw_err.clone();
    let t0 = std::time::Instant::now();
    for run in 0..runs {
        let hasher = RankHasher::new(run.wrapping_mul(0xC2B2_AE35) + 17);
        let mut counter = HipHll::new(k);
        let mut next = 0usize;
        for e in 1..=n_max {
            counter.insert(&hasher, e);
            if next < marks.len() && marks[next] == e {
                raw_err[next].push(counter.sketch().raw_estimate());
                hll_err[next].push(counter.sketch().estimate());
                hip_err[next].push(counter.estimate());
                next += 1;
            }
        }
    }
    let analysis = (3.0 / (4.0 * (k as f64 - 1.0))).sqrt(); // sqrt((b+1)/(4(k−1))), b=2
    println!(
        "\n=== Figure 3 panel: k={k}, {runs} runs, max n = {n_max}  ({:.1?}) ===",
        t0.elapsed()
    );
    println!(
        "HIP base-2 CV analysis: {analysis:.4}  (HLL theory ≈ {:.4})",
        1.04 / (k as f64).sqrt()
    );
    for (metric, get) in [
        ("NRMSE", ErrorStats::nrmse as fn(&ErrorStats) -> f64),
        ("MRE", ErrorStats::mre as fn(&ErrorStats) -> f64),
    ] {
        let mut t = Table::new(vec!["cardinality", "HLLraw", "HLL", "HIP"]);
        for (ci, &m) in marks.iter().enumerate() {
            let lead = m / 10u64.pow((m as f64).log10().floor() as u32);
            if !(lead == 1 || lead == 2 || lead == 5) && m != n_max {
                continue;
            }
            t.row(vec![
                m.to_string(),
                f(get(&raw_err[ci])),
                f(get(&hll_err[ci])),
                f(get(&hip_err[ci])),
            ]);
        }
        println!("\n{metric} (k={k}):\n{}", t.render());
    }
}
