//! Shared helpers for the adsketch experiment binaries.
//!
//! The real content of this crate is its binaries (`fig2`, `fig3`,
//! `tbl_*`) and criterion benches; see `DESIGN.md` §6 for the experiment
//! index and `EXPERIMENTS.md` for paper-vs-measured results.

pub mod table;

pub use table::Table;

/// Parses `--name value` from the process arguments, with a default.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == flag {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
            eprintln!("warning: could not parse value for {flag}; using {default}");
        }
    }
    default
}

/// Parses `--name value` as a string from the process arguments, with a
/// default.
pub fn arg_str(name: &str, default: &str) -> String {
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == flag {
            if let Some(v) = args.get(i + 1) {
                return v.clone();
            }
            eprintln!("warning: missing value for {flag}; using {default}");
        }
    }
    default.to_string()
}

/// True iff the bare flag `--name` is present in the process arguments.
pub fn arg_flag(name: &str) -> bool {
    let flag = format!("--{name}");
    std::env::args().any(|a| a == flag)
}

/// Geometric checkpoint grid `{1..9} × 10^j` up to and including `max` —
/// the sampling grid for all error-vs-cardinality experiments (log-x
/// plots in the paper).
pub fn checkpoints(max: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut decade = 1u64;
    loop {
        for m in 1..=9u64 {
            let c = m * decade;
            if c > max {
                if out.last() != Some(&max) {
                    out.push(max);
                }
                return out;
            }
            out.push(c);
        }
        decade *= 10;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_grid() {
        assert_eq!(checkpoints(25), vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 25]);
        assert_eq!(checkpoints(3), vec![1, 2, 3]);
        assert_eq!(*checkpoints(1_000_000).last().unwrap(), 1_000_000);
    }
}
