//! Shared helpers for the adsketch experiment binaries.
//!
//! The real content of this crate is its binaries (`fig2`, `fig3`,
//! `tbl_*`) and criterion benches; see `DESIGN.md` §6 for the experiment
//! index and `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]

pub mod table;

pub use table::Table;

// The `--name value` argument parser lives in `adsketch_util::args` so
// binaries outside this crate (e.g. `adsketch-serve`'s `loadgen`) share
// it; re-exported here because every `fig*`/`tbl_*` bin imports it from
// the bench crate.
pub use adsketch_util::args::{arg_flag, arg_str, arg_u64};

/// Geometric checkpoint grid `{1..9} × 10^j` up to and including `max` —
/// the sampling grid for all error-vs-cardinality experiments (log-x
/// plots in the paper).
pub fn checkpoints(max: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut decade = 1u64;
    loop {
        for m in 1..=9u64 {
            let c = m * decade;
            if c > max {
                if out.last() != Some(&max) {
                    out.push(max);
                }
                return out;
            }
            out.push(c);
        }
        decade *= 10;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_grid() {
        assert_eq!(checkpoints(25), vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 25]);
        assert_eq!(checkpoints(3), vec![1, 2, 3]);
        assert_eq!(*checkpoints(1_000_000).last().unwrap(), 1_000_000);
    }
}
