//! Minimal aligned-text table writer for experiment outputs.

use std::fmt::Write as _;

/// An aligned plain-text table (also exportable as CSV).
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>w$}", c, w = width[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 4 significant decimals (experiment convention).
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["n", "value"]);
        t.row(vec!["1", "0.5"]);
        t.row(vec!["1000", "0.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("value"));
        assert!(lines[3].starts_with("1000"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1"]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y", "q\"z"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"z\""));
    }

    #[test]
    fn float_format() {
        assert_eq!(f(0.123456), "0.1235");
    }
}
