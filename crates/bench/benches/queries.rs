//! Criterion: query-time cost of HIP vs basic estimators on a built ADS
//! set (queries are sketch-local: O(k log n) work, no graph access), and
//! batch throughput of the frozen columnar store vs the heap
//! representation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use adsketch_core::{basic, centrality, AdsSet, QueryEngine};
use adsketch_graph::{generators, NodeId};

fn bench_queries(c: &mut Criterion) {
    let n = 5_000;
    let g = generators::barabasi_albert(n, 4, 11);
    let ads = AdsSet::build(&g, 16, 5);
    let sketch = ads.sketch(0);
    let hip = ads.hip(0);

    let mut group = c.benchmark_group("queries");
    group.bench_function("hip_weights_derive", |b| {
        b.iter(|| black_box(sketch.hip_weights()))
    });
    group.bench_function("hip_cardinality_at", |b| {
        b.iter(|| black_box(hip.cardinality_at(black_box(3.0))))
    });
    group.bench_function("basic_cardinality_at", |b| {
        b.iter(|| black_box(basic::cardinality_at(sketch, black_box(3.0))))
    });
    group.bench_function("harmonic_centrality", |b| {
        b.iter(|| black_box(centrality::harmonic(&hip)))
    });
    group.bench_function("qg_filtered", |b| {
        b.iter(|| {
            black_box(hip.centrality(|d| if d <= 2.0 { 1.0 } else { 0.0 }, |v| (v % 2) as f64))
        })
    });
    group.bench_function("size_estimator", |b| {
        b.iter(|| black_box(adsketch_core::size_est::cardinality_at(sketch, 3.0)))
    });
    group.finish();

    // Batch throughput: the whole-graph closeness sweep, heap per-node
    // vs the frozen store through the batch engine (the BENCH_query
    // workload at criterion scale).
    let frozen = ads.freeze();
    let mut batch = c.benchmark_group("batch_queries");
    batch.bench_function("heap_per_node_hip_harmonic_all", |b| {
        b.iter(|| {
            let out: Vec<f64> = (0..n as NodeId)
                .map(|v| centrality::harmonic(&ads.hip(v)))
                .collect();
            black_box(out)
        })
    });
    batch.bench_function("heap_engine_harmonic_all", |b| {
        b.iter(|| black_box(QueryEngine::with_threads(&ads, 1).harmonic_all()))
    });
    batch.bench_function("frozen_engine_harmonic_all", |b| {
        b.iter(|| black_box(QueryEngine::with_threads(&frozen, 1).harmonic_all()))
    });
    batch.bench_function("frozen_engine_harmonic_all_allcores", |b| {
        b.iter(|| black_box(QueryEngine::new(&frozen).harmonic_all()))
    });
    let queries: Vec<(NodeId, f64)> = (0..n as NodeId).map(|v| (v, 3.0)).collect();
    batch.bench_function("frozen_engine_cardinality_batch", |b| {
        b.iter(|| black_box(QueryEngine::with_threads(&frozen, 1).cardinality_batch(&queries)))
    });
    batch.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
