//! Criterion: graph substrate operations (traversal, transpose,
//! generation) — the floor under ADS construction cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use adsketch_graph::{bfs, dijkstra, generators};

fn bench_graph(c: &mut Criterion) {
    let n = 20_000;
    let g = generators::barabasi_albert(n, 5, 3);
    let gw = generators::random_weighted_digraph(n, 5, 0.5, 2.5, 4);

    let mut group = c.benchmark_group("graph_ops");
    group.sample_size(20);
    group.bench_function("bfs_20k", |b| {
        b.iter(|| black_box(bfs::bfs_distances(&g, black_box(0))))
    });
    group.bench_function("dijkstra_20k", |b| {
        b.iter(|| black_box(dijkstra::dijkstra_distances(&gw, black_box(0))))
    });
    group.bench_function("transpose_20k", |b| b.iter(|| black_box(g.transpose())));
    group.bench_function("generate_ba_20k", |b| {
        b.iter(|| black_box(generators::barabasi_albert_edges(n, 5, 3)))
    });
    group.bench_function("generate_gnp_20k", |b| {
        b.iter(|| black_box(generators::gnp_edges(n, 5e-4, 3)))
    });
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
