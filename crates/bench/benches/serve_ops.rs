//! Criterion: per-operation costs of the serving tier, network excluded —
//! wire-protocol encode/decode, sharded-store routing overhead vs the
//! unsharded frozen store, and the full store→wire answer path.
//!
//! (End-to-end TCP throughput/latency including sockets lives in the
//! `loadgen` bin of `adsketch-serve`, which maintains `BENCH_serve.json`.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use adsketch_core::{freeze_sharded, AdsSet, QueryEngine};
use adsketch_graph::{generators, NodeId};
use adsketch_serve::proto::{write_frame, Request, Response};
use adsketch_serve::ShardedStore;

fn bench_serve_ops(c: &mut Criterion) {
    let n = 5_000usize;
    let g = generators::barabasi_albert(n, 4, 11);
    let ads = AdsSet::build(&g, 16, 5);
    let frozen = ads.freeze();
    let dir = std::env::temp_dir().join("adsketch_bench_serve_ops");
    let _ = std::fs::remove_dir_all(&dir);
    freeze_sharded(&ads, 4, &dir).expect("freeze_sharded");
    let store = ShardedStore::load(&dir).expect("load sharded store");

    let nodes: Vec<NodeId> = (0..256u32).map(|i| (i * 19) % n as NodeId).collect();
    let req = Request::Harmonic {
        nodes: nodes.clone(),
    };

    // Wire codec, no sockets.
    let mut codec = c.benchmark_group("serve_codec");
    codec.bench_function("request_encode_256", |b| b.iter(|| black_box(req.encode())));
    let body = req.encode();
    codec.bench_function("request_decode_256", |b| {
        b.iter(|| black_box(Request::decode(black_box(&body)).unwrap()))
    });
    let answers = QueryEngine::with_threads(&frozen, 1).harmonic_batch(&nodes);
    let resp = Response::Floats(answers);
    let resp_body = resp.encode();
    codec.bench_function("response_roundtrip_256", |b| {
        b.iter(|| {
            let mut framed = Vec::with_capacity(resp_body.len() + 4);
            write_frame(&mut framed, &resp_body).unwrap();
            black_box(Response::decode(&framed[4..]).unwrap())
        })
    });
    codec.finish();

    // Routing overhead: the identical batch against the unsharded store
    // and through the sharded store's per-node shard dispatch.
    let mut routing = c.benchmark_group("serve_routing");
    routing.bench_function("harmonic_batch_256_unsharded", |b| {
        let engine = QueryEngine::with_threads(&frozen, 1);
        b.iter(|| black_box(engine.harmonic_batch(black_box(&nodes))))
    });
    routing.bench_function("harmonic_batch_256_sharded4", |b| {
        let engine = store.engine(1);
        b.iter(|| black_box(engine.harmonic_batch(black_box(&nodes))))
    });
    routing.bench_function("answer_path_decode_eval_encode", |b| {
        // What one server worker does per frame: decode, evaluate over
        // the sharded store, encode.
        let engine = store.engine(1);
        b.iter(|| {
            let Request::Harmonic { nodes } = Request::decode(black_box(&body)).unwrap() else {
                unreachable!()
            };
            black_box(Response::Floats(engine.harmonic_batch(&nodes)).encode())
        })
    });
    routing.finish();

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_serve_ops);
criterion_main!(benches);
