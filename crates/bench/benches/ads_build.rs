//! Criterion: ADS construction cost per algorithm (paper, Section 3 —
//! both are O(km log n); constants differ).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use adsketch_core::builder::{dp, local_updates, pruned_dijkstra};
use adsketch_core::uniform_ranks;
use adsketch_graph::generators;

fn bench_builders(c: &mut Criterion) {
    let mut group = c.benchmark_group("ads_build");
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        let g = generators::barabasi_albert(n, 4, 7);
        let ranks = uniform_ranks(n, 3);
        let k = 16;
        group.bench_with_input(BenchmarkId::new("pruned_dijkstra", n), &n, |b, _| {
            b.iter(|| pruned_dijkstra::build(&g, k, &ranks).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dp", n), &n, |b, _| {
            b.iter(|| dp::build(&g, k, &ranks).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("local_updates", n), &n, |b, _| {
            b.iter(|| local_updates::build(&g, k, &ranks).unwrap())
        });
    }
    // Weighted graph: DP does not apply.
    let gw = generators::random_weighted_digraph(1_000, 6, 0.5, 2.5, 9);
    let ranks = uniform_ranks(1_000, 4);
    group.bench_function("pruned_dijkstra/weighted_1000", |b| {
        b.iter(|| pruned_dijkstra::build(&gw, 16, &ranks).unwrap())
    });
    group.bench_function("local_updates/weighted_1000", |b| {
        b.iter(|| local_updates::build(&gw, 16, &ranks).unwrap())
    });
    group.bench_function("local_updates/weighted_1000_eps0.2", |b| {
        b.iter(|| local_updates::build_approx_with_stats(&gw, 16, &ranks, 0.2).unwrap())
    });
    group.finish();
}

/// Unweighted-vs-weighted × thread-count matrix for the wave-parallel
/// PrunedDijkstra, with the retained PR-1 heap baseline as the yardstick
/// (full-size numbers live in `BENCH_build.json` via `tbl_parallel`).
fn bench_parallel_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("ads_build_parallel");
    group.sample_size(10);
    let n = 2_000usize;
    let k = 16;
    let cases = [
        ("unweighted", generators::barabasi_albert(n, 4, 7)),
        (
            "weighted",
            generators::random_weighted_digraph(n, 4, 0.5, 2.5, 9),
        ),
    ];
    let ranks = uniform_ranks(n, 3);
    for (regime, g) in &cases {
        group.bench_with_input(BenchmarkId::new("baseline_heap_seq", regime), g, |b, g| {
            b.iter(|| pruned_dijkstra::build_baseline_with_stats(g, k, &ranks).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pruned_seq", regime), g, |b, g| {
            b.iter(|| pruned_dijkstra::build(g, k, &ranks).unwrap())
        });
        // threads = 0 ⇒ all cores.
        for threads in [1usize, 2, 4, 0] {
            let id = BenchmarkId::new(format!("parallel_{regime}"), format!("t{threads}"));
            group.bench_with_input(id, g, |b, g| {
                b.iter(|| pruned_dijkstra::build_parallel(g, k, &ranks, threads).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(parallel_matrix, bench_parallel_matrix);

criterion_group!(benches, bench_builders);
criterion_main!(benches, parallel_matrix);
