//! Criterion: MinHash sketch primitives (insert, merge, estimate) across
//! the three flavors.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use adsketch_minhash::{BottomKSketch, KMinsSketch, KPartitionSketch};
use adsketch_util::RankHasher;

const STREAM: u64 = 50_000;

fn bench_minhash(c: &mut Criterion) {
    let h = RankHasher::new(9);
    let mut group = c.benchmark_group("minhash_ops");
    group.throughput(Throughput::Elements(STREAM));
    group.sample_size(20);
    group.bench_function("bottomk64_insert", |b| {
        b.iter(|| {
            let mut s = BottomKSketch::new(64);
            for e in 0..STREAM {
                s.insert(&h, black_box(e));
            }
            black_box(s.estimate())
        })
    });
    group.bench_function("kmins64_insert", |b| {
        b.iter(|| {
            let mut s = KMinsSketch::new(64);
            for e in 0..STREAM {
                s.insert(&h, black_box(e));
            }
            black_box(s.estimate())
        })
    });
    group.bench_function("kpartition64_insert", |b| {
        b.iter(|| {
            let mut s = KPartitionSketch::new(64);
            for e in 0..STREAM {
                s.insert(&h, black_box(e));
            }
            black_box(s.estimate())
        })
    });

    // Merges of two populated sketches.
    let mut a = BottomKSketch::new(64);
    let mut b2 = BottomKSketch::new(64);
    for e in 0..10_000u64 {
        a.insert(&h, e);
        b2.insert(&h, e + 5_000);
    }
    group.bench_function("bottomk64_merge", |b| {
        b.iter(|| {
            let mut m = a.clone();
            m.merge(&b2);
            black_box(m)
        })
    });
    group.bench_function("jaccard64", |b| {
        b.iter(|| black_box(adsketch_minhash::similarity::jaccard(&a, &b2)))
    });
    group.finish();
}

criterion_group!(benches, bench_minhash);
criterion_main!(benches);
