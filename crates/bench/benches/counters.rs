//! Criterion: streaming distinct-counter update throughput — the cost HIP
//! adds to a HyperLogLog pipeline (one predictable branch + occasionally a
//! float sum) and the other counter flavors.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use adsketch_stream::counter::{
    DistinctCounter, HipBottomKCounter, HipKMinsCounter, HipKPartitionCounter,
};
use adsketch_stream::{HipHll, HyperLogLog, MorrisCounter};
use adsketch_util::RankHasher;

const STREAM: u64 = 100_000;

fn bench_counters(c: &mut Criterion) {
    let hasher = RankHasher::new(3);
    let mut group = c.benchmark_group("counters");
    group.throughput(Throughput::Elements(STREAM));
    group.sample_size(20);
    group.bench_function("hll_insert", |b| {
        b.iter(|| {
            let mut s = HyperLogLog::new(64);
            for e in 0..STREAM {
                s.insert(&hasher, black_box(e));
            }
            black_box(s.estimate())
        })
    });
    group.bench_function("hip_hll_insert", |b| {
        b.iter(|| {
            let mut s = HipHll::new(64);
            for e in 0..STREAM {
                s.insert(&hasher, black_box(e));
            }
            black_box(s.estimate())
        })
    });
    group.bench_function("hip_bottomk_insert", |b| {
        b.iter(|| {
            let mut s = HipBottomKCounter::new(64, 3);
            for e in 0..STREAM {
                s.insert(black_box(e));
            }
            black_box(s.estimate())
        })
    });
    group.bench_function("hip_kmins_insert", |b| {
        b.iter(|| {
            let mut s = HipKMinsCounter::new(64, 3);
            for e in 0..STREAM {
                s.insert(black_box(e));
            }
            black_box(s.estimate())
        })
    });
    group.bench_function("hip_kpartition_insert", |b| {
        b.iter(|| {
            let mut s = HipKPartitionCounter::new(64, 3);
            for e in 0..STREAM {
                s.insert(black_box(e));
            }
            black_box(s.estimate())
        })
    });
    group.bench_function("morris_increment", |b| {
        b.iter(|| {
            let mut m = MorrisCounter::new(1.1, 5);
            for _ in 0..STREAM {
                m.increment();
            }
            black_box(m.estimate())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_counters);
criterion_main!(benches);
