//! HyperLogLog (Flajolet, Fusy, Gandouet, Meunier 2007) — the baseline the
//! paper's Figure 3 compares HIP against, implemented from the published
//! pseudocode: k 5-bit saturating registers over a k-partition base-2
//! sketch, the raw estimator `α_k k² (Σ 2^{−M[i]})^{−1}`, linear counting
//! in the small range, and the 32-bit-hash correction in the large range.

use adsketch_util::RankHasher;

/// Register saturation value for 5-bit registers ("MB=32" in the paper's
/// figure captions).
pub const REGISTER_MAX: u32 = 31;

/// A HyperLogLog sketch with `k` registers.
///
/// # Examples
///
/// ```
/// use adsketch_stream::HyperLogLog;
/// use adsketch_util::RankHasher;
///
/// let h = RankHasher::new(5);
/// let mut hll = HyperLogLog::new(64);
/// for e in 0..10_000u64 {
///     hll.insert(&h, e);
///     hll.insert(&h, e); // duplicates never matter
/// }
/// let est = hll.estimate();
/// assert!((est - 10_000.0).abs() / 10_000.0 < 0.5, "est = {est}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperLogLog {
    regs: Vec<u8>,
}

/// The bias-correction constant `α_k` from the HLL analysis.
pub fn alpha(k: usize) -> f64 {
    match k {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / k as f64),
    }
}

/// The base-2 level `min(REGISTER_MAX, ⌈−log2 r⌉)` of a unit rank — the
/// "position of the leftmost 1-bit" statistic HLL registers store.
#[inline]
pub fn level_of(rank: f64) -> u32 {
    debug_assert!((0.0..1.0).contains(&rank));
    if rank <= 0.0 {
        return REGISTER_MAX;
    }
    let l = (-rank.log2()).ceil();
    if l < 1.0 {
        1
    } else if l >= REGISTER_MAX as f64 {
        REGISTER_MAX
    } else {
        l as u32
    }
}

impl HyperLogLog {
    /// An empty sketch with `k ≥ 16` registers (the published constants
    /// assume k ≥ 16; smaller sketches would need re-derived α).
    pub fn new(k: usize) -> Self {
        assert!(k >= 16, "HyperLogLog needs k ≥ 16 registers, got {k}");
        Self { regs: vec![0; k] }
    }

    /// Number of registers.
    #[inline]
    pub fn k(&self) -> usize {
        self.regs.len()
    }

    /// The raw registers.
    #[inline]
    pub fn registers(&self) -> &[u8] {
        &self.regs
    }

    /// Observes an element; returns `true` if a register increased.
    pub fn insert(&mut self, hasher: &RankHasher, element: u64) -> bool {
        let b = hasher.bucket(element, self.k());
        let level = level_of(hasher.rank(element)) as u8;
        if level > self.regs[b] {
            self.regs[b] = level;
            true
        } else {
            false
        }
    }

    /// Register-wise max merge (sketch of the union).
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.k(), other.k(), "cannot merge different k");
        for (r, &o) in self.regs.iter_mut().zip(&other.regs) {
            *r = (*r).max(o);
        }
    }

    /// The raw estimator `α_k · k² / Σ_i 2^{−M[i]}` — no range
    /// corrections (the "HLLraw" series of the paper's Figure 3).
    pub fn raw_estimate(&self) -> f64 {
        let k = self.k() as f64;
        let denom: f64 = self.regs.iter().map(|&m| 2f64.powi(-(m as i32))).sum();
        alpha(self.k()) * k * k / denom
    }

    /// Number of zero registers (drives the small-range correction).
    pub fn zero_registers(&self) -> usize {
        self.regs.iter().filter(|&&r| r == 0).count()
    }

    /// The bias-corrected estimator from the 2007 paper: linear counting
    /// `k·ln(k/V)` when the raw estimate is below `(5/2)k` and zero
    /// registers remain; the 32-bit-space correction
    /// `−2³² ln(1 − E/2³²)` above `2³²/30`.
    pub fn estimate(&self) -> f64 {
        let k = self.k() as f64;
        let raw = self.raw_estimate();
        if raw <= 2.5 * k {
            let v = self.zero_registers();
            if v > 0 {
                return k * (k / v as f64).ln();
            }
        }
        const TWO32: f64 = 4_294_967_296.0;
        if raw > TWO32 / 30.0 {
            return -TWO32 * (1.0 - raw / TWO32).ln();
        }
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_util::stats::ErrorStats;

    #[test]
    #[should_panic(expected = "k ≥ 16")]
    fn small_k_rejected() {
        let _ = HyperLogLog::new(8);
    }

    #[test]
    fn alpha_constants() {
        assert_eq!(alpha(16), 0.673);
        assert_eq!(alpha(64), 0.709);
        assert!((alpha(1024) - 0.7213 / (1.0 + 1.079 / 1024.0)).abs() < 1e-12);
    }

    #[test]
    fn level_boundaries() {
        assert_eq!(level_of(0.5), 1);
        assert_eq!(level_of(0.49), 2);
        assert_eq!(level_of(0.999_999), 1);
        assert_eq!(level_of(1e-30), REGISTER_MAX); // saturates
        assert_eq!(level_of(0.0), REGISTER_MAX);
    }

    #[test]
    fn duplicates_never_update() {
        let h = RankHasher::new(2);
        let mut hll = HyperLogLog::new(16);
        for e in 0..100u64 {
            hll.insert(&h, e);
        }
        let snap = hll.clone();
        for e in 0..100u64 {
            assert!(!hll.insert(&h, e));
        }
        assert_eq!(hll, snap);
    }

    #[test]
    fn small_range_uses_linear_counting() {
        let h = RankHasher::new(3);
        let mut err = ErrorStats::new(20.0);
        for seed in 0..500u64 {
            let h = RankHasher::new(seed + h.seed());
            let mut hll = HyperLogLog::new(64);
            for e in 0..20u64 {
                hll.insert(&h, e);
            }
            err.push(hll.estimate());
        }
        // Linear counting is quite accurate at n << k.
        assert!(err.nrmse() < 0.2, "NRMSE {}", err.nrmse());
    }

    #[test]
    fn mid_range_nrmse_matches_analysis() {
        // HLL theory: NRMSE ≈ 1.04/sqrt(k) in the raw regime.
        let k = 64;
        let n = 50_000u64;
        let runs = 400;
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..runs {
            let h = RankHasher::new(seed);
            let mut hll = HyperLogLog::new(k);
            for e in 0..n {
                hll.insert(&h, e);
            }
            err.push(hll.estimate());
        }
        let theory = 1.04 / (k as f64).sqrt();
        assert!(
            (err.nrmse() - theory).abs() / theory < 0.35,
            "NRMSE {} vs theory {theory}",
            err.nrmse()
        );
    }

    #[test]
    fn merge_equals_union() {
        let h = RankHasher::new(9);
        let mut a = HyperLogLog::new(32);
        let mut b = HyperLogLog::new(32);
        let mut ab = HyperLogLog::new(32);
        for e in 0..500 {
            a.insert(&h, e);
            ab.insert(&h, e);
        }
        for e in 300..900 {
            b.insert(&h, e);
            ab.insert(&h, e);
        }
        a.merge(&b);
        assert_eq!(a, ab);
    }

    #[test]
    fn estimator_monotone_under_growth() {
        // More distinct elements never *decrease* the registers, and the
        // raw estimate is monotone in the registers.
        let h = RankHasher::new(21);
        let mut hll = HyperLogLog::new(32);
        let mut last_raw = 0.0;
        for e in 0..50_000u64 {
            hll.insert(&h, e);
            if e % 10_000 == 9_999 {
                let raw = hll.raw_estimate();
                assert!(
                    raw >= last_raw,
                    "raw estimate must grow: {raw} < {last_raw}"
                );
                last_raw = raw;
            }
        }
    }

    #[test]
    fn large_range_correction_formula() {
        // Force a sketch whose raw estimate exceeds 2^32/30 and check the
        // correction is applied (estimate < raw).
        let mut hll = HyperLogLog::new(16);
        hll.regs.iter_mut().for_each(|r| *r = 28);
        let raw = hll.raw_estimate();
        assert!(raw > 4_294_967_296.0 / 30.0);
        let corrected = hll.estimate();
        assert!(
            corrected > raw,
            "correction inflates (collision-adjusted) estimates: {corrected} vs {raw}"
        );
    }
}
