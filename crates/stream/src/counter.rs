//! HIP approximate distinct counters over all MinHash sketch flavors
//! (paper, Section 6).
//!
//! Each counter maintains its MinHash sketch plus an accumulator of HIP
//! adjusted weights: when the sketch is modified by an element, the
//! inverse of the modification probability (computed from the sketch state
//! just before) is added. Duplicates never modify a MinHash sketch, so the
//! accumulated value estimates the number of *distinct* elements,
//! unbiasedly.
//!
//! The accumulator itself is pluggable: [`ExactAccumulator`] keeps a plain
//! `f64`; [`MorrisAccumulator`] stores it in `O(log log n)` bits using the
//! Section-7 approximate counter (the composition the paper describes for
//! fully compact HIP counters).

use adsketch_minhash::{BottomKSketch, KMinsSketch, KPartitionSketch};
use adsketch_util::RankHasher;

use crate::morris::MorrisCounter;

/// A streaming distinct counter.
pub trait DistinctCounter {
    /// Observes one stream element.
    fn insert(&mut self, element: u64);
    /// Estimates the number of distinct elements observed.
    fn estimate(&self) -> f64;
}

/// Accumulates non-negative increments.
pub trait Accumulator {
    /// Adds `w ≥ 0`.
    fn add(&mut self, w: f64);
    /// The accumulated total (approximate for compact backends).
    fn value(&self) -> f64;
}

/// Exact `f64` accumulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExactAccumulator(f64);

impl Accumulator for ExactAccumulator {
    #[inline]
    fn add(&mut self, w: f64) {
        self.0 += w;
    }
    #[inline]
    fn value(&self) -> f64 {
        self.0
    }
}

/// Morris-counter accumulation: `O(log log n)` bits, CV ≈ `b − 1` on top
/// of the HIP error.
#[derive(Debug, Clone)]
pub struct MorrisAccumulator(pub MorrisCounter);

impl Accumulator for MorrisAccumulator {
    #[inline]
    fn add(&mut self, w: f64) {
        self.0.add(w);
    }
    #[inline]
    fn value(&self) -> f64 {
        self.0.estimate()
    }
}

/// HIP distinct counter over a bottom-k sketch.
///
/// Update probability before an insertion: the k-th smallest rank `τ_k`
/// (1 while below capacity) — exactly the bottom-k HIP probability of
/// Section 5.1 specialized to the stream order.
#[derive(Debug, Clone)]
pub struct HipBottomKCounter<A = ExactAccumulator> {
    hasher: RankHasher,
    sketch: BottomKSketch,
    acc: A,
}

impl HipBottomKCounter<ExactAccumulator> {
    /// A counter with an exact accumulator.
    pub fn new(k: usize, seed: u64) -> Self {
        Self::with_accumulator(k, seed, ExactAccumulator::default())
    }
}

impl<A: Accumulator> HipBottomKCounter<A> {
    /// A counter with a custom accumulator backend.
    pub fn with_accumulator(k: usize, seed: u64, acc: A) -> Self {
        Self {
            hasher: RankHasher::new(seed),
            sketch: BottomKSketch::new(k),
            acc,
        }
    }

    /// The underlying sketch (also usable for similarity estimation).
    pub fn sketch(&self) -> &BottomKSketch {
        &self.sketch
    }
}

impl<A: Accumulator> DistinctCounter for HipBottomKCounter<A> {
    fn insert(&mut self, element: u64) {
        let tau = self.sketch.threshold().unwrap_or(1.0);
        if self.sketch.insert(&self.hasher, element) {
            self.acc.add(1.0 / tau);
        }
    }

    fn estimate(&self) -> f64 {
        self.acc.value()
    }
}

/// HIP distinct counter over a k-mins sketch.
///
/// Update probability: `1 − Π_h (1 − m_h)` over the per-permutation
/// minima (equation (7) specialized to streams).
#[derive(Debug, Clone)]
pub struct HipKMinsCounter<A = ExactAccumulator> {
    hasher: RankHasher,
    sketch: KMinsSketch,
    acc: A,
}

impl HipKMinsCounter<ExactAccumulator> {
    /// A counter with an exact accumulator.
    pub fn new(k: usize, seed: u64) -> Self {
        Self::with_accumulator(k, seed, ExactAccumulator::default())
    }
}

impl<A: Accumulator> HipKMinsCounter<A> {
    /// A counter with a custom accumulator backend.
    pub fn with_accumulator(k: usize, seed: u64, acc: A) -> Self {
        Self {
            hasher: RankHasher::new(seed),
            sketch: KMinsSketch::new(k),
            acc,
        }
    }
}

impl<A: Accumulator> DistinctCounter for HipKMinsCounter<A> {
    fn insert(&mut self, element: u64) {
        let tau = 1.0 - self.sketch.mins().iter().map(|&m| 1.0 - m).product::<f64>();
        if self.sketch.insert(&self.hasher, element) {
            self.acc.add(1.0 / tau);
        }
    }

    fn estimate(&self) -> f64 {
        self.acc.value()
    }
}

/// HIP distinct counter over a full-precision k-partition sketch.
///
/// Update probability: `(1/k) Σ_h m_h` over the per-bucket minima
/// (equation (8)); the base-2 register version is [`crate::hip_hll`].
#[derive(Debug, Clone)]
pub struct HipKPartitionCounter<A = ExactAccumulator> {
    hasher: RankHasher,
    sketch: KPartitionSketch,
    acc: A,
}

impl HipKPartitionCounter<ExactAccumulator> {
    /// A counter with an exact accumulator.
    pub fn new(k: usize, seed: u64) -> Self {
        Self::with_accumulator(k, seed, ExactAccumulator::default())
    }
}

impl<A: Accumulator> HipKPartitionCounter<A> {
    /// A counter with a custom accumulator backend.
    pub fn with_accumulator(k: usize, seed: u64, acc: A) -> Self {
        Self {
            hasher: RankHasher::new(seed),
            sketch: KPartitionSketch::new(k),
            acc,
        }
    }
}

impl<A: Accumulator> DistinctCounter for HipKPartitionCounter<A> {
    fn insert(&mut self, element: u64) {
        let tau = self.sketch.mins().iter().sum::<f64>() / self.sketch.k() as f64;
        if self.sketch.insert(&self.hasher, element) {
            self.acc.add(1.0 / tau);
        }
    }

    fn estimate(&self) -> f64 {
        self.acc.value()
    }
}

impl DistinctCounter for crate::hip_hll::HipHll {
    fn insert(&mut self, element: u64) {
        // Trait uses get a fixed hasher; prefer the inherent method when a
        // specific hasher/seed is needed.
        let h = RankHasher::new(0xADC0_FFEE);
        crate::hip_hll::HipHll::insert(self, &h, element);
    }

    fn estimate(&self) -> f64 {
        crate::hip_hll::HipHll::estimate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_util::stats::{cv_hip, ErrorStats};

    fn run<C: DistinctCounter>(mut c: C, n: u64, dup_every: u64) -> f64 {
        for e in 0..n {
            c.insert(e);
            if dup_every > 0 && e % dup_every == 0 {
                c.insert(e / 2); // re-insert an old element
            }
        }
        c.estimate()
    }

    #[test]
    fn duplicates_ignored_by_all_flavors() {
        let n = 5000u64;
        for seed in 0..3u64 {
            let with_dups = run(HipBottomKCounter::new(32, seed), n, 3);
            let without = run(HipBottomKCounter::new(32, seed), n, 0);
            assert_eq!(with_dups, without, "bottom-k seed {seed}");
            let with_dups = run(HipKMinsCounter::new(32, seed), n, 3);
            let without = run(HipKMinsCounter::new(32, seed), n, 0);
            assert_eq!(with_dups, without, "k-mins seed {seed}");
            let with_dups = run(HipKPartitionCounter::new(32, seed), n, 3);
            let without = run(HipKPartitionCounter::new(32, seed), n, 0);
            assert_eq!(with_dups, without, "k-partition seed {seed}");
        }
    }

    #[test]
    fn bottomk_counter_unbiased_with_hip_cv() {
        let n = 10_000u64;
        let k = 16;
        let runs = 800;
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..runs {
            err.push(run(HipBottomKCounter::new(k, seed), n, 0));
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "bias z = {z}");
        let theory = cv_hip(k);
        assert!(
            (err.nrmse() - theory).abs() / theory < 0.25,
            "NRMSE {} vs {theory}",
            err.nrmse()
        );
    }

    #[test]
    fn kmins_counter_unbiased() {
        let n = 8_000u64;
        let runs = 700;
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..runs {
            err.push(run(HipKMinsCounter::new(16, seed + 3000), n, 0));
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "bias z = {z}");
    }

    #[test]
    fn kpartition_counter_unbiased() {
        let n = 8_000u64;
        let runs = 700;
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..runs {
            err.push(run(HipKPartitionCounter::new(16, seed + 6000), n, 0));
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "bias z = {z}");
    }

    #[test]
    fn morris_backed_counter_is_compact_and_close() {
        let n = 50_000u64;
        let k = 64;
        let runs = 300;
        let base = 1.0 + 1.0 / k as f64; // the paper's recommended base
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..runs {
            let acc = MorrisAccumulator(MorrisCounter::new(base, seed ^ 0xBEEF));
            let c = HipBottomKCounter::with_accumulator(k, seed, acc);
            err.push(run(c, n, 0));
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "bias z = {z}");
        // The Morris noise (CV ≈ b−1 = 1/k) is negligible next to HIP's
        // 1/sqrt(2k); total error stays near the HIP bound.
        assert!(
            err.nrmse() < cv_hip(k) * 1.4,
            "NRMSE {} vs bound {}",
            err.nrmse(),
            cv_hip(k)
        );
    }

    #[test]
    fn exact_for_first_k_distinct() {
        let mut c = HipBottomKCounter::new(8, 5);
        for e in 0..8u64 {
            c.insert(e);
            assert_eq!(c.estimate(), (e + 1) as f64);
        }
    }
}
