//! Streaming sketches: ADSs over streams, approximate distinct counting
//! with HIP, HyperLogLog, and Morris-style approximate counters
//! (paper, Sections 3.1, 6, and 7).
//!
//! The distinct-counting pipeline mirrors the paper's Section 6 exactly:
//! a MinHash sketch (any flavor, full-precision or base-b ranks) is
//! maintained over the stream; every time the sketch is *modified*, the
//! HIP adjusted weight of the triggering element — the inverse of the
//! sketch's update probability just before the modification — is added to
//! a running counter. The counter is the estimate. Compared on the very
//! sketch HyperLogLog uses (k-partition, base-2, 5-bit saturating
//! registers), HIP is unbiased, needs no bias-correction patches, and has
//! NRMSE ≈ `0.866/√k` versus HLL's ≈ `1.04/√k` (the paper's Figure 3).
//!
//! | module | contents |
//! |---|---|
//! | [`hll`] | HyperLogLog per Flajolet–Fusy–Gandouet–Meunier 2007 (raw + corrected estimators) |
//! | [`hip_hll`] | HIP on the HLL sketch (paper, Algorithm 3) |
//! | [`counter`] | HIP distinct counters for all three MinHash flavors, pluggable exact/Morris accumulators |
//! | [`morris`] | Morris approximate counters with weighted adds and merging (Section 7) |
//! | [`streaming_ads`] | ADS over streams: first-occurrence and recency variants (Section 3.1) |

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod counter;
pub mod hip_hll;
pub mod hll;
pub mod morris;
pub mod streaming_ads;

pub use counter::{DistinctCounter, HipBottomKCounter, HipKMinsCounter, HipKPartitionCounter};
pub use hip_hll::HipHll;
pub use hll::HyperLogLog;
pub use morris::MorrisCounter;
