//! HIP on the HyperLogLog sketch (paper, Section 6, Algorithm 3).
//!
//! The sketch is exactly HLL's (k-partition, base-2 levels, 5-bit
//! saturating registers); the estimator is different: each time a register
//! increases, the update's HIP probability — the chance a fresh element
//! would modify the sketch, `τ = (1/k) Σ_{M[i]<31} 2^{−M[i]}` — is known
//! from the registers alone, and the running counter `c` is increased by
//! the adjusted weight `1/τ`.
//!
//! Note on the paper's pseudocode: Algorithm 3 as printed adds
//! `(Σ 2^{−M[i]})^{−1}`, dropping the `1/k` bucket-choice factor from the
//! update probability; the unbiased weight is `k / Σ 2^{−M[i]}` (Ting 2014
//! derives the same martingale form). We implement the unbiased version
//! and verify `E[c] = n` empirically; with the printed form every estimate
//! would be low by a factor k.
//!
//! The estimate degrades gracefully under register saturation (saturated
//! registers simply stop contributing update probability) and is unbiased
//! until *all* registers saturate.

use adsketch_util::RankHasher;

use crate::hll::{level_of, HyperLogLog, REGISTER_MAX};

/// A HyperLogLog sketch augmented with the HIP running counter.
#[derive(Debug, Clone, PartialEq)]
pub struct HipHll {
    sketch: HyperLogLog,
    count: f64,
}

impl HipHll {
    /// An empty counter with `k ≥ 16` registers.
    pub fn new(k: usize) -> Self {
        Self {
            sketch: HyperLogLog::new(k),
            count: 0.0,
        }
    }

    /// Number of registers.
    #[inline]
    pub fn k(&self) -> usize {
        self.sketch.k()
    }

    /// The underlying HLL sketch (e.g. to compare both estimators on the
    /// same stream, as the paper's Figure 3 does).
    #[inline]
    pub fn sketch(&self) -> &HyperLogLog {
        &self.sketch
    }

    /// The sketch's current update probability
    /// `τ = (1/k) Σ_{M[i] < 31} 2^{−M[i]}`.
    pub fn update_probability(&self) -> f64 {
        let k = self.k() as f64;
        self.sketch
            .registers()
            .iter()
            .map(|&m| {
                if m as u32 >= REGISTER_MAX {
                    0.0
                } else {
                    2f64.powi(-(m as i32))
                }
            })
            .sum::<f64>()
            / k
    }

    /// Observes a stream element; duplicates never change anything.
    /// Returns `true` if the sketch (and the counter) were updated.
    pub fn insert(&mut self, hasher: &RankHasher, element: u64) -> bool {
        let b = hasher.bucket(element, self.k());
        let level = level_of(hasher.rank(element)) as u8;
        if level > self.sketch.registers()[b] {
            // Weight from the state *before* the register write.
            let tau = self.update_probability();
            debug_assert!(tau > 0.0, "an update implies a live register");
            self.count += 1.0 / tau;
            let updated = self.sketch.insert(hasher, element);
            debug_assert!(updated);
            true
        } else {
            false
        }
    }

    /// The HIP estimate of the number of distinct elements seen.
    pub fn estimate(&self) -> f64 {
        self.count
    }

    /// Whether every register is saturated (the estimate is frozen and
    /// biased beyond this point).
    pub fn saturated(&self) -> bool {
        self.sketch
            .registers()
            .iter()
            .all(|&r| r as u32 >= REGISTER_MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_util::stats::ErrorStats;

    #[test]
    fn exact_while_sketch_absorbs_everything() {
        // While all registers are zero every element updates, each with
        // weight 1 at first; small counts stay very accurate.
        let h = RankHasher::new(1);
        let mut c = HipHll::new(64);
        c.insert(&h, 0);
        assert_eq!(c.estimate(), 1.0);
    }

    #[test]
    fn duplicates_do_not_move_the_estimate() {
        let h = RankHasher::new(2);
        let mut c = HipHll::new(16);
        for e in 0..1000u64 {
            c.insert(&h, e);
        }
        let snap = c.estimate();
        for e in 0..1000u64 {
            assert!(!c.insert(&h, e));
        }
        assert_eq!(c.estimate(), snap);
    }

    #[test]
    fn unbiased_across_runs() {
        let n = 20_000u64;
        let k = 32;
        let runs = 600;
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..runs {
            let h = RankHasher::new(seed);
            let mut c = HipHll::new(k);
            for e in 0..n {
                c.insert(&h, e);
            }
            err.push(c.estimate());
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "HIP-HLL bias z = {z}");
    }

    #[test]
    fn nrmse_beats_hll() {
        // The Figure-3 headline: ≈ 0.866/√k for HIP vs ≈ 1.04/√k for HLL.
        let n = 30_000u64;
        let k = 32;
        let runs = 500;
        let mut hip_err = ErrorStats::new(n as f64);
        let mut hll_err = ErrorStats::new(n as f64);
        for seed in 0..runs {
            let h = RankHasher::new(seed + 10_000);
            let mut c = HipHll::new(k);
            for e in 0..n {
                c.insert(&h, e);
            }
            hip_err.push(c.estimate());
            hll_err.push(c.sketch().estimate());
        }
        assert!(
            hip_err.nrmse() < hll_err.nrmse(),
            "HIP {} must beat HLL {}",
            hip_err.nrmse(),
            hll_err.nrmse()
        );
        let theory = (3.0 / (4.0 * k as f64)).sqrt(); // 0.866/√k
        assert!(
            (hip_err.nrmse() - theory).abs() / theory < 0.3,
            "HIP NRMSE {} vs theory {theory}",
            hip_err.nrmse()
        );
    }

    #[test]
    fn update_probability_shrinks() {
        let h = RankHasher::new(5);
        let mut c = HipHll::new(16);
        assert_eq!(c.update_probability(), 1.0);
        for e in 0..5000u64 {
            c.insert(&h, e);
        }
        assert!(c.update_probability() < 0.05);
        assert!(!c.saturated());
    }
}
