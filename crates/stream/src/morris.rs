//! Morris/Flajolet approximate counters, extended to weighted increments
//! and merging via inverse-probability updates (paper, Section 7).
//!
//! The counter stores one small integer `x`; the estimate is
//! `n̂ = (b^x − 1)` for a base `b > 1` chosen to trade representation size
//! (`log_b` compresses the count to `O(log log n)` bits) against accuracy
//! (CV ≈ `b − 1` for the weighted-update regime used here).
//!
//! A weighted add of `Y > 0` proceeds as the paper describes: deterministic
//! part `i = ⌊log_b(1 + Y·b^{−x})⌋` (the largest exponent step whose
//! estimate increase `b^{x+i} − b^x` does not exceed `Y`; the printed
//! formula `⌊log_b(Y/b^{x+1})⌋` is a typo — it is not even ≥ 0 for unit
//! increments), then the leftover `Δ = Y − (b^{x+i} − b^x)` triggers one
//! extra increment with probability `Δ / (b^{x+i}(b−1))`, an inverse
//! probability estimate of `Δ`. Unbiasedness `E[b^X − 1] = Σ Y` holds by
//! induction over updates.

use adsketch_util::rng::{Rng64, SplitMix64};

/// A Morris approximate counter with weighted adds and merging.
///
/// # Examples
///
/// ```
/// use adsketch_stream::MorrisCounter;
///
/// let mut c = MorrisCounter::new(1.25, 42);
/// for _ in 0..1000 {
///     c.increment();
/// }
/// let est = c.estimate();
/// assert!((est - 1000.0).abs() / 1000.0 < 0.9, "est = {est}");
/// ```
#[derive(Debug, Clone)]
pub struct MorrisCounter {
    base: f64,
    x: u32,
    rng: SplitMix64,
}

impl MorrisCounter {
    /// A zero counter with the given base (`b > 1`) and RNG seed.
    ///
    /// For accumulating HIP adjusted weights (whose magnitude is ≈ 1/k of
    /// the running total), the paper recommends `b ≤ 1 + 1/k`; with
    /// `b = 1 + 2^{−j}` the counter adds j bits and achieves relative
    /// error ≈ `2^{−j}`.
    pub fn new(base: f64, seed: u64) -> Self {
        assert!(base > 1.0, "Morris base must exceed 1, got {base}");
        Self {
            base,
            x: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// The counter's base.
    #[inline]
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The stored exponent (the value that would be persisted;
    /// `O(log log n)` bits).
    #[inline]
    pub fn exponent(&self) -> u32 {
        self.x
    }

    /// The unbiased estimate `b^x − 1`.
    #[inline]
    pub fn estimate(&self) -> f64 {
        self.base.powi(self.x as i32) - 1.0
    }

    /// Adds 1 (the classic Morris update, via the weighted path).
    pub fn increment(&mut self) {
        self.add(1.0);
    }

    /// Adds an arbitrary positive amount.
    pub fn add(&mut self, y: f64) {
        assert!(y >= 0.0 && y.is_finite(), "increment must be ≥ 0, got {y}");
        if y == 0.0 {
            return;
        }
        let bx = self.base.powi(self.x as i32);
        // Deterministic part: largest i with b^(x+i) − b^x ≤ y.
        let mut i = (1.0 + y / bx).log(self.base).floor();
        if i < 0.0 {
            i = 0.0;
        }
        let mut i = i as u32;
        // Float-guard the boundary both ways.
        while self.base.powi((self.x + i) as i32) - bx > y {
            i -= 1;
        }
        while self.base.powi((self.x + i + 1) as i32) - bx <= y {
            i += 1;
        }
        let new_bx = self.base.powi((self.x + i) as i32);
        let delta = y - (new_bx - bx);
        self.x += i;
        // Probabilistic leftover: one more step adds b^x(b−1) to the
        // estimate; taking it with probability Δ/(b^x(b−1)) contributes Δ
        // in expectation.
        let p = delta / (new_bx * (self.base - 1.0));
        debug_assert!((0.0..=1.0 + 1e-9).contains(&p), "p = {p}");
        if self.rng.unit_f64() < p {
            self.x += 1;
        }
    }

    /// Merges another counter (same base): adds its estimate, which keeps
    /// the merged estimate unbiased for the sum of both streams.
    pub fn merge(&mut self, other: &MorrisCounter) {
        assert_eq!(self.base, other.base, "cannot merge different bases");
        self.add(other.estimate());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_util::stats::ErrorStats;

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn base_validated() {
        let _ = MorrisCounter::new(1.0, 1);
    }

    #[test]
    fn zero_add_is_noop() {
        let mut c = MorrisCounter::new(2.0, 1);
        c.add(0.0);
        assert_eq!(c.estimate(), 0.0);
    }

    #[test]
    fn large_add_is_mostly_deterministic() {
        let mut c = MorrisCounter::new(2.0, 3);
        c.add(1_000_000.0);
        let est = c.estimate();
        // One add of Y lands within a factor b of Y deterministically.
        assert!(
            (1_000_000.0 / 2.0..=2_000_001.0).contains(&est),
            "est = {est}"
        );
    }

    #[test]
    fn unit_increments_unbiased() {
        let n = 2000u64;
        let runs = 3000;
        for &base in &[2.0, 1.25] {
            let mut err = ErrorStats::new(n as f64);
            for seed in 0..runs {
                let mut c = MorrisCounter::new(base, seed);
                for _ in 0..n {
                    c.increment();
                }
                err.push(c.estimate());
            }
            let z = err.relative_bias() / err.bias_std_error();
            assert!(z.abs() < 4.0, "base {base}: bias z = {z}");
        }
    }

    #[test]
    fn weighted_adds_unbiased() {
        // Mixed magnitudes, including fractional weights.
        let weights = [0.25, 3.0, 10.5, 0.1, 7.7, 100.0];
        let truth: f64 = weights.iter().sum::<f64>() * 300.0;
        let mut err = ErrorStats::new(truth);
        for seed in 0..2000u64 {
            let mut c = MorrisCounter::new(1.1, seed);
            for _ in 0..300 {
                for &w in &weights {
                    c.add(w);
                }
            }
            err.push(c.estimate());
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "bias z = {z}");
    }

    #[test]
    fn smaller_base_means_smaller_error() {
        let n = 5000u64;
        let runs = 1500;
        let mut errs = Vec::new();
        for &base in &[2.0, 1.25, 1.0625] {
            let mut err = ErrorStats::new(n as f64);
            for seed in 0..runs {
                let mut c = MorrisCounter::new(base, seed * 7 + 1);
                for _ in 0..n {
                    c.increment();
                }
                err.push(c.estimate());
            }
            errs.push(err.nrmse());
        }
        assert!(
            errs[0] > errs[1] && errs[1] > errs[2],
            "NRMSE must fall with base: {errs:?}"
        );
    }

    #[test]
    fn merge_unbiased() {
        let truth = 3000.0;
        let mut err = ErrorStats::new(truth);
        for seed in 0..2000u64 {
            let mut a = MorrisCounter::new(1.2, seed);
            let mut b = MorrisCounter::new(1.2, seed + 50_000);
            for _ in 0..1000 {
                a.increment();
            }
            for _ in 0..2000 {
                b.increment();
            }
            a.merge(&b);
            err.push(a.estimate());
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "merge bias z = {z}");
    }

    #[test]
    #[should_panic(expected = "different bases")]
    fn merge_rejects_mixed_bases() {
        let mut a = MorrisCounter::new(1.2, 1);
        let b = MorrisCounter::new(1.3, 2);
        a.merge(&b);
    }

    #[test]
    fn exponent_stays_small() {
        // O(log log n) storage: counting to 10^6 with b=1.1 needs
        // x ≈ ln(10^6)/ln(1.1) ≈ 145 — fits easily in a byte-and-a-half.
        let mut c = MorrisCounter::new(1.1, 9);
        c.add(1_000_000.0);
        assert!(c.exponent() < 160, "x = {}", c.exponent());
    }
}
