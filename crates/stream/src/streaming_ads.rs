//! All-distances sketches over data streams (paper, Section 3.1).
//!
//! For a stream of timestamped occurrences `(element, t)` there are two
//! natural "distances":
//!
//! * **First occurrence** ([`FirstOccurrenceAds`]): the elapsed time from
//!   the stream start to an element's first appearance — earlier elements
//!   are emphasized. Entries arrive in *increasing* distance, so this is a
//!   plain threshold-maintenance sketch (exactly the sequence of MinHash
//!   modifications HIP counts in Section 6).
//! * **Recency** ([`RecencyAds`]): the elapsed time backwards from "now"
//!   to an element's most recent occurrence — recent elements are
//!   emphasized, which supports time-decaying statistics. Entries arrive
//!   in *decreasing* distance: the newest entry always enters and older
//!   entries must be re-validated.
//!
//! Both produce sketches whose entries are `(element, elapsed-time)` pairs
//! directly usable with the HIP machinery of `adsketch-core` (distance :=
//! elapsed time).

use adsketch_util::topk::KSmallest;
use adsketch_util::RankHasher;

/// A sketch entry: an element with its time coordinate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamEntry {
    /// The element.
    pub element: u64,
    /// Its time coordinate (see the module docs for which one).
    pub time: f64,
    /// Its rank.
    pub rank: f64,
    /// The HIP adjusted weight assigned when the entry was admitted
    /// (first-occurrence sketches only; 0 in recency sketches where
    /// weights are assigned at query time).
    pub weight: f64,
}

/// Bottom-k ADS over first-occurrence times.
#[derive(Debug, Clone)]
pub struct FirstOccurrenceAds {
    hasher: RankHasher,
    /// Current bottom-k state; element-deduplicating, so re-occurrences
    /// (even of previously retained elements) are no-ops.
    sketch: adsketch_minhash::BottomKSketch,
    entries: Vec<StreamEntry>,
}

impl FirstOccurrenceAds {
    /// An empty sketch.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 1);
        Self {
            hasher: RankHasher::new(seed),
            sketch: adsketch_minhash::BottomKSketch::new(k),
            entries: Vec::new(),
        }
    }

    /// Processes an occurrence of `element` at time `t` (times must be
    /// non-decreasing). Duplicates and under-threshold ranks are ignored.
    /// Returns `true` if the sketch gained an entry.
    pub fn observe(&mut self, element: u64, t: f64) -> bool {
        debug_assert!(
            self.entries.last().is_none_or(|e| e.time <= t),
            "stream times must be non-decreasing"
        );
        let tau = self.sketch.threshold().unwrap_or(1.0);
        if !self.sketch.insert(&self.hasher, element) {
            return false;
        }
        self.entries.push(StreamEntry {
            element,
            time: t,
            rank: self.hasher.rank(element),
            weight: 1.0 / tau,
        });
        true
    }

    /// All admitted entries in arrival (= increasing time) order. Entries
    /// remain in the ADS even after leaving the current bottom-k (they
    /// witness earlier prefixes, exactly like graph ADS entries).
    pub fn entries(&self) -> &[StreamEntry] {
        &self.entries
    }

    /// HIP estimate of the number of distinct elements seen up to time
    /// `t` (inclusive).
    pub fn distinct_until(&self, t: f64) -> f64 {
        self.entries
            .iter()
            .take_while(|e| e.time <= t)
            .map(|e| e.weight)
            .sum()
    }

    /// HIP estimate of the total number of distinct elements so far.
    pub fn distinct(&self) -> f64 {
        self.entries.iter().map(|e| e.weight).sum()
    }
}

/// Bottom-k ADS over recency (time since most recent occurrence).
///
/// Maintained exactly as the paper describes: each occurrence removes the
/// element's previous entry (if any), appends the new one (distance
/// `T − t` is minimal, so it always belongs), and prunes older entries
/// that no longer hold one of the k smallest ranks among strictly more
/// recent entries.
#[derive(Debug, Clone)]
pub struct RecencyAds {
    hasher: RankHasher,
    k: usize,
    /// Entries in decreasing recency (most recent first), i.e. increasing
    /// distance-from-now.
    entries: Vec<StreamEntry>,
}

impl RecencyAds {
    /// An empty sketch.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 1);
        Self {
            hasher: RankHasher::new(seed),
            k,
            entries: Vec::new(),
        }
    }

    /// Processes an occurrence of `element` at time `t` (non-decreasing).
    pub fn observe(&mut self, element: u64, t: f64) {
        debug_assert!(
            self.entries.first().is_none_or(|e| e.time <= t),
            "stream times must be non-decreasing"
        );
        // Remove the element's stale entry if present.
        if let Some(i) = self.entries.iter().position(|e| e.element == element) {
            self.entries.remove(i);
        }
        let r = self.hasher.rank(element);
        self.entries.insert(
            0,
            StreamEntry {
                element,
                time: t,
                rank: r,
                weight: 0.0,
            },
        );
        // Prune: scan from most recent outwards keeping entries whose rank
        // is among the k smallest seen so far.
        let mut ks = KSmallest::new(self.k);
        let mut write = 0;
        for read in 0..self.entries.len() {
            let e = self.entries[read];
            if ks.would_enter(e.rank, e.element) {
                ks.offer(e.rank, e.element);
                self.entries[write] = e;
                write += 1;
            }
        }
        self.entries.truncate(write);
    }

    /// Entries ordered from most to least recent.
    pub fn entries(&self) -> &[StreamEntry] {
        &self.entries
    }

    /// HIP estimate of the number of distinct elements whose most recent
    /// occurrence is at time ≥ `t_min`, evaluated at query time `now`:
    /// entries are scanned from most recent (smallest elapsed time)
    /// outward with the usual bottom-k HIP thresholds.
    pub fn distinct_since(&self, t_min: f64) -> f64 {
        self.decayed_count(|t| if t >= t_min { 1.0 } else { 0.0 })
    }

    /// HIP estimate of a general time-decaying statistic
    /// `Σ_{distinct e} α(t_e)` where `t_e` is the element's most recent
    /// occurrence time and `α ≥ 0` is non-decreasing in `t` (i.e.
    /// non-increasing in elapsed time — the time-decay kernels of
    /// Cohen–Strauss aggregates). One sketch answers every kernel.
    pub fn decayed_count<A>(&self, mut alpha: A) -> f64
    where
        A: FnMut(f64) -> f64,
    {
        let mut ks = KSmallest::new(self.k);
        let mut total = 0.0;
        for e in &self.entries {
            let tau = ks.threshold_rank_or(1.0);
            ks.offer(e.rank, e.element);
            total += alpha(e.time) / tau;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_util::stats::ErrorStats;

    #[test]
    fn first_occurrence_counts_distinct() {
        let n = 5_000u64;
        let runs = 600;
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..runs {
            let mut ads = FirstOccurrenceAds::new(16, seed);
            for e in 0..n {
                ads.observe(e, e as f64);
                ads.observe(e / 2, e as f64); // duplicate occurrences
            }
            err.push(ads.distinct());
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "bias z = {z}");
    }

    #[test]
    fn first_occurrence_prefix_queries() {
        let mut ads = FirstOccurrenceAds::new(4, 3);
        for e in 0..4u64 {
            ads.observe(e, e as f64);
        }
        // First k are exact.
        assert_eq!(ads.distinct_until(1.0), 2.0);
        assert_eq!(ads.distinct_until(3.0), 4.0);
    }

    #[test]
    fn first_occurrence_duplicate_of_dropped_element() {
        let mut ads = FirstOccurrenceAds::new(2, 7);
        for e in 0..100u64 {
            ads.observe(e, e as f64);
        }
        let len = ads.entries().len();
        // Re-observing old elements (retained or dropped) adds nothing.
        for e in 0..100u64 {
            assert!(!ads.observe(e, 100.0));
        }
        assert_eq!(ads.entries().len(), len);
    }

    #[test]
    fn recency_keeps_newest_always() {
        let mut ads = RecencyAds::new(1, 5);
        for e in 0..50u64 {
            ads.observe(e, e as f64);
            assert_eq!(ads.entries()[0].element, e, "newest entry must lead");
        }
        // With k = 1 the sketch is the chain of suffix minima: ranks must
        // increase going from older to... newer entries have *later* times
        // but the rank of the most recent is unconstrained; going outward
        // (older), ranks must strictly decrease.
        for w in ads.entries().windows(2) {
            assert!(w[1].rank < w[0].rank, "older entries must out-rank");
        }
    }

    #[test]
    fn recency_reoccurrence_moves_element_forward() {
        let mut ads = RecencyAds::new(4, 9);
        for e in 0..20u64 {
            ads.observe(e, e as f64);
        }
        ads.observe(3, 20.0);
        assert_eq!(ads.entries()[0].element, 3);
        assert_eq!(ads.entries()[0].time, 20.0);
        // No duplicate of element 3 deeper in the sketch.
        assert_eq!(ads.entries().iter().filter(|e| e.element == 3).count(), 1);
    }

    #[test]
    fn recency_window_estimate_unbiased() {
        // 200 distinct elements, each seen once; query the last 50.
        let runs = 3000;
        let mut err = ErrorStats::new(50.0);
        for seed in 0..runs {
            let mut ads = RecencyAds::new(8, seed);
            for e in 0..200u64 {
                ads.observe(e, e as f64);
            }
            err.push(ads.distinct_since(150.0));
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "recency bias z = {z}");
    }

    #[test]
    fn decayed_count_exponential_kernel_unbiased() {
        // α(t) = exp(−λ(now − t)): exponentially time-decayed count.
        let n = 300u64;
        let lambda = 0.01;
        let now = n as f64;
        let truth: f64 = (0..n).map(|t| (-lambda * (now - t as f64)).exp()).sum();
        let mut err = ErrorStats::new(truth);
        for seed in 0..2500 {
            let mut ads = RecencyAds::new(8, seed);
            for e in 0..n {
                ads.observe(e, e as f64);
            }
            err.push(ads.decayed_count(|t| (-lambda * (now - t)).exp()));
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "decayed-count bias z = {z}");
    }

    #[test]
    fn decayed_count_with_duplicates_uses_most_recent() {
        // Re-occurring elements must be weighted by their *latest* time.
        let mut ads = RecencyAds::new(64, 3);
        ads.observe(1, 0.0);
        ads.observe(2, 1.0);
        ads.observe(1, 2.0); // element 1 refreshed
                             // k ≥ distinct count ⇒ exact: α(t) = t sums the latest times.
        let got = ads.decayed_count(|t| t);
        assert_eq!(got, 2.0 + 1.0);
    }

    #[test]
    fn recency_full_window_equals_first_occurrence_count() {
        // Over a duplicate-free stream, counting "everything since 0"
        // is the same estimation problem as first-occurrence counting
        // scanned from the other end; both must be unbiased for n.
        let n = 300u64;
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..2000 {
            let mut ads = RecencyAds::new(8, seed);
            for e in 0..n {
                ads.observe(e, e as f64);
            }
            err.push(ads.distinct_since(0.0));
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "bias z = {z}");
    }
}
