//! The tie-breaking-free ADS of Appendix A.
//!
//! With few distinct distances (e.g. unweighted small-world graphs), the
//! canonical tie-broken ADS can keep many entries per distance level. The
//! modified definition stores node `u` iff `r(u)` is among the k smallest
//! ranks of the *closed* neighborhood `N_{≤d_vu}(v)` — at most k entries
//! per distinct distance. HIP probabilities change accordingly: a stored
//! node is *sampled* (carries weight) only if its rank is strictly below
//! the k-th smallest of the closed set `T_d`; the node attaining `T_d` is
//! stored but weight-less, which is exactly what makes `T_d` recoverable
//! from the sketch. The resulting estimator has CV ≤ `1/sqrt(k−2)` (one
//! degree weaker than canonical HIP, one stored-but-unsampled node per
//! threshold).

use adsketch_graph::NodeId;
use adsketch_util::topk::KSmallest;

use crate::entry::AdsEntry;
use crate::hip::{HipItem, HipWeights};

/// A tieless bottom-k ADS: per distinct distance, the (at most k) nodes
/// ranked among the k smallest of the closed prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct TielessAds {
    k: usize,
    entries: Vec<AdsEntry>,
}

impl TielessAds {
    /// Wraps entries sorted by `(dist, node)` that satisfy the modified
    /// inclusion rule (e.g. from
    /// [`crate::builder::pruned_dijkstra::build_tieless_entries`]).
    pub fn from_entries(k: usize, entries: Vec<AdsEntry>) -> Self {
        assert!(k >= 1);
        debug_assert!(entries
            .windows(2)
            .all(|w| w[0].cmp_canonical(&w[1]) == std::cmp::Ordering::Less));
        Self { k, entries }
    }

    /// Builds from the canonical closeness order (brute-force reference).
    pub fn from_order(k: usize, order: &[(NodeId, f64)], ranks: &[f64]) -> Self {
        assert!(k >= 1);
        let mut ks = KSmallest::new(k);
        let mut entries = Vec::new();
        let mut i = 0;
        while i < order.len() {
            // The whole distance level enters the candidate pool first.
            let mut j = i;
            while j < order.len() && order[j].1 == order[i].1 {
                ks.offer(ranks[order[j].0 as usize], order[j].0 as u64);
                j += 1;
            }
            // Stored = level members that survive in the closed top-k.
            let top: std::collections::HashSet<u64> =
                ks.sorted_items().iter().map(|it| it.id).collect();
            for &(node, dist) in &order[i..j] {
                if top.contains(&(node as u64)) {
                    entries.push(AdsEntry::new(node, dist, ranks[node as usize]));
                }
            }
            i = j;
        }
        Self { k, entries }
    }

    /// The sketch parameter k.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Entries in canonical order.
    #[inline]
    pub fn entries(&self) -> &[AdsEntry] {
        &self.entries
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// HIP adjusted weights under the modified probabilities: per distance
    /// level, the threshold is the k-th smallest stored rank within the
    /// closed prefix (`1` while fewer than k); stored nodes strictly below
    /// it get weight `1/T`, the threshold-attaining node gets none.
    pub fn hip_weights(&self) -> HipWeights {
        let mut ks = KSmallest::new(self.k);
        let mut items: Vec<HipItem> = Vec::new();
        let mut i = 0;
        while i < self.entries.len() {
            let mut j = i;
            while j < self.entries.len() && self.entries[j].dist == self.entries[i].dist {
                ks.offer(self.entries[j].rank, self.entries[j].node as u64);
                j += 1;
            }
            let t = ks.threshold_rank_or(1.0);
            for e in &self.entries[i..j] {
                if e.rank < t {
                    items.push(HipItem {
                        node: e.node,
                        dist: e.dist,
                        weight: 1.0 / t,
                    });
                }
            }
            i = j;
        }
        HipWeights::from_sorted_items(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_util::stats::ErrorStats;
    use adsketch_util::RankHasher;

    /// A "star stream": one node at distance 0, all others at distance 1 —
    /// the worst case for the canonical ADS under ties.
    fn star_order(n: usize) -> Vec<(NodeId, f64)> {
        (0..n)
            .map(|i| (i as NodeId, if i == 0 { 0.0 } else { 1.0 }))
            .collect()
    }

    fn uniform_order(n: usize) -> Vec<(NodeId, f64)> {
        (0..n).map(|i| (i as NodeId, i as f64)).collect()
    }

    #[test]
    fn at_most_k_entries_per_level() {
        let n = 200usize;
        let k = 4;
        let h = RankHasher::new(1);
        let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
        let ads = TielessAds::from_order(k, &star_order(n), &ranks);
        let level1 = ads.entries().iter().filter(|e| e.dist == 1.0).count();
        assert!(level1 <= k, "level-1 entries {level1}");
        assert!(ads.len() <= k + 1);
    }

    #[test]
    fn with_unique_distances_stores_canonical_members_plus_threshold() {
        // Under unique distances, the closed-set rule stores the canonical
        // ADS members (strictly below the k-th) plus threshold attainers.
        let n = 300usize;
        let k = 3;
        let h = RankHasher::new(2);
        let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
        let tieless = TielessAds::from_order(k, &uniform_order(n), &ranks);
        let canonical = crate::reference::bottomk_from_order(k, &uniform_order(n), &ranks);
        let canon_nodes: std::collections::HashSet<NodeId> =
            canonical.entries().iter().map(|e| e.node).collect();
        for e in canonical.entries() {
            assert!(
                tieless.entries().iter().any(|t| t.node == e.node),
                "canonical member {} missing from tieless sketch",
                e.node
            );
        }
        // Tieless may store a few extra (threshold-attaining) nodes.
        let extra = tieless
            .entries()
            .iter()
            .filter(|t| !canon_nodes.contains(&t.node))
            .count();
        assert!(extra <= tieless.len());
    }

    #[test]
    fn hip_unbiased_on_tied_levels() {
        // Stream with 20 levels of 25 tied nodes each.
        let n = 500usize;
        let k = 6;
        let order: Vec<(NodeId, f64)> = (0..n).map(|i| (i as NodeId, (i / 25) as f64)).collect();
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..4000u64 {
            let h = RankHasher::new(seed);
            let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
            let ads = TielessAds::from_order(k, &order, &ranks);
            err.push(ads.hip_weights().reachable_estimate());
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "tieless HIP bias z = {z}");
        // CV ≤ 1/sqrt(k−2) = 0.5.
        assert!(err.nrmse() < 0.55, "NRMSE {}", err.nrmse());
    }

    #[test]
    fn hip_unbiased_on_star() {
        let n = 120usize;
        let k = 4;
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..6000u64 {
            let h = RankHasher::new(seed + 1234);
            let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
            let ads = TielessAds::from_order(k, &star_order(n), &ranks);
            err.push(ads.hip_weights().reachable_estimate());
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "star HIP bias z = {z}");
    }

    #[test]
    fn threshold_attainer_is_stored_but_unsampled() {
        // Three nodes, one level, k = 2: ranks 0.1, 0.2, 0.3 — nodes with
        // ranks .1/.2 are the top-2 (stored); threshold T = 0.2; only the
        // rank-.1 node is sampled (strictly below T).
        let order: Vec<(NodeId, f64)> = vec![(0, 1.0), (1, 1.0), (2, 1.0)];
        let ranks = [0.1, 0.2, 0.3];
        let ads = TielessAds::from_order(2, &order, &ranks);
        let stored: Vec<NodeId> = ads.entries().iter().map(|e| e.node).collect();
        assert_eq!(stored, vec![0, 1]);
        let hip = ads.hip_weights();
        assert_eq!(hip.len(), 1);
        assert_eq!(hip.items()[0].node, 0);
        assert!((hip.items()[0].weight - 5.0).abs() < 1e-12); // 1/0.2
    }

    #[test]
    fn graph_builder_agrees_with_order_reference() {
        use adsketch_graph::generators;
        let g = generators::gnp(80, 0.06, 3);
        let ranks = crate::uniform_ranks(80, 4);
        let built = crate::builder::pruned_dijkstra::build_tieless_entries(&g, 3, &ranks).unwrap();
        for v in 0..80u32 {
            let order = adsketch_graph::dijkstra::dijkstra_order_canonical(&g, v);
            let reference = TielessAds::from_order(3, &order, &ranks);
            let from_graph = TielessAds::from_entries(3, built[v as usize].clone());
            assert_eq!(from_graph, reference, "node {v}");
        }
    }
}
