//! HIP adjusted weights and query evaluation (paper, Section 5).
//!
//! A [`HipWeights`] is the estimator-ready form of an ADS: each sampled
//! node carries an *adjusted weight* `a_vj = 1/τ_vj ≥ 1`, the inverse of
//! its conditional ("historic") inclusion probability. Because
//! `E[a_vj] = 1` for every node reachable from `v` (and 0 contributes for
//! excluded nodes), any statistic of the form `Q_g(v) = Σ_j g(j, d_vj)` is
//! estimated *unbiasedly* by the sum `Σ_{j ∈ ADS(v)} a_vj · g(j, d_vj)` —
//! equation (5) of the paper — evaluated over only `O(k log n)` sketch
//! entries.
//!
//! The flavor-specific HIP probability computations live with their sketch
//! types ([`crate::bottomk`], [`crate::kmins`], [`crate::kpartition`],
//! [`crate::tieless`], [`crate::weighted`]); they all produce this type.

use adsketch_graph::NodeId;

/// One HIP item: a sampled node, its distance, and its adjusted weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HipItem {
    /// The sampled node.
    pub node: NodeId,
    /// Distance from the sketch's source node.
    pub dist: f64,
    /// Adjusted weight `1/τ ≥ 1`.
    pub weight: f64,
}

/// Adjusted weights of one node's ADS, sorted by `(dist, node)`, with
/// prefix sums for O(log) cumulative queries.
#[derive(Debug, Clone, PartialEq)]
pub struct HipWeights {
    items: Vec<HipItem>,
    /// `prefix[i]` = sum of weights of `items[..=i]`.
    prefix: Vec<f64>,
}

impl HipWeights {
    /// Wraps items already sorted canonically by `(dist, node)`.
    pub fn from_sorted_items(items: Vec<HipItem>) -> Self {
        debug_assert!(items
            .windows(2)
            .all(|w| (w[0].dist, w[0].node) <= (w[1].dist, w[1].node)));
        let mut prefix = Vec::with_capacity(items.len());
        let mut acc = 0.0;
        for it in &items {
            debug_assert!(it.weight >= 0.0 && it.weight.is_finite());
            acc += it.weight;
            prefix.push(acc);
        }
        Self { items, prefix }
    }

    /// The weighted items in canonical order.
    #[inline]
    pub fn items(&self) -> &[HipItem] {
        &self.items
    }

    /// Number of sketch entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the sketch was empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// HIP estimate of the d-neighborhood cardinality `|N_d(v)|`
    /// (nodes within distance ≤ `d`, including the source):
    /// `Σ_{dist ≤ d} a_vj`. Unbiased; CV ≤ `1/sqrt(2(k−1))` (Theorem 5.1).
    pub fn cardinality_at(&self, d: f64) -> f64 {
        let idx = self.items.partition_point(|e| e.dist <= d);
        if idx == 0 {
            0.0
        } else {
            self.prefix[idx - 1]
        }
    }

    /// HIP estimate of the number of reachable nodes (including the
    /// source).
    pub fn reachable_estimate(&self) -> f64 {
        self.prefix.last().copied().unwrap_or(0.0)
    }

    /// The estimated cumulative neighborhood function: for each distinct
    /// distance in the sketch, the estimated `|N_d(v)|`. The exact
    /// counterpart is `adsketch_graph::exact::neighborhood_function`.
    pub fn neighborhood_function(&self) -> Vec<(f64, f64)> {
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (it, &cum) in self.items.iter().zip(&self.prefix) {
            match out.last_mut() {
                Some(last) if last.0 == it.dist => last.1 = cum,
                _ => out.push((it.dist, cum)),
            }
        }
        out
    }

    /// HIP estimate of a general distance-based statistic
    /// `Q_g(v) = Σ_{j reachable} g(j, d_vj)` (paper equations (1)/(5)):
    /// `Σ_{j ∈ ADS} a_vj · g(j, d_vj)`. `g` must be non-negative for the
    /// variance bounds to apply; unbiasedness holds for any `g`.
    pub fn qg<F>(&self, mut g: F) -> f64
    where
        F: FnMut(NodeId, f64) -> f64,
    {
        self.items
            .iter()
            .map(|it| it.weight * g(it.node, it.dist))
            .sum()
    }

    /// HIP estimate of the distance-decay centrality
    /// `C_{α,β}(v) = Σ_j α(d_vj) β(j)` (paper equations (2)/(3)) — `α`
    /// non-increasing, `β` an arbitrary non-negative node filter that may
    /// be chosen after the sketch was built.
    pub fn centrality<A, B>(&self, mut alpha: A, mut beta: B) -> f64
    where
        A: FnMut(f64) -> f64,
        B: FnMut(NodeId) -> f64,
    {
        self.qg(|node, dist| alpha(dist) * beta(node))
    }

    /// Estimated distance quantile: the smallest sketch distance `d` such
    /// that the estimated `|N_d(v)|` reaches a `q` fraction of the
    /// estimated reachable set — e.g. `q = 0.5` gives the estimated median
    /// distance from `v`, a per-node effective-radius statistic.
    pub fn distance_quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let total = self.reachable_estimate();
        if total == 0.0 {
            return None;
        }
        let need = q * total;
        let idx = self.prefix.partition_point(|&c| c < need);
        self.items
            .get(idx.min(self.items.len() - 1))
            .map(|it| it.dist)
    }

    /// Compresses to a distance → adjusted-weight list, dropping node
    /// identities (the paper's note after equation (5): sufficient for any
    /// statistic where `g` depends only on distance).
    pub fn compress_distances(&self) -> Vec<(f64, f64)> {
        let mut out: Vec<(f64, f64)> = Vec::new();
        for it in &self.items {
            match out.last_mut() {
                Some(last) if last.0 == it.dist => last.1 += it.weight,
                _ => out.push((it.dist, it.weight)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HipWeights {
        HipWeights::from_sorted_items(vec![
            HipItem {
                node: 0,
                dist: 0.0,
                weight: 1.0,
            },
            HipItem {
                node: 2,
                dist: 1.0,
                weight: 1.0,
            },
            HipItem {
                node: 5,
                dist: 1.0,
                weight: 2.0,
            },
            HipItem {
                node: 1,
                dist: 3.0,
                weight: 4.0,
            },
        ])
    }

    #[test]
    fn cardinality_queries() {
        let h = sample();
        assert_eq!(h.cardinality_at(-0.5), 0.0);
        assert_eq!(h.cardinality_at(0.0), 1.0);
        assert_eq!(h.cardinality_at(1.0), 4.0);
        assert_eq!(h.cardinality_at(2.9), 4.0);
        assert_eq!(h.cardinality_at(3.0), 8.0);
        assert_eq!(h.reachable_estimate(), 8.0);
    }

    #[test]
    fn neighborhood_function_merges_equal_distances() {
        let h = sample();
        assert_eq!(
            h.neighborhood_function(),
            vec![(0.0, 1.0), (1.0, 4.0), (3.0, 8.0)]
        );
    }

    #[test]
    fn qg_weights_statistics() {
        let h = sample();
        // g = 1 ⇒ reachability estimate.
        assert_eq!(h.qg(|_, _| 1.0), 8.0);
        // g = dist ⇒ estimated sum of distances.
        assert_eq!(h.qg(|_, d| d), 1.0 + 2.0 + 12.0);
        // g filtering on node id.
        assert_eq!(h.qg(|n, _| if n == 5 { 1.0 } else { 0.0 }), 2.0);
    }

    #[test]
    fn centrality_combines_alpha_beta() {
        let h = sample();
        // Threshold kernel at distance 1, filter to even node ids: nodes 0
        // (w=1) and 2 (w=1) qualify; node 5 is odd, node 1 is too far.
        let c = h.centrality(
            |d| if d <= 1.0 { 1.0 } else { 0.0 },
            |n| if n % 2 == 0 { 1.0 } else { 0.0 },
        );
        assert_eq!(c, 2.0);
    }

    #[test]
    fn distance_quantile_walks_the_step_function() {
        let h = sample(); // cumulative: 1 @0, 4 @1, 8 @3
        assert_eq!(h.distance_quantile(0.0), Some(0.0));
        assert_eq!(h.distance_quantile(0.1), Some(0.0)); // 0.8 ≤ 1
        assert_eq!(h.distance_quantile(0.5), Some(1.0)); // 4 ≤ 4
        assert_eq!(h.distance_quantile(0.51), Some(3.0));
        assert_eq!(h.distance_quantile(1.0), Some(3.0));
        let empty = HipWeights::from_sorted_items(vec![]);
        assert_eq!(empty.distance_quantile(0.5), None);
    }

    #[test]
    fn compress_distances_sums_weights() {
        let h = sample();
        assert_eq!(
            h.compress_distances(),
            vec![(0.0, 1.0), (1.0, 3.0), (3.0, 4.0)]
        );
    }

    #[test]
    fn empty_weights() {
        let h = HipWeights::from_sorted_items(vec![]);
        assert!(h.is_empty());
        assert_eq!(h.cardinality_at(5.0), 0.0);
        assert_eq!(h.qg(|_, _| 1.0), 0.0);
        assert!(h.neighborhood_function().is_empty());
    }
}
