//! The compressed (version 2) frozen-store representation.
//!
//! Version 1 stores every entry full-width (28 B: u32 node, f64 dist,
//! f64 rank, f64 HIP weight). The entries are heavily redundant, and all
//! of the redundancy can be removed *without changing a single stored
//! bit* (the workspace-wide bitwise-identity gate):
//!
//! * **Distances** repeat: a unit-weight graph has a handful of distinct
//!   hop counts, so the distinct `f64` bit patterns go into a sorted
//!   dictionary and each entry stores a small fixed-width code
//!   (u16/u32). The dictionary holds exact bit patterns, so decoding is
//!   exact by construction; if the distinct set is too large for a
//!   dictionary to pay off, the column *escapes* to raw 8-byte bits.
//! * **Ranks** produced by the unweighted sampler are exactly `m·2⁻⁵³`
//!   with `m < 2⁵³` (53 explicit hash bits), so `m` in 7 fixed bytes
//!   reproduces the f64 bit-for-bit. The encoder verifies that property
//!   for every entry and escapes the whole column to raw bits when any
//!   entry fails (e.g. weighted-sampler `−ln(u)/w` ranks).
//! * **HIP weights** are `1/τ` where `τ` is either `1.0` or the rank of
//!   an *earlier entry of the same row* (Lemma 5.1's threshold). Each
//!   weight stores a varint back-reference to that entry (`0` ⇒ weight
//!   exactly `1.0`) and is rebuilt at decode time by the identical
//!   division — verified bit-for-bit per entry at encode time, raw-bits
//!   escape otherwise.
//! * **Node ids** within one distance level are strictly increasing
//!   (canonical `(dist, node)` order), so runs delta+varint-compress;
//!   run boundaries are recovered from the already-decoded distance
//!   codes. Escape: raw 4-byte ids.
//!
//! Whether each column is compressed or escaped is a whole-column
//! decision recorded in four header tag bytes; the encoder chooses by
//! *verifying reconstruction* of every entry, never by value heuristics,
//! so a v1 ↔ v2 round trip is bitwise lossless for any store.
//!
//! # Block layout and the query path
//!
//! Entries are grouped into blocks of [`DEFAULT_ROWS_PER_BLOCK`] rows
//! (the row count is recorded in the header). Each block encodes its
//! entries column-major — four sections `[dists][ranks][weights][nodes]`
//! behind a 16-byte section-length header — so decoding runs four tight
//! homogeneous loops instead of a per-entry interleaved parse. A
//! `(block offset)` table in the store addresses blocks independently:
//! queries decode **lazily, per block, on first touch**, into a
//! per-thread scratch cache ([`SCRATCH_BUDGET_BYTES`]), never
//! materializing the full store. Mapped (`mmap`) v2 stores therefore
//! touch only the pages of the blocks they serve. One exception favours
//! resident servers: a **buffered** store whose whole decoded form fits
//! the scratch budget *thaws* on first touch into a single shared
//! contiguous column set — exactly the full-width (v1) memory layout,
//! served with one atomic load per row access — so batch sweeps run at
//! v1 speed. Mapped stores never thaw; lazy per-block decode is their
//! contract.
//!
//! The full on-disk layout table lives in the [`super`] module docs next
//! to the v1 table.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io::Read;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use adsketch_graph::NodeId;

use super::mmap::MapRegion;
use super::varint;
use super::{read_exact_or_truncated, FrozenError, COL_CAPACITY_HINT};

/// Serialized v2 header length: the 40 common bytes plus four column
/// tags and the u32 rows-per-block.
pub(super) const V2_HEADER_LEN: usize = 48;

/// Rows per block the encoder writes (readers honour whatever the
/// header records). 64 rows ≈ a few thousand entries at practical k —
/// large enough to amortize decode setup, small enough that a single
/// cold point query stays microseconds.
pub(super) const DEFAULT_ROWS_PER_BLOCK: u32 = 64;

/// Upper bound accepted for the header's rows-per-block (an untrusted
/// field; a huge value would make single-row queries decode the world).
const MAX_ROWS_PER_BLOCK: u32 = 1 << 20;

/// Default per-thread decoded-block scratch budget
/// ([`scratch_budget`]): 64 MiB.
pub(super) const SCRATCH_BUDGET_BYTES: usize = 64 << 20;

/// Per-thread decoded-block scratch budget in bytes. Blocks decoded on
/// first touch are retained up to this many bytes per thread (then the
/// scratch is flushed wholesale), so sweeps re-decode each block at
/// most once per pass and point-query working sets stay resident.
/// Process-global and tunable via
/// [`super::set_block_cache_budget`] — hosts that sweep a large store
/// repeatedly (batch benchmarks, resident query servers) can raise it
/// so the whole decoded store stays cached across passes.
static SCRATCH_BUDGET: AtomicUsize = AtomicUsize::new(SCRATCH_BUDGET_BYTES);

/// Current per-thread scratch budget in bytes.
pub(super) fn scratch_budget() -> usize {
    SCRATCH_BUDGET.load(Ordering::Relaxed)
}

/// Sets the per-thread scratch budget (see [`SCRATCH_BUDGET`]).
pub(super) fn set_scratch_budget(bytes: usize) {
    SCRATCH_BUDGET.store(bytes, Ordering::Relaxed);
}

/// `2⁵³` and its exact reciprocal — the unweighted sampler's rank
/// quantum (see `adsketch-util`'s `u64_to_unit_f64`).
const RANK_SCALE: f64 = (1u64 << 53) as f64;
const RANK_INV_SCALE: f64 = 1.0 / RANK_SCALE;

/// How the node-id column is encoded (header byte 40).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum NodeTag {
    /// Varints: absolute id at each distance-run start, `node − prev − 1`
    /// within a run.
    Delta = 0,
    /// Raw little-endian u32 per entry.
    Raw = 1,
}

/// How the distance column is encoded (header byte 41).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum DistTag {
    /// u16 codes into the distance dictionary.
    Dict16 = 0,
    /// u32 codes into the distance dictionary.
    Dict32 = 1,
    /// Raw f64 bits per entry (escape: dictionary would not pay off).
    Raw = 2,
}

/// How the rank column is encoded (header byte 42).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum RankTag {
    /// 7-byte little-endian `m` with `rank = m·2⁻⁵³` exactly.
    Fixed7 = 0,
    /// Raw f64 bits per entry (escape: some rank is not an `m·2⁻⁵³`).
    Raw = 1,
}

/// How the HIP-weight column is encoded (header byte 43).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum WeightTag {
    /// Varint back-reference: `0` ⇒ weight exactly `1.0`; `c > 0` ⇒
    /// weight rebuilt as `1.0 / rank[i − c]` of the same row.
    TauRef = 0,
    /// Raw f64 bits per entry (escape: some weight is not reproducible).
    Raw = 1,
}

/// The four per-column encoding decisions of one v2 store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) struct Tags {
    pub node: NodeTag,
    pub dist: DistTag,
    pub rank: RankTag,
    pub weight: WeightTag,
}

impl Tags {
    fn to_bytes(self) -> [u8; 4] {
        [
            self.node as u8,
            self.dist as u8,
            self.rank as u8,
            self.weight as u8,
        ]
    }

    fn from_bytes(b: [u8; 4]) -> Result<Self, FrozenError> {
        let node = match b[0] {
            0 => NodeTag::Delta,
            1 => NodeTag::Raw,
            t => return Err(FrozenError::Corrupt(format!("unknown node-column tag {t}"))),
        };
        let dist = match b[1] {
            0 => DistTag::Dict16,
            1 => DistTag::Dict32,
            2 => DistTag::Raw,
            t => return Err(FrozenError::Corrupt(format!("unknown dist-column tag {t}"))),
        };
        let rank = match b[2] {
            0 => RankTag::Fixed7,
            1 => RankTag::Raw,
            t => return Err(FrozenError::Corrupt(format!("unknown rank-column tag {t}"))),
        };
        let weight = match b[3] {
            0 => WeightTag::TauRef,
            1 => WeightTag::Raw,
            t => {
                return Err(FrozenError::Corrupt(format!(
                    "unknown weight-column tag {t}"
                )))
            }
        };
        Ok(Self {
            node,
            dist,
            rank,
            weight,
        })
    }
}

/// The compressed payload backing: owned bytes (buffered loads, encode)
/// or a range of the store's mapped file region.
#[derive(Debug)]
pub(super) enum Blob {
    Owned(Vec<u8>),
    Mapped { off: usize, len: usize },
}

impl Blob {
    #[inline]
    fn bytes<'a>(&'a self, region: Option<&'a MapRegion>) -> &'a [u8] {
        match self {
            Blob::Owned(v) => v,
            Blob::Mapped { off, len } => {
                &region.expect("mapped blob requires a region").bytes()[*off..*off + *len]
            }
        }
    }
}

/// Monotonically increasing id distinguishing live v2 stores in the
/// per-thread scratch cache. Never reused, so a dropped store's stale
/// cached blocks can never alias a new store's.
static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(1);

/// The in-memory form of a version-2 store's compressed payload. The
/// enclosing `FrozenAdsSet` keeps the CSR entry-offset column (shared
/// with v1) and the mapped region; everything v2-specific lives here.
#[derive(Debug)]
pub(super) struct V2Repr {
    pub tags: Tags,
    pub rows_per_block: u32,
    /// Sorted distinct distance bit patterns (empty under `DistTag::Raw`).
    pub dict: Vec<f64>,
    /// `num_blocks + 1` blob-relative byte offsets; block `b`'s encoding
    /// is `blob[block_offsets[b]..block_offsets[b+1]]`. Validated
    /// monotone and in-bounds at every load level, so block slicing is
    /// infallible.
    pub block_offsets: Vec<u64>,
    pub blob: Blob,
    store_id: u64,
    /// Whole-store contiguous decode, filled once on first touch when
    /// the store is buffered (not mapped) and its decoded size fits the
    /// scratch budget — the full-width (v1) memory layout, shared by
    /// every thread, served with one atomic load per row access.
    thawed: std::sync::OnceLock<DecodedBlock>,
}

impl V2Repr {
    fn new(
        tags: Tags,
        rows_per_block: u32,
        dict: Vec<f64>,
        block_offsets: Vec<u64>,
        blob: Blob,
    ) -> Self {
        Self {
            tags,
            rows_per_block,
            dict,
            block_offsets,
            blob,
            store_id: NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed),
            thawed: std::sync::OnceLock::new(),
        }
    }

    /// Deep copy with owned blob bytes (used by `FrozenAdsSet::clone`
    /// to drop any dependence on a mapped region). Gets a fresh store
    /// id: scratch caches are keyed per store instance.
    pub fn to_owned_copy(&self, region: Option<&MapRegion>) -> Self {
        Self::new(
            self.tags,
            self.rows_per_block,
            self.dict.clone(),
            self.block_offsets.clone(),
            Blob::Owned(self.blob.bytes(region).to_vec()),
        )
    }

    /// Actual resident heap bytes of the compressed representation
    /// (mapped blobs count zero — their pages are file-backed). A
    /// thawed whole-store decode counts in full.
    pub fn resident_bytes(&self) -> usize {
        let blob = match &self.blob {
            Blob::Owned(v) => v.capacity(),
            Blob::Mapped { .. } => 0,
        };
        self.dict.capacity() * 8
            + self.block_offsets.capacity() * 8
            + blob
            + self.thawed.get().map_or(0, DecodedBlock::byte_size)
    }

    /// The thawed full-width columns, if this store has thawed. Lets the
    /// dispatch in `frozen.rs` serve thawed rows through the exact same
    /// slicing code as a wide (v1) store — one atomic load is the only
    /// difference.
    #[inline]
    pub fn thawed_cols(&self) -> Option<ColSlices<'_>> {
        self.thawed
            .get()
            .map(|b| (&b.nodes[..], &b.dists[..], &b.ranks[..], &b.weights[..]))
    }
}

/// The four full-width column slices `(nodes, dists, ranks, weights)`.
pub(super) type ColSlices<'a> = (&'a [u32], &'a [f64], &'a [f64], &'a [f64]);

/// Borrowed row-major view of fully decoded columns — the encoder's
/// input and the decode-verification baseline.
#[derive(Clone, Copy)]
pub(super) struct RowsSource<'a> {
    pub offsets: &'a [u32],
    pub nodes: &'a [u32],
    pub dists: &'a [f64],
    pub ranks: &'a [f64],
    pub weights: &'a [f64],
}

/// One decoded row, borrowed from a decoded block (or a wide store's
/// columns — the dispatch in `frozen.rs` hands out both through this).
#[derive(Clone, Copy)]
pub(crate) struct RowSlices<'a> {
    pub nodes: &'a [u32],
    pub dists: &'a [f64],
    pub ranks: &'a [f64],
    pub weights: &'a [f64],
}

/// Everything needed to resolve and decode a v2 store's rows: the repr,
/// the (possibly mapped) region, and the CSR entry offsets.
#[derive(Clone, Copy)]
pub(super) struct V2Ctx<'a> {
    pub repr: &'a V2Repr,
    pub region: Option<&'a MapRegion>,
    pub offsets: &'a [u32],
}

/// One decoded block of rows, struct-of-arrays, reused across decodes.
#[derive(Debug, Default)]
pub(super) struct DecodedBlock {
    base_row: usize,
    base_entry: usize,
    nodes: Vec<u32>,
    dists: Vec<f64>,
    ranks: Vec<f64>,
    weights: Vec<f64>,
}

impl DecodedBlock {
    fn byte_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.nodes.capacity() * 4
            + (self.dists.capacity() + self.ranks.capacity() + self.weights.capacity()) * 8
    }
}

/// The per-thread decoded-block scratch: blocks decode on first touch
/// and stay resident until the byte budget trips, when the scratch is
/// flushed wholesale (sweeps then re-decode each block exactly once per
/// pass). Keyed by `(store id, block)`, and store ids are never reused,
/// so stale entries cannot alias a newer store.
#[derive(Default)]
struct BlockCache {
    blocks: HashMap<(u64, u32), std::rc::Rc<DecodedBlock>>,
    /// One-entry memo of the most recently touched block. Sequential
    /// sweeps hit the same block `rows_per_block` times in a row, so
    /// this turns the per-row cost into a tuple compare + `Rc` clone
    /// and leaves the hash lookup to once per block.
    last: Option<((u64, u32), std::rc::Rc<DecodedBlock>)>,
    bytes: usize,
}

thread_local! {
    static BLOCK_CACHE: RefCell<BlockCache> = RefCell::new(BlockCache::default());
}

impl<'a> V2Ctx<'a> {
    #[inline]
    fn blob_bytes(&self) -> &'a [u8] {
        self.repr.blob.bytes(self.region)
    }

    #[inline]
    fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Decodes (or fetches from the per-thread scratch) the block owning
    /// row `v` and calls `f` with that row's column slices.
    ///
    /// Re-entrant: the scratch borrow is released before `f` runs, so
    /// the callback may itself query v2 stores (nested `with_row`); in
    /// the unlikely event the scratch is still borrowed (a caller panic
    /// mid-update), the row decodes into a fresh local block instead —
    /// slower, never wrong.
    #[inline]
    pub fn with_row<T>(&self, v: NodeId, f: impl FnOnce(RowSlices<'_>) -> T) -> T {
        // Buffered stores that fit the budget thaw once into a shared
        // contiguous column set — v1's exact memory layout, one atomic
        // load per row access from then on. The hot path is deliberately
        // tiny so it inlines into the estimator loops just like v1's
        // direct column slicing; everything else lives in the cold half.
        if let Some(full) = self.repr.thawed.get() {
            return f(self.row_of(full, v));
        }
        self.with_row_cold(v, f)
    }

    /// The pre-thaw / mapped-store half of [`V2Ctx::with_row`]: decides
    /// whether to thaw a buffered store, otherwise serves the row from
    /// the per-thread block scratch. Mapped stores always land here —
    /// their contract is lazy per-block decode, touching only the file
    /// pages a query actually needs.
    #[inline(never)]
    fn with_row_cold<T>(&self, v: NodeId, f: impl FnOnce(RowSlices<'_>) -> T) -> T {
        if self.region.is_none() && self.decoded_store_bytes() <= scratch_budget() {
            let full = self.repr.thawed.get_or_init(|| self.decode_full());
            return f(self.row_of(full, v));
        }
        let block = (v as usize / self.repr.rows_per_block as usize) as u32;
        let key = (self.repr.store_id, block);
        let cached = BLOCK_CACHE.with(|cell| {
            let mut cache = cell.try_borrow_mut().ok()?;
            if let Some((k, blk)) = &cache.last {
                if *k == key {
                    return Some(blk.clone());
                }
            }
            let rc = if let Some(blk) = cache.blocks.get(&key) {
                blk.clone()
            } else {
                let mut decoded = DecodedBlock::default();
                self.decode_block_into(block as usize, &mut decoded);
                if cache.bytes + decoded.byte_size() > scratch_budget() {
                    cache.blocks.clear();
                    cache.bytes = 0;
                }
                cache.bytes += decoded.byte_size();
                let rc = std::rc::Rc::new(decoded);
                cache.blocks.insert(key, rc.clone());
                rc
            };
            cache.last = Some((key, rc.clone()));
            Some(rc)
        });
        match cached {
            Some(blk) => f(self.row_of(&blk, v)),
            None => {
                let mut decoded = DecodedBlock::default();
                self.decode_block_into(block as usize, &mut decoded);
                f(self.row_of(&decoded, v))
            }
        }
    }

    /// Bytes one contiguous decode of the whole store occupies.
    #[inline]
    fn decoded_store_bytes(&self) -> usize {
        let entries = self.offsets.last().copied().unwrap_or(0) as usize;
        std::mem::size_of::<DecodedBlock>() + entries * 28
    }

    /// Decodes every block into one contiguous column set (the v1
    /// memory layout), so full-store sweeps read three unbroken streams
    /// instead of hopping between per-block allocations.
    fn decode_full(&self) -> DecodedBlock {
        let entries = self.offsets.last().copied().unwrap_or(0) as usize;
        let mut full = DecodedBlock {
            base_row: 0,
            base_entry: 0,
            nodes: Vec::with_capacity(entries),
            dists: Vec::with_capacity(entries),
            ranks: Vec::with_capacity(entries),
            weights: Vec::with_capacity(entries),
        };
        let mut tmp = DecodedBlock::default();
        for b in 0..self.repr.block_offsets.len().saturating_sub(1) {
            self.decode_block_into(b, &mut tmp);
            full.nodes.extend_from_slice(&tmp.nodes);
            full.dists.extend_from_slice(&tmp.dists);
            full.ranks.extend_from_slice(&tmp.ranks);
            full.weights.extend_from_slice(&tmp.weights);
        }
        full
    }

    /// Slices row `v` out of its decoded block.
    #[inline]
    fn row_of<'b>(&self, blk: &'b DecodedBlock, v: NodeId) -> RowSlices<'b> {
        debug_assert!(
            v as usize >= blk.base_row
                && self.offsets[v as usize + 1] as usize - blk.base_entry <= blk.nodes.len()
        );
        let lo = self.offsets[v as usize] as usize - blk.base_entry;
        let hi = self.offsets[v as usize + 1] as usize - blk.base_entry;
        RowSlices {
            nodes: &blk.nodes[lo..hi],
            dists: &blk.dists[lo..hi],
            ranks: &blk.ranks[lo..hi],
            weights: &blk.weights[lo..hi],
        }
    }

    /// Visits every row in order with one reused local block (cold full
    /// scans: serialization, thaw, equality — not the query path, which
    /// goes through the cached [`V2Ctx::with_row`]).
    pub fn for_each_row_decoded(&self, mut f: impl FnMut(usize, RowSlices<'_>)) {
        let n = self.num_rows();
        let rpb = self.repr.rows_per_block as usize;
        let mut blk = DecodedBlock::default();
        for b in 0..self.repr.block_offsets.len().saturating_sub(1) {
            self.decode_block_into(b, &mut blk);
            for v in b * rpb..((b + 1) * rpb).min(n) {
                f(v, self.row_of(&blk, v as NodeId));
            }
        }
    }

    /// The rows and entry span block `b` covers.
    fn block_extent(&self, b: usize) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let rpb = self.repr.rows_per_block as usize;
        let lo = (b * rpb).min(self.num_rows());
        let hi = ((b + 1) * rpb).min(self.num_rows());
        (lo..hi, self.offsets[lo] as usize..self.offsets[hi] as usize)
    }

    /// Decodes block `b` into `out`. **Infallible by construction**: the
    /// unverified-load contract (like v1's) is that structural damage in
    /// trusted files yields garbage *values*, never panics or
    /// out-of-bounds access, so every read below is bounds-clamped and
    /// shortfalls zero-fill. Verified loads ran [`V2Ctx::validate`]
    /// first, after which none of the fallback branches are reachable.
    pub fn decode_block_into(&self, b: usize, out: &mut DecodedBlock) {
        let (rows, entries) = self.block_extent(b);
        let count = entries.len();
        out.base_row = rows.start;
        out.base_entry = entries.start;
        out.nodes.clear();
        out.dists.clear();
        out.ranks.clear();
        out.weights.clear();
        out.nodes.resize(count, 0);
        out.dists.resize(count, 0.0);
        out.ranks.resize(count, 0.0);
        out.weights.resize(count, 1.0);

        let blob = self.blob_bytes();
        // Block offsets were validated monotone and ≤ blob len at load.
        let span =
            &blob[self.repr.block_offsets[b] as usize..self.repr.block_offsets[b + 1] as usize];
        let Some(sections) = split_sections(span) else {
            return; // short/garbled block header: all-zero fill
        };
        let [sec_d, sec_r, sec_w, sec_n] = sections;

        // Distances first (node-run recovery depends on them).
        match self.repr.tags.dist {
            DistTag::Dict16 => {
                for (i, c) in sec_d.chunks_exact(2).take(count).enumerate() {
                    let code = u16::from_le_bytes([c[0], c[1]]) as usize;
                    out.dists[i] = self.repr.dict.get(code).copied().unwrap_or(0.0);
                }
            }
            DistTag::Dict32 => {
                for (i, c) in sec_d.chunks_exact(4).take(count).enumerate() {
                    let code = u32::from_le_bytes(c.try_into().expect("4-byte chunk")) as usize;
                    out.dists[i] = self.repr.dict.get(code).copied().unwrap_or(0.0);
                }
            }
            DistTag::Raw => {
                for (i, c) in sec_d.chunks_exact(8).take(count).enumerate() {
                    out.dists[i] =
                        f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
                }
            }
        }

        match self.repr.tags.rank {
            RankTag::Fixed7 => {
                for (i, c) in sec_r.chunks_exact(7).take(count).enumerate() {
                    let mut m = [0u8; 8];
                    m[..7].copy_from_slice(c);
                    out.ranks[i] = u64::from_le_bytes(m) as f64 * RANK_INV_SCALE;
                }
            }
            RankTag::Raw => {
                for (i, c) in sec_r.chunks_exact(8).take(count).enumerate() {
                    out.ranks[i] =
                        f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
                }
            }
        }

        match self.repr.tags.weight {
            WeightTag::TauRef => {
                let mut at = 0usize;
                'rows: for v in rows.clone() {
                    let row_lo = self.offsets[v] as usize - entries.start;
                    let row_hi = self.offsets[v + 1] as usize - entries.start;
                    for i in row_lo..row_hi {
                        let Ok((code, used)) = varint::decode(&sec_w[at.min(sec_w.len())..]) else {
                            break 'rows; // rest keeps the 1.0 fill
                        };
                        at += used;
                        let back = code as usize;
                        if back > 0 && back <= i - row_lo {
                            out.weights[i] = 1.0 / out.ranks[i - back];
                        } // code 0 (or out-of-row garbage): keep 1.0
                    }
                }
            }
            WeightTag::Raw => {
                for (i, c) in sec_w.chunks_exact(8).take(count).enumerate() {
                    out.weights[i] =
                        f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
                }
            }
        }

        match self.repr.tags.node {
            NodeTag::Delta => {
                let mut at = 0usize;
                'rows: for v in rows {
                    let row_lo = self.offsets[v] as usize - entries.start;
                    let row_hi = self.offsets[v + 1] as usize - entries.start;
                    for i in row_lo..row_hi {
                        let Ok((x, used)) = varint::decode(&sec_n[at.min(sec_n.len())..]) else {
                            break 'rows;
                        };
                        at += used;
                        let same_run =
                            i > row_lo && out.dists[i].to_bits() == out.dists[i - 1].to_bits();
                        out.nodes[i] = if same_run {
                            (out.nodes[i - 1] as u64)
                                .saturating_add(1)
                                .saturating_add(x)
                                .min(u32::MAX as u64) as u32
                        } else {
                            x.min(u32::MAX as u64) as u32
                        };
                    }
                }
            }
            NodeTag::Raw => {
                for (i, c) in sec_n.chunks_exact(4).take(count).enumerate() {
                    out.nodes[i] = u32::from_le_bytes(c.try_into().expect("4-byte chunk"));
                }
            }
        }
    }

    /// Full structural validation of the compressed payload — the v2
    /// counterpart of the v1 canonical-order scan, run by every verified
    /// load. Checks, per block: the section lengths tile the block span
    /// exactly; every section parses to exactly its length with
    /// canonical varints; dictionary codes, rank magnitudes, weight
    /// back-references and node ids are in range; and the decoded rows
    /// are in strict canonical `(dist, node)` order. After this passes,
    /// none of [`V2Ctx::decode_block_into`]'s fallback branches are
    /// reachable.
    pub fn validate(&self) -> Result<(), FrozenError> {
        let n = self.num_rows();
        let num_blocks = self.repr.block_offsets.len() - 1;
        let mut blk = DecodedBlock::default();
        for b in 0..num_blocks {
            let (rows, entries) = self.block_extent(b);
            let count = entries.len();
            let span = &self.blob_bytes()
                [self.repr.block_offsets[b] as usize..self.repr.block_offsets[b + 1] as usize];
            let corrupt = |what: String| FrozenError::Corrupt(format!("block {b}: {what}"));
            let Some([sec_d, sec_r, sec_w, sec_n]) = split_sections(span) else {
                return Err(corrupt(format!(
                    "section lengths do not tile the {}-byte block span",
                    span.len()
                )));
            };

            let fixed = |sec: &[u8], width: usize, name: &str| -> Result<(), FrozenError> {
                if sec.len() != count * width {
                    return Err(corrupt(format!(
                        "{name} section is {} bytes, expected {} ({count} entries × {width}; \
                         wrong escape-column length for the header's tag)",
                        sec.len(),
                        count * width
                    )));
                }
                Ok(())
            };

            match self.repr.tags.dist {
                DistTag::Dict16 => {
                    fixed(sec_d, 2, "dist")?;
                    for c in sec_d.chunks_exact(2) {
                        let code = u16::from_le_bytes([c[0], c[1]]) as usize;
                        if code >= self.repr.dict.len() {
                            return Err(corrupt(format!("dist code {code} out of dictionary")));
                        }
                    }
                }
                DistTag::Dict32 => {
                    fixed(sec_d, 4, "dist")?;
                    for c in sec_d.chunks_exact(4) {
                        let code = u32::from_le_bytes(c.try_into().expect("4-byte")) as usize;
                        if code >= self.repr.dict.len() {
                            return Err(corrupt(format!("dist code {code} out of dictionary")));
                        }
                    }
                }
                DistTag::Raw => fixed(sec_d, 8, "dist")?,
            }
            match self.repr.tags.rank {
                RankTag::Fixed7 => {
                    fixed(sec_r, 7, "rank")?;
                    for c in sec_r.chunks_exact(7) {
                        let mut m = [0u8; 8];
                        m[..7].copy_from_slice(c);
                        if u64::from_le_bytes(m) > 1u64 << 53 {
                            return Err(corrupt("rank mantissa exceeds 2^53".into()));
                        }
                    }
                }
                RankTag::Raw => fixed(sec_r, 8, "rank")?,
            }

            match self.repr.tags.weight {
                WeightTag::TauRef => {
                    walk_varints(sec_w, "weight", self.offsets, rows.clone(), b, |i, code| {
                        if code as usize > i {
                            Err(format!(
                                "weight back-reference {code} reaches before entry 0"
                            ))
                        } else {
                            Ok(())
                        }
                    })?
                }
                WeightTag::Raw => fixed(sec_w, 8, "weight")?,
            }
            match self.repr.tags.node {
                NodeTag::Delta => {
                    walk_varints(sec_n, "node", self.offsets, rows.clone(), b, |_, _| Ok(()))?
                }
                NodeTag::Raw => fixed(sec_n, 4, "node")?,
            }

            // Decode the (now structurally sound) block and check the
            // row invariants every query relies on.
            self.decode_block_into(b, &mut blk);
            for v in rows {
                let row = self.row_of(&blk, v as NodeId);
                if row.nodes.iter().any(|&nd| nd as usize >= n) {
                    return Err(FrozenError::Corrupt(format!(
                        "node {v}: sampled node id out of range"
                    )));
                }
                let in_order = row
                    .dists
                    .windows(2)
                    .zip(row.nodes.windows(2))
                    .all(|(d, nd)| {
                        d[0].total_cmp(&d[1]).then(nd[0].cmp(&nd[1])) == std::cmp::Ordering::Less
                    });
                if !in_order {
                    return Err(FrozenError::Corrupt(format!(
                        "node {v}: entries out of canonical (dist, node) order"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Strict walk of one varint section during validation: every varint
/// must be canonical, every row's entries must be present, and the
/// stream must consume the section exactly. `per` sees each decoded
/// value with its within-row index and may veto it with a message.
fn walk_varints(
    sec: &[u8],
    name: &str,
    offsets: &[u32],
    rows: std::ops::Range<usize>,
    block: usize,
    mut per: impl FnMut(usize, u64) -> Result<(), String>,
) -> Result<(), FrozenError> {
    let corrupt = |what: String| FrozenError::Corrupt(format!("block {block}: {what}"));
    let mut at = 0usize;
    for v in rows {
        let row_len = (offsets[v + 1] - offsets[v]) as usize;
        for i in 0..row_len {
            let (x, used) = varint::decode(&sec[at..])
                .map_err(|e| corrupt(format!("row {v} {name} column: {e}")))?;
            at += used;
            per(i, x).map_err(|m| corrupt(format!("row {v}: {m}")))?;
        }
    }
    if at != sec.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after the {name} varint stream",
            sec.len() - at
        )));
    }
    Ok(())
}

/// Splits a block span into its four sections behind the 16-byte
/// length header; `None` unless the lengths tile the span exactly.
fn split_sections(span: &[u8]) -> Option<[&[u8]; 4]> {
    if span.len() < 16 {
        return None;
    }
    let len = |i: usize| u32::from_le_bytes(span[i * 4..i * 4 + 4].try_into().unwrap()) as usize;
    let (l0, l1, l2, l3) = (len(0), len(1), len(2), len(3));
    let total = l0.checked_add(l1)?.checked_add(l2)?.checked_add(l3)?;
    if total != span.len() - 16 {
        return None;
    }
    let body = &span[16..];
    let (s0, rest) = body.split_at(l0);
    let (s1, rest) = rest.split_at(l1);
    let (s2, s3) = rest.split_at(l2);
    Some([s0, s1, s2, s3])
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Serializes `rows` to the complete v2 byte image (header, checksum
/// patched in). Escape tags are chosen by verifying bit-exact
/// reconstruction of every entry; as final insurance the whole buffer
/// is decoded back and compared bitwise before being returned.
pub(super) fn encode(k: u32, rows: RowsSource<'_>) -> Vec<u8> {
    let n = rows.offsets.len() - 1;
    let entries = rows.nodes.len();

    // Distance dictionary: sorted distinct bit patterns, exact by
    // construction. Escape only when codes + dictionary would outgrow
    // raw bits (many distinct values, e.g. real-weighted graphs).
    let mut dict: Vec<f64> = rows.dists.to_vec();
    dict.sort_unstable_by(|a, b| a.total_cmp(b));
    dict.dedup_by_key(|x| x.to_bits());
    let dist_tag = if dict.len() <= 1 << 16 {
        DistTag::Dict16
    } else if dict.len() <= entries / 2 {
        DistTag::Dict32
    } else {
        dict = Vec::new();
        DistTag::Raw
    };
    let code_of: HashMap<u64, u32> = dict
        .iter()
        .enumerate()
        .map(|(i, x)| (x.to_bits(), i as u32))
        .collect();

    // Ranks: 7-byte m·2⁻⁵³ if every entry reproduces bit-for-bit.
    let rank_tag = if rows.ranks.iter().all(|&r| rank_to_m(r).is_some()) {
        RankTag::Fixed7
    } else {
        RankTag::Raw
    };

    // Weights: per-entry back-reference to the τ-source entry, verified
    // by recomputing the identical `1.0 / rank` division.
    let weight_refs = compute_weight_refs(k, rows);
    let weight_tag = if weight_refs.is_some() {
        WeightTag::TauRef
    } else {
        WeightTag::Raw
    };

    // Nodes: delta within distance runs requires the strict canonical
    // increase; any violation (only possible for stores that skipped
    // the canonical-order validation) escapes to raw ids.
    let node_tag = if (0..n).all(|v| {
        let r = rows.offsets[v] as usize..rows.offsets[v + 1] as usize;
        r.clone().skip(1).all(|i| {
            rows.dists[i].to_bits() != rows.dists[i - 1].to_bits()
                || rows.nodes[i] > rows.nodes[i - 1]
        })
    }) {
        NodeTag::Delta
    } else {
        NodeTag::Raw
    };

    let tags = Tags {
        node: node_tag,
        dist: dist_tag,
        rank: rank_tag,
        weight: weight_tag,
    };

    // Emit blocks.
    let rpb = DEFAULT_ROWS_PER_BLOCK as usize;
    let num_blocks = n.div_ceil(rpb);
    let mut blob: Vec<u8> = Vec::new();
    let mut block_offsets: Vec<u64> = Vec::with_capacity(num_blocks + 1);
    block_offsets.push(0);
    let (mut sec_d, mut sec_r, mut sec_w, mut sec_n) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for b in 0..num_blocks {
        let (lo, hi) = (b * rpb, ((b + 1) * rpb).min(n));
        let span = rows.offsets[lo] as usize..rows.offsets[hi] as usize;
        sec_d.clear();
        sec_r.clear();
        sec_w.clear();
        sec_n.clear();

        for i in span.clone() {
            match tags.dist {
                DistTag::Dict16 => sec_d
                    .extend_from_slice(&(code_of[&rows.dists[i].to_bits()] as u16).to_le_bytes()),
                DistTag::Dict32 => {
                    sec_d.extend_from_slice(&code_of[&rows.dists[i].to_bits()].to_le_bytes())
                }
                DistTag::Raw => sec_d.extend_from_slice(&rows.dists[i].to_bits().to_le_bytes()),
            }
            match tags.rank {
                RankTag::Fixed7 => {
                    let m = rank_to_m(rows.ranks[i]).expect("verified above");
                    sec_r.extend_from_slice(&m.to_le_bytes()[..7]);
                }
                RankTag::Raw => sec_r.extend_from_slice(&rows.ranks[i].to_bits().to_le_bytes()),
            }
            match tags.weight {
                WeightTag::TauRef => {
                    let refs = weight_refs.as_ref().expect("verified above");
                    varint::encode(refs[i] as u64, &mut sec_w);
                }
                WeightTag::Raw => sec_w.extend_from_slice(&rows.weights[i].to_bits().to_le_bytes()),
            }
        }
        for v in lo..hi {
            let r = rows.offsets[v] as usize..rows.offsets[v + 1] as usize;
            for i in r.clone() {
                match tags.node {
                    NodeTag::Delta => {
                        let same_run =
                            i > r.start && rows.dists[i].to_bits() == rows.dists[i - 1].to_bits();
                        let x = if same_run {
                            (rows.nodes[i] - rows.nodes[i - 1] - 1) as u64
                        } else {
                            rows.nodes[i] as u64
                        };
                        varint::encode(x, &mut sec_n);
                    }
                    NodeTag::Raw => sec_n.extend_from_slice(&rows.nodes[i].to_le_bytes()),
                }
            }
        }

        for sec in [&sec_d, &sec_r, &sec_w, &sec_n] {
            assert!(
                sec.len() <= u32::MAX as usize,
                "block section exceeds 4 GiB"
            );
            blob.extend_from_slice(&(sec.len() as u32).to_le_bytes());
        }
        for sec in [&sec_d, &sec_r, &sec_w, &sec_n] {
            blob.extend_from_slice(sec);
        }
        block_offsets.push(blob.len() as u64);
    }

    // Assemble the buffer (see the layout table in the module docs of
    // `frozen.rs`): header, entry offsets, dictionary, block offsets,
    // blob — then patch the checksum over the whole image.
    let mut buf = Vec::with_capacity(
        V2_HEADER_LEN + (n + 1) * 4 + 4 + dict.len() * 8 + (num_blocks + 1) * 8 + 8 + blob.len(),
    );
    buf.extend_from_slice(&super::FROZEN_MAGIC);
    buf.extend_from_slice(&2u32.to_le_bytes());
    buf.extend_from_slice(&k.to_le_bytes());
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    buf.extend_from_slice(&(entries as u64).to_le_bytes());
    buf.extend_from_slice(&[0u8; 8]); // checksum, patched below
    buf.extend_from_slice(&tags.to_bytes());
    buf.extend_from_slice(&DEFAULT_ROWS_PER_BLOCK.to_le_bytes());
    for &o in rows.offsets {
        buf.extend_from_slice(&o.to_le_bytes());
    }
    buf.extend_from_slice(&(dict.len() as u32).to_le_bytes());
    for &x in &dict {
        buf.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    for &o in &block_offsets {
        buf.extend_from_slice(&o.to_le_bytes());
    }
    buf.extend_from_slice(&(blob.len() as u64).to_le_bytes());
    buf.extend_from_slice(&blob);
    let checksum = super::buffer_checksum(&buf);
    buf[super::CHECKSUM_OFFSET..super::CHECKSUM_OFFSET + 8]
        .copy_from_slice(&checksum.to_le_bytes());

    // Final insurance: decode everything back and require bit equality.
    let repr = V2Repr::new(
        tags,
        DEFAULT_ROWS_PER_BLOCK,
        dict,
        block_offsets,
        Blob::Owned(blob),
    );
    let ctx = V2Ctx {
        repr: &repr,
        region: None,
        offsets: rows.offsets,
    };
    ctx.for_each_row_decoded(|v, row| {
        let span = rows.offsets[v] as usize..rows.offsets[v + 1] as usize;
        let ok = row.nodes == &rows.nodes[span.clone()]
            && bits_eq(row.dists, &rows.dists[span.clone()])
            && bits_eq(row.ranks, &rows.ranks[span.clone()])
            && bits_eq(row.weights, &rows.weights[span.clone()]);
        assert!(
            ok,
            "v2 encoder self-verification failed at row {v} — this is a bug"
        );
    });
    buf
}

#[inline]
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The integer `m` with `rank = m·2⁻⁵³` **bit-for-bit**, if one exists.
fn rank_to_m(rank: f64) -> Option<u64> {
    if !(0.0..=1.0).contains(&rank) {
        return None;
    }
    let m = (rank * RANK_SCALE) as u64;
    if m <= 1u64 << 53 && (m as f64 * RANK_INV_SCALE).to_bits() == rank.to_bits() {
        Some(m)
    } else {
        None
    }
}

/// Per-entry τ back-references (`0` ⇒ weight exactly 1.0; `c` ⇒ weight
/// is `1.0 / rank[i − c]`), or `None` if any entry is not reproducible
/// bit-for-bit. Tracks the k smallest ranks seen so far in each row —
/// the Lemma 5.1 threshold — so the expected reference is O(log k) away,
/// with a linear scan fallback for exact-tie corner cases.
fn compute_weight_refs(k: u32, rows: RowsSource<'_>) -> Option<Vec<u32>> {
    let n = rows.offsets.len() - 1;
    let k = (k as usize).max(1);
    let mut refs = vec![0u32; rows.weights.len()];
    let mut smallest: Vec<(f64, u32)> = Vec::new(); // (rank, index in row), ascending
    for v in 0..n {
        let lo = rows.offsets[v] as usize;
        let hi = rows.offsets[v + 1] as usize;
        smallest.clear();
        for (slot, i) in refs[lo..hi].iter_mut().zip(lo..hi) {
            let w = rows.weights[i];
            let row_i = (i - lo) as u32;
            let code = if w.to_bits() == 1.0f64.to_bits() {
                0
            } else {
                // Expected τ source: the current k-th smallest rank.
                // (`smallest` is truncated to k entries, so `last()` is
                // exactly the threshold when k of them exist.)
                let candidate = smallest
                    .last()
                    .filter(|_| smallest.len() == k)
                    .filter(|&&(r, _)| (1.0 / r).to_bits() == w.to_bits())
                    .map(|&(_, j)| row_i - j);
                candidate.or_else(|| {
                    // Exact rank ties (or non-HIP weights): any earlier
                    // entry whose rank reproduces the bits will do.
                    (lo..i)
                        .rev()
                        .find(|&j| (1.0 / rows.ranks[j]).to_bits() == w.to_bits())
                        .map(|j| row_i - (j - lo) as u32)
                })?
            };
            *slot = code;
            let rank = rows.ranks[i];
            if smallest.len() < k || smallest.last().is_some_and(|&(r, _)| rank < r) {
                let pos = smallest.partition_point(|&(r, _)| r.total_cmp(&rank).is_lt());
                smallest.insert(pos, (rank, row_i));
                smallest.truncate(k);
            }
        }
    }
    Some(refs)
}

// ---------------------------------------------------------------------
// Parsing (buffered / mapped)
// ---------------------------------------------------------------------

/// Everything `frozen.rs` needs to assemble a v2 `FrozenAdsSet` from a
/// parse: the repr plus the owned entry-offset column (buffered loads)
/// or its mapped location.
pub(super) struct ParsedV2 {
    pub repr: V2Repr,
    pub offsets: super::Col<u32>,
}

/// Reads the 8 v2-specific header bytes (tags + rows-per-block) that
/// follow the 40 common bytes.
fn parse_extra(extra: &[u8; 8]) -> Result<(Tags, u32), FrozenError> {
    let tags = Tags::from_bytes([extra[0], extra[1], extra[2], extra[3]])?;
    let rpb = u32::from_le_bytes(extra[4..8].try_into().expect("4 bytes"));
    if rpb == 0 || rpb > MAX_ROWS_PER_BLOCK {
        return Err(FrozenError::Corrupt(format!(
            "rows-per-block {rpb} out of the accepted range 1..={MAX_ROWS_PER_BLOCK}"
        )));
    }
    Ok((tags, rpb))
}

/// Shared sanity for the parsed block-offset table: monotone, starting
/// at zero, ending exactly at the blob length. Runs at **every** load
/// level (including trusted) so block slicing is infallible afterwards.
fn check_block_offsets(block_offsets: &[u64], blob_len: u64) -> Result<(), FrozenError> {
    if block_offsets.first() != Some(&0) {
        return Err(FrozenError::Corrupt("block offsets must start at 0".into()));
    }
    if block_offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(FrozenError::Corrupt(
            "block offsets must be non-decreasing".into(),
        ));
    }
    if *block_offsets.last().expect("non-empty") != blob_len {
        return Err(FrozenError::Corrupt(
            "last block offset must equal the blob length".into(),
        ));
    }
    Ok(())
}

/// The byte-taker closure threaded through [`read_body`]'s section
/// readers: fills the buffer from the stream, advances the consumed
/// count, and hashes what it read.
type TakeFn<'a> = dyn FnMut(&mut [u8], &mut u64) -> Result<(), FrozenError> + 'a;

/// Streams a v2 body off `r` (the buffered loader). The caller has
/// consumed and hashed the 40 common header bytes; this consumes
/// exactly the rest of one store and hashes it into `hash` when given.
pub(super) fn read_body<R: Read>(
    r: &mut R,
    n: usize,
    entries: usize,
    mut hash: Option<&mut super::Fnv1a64>,
) -> Result<ParsedV2, FrozenError> {
    let mut consumed = super::HEADER_LEN as u64;
    // Running lower bound of the store's total length, refined as each
    // section's size becomes known (for Truncated error reporting).
    let need = |more: u64, consumed: &u64| consumed + more;

    let mut take = |buf: &mut [u8], consumed: &mut u64| -> Result<(), FrozenError> {
        let expected = need(buf.len() as u64, consumed);
        read_exact_or_truncated(r, buf, expected, *consumed)?;
        *consumed += buf.len() as u64;
        if let Some(h) = hash.as_deref_mut() {
            h.update(buf);
        }
        Ok(())
    };

    let mut extra = [0u8; 8];
    take(&mut extra, &mut consumed)?;
    let (tags, rpb) = parse_extra(&extra)?;
    let num_blocks = n.div_ceil(rpb as usize);

    let read_bytes =
        |total: usize, take: &mut TakeFn<'_>, consumed: &mut u64| -> Result<Vec<u8>, FrozenError> {
            let mut out = Vec::with_capacity(total.min(COL_CAPACITY_HINT * 8));
            let mut chunk = [0u8; 8192];
            let mut remaining = total;
            while remaining > 0 {
                let step = remaining.min(chunk.len());
                take(&mut chunk[..step], consumed)?;
                out.extend_from_slice(&chunk[..step]);
                remaining -= step;
            }
            Ok(out)
        };

    let offsets_bytes = read_bytes((n + 1) * 4, &mut take, &mut consumed)?;
    let offsets: Vec<u32> = offsets_bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte")))
        .collect();

    let mut d_buf = [0u8; 4];
    take(&mut d_buf, &mut consumed)?;
    let d = u32::from_le_bytes(d_buf) as usize;
    if d > entries.max(1) {
        return Err(FrozenError::Corrupt(format!(
            "distance dictionary of {d} values exceeds the entry count {entries}"
        )));
    }
    let dict_bytes = read_bytes(d * 8, &mut take, &mut consumed)?;
    let dict: Vec<f64> = dict_bytes
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte"))))
        .collect();

    let bo_bytes = read_bytes((num_blocks + 1) * 8, &mut take, &mut consumed)?;
    let block_offsets: Vec<u64> = bo_bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte")))
        .collect();

    let mut blob_len_buf = [0u8; 8];
    take(&mut blob_len_buf, &mut consumed)?;
    let blob_len = u64::from_le_bytes(blob_len_buf);
    check_block_offsets(&block_offsets, blob_len)?;
    if blob_len > usize::MAX as u64 {
        return Err(FrozenError::Corrupt("blob length overflows usize".into()));
    }
    let blob = read_bytes(blob_len as usize, &mut take, &mut consumed)?;

    Ok(ParsedV2 {
        repr: V2Repr::new(tags, rpb, dict, block_offsets, Blob::Owned(blob)),
        offsets: super::Col::Owned(offsets),
    })
}

/// Parses a v2 store out of a complete mapped byte image (`buf` is the
/// whole file). Metadata (dictionary, block offsets) is decoded into
/// small owned vectors; the entry-offset column and the blob stay
/// zero-copy views into the mapping. Checks exact file length; the
/// caller handles checksum and structural verification.
pub(super) fn parse_mapped(
    region: &MapRegion,
    n: usize,
    entries: usize,
) -> Result<ParsedV2, FrozenError> {
    let buf = region.bytes();
    let whole = buf.len() as u64;
    let mut at = super::HEADER_LEN;
    let need = |more: usize, at: usize| -> Result<(), FrozenError> {
        if at.checked_add(more).is_none_or(|end| end > buf.len()) {
            Err(FrozenError::Truncated {
                expected: (at as u64).saturating_add(more as u64),
                actual: whole,
            })
        } else {
            Ok(())
        }
    };

    need(8, at)?;
    let extra: [u8; 8] = buf[at..at + 8].try_into().expect("8 bytes");
    let (tags, rpb) = parse_extra(&extra)?;
    at += 8;
    let num_blocks = n.div_ceil(rpb as usize);

    need((n + 1) * 4, at)?;
    let off_offsets = at;
    at += (n + 1) * 4;

    need(4, at)?;
    let d = u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes")) as usize;
    at += 4;
    if d > entries.max(1) {
        return Err(FrozenError::Corrupt(format!(
            "distance dictionary of {d} values exceeds the entry count {entries}"
        )));
    }
    need(d * 8, at)?;
    let dict: Vec<f64> = buf[at..at + d * 8]
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte"))))
        .collect();
    at += d * 8;

    need((num_blocks + 1) * 8, at)?;
    let block_offsets: Vec<u64> = buf[at..at + (num_blocks + 1) * 8]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte")))
        .collect();
    at += (num_blocks + 1) * 8;

    need(8, at)?;
    let blob_len = u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"));
    at += 8;
    check_block_offsets(&block_offsets, blob_len)?;
    if blob_len > (buf.len() - at) as u64 {
        return Err(FrozenError::Truncated {
            expected: at as u64 + blob_len,
            actual: whole,
        });
    }
    let blob_off = at;
    at += blob_len as usize;
    if at != buf.len() {
        return Err(FrozenError::Corrupt(format!(
            "{} trailing bytes after the payload",
            buf.len() - at
        )));
    }

    // The u32 entry-offset column sits at byte 48 of a page-aligned
    // mapping — always 4-aligned; assert rather than trust.
    assert!(
        region.u32_slice(off_offsets, n + 1).is_some(),
        "u32 offsets must be in bounds and aligned in a length-checked mapping"
    );
    Ok(ParsedV2 {
        repr: V2Repr::new(
            tags,
            rpb,
            dict,
            block_offsets,
            Blob::Mapped {
                off: blob_off,
                len: blob_len as usize,
            },
        ),
        offsets: super::Col::Mapped {
            off: off_offsets,
            count: n + 1,
        },
    })
}
