//! Read-only memory mapping for zero-copy frozen-store loading.
//!
//! This is the **only** module in the workspace allowed to contain
//! `unsafe` code (the crate root carries `deny(unsafe_code)` with an
//! `allow` on this module, and every other crate is
//! `forbid(unsafe_code)`). It binds `mmap`/`munmap` directly via
//! `extern "C"` — std already links libc on every supported target, so
//! no new dependency is introduced and the workspace stays
//! offline-buildable.
//!
//! On 64-bit Linux, [`map_readonly`] maps a store file `PROT_READ` /
//! `MAP_PRIVATE` and hands back a [`MapRegion`] whose typed column views
//! back a mapped [`super::FrozenAdsSet`]. Replicas mapping the same
//! shard file share its pages through the kernel page cache, and a
//! warm restart touches no column bytes at all until they are queried.
//! On every other platform [`map_readonly`] returns `Ok(None)` and
//! callers fall back to the buffered copying loader — behaviour is
//! identical, only cold-start cost differs.
//!
//! # Safety model
//!
//! * The mapping is created read-only and never remapped, so the byte
//!   region is valid and immutable for the lifetime of the [`MapRegion`]
//!   that owns it; `munmap` runs exactly once, on drop.
//! * Typed views ([`MapRegion::u32_slice`], [`MapRegion::f64_slice`])
//!   check bounds and alignment *before* constructing a slice and return
//!   `None` otherwise — no unchecked pointer arithmetic escapes this
//!   module. `u32` and `f64` accept every bit pattern, so reinterpreting
//!   checked, aligned, in-bounds file bytes is sound.
//! * As with any file-backed mapping, truncating the underlying file
//!   while it is mapped can raise `SIGBUS` on access. Serving
//!   deployments must replace store files atomically (write + rename),
//!   never truncate in place; the loader re-verifies checksums on
//!   (re)load, not per access.

#![deny(unsafe_op_in_unsafe_fn)]

/// An owned, read-only, file-backed memory mapping.
///
/// On platforms without mmap support this type is uninhabited: it can
/// never be constructed, and its methods are statically unreachable.
#[derive(Debug)]
pub(crate) struct MapRegion {
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    inner: linux::RawMap,
    /// Uninhabited on non-mmap platforms so the type still names a
    /// region (letting `frozen.rs` stay `cfg`-free) but can never exist.
    #[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
    inner: Never,
}

#[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
#[derive(Debug)]
pub(crate) enum Never {}

impl MapRegion {
    /// The complete mapped file as a byte slice.
    #[inline]
    pub(crate) fn bytes(&self) -> &[u8] {
        #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
        {
            self.inner.bytes()
        }
        #[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
        {
            match self.inner {}
        }
    }

    /// A `count`-element `u32` view starting `off` bytes into the
    /// mapping, or `None` if it would be out of bounds or misaligned.
    #[inline]
    pub(crate) fn u32_slice(&self, off: usize, count: usize) -> Option<&[u32]> {
        self.typed_slice::<u32>(off, count)
    }

    /// A `count`-element `f64` view starting `off` bytes into the
    /// mapping, or `None` if it would be out of bounds or misaligned.
    /// (`f64` has no invalid bit patterns; values round-trip through
    /// `f64::to_bits`, so the view is bitwise-lossless.)
    #[inline]
    pub(crate) fn f64_slice(&self, off: usize, count: usize) -> Option<&[f64]> {
        self.typed_slice::<f64>(off, count)
    }

    /// Shared checked reinterpret: bounds, overflow, and alignment are
    /// all verified before any pointer is formed.
    ///
    /// `T` is only ever `u32` or `f64` (private method), both of which
    /// are plain-old-data types valid for every bit pattern.
    #[inline]
    fn typed_slice<T>(&self, off: usize, count: usize) -> Option<&[T]> {
        let bytes = self.bytes();
        let need = count.checked_mul(std::mem::size_of::<T>())?;
        let end = off.checked_add(need)?;
        if end > bytes.len() {
            return None;
        }
        let ptr = bytes[off..].as_ptr();
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        // SAFETY: `ptr` points `off` bytes into a live read-only mapping
        // of at least `end` bytes (bounds checked above), is aligned for
        // `T` (checked above), and `T` is POD (u32/f64: every bit
        // pattern valid). The mapping is immutable and outlives the
        // returned slice, whose lifetime is tied to `&self`.
        Some(unsafe { std::slice::from_raw_parts(ptr.cast::<T>(), count) })
    }
}

/// Maps `file` read-only in its entirety.
///
/// Returns `Ok(None)` when the platform has no mmap binding, when the
/// file is empty, or when the `mmap` syscall itself fails (e.g. address
/// space exhaustion) — callers treat `None` as "use the buffered
/// copying loader", so mapping is a pure fast path, never a new failure
/// mode. Only pre-map I/O errors (`metadata`) are surfaced as `Err`.
pub(crate) fn map_readonly(file: &std::fs::File) -> std::io::Result<Option<MapRegion>> {
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    {
        let len = file.metadata()?.len();
        if len == 0 || len > usize::MAX as u64 {
            return Ok(None);
        }
        Ok(linux::RawMap::map(file, len as usize).map(|inner| MapRegion { inner }))
    }
    #[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
    {
        let _ = file;
        Ok(None)
    }
}

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
mod linux {
    //! The raw 64-bit Linux `mmap`/`munmap` binding.

    use std::os::unix::io::AsRawFd;

    // 64-bit Linux ABI types and constants (asm-generic/mman-common.h).
    // Fixed here rather than pulled from a crate: the workspace builds
    // offline and std already links libc, so declaring the two symbols
    // is all that is needed.
    type CInt = i32;
    type OffT = i64;

    const PROT_READ: CInt = 0x1;
    const MAP_PRIVATE: CInt = 0x02;
    const MAP_FAILED: *mut core::ffi::c_void = usize::MAX as *mut core::ffi::c_void;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: CInt,
            flags: CInt,
            fd: CInt,
            offset: OffT,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> CInt;
    }

    /// A live `mmap(2)` region; unmapped exactly once on drop.
    #[derive(Debug)]
    pub(super) struct RawMap {
        ptr: std::ptr::NonNull<u8>,
        len: usize,
    }

    // SAFETY: the region is read-only for its whole lifetime (PROT_READ,
    // never remapped), so shared references from any thread observe
    // immutable memory; the kernel mapping is process-wide, not
    // thread-affine. Drop (munmap) takes `&mut self`, so it cannot race
    // reads through `&self`.
    unsafe impl Send for RawMap {}
    // SAFETY: as above — `&RawMap` only exposes read access to memory no
    // safe code can mutate.
    unsafe impl Sync for RawMap {}

    impl RawMap {
        /// Maps `len` bytes of `file` read-only, or `None` if the
        /// syscall fails (callers fall back to buffered reads).
        pub(super) fn map(file: &std::fs::File, len: usize) -> Option<RawMap> {
            debug_assert!(len > 0, "zero-length mappings are invalid");
            // SAFETY: `fd` is a live file descriptor borrowed from
            // `file` for the duration of the call; `len > 0`; a NULL
            // addr hint with PROT_READ|MAP_PRIVATE is the portable
            // read-only mapping request and cannot clobber existing
            // mappings. The result is checked against MAP_FAILED before
            // use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == MAP_FAILED {
                return None;
            }
            Some(RawMap {
                ptr: std::ptr::NonNull::new(ptr.cast::<u8>())?,
                len,
            })
        }

        #[inline]
        pub(super) fn bytes(&self) -> &[u8] {
            // SAFETY: `ptr` is the live mapping of exactly `len` bytes
            // established in `map` and not yet unmapped (drop is the
            // only unmap site and takes `&mut self`).
            unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
        }
    }

    impl Drop for RawMap {
        fn drop(&mut self) {
            // SAFETY: `(ptr, len)` is exactly the region returned by the
            // successful `mmap` in `map`, unmapped here exactly once.
            // munmap failure (impossible for a valid region) is ignored:
            // there is no recovery and the address space stays usable.
            unsafe {
                munmap(self.ptr.as_ptr().cast(), self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_and_reads_back_file_bytes() {
        let path = std::env::temp_dir().join("adsketch_mmap_unit.bin");
        let payload: Vec<u8> = (0..4096u32).flat_map(|x| x.to_le_bytes()).collect();
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(&payload))
            .unwrap();
        let file = std::fs::File::open(&path).unwrap();
        match map_readonly(&file).unwrap() {
            Some(region) => {
                assert_eq!(region.bytes(), payload.as_slice());
                // Page-aligned base: typed views at aligned offsets work.
                let words = region.u32_slice(0, 4096).unwrap();
                assert_eq!(words[7], 7);
                assert!(region.u32_slice(2, 1).is_none(), "misaligned offset");
                assert!(region.u32_slice(0, 4097).is_none(), "out of bounds");
                assert!(region.f64_slice(4, 1).is_none(), "8-misaligned offset");
                assert!(region.f64_slice(8, 2047).is_some());
            }
            None => {
                if cfg!(all(target_os = "linux", target_pointer_width = "64")) {
                    panic!("mmap must be available on 64-bit Linux");
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_files_fall_back() {
        let path = std::env::temp_dir().join("adsketch_mmap_empty.bin");
        std::fs::File::create(&path).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        assert!(map_readonly(&file).unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }
}
