//! LEB128 variable-length integers for the compressed (v2) store format.
//!
//! Values are emitted little-endian, 7 bits per byte, the high bit of
//! each byte flagging a continuation — the standard LEB128 scheme. Two
//! properties matter to the store format:
//!
//! * **Canonical encodings only.** [`decode`] rejects *overlong*
//!   encodings (a final byte of `0x00` after a continuation, e.g.
//!   `[0x80, 0x00]` for `0`): every value has exactly one accepted byte
//!   sequence, so a v2 store's byte image is a pure function of its
//!   logical content and byte-level fixtures stay stable.
//! * **Bounded length.** A `u64` needs at most [`MAX_LEN`] bytes; longer
//!   continuations are rejected rather than wrapping.
//!
//! The decoders never panic on malformed input — truncation and
//! non-canonical forms surface as typed [`VarintError`]s, which the v2
//! validator maps to [`super::FrozenError::Corrupt`]. The query-path
//! block decoder uses the same routines with its own graceful fallback.

/// Maximum encoded length of a `u64` (⌈64 / 7⌉ bytes).
pub(crate) const MAX_LEN: usize = 10;

/// Why a varint failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarintError {
    /// The input ended in the middle of a continuation chain.
    Truncated,
    /// The encoding is longer than its value requires (non-canonical),
    /// or longer than any `u64` encoding can be.
    Overlong,
}

impl std::fmt::Display for VarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarintError::Truncated => write!(f, "truncated varint"),
            VarintError::Overlong => write!(f, "overlong (non-canonical) varint"),
        }
    }
}

/// Appends the canonical LEB128 encoding of `x` to `out`.
pub(crate) fn encode(mut x: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one canonical LEB128 `u64` from the front of `buf`, returning
/// the value and the number of bytes consumed.
pub(crate) fn decode(buf: &[u8]) -> Result<(u64, usize), VarintError> {
    let mut x = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_LEN {
            return Err(VarintError::Overlong);
        }
        let payload = (byte & 0x7f) as u64;
        // The 10th byte may only contribute the single remaining bit.
        if shift == 63 && payload > 1 {
            return Err(VarintError::Overlong);
        }
        x |= payload << shift;
        if byte & 0x80 == 0 {
            // Canonical form: a multi-byte encoding must not end in a
            // zero byte (that value fit in fewer bytes).
            if i > 0 && byte == 0 {
                return Err(VarintError::Overlong);
            }
            return Ok((x, i + 1));
        }
        shift += 7;
    }
    Err(VarintError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_edge_values() {
        for x in [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            encode(x, &mut buf);
            assert!(buf.len() <= MAX_LEN);
            assert_eq!(decode(&buf), Ok((x, buf.len())), "x = {x:#x}");
            // Trailing bytes are left untouched.
            buf.push(0xab);
            assert_eq!(decode(&buf), Ok((x, buf.len() - 1)));
        }
    }

    #[test]
    fn encoding_lengths_are_minimal() {
        let mut buf = Vec::new();
        encode(0x7f, &mut buf);
        assert_eq!(buf, [0x7f]);
        buf.clear();
        encode(0x80, &mut buf);
        assert_eq!(buf, [0x80, 0x01]);
        buf.clear();
        encode(u64::MAX, &mut buf);
        assert_eq!(buf.len(), MAX_LEN);
    }

    #[test]
    fn rejects_truncation() {
        assert_eq!(decode(&[]), Err(VarintError::Truncated));
        assert_eq!(decode(&[0x80]), Err(VarintError::Truncated));
        assert_eq!(decode(&[0xff, 0xff]), Err(VarintError::Truncated));
    }

    #[test]
    fn rejects_overlong_forms() {
        // 0 and 1 padded with a redundant continuation byte.
        assert_eq!(decode(&[0x80, 0x00]), Err(VarintError::Overlong));
        assert_eq!(decode(&[0x81, 0x00]), Err(VarintError::Overlong));
        // 11-byte chain can never be canonical for a u64.
        assert_eq!(decode(&[0x80; 11]), Err(VarintError::Overlong));
        // A 10th byte carrying more than the final bit overflows u64.
        let mut buf = vec![0xff; 9];
        buf.push(0x02);
        assert_eq!(decode(&buf), Err(VarintError::Overlong));
        // The canonical u64::MAX (9 × 0xff + 0x01) is accepted.
        let mut ok = vec![0xff; 9];
        ok.push(0x01);
        assert_eq!(decode(&ok), Ok((u64::MAX, 10)));
    }
}
