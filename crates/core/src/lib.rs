//! All-distances sketches (ADS) with Historic Inverse Probability (HIP)
//! estimators — the primary contribution of Cohen, *All-Distances Sketches,
//! Revisited: HIP Estimators for Massive Graphs Analysis* (PODS 2014).
//!
//! # What an ADS is
//!
//! The ADS of a node `v` is a random sample of the nodes reachable from `v`
//! in which closer nodes are more likely to appear: node `j` is included
//! with probability inversely proportional to its *Dijkstra rank* (position
//! in `v`'s nearest-neighbor order). Equivalently, `ADS(v)` is the union of
//! coordinated MinHash sketches of every neighborhood `N_d(v)`. It has
//! expected size `k(1 + ln n − ln k)` and supports estimating, from the
//! sketch alone:
//!
//! * neighborhood cardinalities `|N_d(v)|` for *any* query distance `d`,
//! * general distance-based statistics `Q_g(v) = Σ_j g(j, d_vj)`
//!   (equation (1) of the paper),
//! * distance-decay centralities `C_{α,β}(v) = Σ_j α(d_vj) β(j)`
//!   (equation (2)) with the filter `β` chosen *after* sketching,
//! * closeness similarity between nodes, distance distributions, and more.
//!
//! # What HIP adds
//!
//! The classic ("basic") estimators extract one MinHash sketch from the ADS
//! and estimate from it, with CV ≤ `1/sqrt(k−2)`. The HIP estimator instead
//! assigns every ADS entry an *adjusted weight* — the inverse of its
//! inclusion probability conditioned on the ranks of all closer nodes —
//! which is unbiased, uses the whole sketch history, halves the variance
//! (CV ≤ `1/sqrt(2(k−1))`, within √2 of the `1/sqrt(2k)` lower bound), and
//! extends verbatim to the general statistics above.
//!
//! # Crate layout
//!
//! | module | contents |
//! |---|---|
//! | [`entry`], [`bottomk`], [`kmins`], [`kpartition`] | the three ADS flavors (Section 2) |
//! | [`ads_set`] | per-graph collections of sketches |
//! | [`view`] | the [`AdsView`] read-side trait every estimator runs against |
//! | [`frozen`] | the immutable columnar query store with versioned (de)serialization |
//! | [`engine`] | the sharded batch query engine over any view |
//! | [`builder`] | PrunedDijkstra, DP and LocalUpdates construction (Section 3), incl. (1+ε)-approximate ADS |
//! | [`reference`](mod@reference) | brute-force order-based builders used for validation |
//! | [`hip`] | adjusted weights and HIP query evaluation (Section 5) |
//! | [`basic`] | basic (MinHash-extraction) estimators on ADSs (Section 4) |
//! | [`permutation`] | the permutation cardinality estimator (Section 5.4) |
//! | [`size_est`] | the ADS-size-only estimator (Section 8) |
//! | [`centrality`] | closeness/harmonic/decay centralities over HIP weights |
//! | [`weighted`] | non-uniform node weights via exponential ranks (Section 9) |
//! | [`similarity`] | neighborhood Jaccard/union/intersection between nodes from coordinated sketches |
//! | [`tieless`] | the tie-breaking-free ADS of Appendix A |
//! | [`sim`] | the stream-order simulation harness behind the paper's Figure 2 |
//!
//! # Quick example
//!
//! ```
//! use adsketch_core::ads_set::AdsSet;
//! use adsketch_graph::generators;
//!
//! let g = generators::barabasi_albert(300, 3, 42);
//! let ads = AdsSet::build(&g, 16, 7); // k = 16, seed = 7
//! let hip = ads.hip(0);
//! // Estimate how many nodes lie within 2 hops of node 0:
//! let est = hip.cardinality_at(2.0);
//! let exact = adsketch_graph::exact::neighborhood_function(&g, 0).cardinality_at(2.0) as f64;
//! assert!((est - exact).abs() / exact < 0.8);
//! ```

#![deny(missing_docs)]
// All unsafe code in the workspace is fenced into `frozen::mmap` (which
// carries a module-level `allow` plus `deny(unsafe_op_in_unsafe_fn)` and
// per-call safety comments); every sibling crate is `forbid(unsafe_code)`.
#![deny(unsafe_code)]

pub mod ads_set;
pub mod basic;
pub mod bottomk;
pub mod builder;
pub mod centrality;
pub mod engine;
pub mod entry;
pub mod error;
pub mod frozen;
pub mod hip;
pub mod kmins;
pub mod kpartition;
pub mod permutation;
pub mod reference;
pub mod sim;
pub mod similarity;
pub mod size_est;
pub mod tieless;
pub mod view;
pub mod weighted;

pub use ads_set::AdsSet;
pub use bottomk::BottomKAds;
pub use builder::local_updates::DynamicAds;
pub use builder::{shard_slots, thread_count};
pub use engine::QueryEngine;
pub use entry::AdsEntry;
pub use error::CoreError;
pub use frozen::{
    freeze_sharded, freeze_sharded_format, FrozenAdsSet, FrozenError, LoadOptions, ShardManifest,
    ShardRecord, StoreFormat,
};
pub use hip::{HipItem, HipWeights};
pub use view::AdsView;

/// Deterministic uniform ranks `r(v) ~ U[0,1)` for nodes `0..n`.
///
/// All builders take explicit rank arrays so the weighted variant
/// ([`weighted`]) and tests can substitute their own.
pub fn uniform_ranks(n: usize, seed: u64) -> Vec<f64> {
    let h = adsketch_util::RankHasher::new(seed);
    (0..n as u64).map(|v| h.rank(v)).collect()
}
