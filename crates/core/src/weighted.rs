//! Non-uniform node weights (paper, Section 9).
//!
//! To estimate weighted statistics `Σ_{d_vj ≤ d} β(j)` with the same CV
//! guarantees as the uniform case, the sketches are built over
//! *exponential* ranks `r(j) ~ Exp(β(j))` — equivalent to
//! `−ln(1−u)/β(j)` for the node's uniform hash `u`. Higher-weight nodes
//! then get stochastically smaller ranks and proportionally higher
//! inclusion probabilities. The same ADS definition, builders and
//! algorithms apply verbatim; only the HIP probability changes: with
//! threshold `τ` (the k-th smallest exponential rank among closer nodes),
//! node `j`'s conditional inclusion probability is
//! `p_j = P(Exp(β_j) < τ) = 1 − exp(−β_j·τ)`.

use adsketch_util::topk::KSmallest;
use adsketch_util::RankHasher;

use crate::bottomk::BottomKAds;
use crate::hip::{HipItem, HipWeights};

/// Exponential ranks for weighted nodes: `r(v) = −ln(1−u_v)/β_v`.
///
/// Weights must be strictly positive (a zero-weight node would never be
/// sampled; filter such nodes out instead).
pub fn exponential_ranks(betas: &[f64], seed: u64) -> Vec<f64> {
    let h = RankHasher::new(seed);
    betas
        .iter()
        .enumerate()
        .map(|(v, &b)| {
            assert!(
                b > 0.0,
                "node weight must be positive, got {b} for node {v}"
            );
            h.exp_rank(v as u64, b)
        })
        .collect()
}

/// HIP presence weights for an ADS built over exponential ranks: item `j`
/// carries `1/p_j` with `p_j = 1 − exp(−β_j·τ_j)`, an unbiased estimate of
/// the indicator "j is reachable within its distance". Weighted statistics
/// follow via [`HipWeights::qg`] — e.g. `qg(|v, _| beta[v])` estimates the
/// total β-weight of the reachable set.
pub fn weighted_hip(ads: &BottomKAds, betas: &[f64]) -> HipWeights {
    let mut ks = KSmallest::new(ads.k());
    let items = ads
        .entries()
        .iter()
        .map(|e| {
            let tau = ks.threshold_rank_or(f64::INFINITY);
            let beta = betas[e.node as usize];
            let p = if tau.is_infinite() {
                1.0
            } else {
                -(-beta * tau).exp_m1() // 1 − e^{−βτ}, numerically stable
            };
            let entered = ks.offer(e.rank, e.node as u64);
            debug_assert!(entered);
            HipItem {
                node: e.node,
                dist: e.dist,
                weight: 1.0 / p,
            }
        })
        .collect();
    HipWeights::from_sorted_items(items)
}

/// HIP estimate of the weighted neighborhood `Σ_{d_vj ≤ d} β(j)`.
pub fn neighborhood_weight_at(ads: &BottomKAds, betas: &[f64], d: f64) -> f64 {
    weighted_hip(ads, betas).qg(|v, dist| if dist <= d { betas[v as usize] } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::bottomk_from_order;
    use adsketch_graph::NodeId;
    use adsketch_util::stats::ErrorStats;

    fn order(n: usize) -> Vec<(NodeId, f64)> {
        (0..n).map(|i| (i as NodeId, i as f64)).collect()
    }

    #[test]
    fn ranks_validate_weights() {
        let result = std::panic::catch_unwind(|| exponential_ranks(&[1.0, 0.0], 1));
        assert!(result.is_err());
    }

    #[test]
    fn heavier_nodes_sampled_more_often() {
        let n = 200usize;
        let k = 4;
        let mut betas = vec![1.0; n];
        betas[100] = 50.0; // one heavy node mid-stream
        let mut heavy = 0;
        let mut light = 0;
        let runs = 2000;
        for seed in 0..runs {
            let ranks = exponential_ranks(&betas, seed);
            let ads = bottomk_from_order(k, &order(n), &ranks);
            if ads.get(100).is_some() {
                heavy += 1;
            }
            if ads.get(101).is_some() {
                light += 1;
            }
        }
        assert!(
            heavy > light * 5,
            "heavy node sampled {heavy}, light neighbor {light}"
        );
    }

    #[test]
    fn weighted_neighborhood_estimate_unbiased() {
        let n = 300usize;
        let k = 8;
        // Power-law-ish weights.
        let betas: Vec<f64> = (0..n).map(|i| 1.0 + 50.0 / (1 + i % 17) as f64).collect();
        let truth: f64 = betas.iter().sum();
        let mut err = ErrorStats::new(truth);
        for seed in 0..2000u64 {
            let ranks = exponential_ranks(&betas, seed + 11);
            let ads = bottomk_from_order(k, &order(n), &ranks);
            err.push(neighborhood_weight_at(&ads, &betas, f64::INFINITY));
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "weighted HIP bias z = {z}");
        // CV bound 1/sqrt(2(k−1)) ≈ 0.27 (allow slack for the heavy tail).
        assert!(err.nrmse() < 0.4, "NRMSE {}", err.nrmse());
    }

    #[test]
    fn uniform_weights_agree_with_unweighted_hip_rates() {
        // β ≡ 1: the exponential-rank HIP cardinality estimator must be
        // unbiased for plain cardinalities too.
        let n = 250usize;
        let k = 6;
        let betas = vec![1.0; n];
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..2000u64 {
            let ranks = exponential_ranks(&betas, seed + 77);
            let ads = bottomk_from_order(k, &order(n), &ranks);
            err.push(weighted_hip(&ads, &betas).reachable_estimate());
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "z = {z}");
    }

    #[test]
    fn prefix_weights_respect_distance() {
        let n = 100usize;
        let betas = vec![2.0; n];
        let ranks = exponential_ranks(&betas, 5);
        let ads = bottomk_from_order(4, &order(n), &ranks);
        let half = neighborhood_weight_at(&ads, &betas, 49.0);
        let full = neighborhood_weight_at(&ads, &betas, f64::INFINITY);
        assert!(half <= full);
        assert!(full > 0.0);
    }

    #[test]
    fn first_k_nodes_have_unit_presence_weight() {
        let n = 50usize;
        let betas: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let ranks = exponential_ranks(&betas, 9);
        let ads = bottomk_from_order(4, &order(n), &ranks);
        let hip = weighted_hip(&ads, &betas);
        for it in hip.items().iter().take(4) {
            assert_eq!(it.weight, 1.0, "first k nodes are certain inclusions");
        }
    }
}
