//! Basic (pre-HIP) estimators applied to an ADS (paper, Section 4), plus
//! the naive `Q_g` estimator HIP is compared against.
//!
//! Each estimator comes in two forms: per-sketch (on a borrowed
//! [`BottomKAds`]) and `_in` (generic over any [`AdsView`] back end —
//! heap-backed or frozen — addressed by node id). The two are bitwise
//! identical.

use adsketch_graph::NodeId;

use crate::bottomk::BottomKAds;
use crate::view::AdsView;

/// The basic neighborhood-cardinality estimate at distance `d`: extract
/// the bottom-k MinHash sketch of `N_d(v)` from the ADS and apply the
/// conditional inverse-probability estimator `(k−1)/τ_k`
/// (unbiased, CV ≤ `1/sqrt(k−2)`; the unique UMVUE for that sketch).
pub fn cardinality_at(ads: &BottomKAds, d: f64) -> f64 {
    ads.minhash_at(d).estimate()
}

/// The basic estimate of the number of reachable nodes.
pub fn reachable(ads: &BottomKAds) -> f64 {
    cardinality_at(ads, f64::INFINITY)
}

/// [`cardinality_at`] for node `v` of any [`AdsView`] back end.
pub fn cardinality_at_in<V: AdsView + ?Sized>(view: &V, v: NodeId, d: f64) -> f64 {
    view.minhash_at(v, d).estimate()
}

/// [`reachable`] for node `v` of any [`AdsView`] back end.
pub fn reachable_in<V: AdsView + ?Sized>(view: &V, v: NodeId) -> f64 {
    cardinality_at_in(view, v, f64::INFINITY)
}

/// The naive `Q_g` estimator the paper's Section 5.1 compares HIP against:
/// treat the k lowest-ranked reachable nodes as a uniform sample, average
/// `g` over them, and scale by the basic reachability estimate.
///
/// Its variance is ≈ `(n/k)·Σ g²` when `g` concentrates on close nodes —
/// up to a factor `n/k` worse than HIP (reproduced by the `tbl_qg_gap`
/// experiment).
pub fn naive_qg<F>(ads: &BottomKAds, mut g: F) -> f64
where
    F: FnMut(NodeId, f64) -> f64,
{
    let sketch = ads.minhash_at(f64::INFINITY);
    if sketch.is_empty() {
        return 0.0;
    }
    // The sampled nodes with their distances (k lowest-ranked entries).
    let sampled: Vec<(NodeId, f64)> = {
        let mut entries: Vec<&crate::entry::AdsEntry> = ads.entries().iter().collect();
        entries.sort_unstable_by(|a, b| a.rank.total_cmp(&b.rank).then(a.node.cmp(&b.node)));
        entries
            .iter()
            .take(ads.k())
            .map(|e| (e.node, e.dist))
            .collect()
    };
    let n_hat = sketch.estimate();
    let mean_g: f64 = sampled.iter().map(|&(v, d)| g(v, d)).sum::<f64>() / sampled.len() as f64;
    n_hat * mean_g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::bottomk_from_order;
    use adsketch_util::stats::ErrorStats;
    use adsketch_util::RankHasher;

    fn order(n: usize) -> Vec<(NodeId, f64)> {
        (0..n).map(|i| (i as NodeId, i as f64)).collect()
    }

    #[test]
    fn basic_is_exact_below_k() {
        let h = RankHasher::new(1);
        let ranks: Vec<f64> = (0..10u64).map(|v| h.rank(v)).collect();
        let ads = bottomk_from_order(16, &order(10), &ranks);
        assert_eq!(reachable(&ads), 10.0);
        assert_eq!(cardinality_at(&ads, 4.0), 5.0);
    }

    #[test]
    fn basic_unbiased_at_scale() {
        let n = 500;
        let k = 8;
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..3000u64 {
            let h = RankHasher::new(seed);
            let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
            let ads = bottomk_from_order(k, &order(n), &ranks);
            err.push(reachable(&ads));
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "z = {z}");
    }

    #[test]
    fn hip_variance_beats_basic_by_factor_two() {
        // The headline claim (Theorem 5.1): HIP halves the variance.
        let n = 2000;
        let k = 16;
        let mut basic_err = ErrorStats::new(n as f64);
        let mut hip_err = ErrorStats::new(n as f64);
        for seed in 0..2500u64 {
            let h = RankHasher::new(seed + 40_000);
            let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
            let ads = bottomk_from_order(k, &order(n), &ranks);
            basic_err.push(reachable(&ads));
            hip_err.push(ads.hip_weights().reachable_estimate());
        }
        let var_ratio = (basic_err.nrmse() / hip_err.nrmse()).powi(2);
        assert!(
            (var_ratio - 2.0).abs() < 0.5,
            "variance ratio {var_ratio} should be ≈ 2"
        );
    }

    #[test]
    fn naive_qg_unbiased_but_noisier_for_concentrated_g() {
        // g concentrated on the closest 5% of nodes.
        let n = 1000usize;
        let k = 16;
        let cutoff = (n / 20) as f64;
        let truth = n as f64 / 20.0;
        let mut naive_err = ErrorStats::new(truth);
        let mut hip_err = ErrorStats::new(truth);
        for seed in 0..1200u64 {
            let h = RankHasher::new(seed + 90_000);
            let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
            let ads = bottomk_from_order(k, &order(n), &ranks);
            let g = |_: NodeId, d: f64| if d < cutoff { 1.0 } else { 0.0 };
            naive_err.push(naive_qg(&ads, g));
            hip_err.push(ads.hip_weights().qg(g));
        }
        // Both unbiased…
        let z = naive_err.relative_bias() / naive_err.bias_std_error();
        assert!(z.abs() < 4.5, "naive bias z = {z}");
        // …but HIP is far more accurate on close-concentrated g.
        assert!(
            hip_err.nrmse() * 2.0 < naive_err.nrmse(),
            "HIP {} vs naive {}",
            hip_err.nrmse(),
            naive_err.nrmse()
        );
    }

    #[test]
    fn naive_qg_empty() {
        let ads = BottomKAds::empty(4);
        assert_eq!(naive_qg(&ads, |_, _| 1.0), 0.0);
    }
}
