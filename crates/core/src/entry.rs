//! ADS entries and the canonical closeness order.
//!
//! The paper defines ADSs assuming unique distances, "which can be achieved
//! using tie breaking". This crate fixes the canonical order around any
//! source node as the lexicographic order on `(distance, node id)` — a
//! deterministic total order independent of the random ranks, so the HIP
//! analysis of Section 5 applies unchanged. Every builder and estimator in
//! this crate uses exactly this order, which is what makes their outputs
//! bitwise comparable.

use adsketch_graph::NodeId;
use std::cmp::Ordering;

/// One ADS entry: a sampled node, its distance from the sketch's source,
/// and its random rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdsEntry {
    /// The sampled node.
    pub node: NodeId,
    /// Shortest-path distance from the source to `node`.
    pub dist: f64,
    /// The node's random rank (`U[0,1)` for uniform sketches; an `Exp(β)`
    /// value for weighted sketches, see [`crate::weighted`]).
    pub rank: f64,
}

impl AdsEntry {
    /// Creates an entry.
    #[inline]
    pub fn new(node: NodeId, dist: f64, rank: f64) -> Self {
        Self { node, dist, rank }
    }

    /// Canonical comparison by `(dist, node)`.
    ///
    /// `inline(always)`: this comparator (and [`AdsEntry::cmp_key`]) sits
    /// in the binary-search inner loop of every builder admission test;
    /// it must collapse to branchless compares even inside closures the
    /// inliner would otherwise rank as cold.
    #[inline(always)]
    pub fn cmp_canonical(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.node.cmp(&other.node))
    }

    /// Canonical comparison against a bare `(dist, node)` key.
    #[inline(always)]
    pub fn cmp_key(&self, dist: f64, node: NodeId) -> Ordering {
        self.dist.total_cmp(&dist).then(self.node.cmp(&node))
    }
}

/// Compares two `(dist, node)` keys canonically.
#[inline]
pub fn key_cmp(a: (f64, NodeId), b: (f64, NodeId)) -> Ordering {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_distance_first() {
        let a = AdsEntry::new(5, 1.0, 0.9);
        let b = AdsEntry::new(2, 2.0, 0.1);
        assert_eq!(a.cmp_canonical(&b), Ordering::Less);
    }

    #[test]
    fn canonical_order_breaks_ties_by_id() {
        let a = AdsEntry::new(3, 1.0, 0.9);
        let b = AdsEntry::new(7, 1.0, 0.1);
        assert_eq!(a.cmp_canonical(&b), Ordering::Less);
        assert_eq!(b.cmp_canonical(&a), Ordering::Greater);
        assert_eq!(a.cmp_canonical(&a), Ordering::Equal);
    }

    #[test]
    fn key_cmp_matches_entry_cmp() {
        let a = AdsEntry::new(3, 1.5, 0.2);
        assert_eq!(a.cmp_key(1.5, 3), Ordering::Equal);
        assert_eq!(a.cmp_key(1.5, 4), Ordering::Less);
        assert_eq!(a.cmp_key(1.4, 0), Ordering::Greater);
        assert_eq!(key_cmp((1.0, 2), (1.0, 3)), Ordering::Less);
    }
}
