//! The ADS-size-only cardinality estimator (paper, Section 8, Lemma 8.1).
//!
//! The number of ADS entries within distance `d` is itself informative:
//! the unique unbiased estimator of `|N_d(v)|` based *solely* on that count
//! `s` is
//!
//! ```text
//! E_s = s                       for s ≤ k
//! E_s = k(1 + 1/k)^(s−k+1) − 1  for s > k
//! ```
//!
//! It is weaker than HIP (which also uses ranks and distances) but applies
//! when only update *counts* are observable — e.g. watching a black-box
//! approximate counter being modified.

use adsketch_graph::NodeId;

use crate::bottomk::BottomKAds;

/// The Lemma 8.1 estimator `E_s` for a bottom-k ADS prefix of size `s`.
pub fn size_estimator(s: usize, k: usize) -> f64 {
    assert!(k >= 1);
    if s <= k {
        s as f64
    } else {
        k as f64 * (1.0 + 1.0 / k as f64).powi((s - k + 1) as i32) - 1.0
    }
}

/// Applies the size estimator to the prefix of `ads` within distance `d`.
pub fn cardinality_at(ads: &BottomKAds, d: f64) -> f64 {
    size_estimator(ads.size_at(d), ads.k())
}

/// [`cardinality_at`] for node `v` of any [`crate::view::AdsView`] back
/// end (heap-backed or frozen).
pub fn cardinality_at_in<V: crate::view::AdsView + ?Sized>(view: &V, v: NodeId, d: f64) -> f64 {
    size_estimator(view.size_at(v, d), view.k())
}

/// For k = 1 the estimator is simply `2^s − 1`… no: the paper notes it "is
/// simply `2^s`" for the count of *updates*; with our convention `E_s =
/// (1+1)^{s−1+1} − 1 = 2^s − 1`, which is the unbiased form for counting
/// the source node too. This helper documents the k = 1 special case used
/// in tests.
pub fn size_estimator_k1(s: usize) -> f64 {
    size_estimator(s, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::bottomk_from_order;
    use adsketch_graph::NodeId;
    use adsketch_util::stats::ErrorStats;
    use adsketch_util::RankHasher;

    #[test]
    fn small_sizes_are_identity() {
        for k in [1usize, 4, 16] {
            for s in 0..=k {
                assert_eq!(size_estimator(s, k), s as f64, "s={s}, k={k}");
            }
        }
    }

    #[test]
    fn recurrence_boundary_continuous() {
        // At s = k the closed form also gives k: k(1+1/k)^1 − 1 = k.
        for k in [1usize, 3, 8] {
            let closed = k as f64 * (1.0 + 1.0 / k as f64) - 1.0;
            assert!((closed - k as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn first_step_matches_lemma() {
        // E_{k+1} = (k+1)²/k − 1 (derived explicitly in the paper).
        for k in [2usize, 5, 10] {
            let expect = ((k + 1) * (k + 1)) as f64 / k as f64 - 1.0;
            assert!((size_estimator(k + 1, k) - expect).abs() < 1e-9, "k = {k}");
        }
    }

    #[test]
    fn grows_exponentially() {
        let k = 8;
        let e1 = size_estimator(30, k);
        let e2 = size_estimator(31, k);
        assert!((e2 + 1.0) / (e1 + 1.0) - (1.0 + 1.0 / k as f64) < 1e-9);
    }

    /// The estimator must be unbiased over the randomness of the ranks:
    /// E[E_S] = n where S = |ADS prefix| for a neighborhood of size n.
    #[test]
    fn unbiased_over_ads_randomness() {
        let n = 200usize;
        let k = 4;
        let order: Vec<(NodeId, f64)> = (0..n).map(|i| (i as NodeId, i as f64)).collect();
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..6000u64 {
            let h = RankHasher::new(seed);
            let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
            let ads = bottomk_from_order(k, &order, &ranks);
            err.push(size_estimator(ads.len(), k));
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "size-estimator bias z = {z}");
    }

    #[test]
    fn weaker_than_hip() {
        let n = 500usize;
        let k = 8;
        let order: Vec<(NodeId, f64)> = (0..n).map(|i| (i as NodeId, i as f64)).collect();
        let mut size_err = ErrorStats::new(n as f64);
        let mut hip_err = ErrorStats::new(n as f64);
        for seed in 0..1200u64 {
            let h = RankHasher::new(seed + 7_777);
            let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
            let ads = bottomk_from_order(k, &order, &ranks);
            size_err.push(size_estimator(ads.len(), k));
            hip_err.push(ads.hip_weights().reachable_estimate());
        }
        assert!(
            hip_err.nrmse() < size_err.nrmse(),
            "HIP {} must beat size-only {}",
            hip_err.nrmse(),
            size_err.nrmse()
        );
    }

    #[test]
    fn k1_special_case() {
        assert_eq!(size_estimator_k1(0), 0.0);
        assert_eq!(size_estimator_k1(1), 1.0);
        assert_eq!(size_estimator_k1(3), 7.0); // 2³ − 1
    }

    #[test]
    fn cardinality_at_uses_prefix() {
        let h = RankHasher::new(12);
        let n = 100usize;
        let order: Vec<(NodeId, f64)> = (0..n).map(|i| (i as NodeId, i as f64)).collect();
        let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
        let ads = bottomk_from_order(4, &order, &ranks);
        let full = cardinality_at(&ads, f64::INFINITY);
        let half = cardinality_at(&ads, (n / 2) as f64);
        assert!(full >= half);
    }
}
