//! The bottom-k all-distances sketch (paper, Section 2, equation (4)).
//!
//! `ADS(v)` contains node `j` iff `r(j) < kth_r(Φ_<j(v))` — j's rank is
//! among the k smallest of the nodes strictly closer to `v` (canonical
//! `(dist, id)` order). Equivalently it is the union over all `d` of the
//! bottom-k MinHash sketches of the neighborhoods `N_d(v)`.

use adsketch_graph::NodeId;
use adsketch_minhash::BottomKSketch;
use adsketch_util::topk::KSmallest;

use crate::entry::AdsEntry;
use crate::hip::{HipItem, HipWeights};

/// A bottom-k ADS of one node: entries in canonical `(dist, node)` order.
#[derive(Debug, Clone, PartialEq)]
pub struct BottomKAds {
    k: usize,
    entries: Vec<AdsEntry>,
    /// Entry indices sorted by node id: turns [`BottomKAds::get`] into a
    /// binary search. An ADS holds ~`k ln n` entries (hundreds for
    /// realistic k), enough that query-side linear scans showed up in the
    /// similarity/centrality profiles; 4 bytes per entry buys O(log)
    /// lookups. Derived from `entries`, so `PartialEq` stays consistent.
    by_node: Vec<u32>,
}

fn node_index(entries: &[AdsEntry]) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..entries.len() as u32).collect();
    idx.sort_unstable_by_key(|&i| entries[i as usize].node);
    idx
}

impl BottomKAds {
    /// Wraps entries that are already in canonical order and satisfy the
    /// bottom-k ADS inclusion invariant. Validates in debug builds; use
    /// [`BottomKAds::validate`] to check explicitly.
    pub fn from_entries(k: usize, entries: Vec<AdsEntry>) -> Self {
        assert!(k >= 1);
        let by_node = node_index(&entries);
        let ads = Self {
            k,
            entries,
            by_node,
        };
        debug_assert_eq!(ads.validate(), Ok(()));
        ads
    }

    /// An empty sketch (used as a starting point by builders).
    pub fn empty(k: usize) -> Self {
        assert!(k >= 1);
        Self {
            k,
            entries: Vec::new(),
            by_node: Vec::new(),
        }
    }

    /// The sketch parameter k.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the sketch has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in canonical `(dist, node)` order.
    #[inline]
    pub fn entries(&self) -> &[AdsEntry] {
        &self.entries
    }

    /// The entry for `node`, if sampled. O(log len) via the node index.
    #[inline]
    pub fn get(&self, node: NodeId) -> Option<&AdsEntry> {
        self.by_node
            .binary_search_by_key(&node, |&i| self.entries[i as usize].node)
            .ok()
            .map(|pos| &self.entries[self.by_node[pos] as usize])
    }

    /// Number of entries with distance ≤ `d` — the input of the size-only
    /// estimator ([`crate::size_est`]).
    pub fn size_at(&self, d: f64) -> usize {
        self.entries.partition_point(|e| e.dist <= d)
    }

    /// Extracts the bottom-k MinHash sketch of the neighborhood `N_d(v)`:
    /// the k smallest-ranked entries with distance ≤ `d` (paper, Section 2:
    /// "an ADS contains a MinHash sketch of `N_d(v)` for any `d`").
    pub fn minhash_at(&self, d: f64) -> BottomKSketch {
        let mut sketch = BottomKSketch::new(self.k);
        for e in &self.entries[..self.size_at(d)] {
            sketch.insert_ranked(e.rank, e.node as u64);
        }
        sketch
    }

    /// Computes the HIP adjusted weights (paper, Section 5.1, Lemma 5.1):
    /// scanning entries by increasing distance, entry `j`'s HIP probability
    /// is `τ_vj = kth smallest rank among closer entries` (1 while fewer
    /// than k are closer) and its adjusted weight is `1/τ_vj`.
    ///
    /// Ranks must lie in `[0, 1]` (uniform); weighted sketches use
    /// [`crate::weighted::weighted_hip`] instead.
    ///
    /// The threshold scan is `O(len · log k)` and runs on **every call**;
    /// freeze the owning set ([`crate::AdsSet::freeze`]) to precompute the
    /// weights once for query serving.
    pub fn hip_weights(&self) -> HipWeights {
        let mut items = Vec::with_capacity(self.entries.len());
        self.hip_scan(|it| items.push(it));
        HipWeights::from_sorted_items(items)
    }

    /// Streams the HIP items of this sketch in canonical order without
    /// materializing a [`HipWeights`] — the allocation-free core of
    /// [`BottomKAds::hip_weights`], also used by
    /// [`crate::AdsSet::freeze`] to fill the precomputed weight column.
    pub fn hip_scan(&self, mut f: impl FnMut(HipItem)) {
        let mut ks = KSmallest::new(self.k);
        for e in &self.entries {
            debug_assert!(
                (0.0..=1.0).contains(&e.rank),
                "uniform HIP requires ranks in [0,1]; got {}",
                e.rank
            );
            let tau = ks.threshold_rank_or(1.0);
            let entered = ks.offer(e.rank, e.node as u64);
            debug_assert!(entered, "every ADS entry is a prefix bottom-k member");
            f(HipItem {
                node: e.node,
                dist: e.dist,
                weight: 1.0 / tau,
            });
        }
    }

    /// Heap bytes owned by this sketch's vectors (by capacity), excluding
    /// `size_of::<Self>` — the caller accounts for the header (it may be
    /// inline in a parent `Vec`, as in [`crate::AdsSet`]).
    pub fn heap_bytes_excluding_self(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<AdsEntry>()
            + self.by_node.capacity() * std::mem::size_of::<u32>()
    }

    /// Checks the structural invariants: canonical strict ordering, finite
    /// non-negative ranks and distances, and the bottom-k inclusion rule
    /// (each entry's rank is below the k-th smallest among closer entries).
    pub fn validate(&self) -> Result<(), String> {
        let mut ks = KSmallest::new(self.k);
        let mut prev: Option<&AdsEntry> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if !(e.dist.is_finite() && e.dist >= 0.0) {
                return Err(format!("entry {i}: invalid distance {}", e.dist));
            }
            if !(e.rank.is_finite() && e.rank >= 0.0) {
                return Err(format!("entry {i}: invalid rank {}", e.rank));
            }
            if let Some(p) = prev {
                if p.cmp_canonical(e) != std::cmp::Ordering::Less {
                    return Err(format!(
                        "entries {i}−1 and {i} out of canonical order: ({}, {}) vs ({}, {})",
                        p.dist, p.node, e.dist, e.node
                    ));
                }
            }
            if !ks.would_enter(e.rank, e.node as u64) {
                return Err(format!(
                    "entry {i} (node {}) violates the bottom-k inclusion rule",
                    e.node
                ));
            }
            ks.offer(e.rank, e.node as u64);
            prev = Some(e);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bypasses the `from_entries` debug validation for invariant-violation
    /// tests (the node index itself is invariant-agnostic).
    fn raw(k: usize, entries: Vec<AdsEntry>) -> BottomKAds {
        let by_node = node_index(&entries);
        BottomKAds {
            k,
            entries,
            by_node,
        }
    }

    /// ADS built by hand for k = 1 over the paper's Example 2.1 scenario:
    /// nodes sorted by distance from `a` with ranks chosen so the inclusion
    /// pattern matches the example (see `reference` tests for the full
    /// reconstruction).
    fn example_ads() -> BottomKAds {
        BottomKAds::from_entries(
            1,
            vec![
                AdsEntry::new(0, 0.0, 0.5),
                AdsEntry::new(2, 9.0, 0.4),
                AdsEntry::new(3, 18.0, 0.2),
                AdsEntry::new(7, 26.0, 0.1),
            ],
        )
    }

    #[test]
    fn size_at_counts_prefix() {
        let ads = example_ads();
        assert_eq!(ads.size_at(-1.0), 0);
        assert_eq!(ads.size_at(0.0), 1);
        assert_eq!(ads.size_at(9.0), 2);
        assert_eq!(ads.size_at(17.9), 2);
        assert_eq!(ads.size_at(100.0), 4);
    }

    #[test]
    fn get_and_len() {
        let ads = example_ads();
        assert_eq!(ads.len(), 4);
        assert_eq!(ads.get(3).unwrap().dist, 18.0);
        assert!(ads.get(5).is_none());
    }

    #[test]
    fn minhash_at_keeps_k_smallest_ranks() {
        let ads = BottomKAds::from_entries(
            2,
            vec![
                AdsEntry::new(0, 0.0, 0.5),
                AdsEntry::new(1, 1.0, 0.7),
                AdsEntry::new(2, 2.0, 0.4),
                AdsEntry::new(3, 3.0, 0.2),
            ],
        );
        let s = ads.minhash_at(2.0);
        let ranks: Vec<f64> = s.items().iter().map(|i| i.rank).collect();
        assert_eq!(ranks, vec![0.4, 0.5]);
        let s_all = ads.minhash_at(f64::INFINITY);
        let ranks: Vec<f64> = s_all.items().iter().map(|i| i.rank).collect();
        assert_eq!(ranks, vec![0.2, 0.4]);
    }

    #[test]
    fn hip_weights_bottom1() {
        // k = 1: τ of each entry is the minimum rank among closer entries.
        let ads = example_ads();
        let hip = ads.hip_weights();
        let w: Vec<f64> = hip.items().iter().map(|i| i.weight).collect();
        assert_eq!(w[0], 1.0); // first node: τ = 1
        assert!((w[1] - 1.0 / 0.5).abs() < 1e-12);
        assert!((w[2] - 1.0 / 0.4).abs() < 1e-12);
        assert!((w[3] - 1.0 / 0.2).abs() < 1e-12);
    }

    #[test]
    fn hip_weights_first_k_are_one() {
        let ads = BottomKAds::from_entries(
            3,
            vec![
                AdsEntry::new(0, 0.0, 0.9),
                AdsEntry::new(1, 1.0, 0.8),
                AdsEntry::new(2, 2.0, 0.7),
                AdsEntry::new(3, 3.0, 0.1),
            ],
        );
        let hip = ads.hip_weights();
        let w: Vec<f64> = hip.items().iter().map(|i| i.weight).collect();
        assert_eq!(&w[..3], &[1.0, 1.0, 1.0]);
        assert!((w[3] - 1.0 / 0.9).abs() < 1e-12); // τ = 3rd smallest of {.9,.8,.7}
    }

    #[test]
    fn hip_weights_nondecreasing_in_distance() {
        // Paper, Section 5.1: adjusted weights increase with distance.
        let ads = BottomKAds::from_entries(
            2,
            vec![
                AdsEntry::new(0, 0.0, 0.6),
                AdsEntry::new(1, 1.0, 0.5),
                AdsEntry::new(2, 2.0, 0.3),
                AdsEntry::new(3, 3.0, 0.2),
                AdsEntry::new(4, 4.0, 0.1),
            ],
        );
        let hip = ads.hip_weights();
        let w: Vec<f64> = hip.items().iter().map(|i| i.weight).collect();
        for pair in w.windows(2) {
            assert!(pair[1] >= pair[0], "weights must not decrease: {w:?}");
        }
    }

    #[test]
    fn validate_rejects_out_of_order() {
        let ads = raw(
            1,
            vec![AdsEntry::new(0, 1.0, 0.1), AdsEntry::new(1, 0.5, 0.05)],
        );
        assert!(ads.validate().unwrap_err().contains("canonical order"));
    }

    #[test]
    fn validate_rejects_inclusion_violation() {
        // Second entry's rank (0.8) is not below the min of closer ranks
        // (0.5) for k = 1.
        let ads = raw(
            1,
            vec![AdsEntry::new(0, 0.0, 0.5), AdsEntry::new(1, 1.0, 0.8)],
        );
        assert!(ads.validate().unwrap_err().contains("inclusion"));
    }

    #[test]
    fn validate_rejects_bad_values() {
        let ads = raw(1, vec![AdsEntry::new(0, f64::NAN, 0.5)]);
        assert!(ads.validate().is_err());
        let ads = raw(1, vec![AdsEntry::new(0, 0.0, f64::INFINITY)]);
        assert!(ads.validate().is_err());
    }

    #[test]
    fn get_resolves_every_node_and_rejects_strangers() {
        // The node index must agree with a linear scan on a non-trivially
        // ordered sketch (canonical order ≠ node-id order).
        let ads = BottomKAds::from_entries(
            2,
            vec![
                AdsEntry::new(9, 0.0, 0.5),
                AdsEntry::new(1, 1.0, 0.4),
                AdsEntry::new(7, 2.0, 0.2),
                AdsEntry::new(3, 3.0, 0.1),
            ],
        );
        for e in ads.entries() {
            let found = ads.get(e.node).expect("sampled node must resolve");
            assert_eq!(found.node, e.node);
            assert_eq!(found.dist, e.dist);
        }
        for missing in [0u32, 2, 4, 8, 100] {
            assert!(ads.get(missing).is_none(), "node {missing}");
        }
    }

    #[test]
    fn empty_ads() {
        let ads = BottomKAds::empty(4);
        assert!(ads.is_empty());
        assert_eq!(ads.validate(), Ok(()));
        assert_eq!(ads.hip_weights().reachable_estimate(), 0.0);
        assert_eq!(ads.minhash_at(10.0).len(), 0);
    }
}
