//! Error type for ADS construction.

use std::fmt;

/// Errors produced by ADS builders.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The DP builder only supports unweighted graphs (paper, Section 3:
    /// DP "applies to unweighted graphs"; LocalUpdates is its weighted
    /// extension).
    RequiresUnweighted,
    /// A rank array did not match the graph's node count.
    RankCountMismatch {
        /// Number of ranks supplied.
        ranks: usize,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// A rank value was not finite and non-negative.
    InvalidRank {
        /// The offending value.
        rank: f64,
    },
    /// The approximation parameter ε was negative or not finite.
    InvalidEpsilon {
        /// The offending value.
        epsilon: f64,
    },
    /// An edge endpoint fell outside the node range of a dynamic sketch
    /// set.
    NodeOutOfRange {
        /// The offending endpoint.
        node: u32,
        /// Number of nodes the sketch set was created with.
        nodes: usize,
    },
    /// An edge weight was negative or not finite.
    InvalidWeight {
        /// The offending value.
        weight: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::RequiresUnweighted => {
                write!(f, "the DP builder requires an unweighted graph; use LocalUpdates or PrunedDijkstra for weighted graphs")
            }
            CoreError::RankCountMismatch { ranks, nodes } => {
                write!(
                    f,
                    "rank array has {ranks} entries but the graph has {nodes} nodes"
                )
            }
            CoreError::InvalidRank { rank } => {
                write!(f, "rank {rank} must be finite and non-negative")
            }
            CoreError::InvalidEpsilon { epsilon } => {
                write!(f, "epsilon {epsilon} must be finite and non-negative")
            }
            CoreError::NodeOutOfRange { node, nodes } => {
                write!(f, "edge endpoint {node} is outside the {nodes}-node range")
            }
            CoreError::InvalidWeight { weight } => {
                write!(f, "edge weight {weight} must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CoreError::RequiresUnweighted
            .to_string()
            .contains("unweighted"));
        let e = CoreError::RankCountMismatch { ranks: 3, nodes: 5 };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
        assert!(CoreError::InvalidRank { rank: f64::NAN }
            .to_string()
            .contains("finite"));
        assert!(CoreError::InvalidEpsilon { epsilon: -1.0 }
            .to_string()
            .contains("-1"));
    }
}
