//! Brute-force, order-based ADS construction.
//!
//! The ADS of a node depends only on the sequence of `(node, distance)`
//! pairs in canonical closeness order and on the random ranks (paper,
//! Section 5.5 uses this fact to run graph-free simulations). These
//! builders take that order explicitly — computed exactly via Dijkstra for
//! graphs, or synthesized for stream simulations — and apply the inclusion
//! definitions literally. They are the correctness oracle for the scalable
//! builders in [`crate::builder`], and the only builders needed by the
//! simulation harness.

use adsketch_graph::dijkstra::dijkstra_order_canonical;
use adsketch_graph::{Graph, NodeId};
use adsketch_util::topk::KSmallest;
use adsketch_util::RankHasher;

use crate::ads_set::AdsSet;
use crate::bottomk::BottomKAds;
use crate::entry::AdsEntry;
use crate::kmins::{KMinsAds, KMinsRecord};
use crate::kpartition::{KPartRecord, KPartitionAds};

fn assert_canonical_order(order: &[(NodeId, f64)]) {
    debug_assert!(
        order.windows(2).all(|w| (w[0].1, w[0].0) < (w[1].1, w[1].0)
            || (w[0].1.total_cmp(&w[1].1).then(w[0].0.cmp(&w[1].0)) == std::cmp::Ordering::Less)),
        "order must be sorted by (dist, node)"
    );
}

/// Builds the bottom-k ADS from nodes listed in canonical `(dist, node)`
/// order with their ranks: node `j` is included iff its `(rank, id)` pair is
/// below the k-th smallest among the nodes before it (definition (4)).
pub fn bottomk_from_order(k: usize, order: &[(NodeId, f64)], ranks: &[f64]) -> BottomKAds {
    assert!(k >= 1);
    assert_canonical_order(order);
    let mut ks = KSmallest::new(k);
    let mut entries = Vec::new();
    for &(node, dist) in order {
        let r = ranks[node as usize];
        if ks.would_enter(r, node as u64) {
            entries.push(AdsEntry::new(node, dist, r));
            ks.offer(r, node as u64);
        }
    }
    BottomKAds::from_entries(k, entries)
}

/// Builds the k-mins ADS (k independent bottom-1 ADSs over the
/// permutations of `hasher`) from a canonical order.
pub fn kmins_from_order(k: usize, order: &[(NodeId, f64)], hasher: &RankHasher) -> KMinsAds {
    assert!(k >= 1);
    assert_canonical_order(order);
    let mut minima = vec![1.0f64; k];
    let mut records = Vec::new();
    for &(node, dist) in order {
        for (h, m) in minima.iter_mut().enumerate() {
            let r = hasher.perm_rank(node as u64, h as u32);
            if r < *m {
                records.push(KMinsRecord {
                    node,
                    dist,
                    rank: r,
                    perm: h as u32,
                });
                *m = r;
            }
        }
    }
    KMinsAds::from_records(k, records)
}

/// Builds the k-partition ADS (bucket-wise bottom-1) from a canonical
/// order; buckets and ranks come from `hasher`.
pub fn kpartition_from_order(
    k: usize,
    order: &[(NodeId, f64)],
    hasher: &RankHasher,
) -> KPartitionAds {
    assert!(k >= 1);
    assert_canonical_order(order);
    let mut minima = vec![1.0f64; k];
    let mut records = Vec::new();
    for &(node, dist) in order {
        let b = hasher.bucket(node as u64, k);
        let r = hasher.rank(node as u64);
        if r < minima[b] {
            records.push(KPartRecord {
                node,
                dist,
                rank: r,
                bucket: b as u32,
            });
            minima[b] = r;
        }
    }
    KPartitionAds::from_records(k, records)
}

/// Brute-force forward bottom-k ADS set for a graph: one exact Dijkstra per
/// node. O(n·m log n) — the validation oracle for the scalable builders.
pub fn build_bottomk(g: &Graph, k: usize, ranks: &[f64]) -> AdsSet {
    assert_eq!(ranks.len(), g.num_nodes());
    let sketches = (0..g.num_nodes() as NodeId)
        .map(|v| {
            let order = dijkstra_order_canonical(g, v);
            bottomk_from_order(k, &order, ranks)
        })
        .collect();
    AdsSet::from_sketches(k, sketches)
}

/// Brute-force forward k-mins ADS set.
pub fn build_kmins(g: &Graph, k: usize, hasher: &RankHasher) -> Vec<KMinsAds> {
    (0..g.num_nodes() as NodeId)
        .map(|v| kmins_from_order(k, &dijkstra_order_canonical(g, v), hasher))
        .collect()
}

/// Brute-force forward k-partition ADS set.
pub fn build_kpartition(g: &Graph, k: usize, hasher: &RankHasher) -> Vec<KPartitionAds> {
    (0..g.num_nodes() as NodeId)
        .map(|v| kpartition_from_order(k, &dijkstra_order_canonical(g, v), hasher))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 2.1. The figure's rank table is garbled in the
    /// text dump, but the example's stated inclusions pin the rank order
    /// down uniquely over the value set {0.1,…,0.8}:
    /// a=0.5, b=0.7, c=0.4, d=0.2, e=0.6, f=0.3, g=0.8, h=0.1.
    const EX_RANKS: [f64; 8] = [0.5, 0.7, 0.4, 0.2, 0.6, 0.3, 0.8, 0.1];
    // Node ids: a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7.

    fn forward_order_from_a() -> Vec<(NodeId, f64)> {
        // "The order is a,b,c,d,e,f,g,h with respective distances
        //  (0, 8, 9, 18, 19, 20, 21, 26)."
        vec![
            (0, 0.0),
            (1, 8.0),
            (2, 9.0),
            (3, 18.0),
            (4, 19.0),
            (5, 20.0),
            (6, 21.0),
            (7, 26.0),
        ]
    }

    fn backward_order_from_b() -> Vec<(NodeId, f64)> {
        // "b,a,g,c,h,d,e,f with respective reverse distances
        //  (0, 8, 18, 30, 31, 39, 40, 41)."
        vec![
            (1, 0.0),
            (0, 8.0),
            (6, 18.0),
            (2, 30.0),
            (7, 31.0),
            (3, 39.0),
            (4, 40.0),
            (5, 41.0),
        ]
    }

    #[test]
    fn example_2_1_forward_ads_of_a() {
        let ads = bottomk_from_order(1, &forward_order_from_a(), &EX_RANKS);
        let got: Vec<(f64, NodeId)> = ads.entries().iter().map(|e| (e.dist, e.node)).collect();
        // ADS(a) = {(0,a), (9,c), (18,d), (26,h)}
        assert_eq!(got, vec![(0.0, 0), (9.0, 2), (18.0, 3), (26.0, 7)]);
    }

    #[test]
    fn example_2_1_backward_ads_of_b() {
        let ads = bottomk_from_order(1, &backward_order_from_b(), &EX_RANKS);
        let got: Vec<(f64, NodeId)> = ads.entries().iter().map(|e| (e.dist, e.node)).collect();
        // ←ADS(b) = {(0,b), (8,a), (30,c), (31,h)}
        assert_eq!(got, vec![(0.0, 1), (8.0, 0), (30.0, 2), (31.0, 7)]);
    }

    #[test]
    fn example_2_1_bottom_2_extends_bottom_1() {
        let ads2 = bottomk_from_order(2, &forward_order_from_a(), &EX_RANKS);
        let got: Vec<(f64, NodeId)> = ads2.entries().iter().map(|e| (e.dist, e.node)).collect();
        // "The bottom-2 forward ADS of a … also includes {(8,b), (20,f)}."
        assert_eq!(
            got,
            vec![
                (0.0, 0),
                (8.0, 1),
                (9.0, 2),
                (18.0, 3),
                (20.0, 5),
                (26.0, 7)
            ]
        );
    }

    #[test]
    fn bottomk_inclusion_probability_matches_k_over_i() {
        // Lemma 2.2's core fact: the i-th node in distance order enters the
        // bottom-k ADS with probability min(1, k/i).
        let k = 3;
        let n = 40usize;
        let order: Vec<(NodeId, f64)> = (0..n).map(|i| (i as NodeId, i as f64)).collect();
        let mut counts = vec![0u32; n];
        let runs = 20_000;
        for seed in 0..runs {
            let h = RankHasher::new(seed);
            let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
            let ads = bottomk_from_order(k, &order, &ranks);
            for e in ads.entries() {
                counts[e.node as usize] += 1;
            }
        }
        for i in [1usize, 2, 3, 5, 10, 20, 40] {
            let p_hat = counts[i - 1] as f64 / runs as f64;
            let p = (k as f64 / i as f64).min(1.0);
            assert!(
                (p_hat - p).abs() < 0.02,
                "node {i}: empirical {p_hat}, theory {p}"
            );
        }
    }

    #[test]
    fn ads_size_matches_lemma_2_2() {
        use adsketch_util::harmonic::expected_bottomk_ads_size;
        let k = 4;
        let n = 500usize;
        let order: Vec<(NodeId, f64)> = (0..n).map(|i| (i as NodeId, i as f64)).collect();
        let mut total = 0usize;
        let runs = 600;
        for seed in 0..runs {
            let h = RankHasher::new(seed + 50_000);
            let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
            total += bottomk_from_order(k, &order, &ranks).len();
        }
        let mean = total as f64 / runs as f64;
        let expect = expected_bottomk_ads_size(n as u64, k);
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean size {mean}, Lemma 2.2 gives {expect}"
        );
    }

    #[test]
    fn kmins_ads_is_k_bottom1_ads() {
        // Each permutation's records must form a bottom-1 ADS: strictly
        // decreasing ranks in canonical order.
        let n = 200usize;
        let order: Vec<(NodeId, f64)> = (0..n).map(|i| (i as NodeId, i as f64)).collect();
        let h = RankHasher::new(9);
        let ads = kmins_from_order(4, &order, &h);
        for perm in 0..4u32 {
            let ranks: Vec<f64> = ads
                .records()
                .iter()
                .filter(|r| r.perm == perm)
                .map(|r| r.rank)
                .collect();
            assert!(!ranks.is_empty());
            for w in ranks.windows(2) {
                assert!(w[1] < w[0], "perm {perm}: prefix minima must decrease");
            }
        }
    }

    #[test]
    fn kpartition_records_unique_per_node() {
        let n = 300usize;
        let order: Vec<(NodeId, f64)> = (0..n).map(|i| (i as NodeId, i as f64)).collect();
        let h = RankHasher::new(10);
        let ads = kpartition_from_order(8, &order, &h);
        let mut seen = std::collections::HashSet::new();
        for r in ads.records() {
            assert!(seen.insert(r.node), "node {} sampled twice", r.node);
            assert_eq!(h.bucket(r.node as u64, 8) as u32, r.bucket);
        }
        // Bucket-wise prefix minima must decrease.
        for b in 0..8u32 {
            let ranks: Vec<f64> = ads
                .records()
                .iter()
                .filter(|r| r.bucket == b)
                .map(|r| r.rank)
                .collect();
            for w in ranks.windows(2) {
                assert!(w[1] < w[0], "bucket {b}: prefix minima must decrease");
            }
        }
    }

    #[test]
    fn graph_brute_force_small_cycle() {
        let g = Graph::directed(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let ranks = crate::uniform_ranks(4, 3);
        let set = build_bottomk(&g, 2, &ranks);
        for v in 0..4 {
            let ads = set.sketch(v);
            assert!(ads.validate().is_ok());
            // k = 2 over a 4-cycle: at least 2 entries, at most 4.
            assert!(ads.len() >= 2 && ads.len() <= 4);
            // Self entry always present at distance 0.
            assert_eq!(ads.entries()[0].node, v);
            assert_eq!(ads.entries()[0].dist, 0.0);
        }
    }
}
