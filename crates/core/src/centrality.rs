//! Distance-decay closeness centralities over HIP weights
//! (paper, equations (2)/(3) and Corollary 5.2).
//!
//! All of these are instances of `C_{α,β}(v) = Σ_j α(d_vj) β(j)` with a
//! non-increasing kernel `α` and an arbitrary non-negative node filter `β`
//! — estimated unbiasedly from `ADS(v)` with CV ≤ `1/sqrt(2(k−1))`
//! (uniform β; see [`crate::weighted`] for β-aware sketches with the same
//! guarantee for non-uniform β).
//!
//! Each centrality comes in two forms: on a materialized [`HipWeights`]
//! and `_in` (generic over any [`AdsView`] back end, allocation-free and
//! bitwise identical). Batch evaluation over all nodes lives in
//! [`crate::engine::QueryEngine`].

use adsketch_graph::NodeId;

use crate::hip::HipWeights;
use crate::view::AdsView;

/// Standard decay kernels from the paper's introduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecayKernel {
    /// `α(x) = 1` for `x ≤ d`, else 0 — neighborhood cardinality.
    Threshold(f64),
    /// `α(x) = base^(−x)` — exponential attenuation (Dangalchev's residual
    /// closeness uses base 2).
    Exponential {
        /// The attenuation base (> 1).
        base: f64,
    },
    /// `α(x) = 1/x` for `x > 0`, `α(0) = 0` — harmonic centrality
    /// (Opsahl; Boldi–Vigna's axiomatically favored centrality).
    Harmonic,
    /// `α(x) ≡ 1` — count of reachable nodes.
    Constant,
}

impl DecayKernel {
    /// Evaluates the kernel.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        match *self {
            DecayKernel::Threshold(d) => {
                if x <= d {
                    1.0
                } else {
                    0.0
                }
            }
            DecayKernel::Exponential { base } => base.powf(-x),
            DecayKernel::Harmonic => {
                if x > 0.0 {
                    1.0 / x
                } else {
                    0.0
                }
            }
            DecayKernel::Constant => 1.0,
        }
    }
}

/// HIP estimate of harmonic centrality `Σ_{j≠v} 1/d_vj`.
pub fn harmonic(hip: &HipWeights) -> f64 {
    hip.qg(|_, d| DecayKernel::Harmonic.eval(d))
}

/// HIP estimate of the sum of distances `Σ_j d_vj` — the inverse of classic
/// (Bavelas) closeness centrality. Note `g(d) = d` is *increasing*, so the
/// Corollary 5.2 CV bound does not apply; Corollary 5.3 bounds the variance
/// instead (estimation is still unbiased).
pub fn sum_of_distances(hip: &HipWeights) -> f64 {
    hip.qg(|_, d| d)
}

/// HIP estimate of exponentially attenuated centrality `Σ_j base^(−d_vj)`.
pub fn exponential(hip: &HipWeights, base: f64) -> f64 {
    assert!(base > 1.0, "attenuation base must exceed 1");
    hip.qg(|_, d| DecayKernel::Exponential { base }.eval(d))
}

/// HIP estimate of `C_α(v) = Σ_j α(d_vj)` for any kernel.
pub fn decay(hip: &HipWeights, kernel: DecayKernel) -> f64 {
    hip.qg(|_, d| kernel.eval(d))
}

/// HIP estimate of the filtered centrality `C_{α,β}(v)`; the filter `β`
/// can be supplied at query time, long after the sketches were built —
/// the flexibility the paper highlights for social-network analytics.
pub fn decay_filtered<B>(hip: &HipWeights, kernel: DecayKernel, beta: B) -> f64
where
    B: FnMut(NodeId) -> f64,
{
    let mut beta = beta;
    hip.qg(|v, d| kernel.eval(d) * beta(v))
}

/// [`harmonic`] for node `v` of any [`AdsView`] back end.
pub fn harmonic_in<V: AdsView + ?Sized>(view: &V, v: NodeId) -> f64 {
    view.hip_qg(v, |_, d| DecayKernel::Harmonic.eval(d))
}

/// [`sum_of_distances`] for node `v` of any [`AdsView`] back end.
pub fn sum_of_distances_in<V: AdsView + ?Sized>(view: &V, v: NodeId) -> f64 {
    view.hip_qg(v, |_, d| d)
}

/// [`exponential`] for node `v` of any [`AdsView`] back end.
pub fn exponential_in<V: AdsView + ?Sized>(view: &V, v: NodeId, base: f64) -> f64 {
    assert!(base > 1.0, "attenuation base must exceed 1");
    view.hip_qg(v, |_, d| DecayKernel::Exponential { base }.eval(d))
}

/// [`decay`] for node `v` of any [`AdsView`] back end.
pub fn decay_in<V: AdsView + ?Sized>(view: &V, v: NodeId, kernel: DecayKernel) -> f64 {
    view.hip_qg(v, |_, d| kernel.eval(d))
}

/// [`decay_filtered`] for node `v` of any [`AdsView`] back end.
pub fn decay_filtered_in<V, B>(view: &V, v: NodeId, kernel: DecayKernel, mut beta: B) -> f64
where
    V: AdsView + ?Sized,
    B: FnMut(NodeId) -> f64,
{
    view.hip_qg(v, |node, d| kernel.eval(d) * beta(node))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ads_set::AdsSet;
    use adsketch_graph::exact;
    use adsketch_graph::generators;
    use adsketch_util::stats::RunningStat;

    #[test]
    fn kernel_shapes() {
        assert_eq!(DecayKernel::Threshold(2.0).eval(2.0), 1.0);
        assert_eq!(DecayKernel::Threshold(2.0).eval(2.1), 0.0);
        assert_eq!(DecayKernel::Exponential { base: 2.0 }.eval(3.0), 0.125);
        assert_eq!(DecayKernel::Harmonic.eval(2.0), 0.5);
        assert_eq!(DecayKernel::Harmonic.eval(0.0), 0.0);
        assert_eq!(DecayKernel::Constant.eval(9.0), 1.0);
    }

    #[test]
    fn harmonic_estimate_tracks_exact() {
        let g = generators::barabasi_albert(250, 3, 5);
        let truth = exact::harmonic_centrality(&g, 0);
        let mut stat = RunningStat::new();
        for seed in 0..60 {
            let ads = AdsSet::build(&g, 16, seed);
            stat.push(harmonic(&ads.hip(0)));
        }
        let rel = (stat.mean() - truth).abs() / truth;
        assert!(rel < 0.1, "mean {} vs exact {truth}", stat.mean());
        // CV should be in the ballpark of the bound 1/sqrt(2·15) ≈ 0.18.
        assert!(stat.cv() < 0.25, "cv {}", stat.cv());
    }

    #[test]
    fn sum_of_distances_tracks_exact() {
        let g = generators::gnp(200, 0.04, 9);
        let truth = exact::sum_of_distances(&g, 5);
        let mut stat = RunningStat::new();
        for seed in 0..60 {
            let ads = AdsSet::build(&g, 16, seed + 100);
            stat.push(sum_of_distances(&ads.hip(5)));
        }
        let rel = (stat.mean() - truth).abs() / truth;
        assert!(rel < 0.1, "mean {} vs exact {truth}", stat.mean());
    }

    #[test]
    fn exponential_decay_tracks_exact() {
        let g = generators::gnp(150, 0.05, 3);
        let truth = exact::centrality_exact(&g, 2, |d| 2.0f64.powf(-d), |_| 1.0);
        let mut stat = RunningStat::new();
        for seed in 0..80 {
            let ads = AdsSet::build(&g, 16, seed + 500);
            stat.push(exponential(&ads.hip(2), 2.0));
        }
        let rel = (stat.mean() - truth).abs() / truth;
        assert!(rel < 0.1, "mean {} vs exact {truth}", stat.mean());
    }

    #[test]
    fn beta_filter_applied_after_sketching() {
        // β keeps only odd nodes; sketches know nothing about β.
        let g = generators::gnp(180, 0.05, 13);
        let kernel = DecayKernel::Threshold(2.0);
        let truth = exact::centrality_exact(
            &g,
            1,
            |d| kernel.eval(d),
            |v| if v % 2 == 1 { 1.0 } else { 0.0 },
        );
        let mut stat = RunningStat::new();
        for seed in 0..80 {
            let ads = AdsSet::build(&g, 16, seed + 900);
            stat.push(decay_filtered(&ads.hip(1), kernel, |v| {
                if v % 2 == 1 {
                    1.0
                } else {
                    0.0
                }
            }));
        }
        let rel = (stat.mean() - truth).abs() / truth;
        assert!(rel < 0.12, "mean {} vs exact {truth}", stat.mean());
    }

    #[test]
    #[should_panic(expected = "base must exceed 1")]
    fn exponential_rejects_bad_base() {
        let hip = HipWeights::from_sorted_items(vec![]);
        let _ = exponential(&hip, 1.0);
    }
}
