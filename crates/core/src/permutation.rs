//! The permutation cardinality estimator (paper, Section 5.4).
//!
//! When ranks are a strict random permutation `σ : V → {1…n}` (which
//! dominates i.i.d. uniform ranks in information content), the gaps
//! between sketch updates carry extra signal: after an update, with `μ`
//! the k-th smallest permutation rank seen, the expected number of distinct
//! elements until the next update is `(n−s+1)/(μ−k+1)` (sampling without
//! replacement). Summing these data-driven gap weights yields an estimator
//! that matches HIP for small cardinalities and clearly beats it once the
//! cardinality exceeds ≈ 0.2·n (the paper's Figure 2).

/// Streaming permutation-rank cardinality estimator.
///
/// Feed the permutation ranks of *distinct* elements in arrival order
/// (stream semantics — in the graph setting, canonical distance order).
///
/// Note on bias: the estimate is a sum of backward-looking gap weights
/// attributed at sketch updates, so elements arriving after the most
/// recent update are not yet reflected — a small `O(1/k)` downward bias at
/// arbitrary query points (exactly the estimator the paper describes; the
/// paper evaluates it only empirically). Its variance is nevertheless
/// clearly below HIP's once the cardinality exceeds ≈ 0.2·n.
#[derive(Debug, Clone)]
pub struct PermutationCardinality {
    n: u64,
    k: usize,
    /// Max-heap of the k smallest permutation ranks seen (1-based).
    sketch: std::collections::BinaryHeap<u32>,
    s_hat: f64,
}

impl PermutationCardinality {
    /// Creates an estimator for a domain of `n` elements with sketch size
    /// `k ≥ 1`.
    pub fn new(n: u64, k: usize) -> Self {
        assert!(k >= 1);
        assert!(n >= k as u64, "domain must hold at least k elements");
        Self {
            n,
            k,
            sketch: std::collections::BinaryHeap::with_capacity(k + 1),
            s_hat: 0.0,
        }
    }

    /// The current k-th smallest permutation rank `μ`, if the sketch is
    /// full.
    fn mu(&self) -> Option<u32> {
        (self.sketch.len() == self.k).then(|| *self.sketch.peek().expect("full sketch"))
    }

    /// Processes the next distinct element's permutation rank
    /// `sigma ∈ {1…n}`; returns `true` if the sketch was updated.
    pub fn process(&mut self, sigma: u32) -> bool {
        debug_assert!(sigma >= 1 && sigma as u64 <= self.n, "rank out of range");
        match self.mu() {
            None => {
                // Fill phase: the first k distinct elements all enter with
                // weight 1 — the estimate is exact while s ≤ k.
                self.sketch.push(sigma);
                self.s_hat += 1.0;
                true
            }
            Some(mu) => {
                if sigma >= mu {
                    return false;
                }
                // Weight from the *previous* sketch state (paper: compute
                // w with the μ and ŝ in effect when the update arrives).
                let w = (self.n as f64 - self.s_hat + 1.0) / (mu - self.k as u32 + 1) as f64;
                self.sketch.pop();
                self.sketch.push(sigma);
                self.s_hat += w;
                true
            }
        }
    }

    /// The current cardinality estimate, with the saturation correction:
    /// once the sketch holds exactly `{1…k}` no further updates can occur,
    /// and the paper's correction `ŝ(k+1)/k − 1` accounts for the
    /// unobservable tail.
    pub fn estimate(&self) -> f64 {
        if self.mu() == Some(self.k as u32) {
            self.s_hat * (self.k as f64 + 1.0) / self.k as f64 - 1.0
        } else {
            self.s_hat
        }
    }

    /// Number of elements currently retained (≤ k).
    pub fn sketch_len(&self) -> usize {
        self.sketch.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_util::rng::{Rng64, SplitMix64};
    use adsketch_util::stats::ErrorStats;

    #[test]
    fn exact_until_k() {
        let mut p = PermutationCardinality::new(100, 5);
        for (i, sigma) in [50u32, 3, 77, 20, 9].iter().enumerate() {
            p.process(*sigma);
            assert_eq!(p.estimate(), (i + 1) as f64);
        }
    }

    #[test]
    fn non_updates_leave_estimate() {
        let mut p = PermutationCardinality::new(100, 2);
        p.process(10);
        p.process(20);
        let before = p.estimate();
        assert!(!p.process(30), "rank above μ must not update");
        assert_eq!(p.estimate(), before);
    }

    #[test]
    fn near_unbiased_over_permutations() {
        // For several true cardinalities s, E[ŝ] ≈ s up to the documented
        // O(1/k) last-gap bias (always downward, never exceeding ≈ 1/k).
        let n = 400u64;
        let k = 8;
        for &s in &[50usize, 200, 390] {
            let mut err = ErrorStats::new(s as f64);
            for seed in 0..1500u64 {
                let mut rng = SplitMix64::new(seed * 13 + s as u64);
                let perm = rng.permutation(n as usize);
                let mut p = PermutationCardinality::new(n, k);
                for &sigma in perm.iter().take(s) {
                    p.process(sigma + 1);
                }
                err.push(p.estimate());
            }
            let bias = err.relative_bias();
            assert!(
                bias <= 0.01 && bias > -1.2 / k as f64,
                "s = {s}: relative bias {bias} outside the expected band"
            );
        }
    }

    #[test]
    fn beats_hip_at_large_fractions() {
        // Paper: clear advantage once s ≥ 0.2 n. Compare at s = 0.9 n.
        use adsketch_util::topk::KSmallest;
        use adsketch_util::RankHasher;
        let n = 500u64;
        let k = 8;
        let s = 450usize;
        let mut perm_err = ErrorStats::new(s as f64);
        let mut hip_err = ErrorStats::new(s as f64);
        for seed in 0..1200u64 {
            // Permutation estimator.
            let mut rng = SplitMix64::new(seed + 5);
            let perm = rng.permutation(n as usize);
            let mut p = PermutationCardinality::new(n, k);
            for &sigma in perm.iter().take(s) {
                p.process(sigma + 1);
            }
            perm_err.push(p.estimate());
            // Plain bottom-k HIP on uniform ranks.
            let h = RankHasher::new(seed + 5);
            let mut ks = KSmallest::new(k);
            let mut acc = 0.0;
            for e in 0..s as u64 {
                let r = h.rank(e);
                if ks.would_enter(r, e) {
                    acc += 1.0 / ks.threshold_rank_or(1.0);
                    ks.offer(r, e);
                }
            }
            hip_err.push(acc);
        }
        assert!(
            perm_err.nrmse() < hip_err.nrmse() * 0.8,
            "perm {} should clearly beat HIP {}",
            perm_err.nrmse(),
            hip_err.nrmse()
        );
    }

    #[test]
    fn saturation_estimate_is_sensible() {
        // Feed the full domain: the sketch saturates at {1..k}; the
        // corrected estimate should land near n.
        let n = 300u64;
        let k = 8;
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..800u64 {
            let mut rng = SplitMix64::new(seed + 99);
            let perm = rng.permutation(n as usize);
            let mut p = PermutationCardinality::new(n, k);
            for &sigma in &perm {
                p.process(sigma + 1);
            }
            assert_eq!(p.mu(), Some(k as u32), "full domain saturates");
            err.push(p.estimate());
        }
        assert!(
            err.relative_bias().abs() < 0.05,
            "saturated bias {}",
            err.relative_bias()
        );
    }

    #[test]
    #[should_panic(expected = "at least k")]
    fn rejects_tiny_domain() {
        let _ = PermutationCardinality::new(3, 5);
    }
}
