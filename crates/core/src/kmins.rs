//! The k-mins all-distances sketch: k independent bottom-1 ADSs
//! (paper, Section 2; Cohen 1997, Palmer–Gibbons–Faloutsos ANF).

use adsketch_graph::NodeId;
use adsketch_minhash::KMinsSketch;

use crate::hip::{HipItem, HipWeights};

/// One k-mins ADS record: node `node` is the running minimum of permutation
/// `perm` at distance `dist` with rank `rank`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMinsRecord {
    /// The sampled node.
    pub node: NodeId,
    /// Its distance from the source.
    pub dist: f64,
    /// Its rank in permutation `perm`.
    pub rank: f64,
    /// Which of the k permutations this record belongs to.
    pub perm: u32,
}

/// A k-mins ADS: records of all k bottom-1 ADSs merged in canonical
/// `(dist, node)` order (a node may carry records in several
/// permutations).
#[derive(Debug, Clone, PartialEq)]
pub struct KMinsAds {
    k: usize,
    records: Vec<KMinsRecord>,
}

impl KMinsAds {
    /// Wraps records sorted canonically by `(dist, node, perm)`.
    pub fn from_records(k: usize, records: Vec<KMinsRecord>) -> Self {
        assert!(k >= 1);
        debug_assert!(records
            .windows(2)
            .all(|w| { (w[0].dist, w[0].node, w[0].perm) <= (w[1].dist, w[1].node, w[1].perm) }));
        Self { k, records }
    }

    /// The number of permutations k.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// All records in canonical order.
    #[inline]
    pub fn records(&self) -> &[KMinsRecord] {
        &self.records
    }

    /// Total number of records (the sketch's storage size; expected
    /// `k·H_n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the sketch is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Extracts the k-mins MinHash sketch of `N_d(v)`: per permutation, the
    /// minimum rank among records within distance `d`.
    pub fn minhash_at(&self, d: f64) -> KMinsSketch {
        let mut mins = vec![1.0f64; self.k];
        for r in self.records.iter().take_while(|r| r.dist <= d) {
            let m = &mut mins[r.perm as usize];
            if r.rank < *m {
                *m = r.rank;
            }
        }
        KMinsSketch::from_mins(mins)
    }

    /// The basic neighborhood-cardinality estimate at distance `d`
    /// (CV = `1/sqrt(k−2)`).
    pub fn basic_cardinality_at(&self, d: f64) -> f64 {
        self.minhash_at(d).estimate()
    }

    /// HIP adjusted weights for the k-mins ADS (paper, equation (7)):
    /// scanning nodes by increasing distance with per-permutation running
    /// minima `m_h`, a sampled node's HIP probability is
    /// `τ = 1 − Π_h (1 − m_h)` — the chance a fresh rank vector beats at
    /// least one current minimum.
    pub fn hip_weights(&self) -> HipWeights {
        let mut minima = vec![1.0f64; self.k];
        let mut items: Vec<HipItem> = Vec::new();
        let mut i = 0;
        while i < self.records.len() {
            // Group records of the same (dist, node).
            let mut j = i + 1;
            while j < self.records.len()
                && self.records[j].node == self.records[i].node
                && self.records[j].dist == self.records[i].dist
            {
                j += 1;
            }
            let prod: f64 = minima.iter().map(|&m| 1.0 - m).product();
            let tau = 1.0 - prod;
            items.push(HipItem {
                node: self.records[i].node,
                dist: self.records[i].dist,
                weight: 1.0 / tau,
            });
            for r in &self.records[i..j] {
                let m = &mut minima[r.perm as usize];
                debug_assert!(r.rank < *m, "record must improve its permutation minimum");
                *m = r.rank;
            }
            i = j;
        }
        HipWeights::from_sorted_items(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_util::stats::ErrorStats;
    use adsketch_util::RankHasher;

    fn order(n: usize) -> Vec<(NodeId, f64)> {
        (0..n).map(|i| (i as NodeId, i as f64)).collect()
    }

    #[test]
    fn first_node_weight_is_one() {
        let h = RankHasher::new(1);
        let ads = crate::reference::kmins_from_order(4, &order(50), &h);
        let hip = ads.hip_weights();
        assert_eq!(hip.items()[0].weight, 1.0);
        assert_eq!(hip.items()[0].dist, 0.0);
    }

    #[test]
    fn weights_at_least_one() {
        let h = RankHasher::new(2);
        let ads = crate::reference::kmins_from_order(3, &order(200), &h);
        for it in ads.hip_weights().items() {
            assert!(it.weight >= 1.0, "weight {}", it.weight);
        }
    }

    #[test]
    fn minhash_at_matches_direct_sketch() {
        let h = RankHasher::new(3);
        let n = 120;
        let ads = crate::reference::kmins_from_order(5, &order(n), &h);
        // Sketch of the first 60 nodes, built directly.
        let mut direct = KMinsSketch::new(5);
        for e in 0..60u64 {
            direct.insert(&h, e);
        }
        let extracted = ads.minhash_at(59.0);
        assert_eq!(extracted, direct);
    }

    #[test]
    fn hip_cardinality_unbiased() {
        let n = 400usize;
        let k = 4;
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..3000u64 {
            let h = RankHasher::new(seed);
            let ads = crate::reference::kmins_from_order(k, &order(n), &h);
            err.push(ads.hip_weights().reachable_estimate());
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "k-mins HIP bias z-score {z}");
    }

    #[test]
    fn hip_beats_basic_variance() {
        // Theorem 5.1 extends to all flavors: HIP ≈ half the variance.
        let n = 600usize;
        let k = 8;
        let mut hip_err = ErrorStats::new(n as f64);
        let mut basic_err = ErrorStats::new(n as f64);
        for seed in 0..1500u64 {
            let h = RankHasher::new(seed + 9_000);
            let ads = crate::reference::kmins_from_order(k, &order(n), &h);
            hip_err.push(ads.hip_weights().reachable_estimate());
            basic_err.push(ads.basic_cardinality_at(f64::INFINITY));
        }
        assert!(
            hip_err.nrmse() < basic_err.nrmse(),
            "HIP {} should beat basic {}",
            hip_err.nrmse(),
            basic_err.nrmse()
        );
    }

    #[test]
    fn empty_ads() {
        let ads = KMinsAds::from_records(3, vec![]);
        assert!(ads.is_empty());
        assert_eq!(ads.hip_weights().reachable_estimate(), 0.0);
        assert_eq!(ads.basic_cardinality_at(1.0), 0.0);
    }
}
