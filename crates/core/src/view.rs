//! The common read-side interface over ADS collections.
//!
//! [`AdsView`] abstracts "one canonical bottom-k ADS per node" so that
//! every estimator — HIP cardinalities, basic (MinHash-extraction)
//! estimates, centralities, similarities, the size-only estimator — can
//! run unchanged against either the mutable build output
//! ([`crate::AdsSet`], a heap of per-node `Vec`s) or the frozen columnar
//! store ([`crate::frozen::FrozenAdsSet`]). Both back ends expose the
//! same entries in the same canonical `(dist, node)` order and the same
//! floating-point operation sequence, so estimator answers are **bitwise
//! identical** across them (asserted by `tests/frozen_roundtrip.rs`).
//!
//! The trait is deliberately callback-based (`for_each_entry` /
//! `for_each_hip`) rather than slice-based: the frozen store keeps its
//! entries struct-of-arrays, so handing out `&[AdsEntry]` would force a
//! materialization. Callbacks let both layouts stream entries with zero
//! allocation, which is what the batch [`crate::engine::QueryEngine`]
//! runs on. The callback shape also keeps the **compressed** (format
//! v2) frozen store free: a mapped v2 store decodes row blocks lazily
//! into a reusable per-thread scratch and streams the same entries from
//! there (a buffered one that fits the scratch budget thaws once into
//! shared full-width columns), so estimators never dictate the store's
//! memory strategy — and because the decoded values are bit-identical
//! to v1's columns and visited in the same order, the bitwise-identity
//! guarantee above holds across formats too.

use adsketch_graph::NodeId;
use adsketch_minhash::BottomKSketch;

use crate::entry::AdsEntry;
use crate::hip::{HipItem, HipWeights};

/// Read-only access to a per-graph collection of canonical bottom-k ADSs.
///
/// Implementors guarantee that for every node the entries (and HIP items)
/// are visited in canonical `(dist, node)` order — the order all
/// estimators' floating-point accumulations are defined over.
pub trait AdsView {
    /// The sketch parameter k.
    fn k(&self) -> usize;

    /// Number of nodes covered (sketches are indexed `0..num_nodes`).
    fn num_nodes(&self) -> usize;

    /// Number of entries in `ADS(v)`.
    fn entry_count(&self, v: NodeId) -> usize;

    /// Visits the entries of `ADS(v)` in canonical `(dist, node)` order.
    fn for_each_entry(&self, v: NodeId, f: impl FnMut(AdsEntry));

    /// Visits the HIP items of `ADS(v)` in canonical order. The frozen
    /// store replays precomputed adjusted weights; the heap-backed set
    /// recomputes them with the Lemma 5.1 threshold scan.
    fn for_each_hip(&self, v: NodeId, f: impl FnMut(HipItem));

    /// Number of entries of `ADS(v)` within distance `d` (the canonical
    /// prefix length — input of the size-only estimator).
    fn size_at(&self, v: NodeId, d: f64) -> usize;

    /// Total number of stored entries across all nodes.
    fn total_entries(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|v| self.entry_count(v))
            .sum()
    }

    /// Extracts the bottom-k MinHash sketch of `N_d(v)` — same result as
    /// [`crate::bottomk::BottomKAds::minhash_at`].
    fn minhash_at(&self, v: NodeId, d: f64) -> BottomKSketch {
        let mut sketch = BottomKSketch::new(self.k());
        self.for_each_entry(v, |e| {
            if e.dist <= d {
                sketch.insert_ranked(e.rank, e.node as u64);
            }
        });
        sketch
    }

    /// Materializes the HIP adjusted weights of `ADS(v)` (with prefix
    /// sums). Allocates; batch paths should prefer the allocation-free
    /// [`AdsView::hip_qg`] / [`AdsView::hip_cardinality_at`].
    fn hip_weights_of(&self, v: NodeId) -> HipWeights {
        let mut items = Vec::with_capacity(self.entry_count(v));
        self.for_each_hip(v, |it| items.push(it));
        HipWeights::from_sorted_items(items)
    }

    /// HIP estimate of `|N_d(v)|`: the sum of adjusted weights within
    /// distance `d`, accumulated in canonical order (bitwise equal to
    /// [`HipWeights::cardinality_at`]).
    fn hip_cardinality_at(&self, v: NodeId, d: f64) -> f64 {
        let mut acc = 0.0;
        self.for_each_hip(v, |it| {
            if it.dist <= d {
                acc += it.weight;
            }
        });
        acc
    }

    /// HIP estimate of the number of nodes reachable from `v`.
    fn hip_reachable(&self, v: NodeId) -> f64 {
        let mut acc = 0.0;
        self.for_each_hip(v, |it| acc += it.weight);
        acc
    }

    /// HIP estimate of `Q_g(v) = Σ_j g(j, d_vj)` (paper equation (5)),
    /// evaluated without materializing a [`HipWeights`].
    fn hip_qg<F>(&self, v: NodeId, mut g: F) -> f64
    where
        F: FnMut(NodeId, f64) -> f64,
    {
        let mut acc = 0.0;
        self.for_each_hip(v, |it| acc += it.weight * g(it.node, it.dist));
        acc
    }

    /// The estimated cumulative neighborhood function of `v` — bitwise
    /// equal to [`HipWeights::neighborhood_function`].
    fn neighborhood_function_of(&self, v: NodeId) -> Vec<(f64, f64)> {
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut acc = 0.0;
        self.for_each_hip(v, |it| {
            acc += it.weight;
            match out.last_mut() {
                Some(last) if last.0 == it.dist => last.1 = acc,
                _ => out.push((it.dist, acc)),
            }
        });
        out
    }
}

/// Estimated distance distribution of the whole graph: sums every node's
/// HIP neighborhood function, excluding each node itself — the
/// ANF/HyperANF quantity, estimated sketch-side. Returns
/// `(distance, estimated #ordered pairs within distance)` pairs.
///
/// Streams HIP items through [`AdsView::for_each_hip`], so the heap path
/// no longer allocates a fresh `HipWeights` per node and the frozen path
/// reads precomputed weights straight out of its columns.
pub fn distance_distribution_estimate<V: AdsView + ?Sized>(view: &V) -> Vec<(f64, f64)> {
    let mut events: Vec<(f64, f64)> = Vec::new();
    for v in 0..view.num_nodes() as NodeId {
        view.for_each_hip(v, |it| {
            if it.dist > 0.0 {
                events.push((it.dist, it.weight));
            }
        });
    }
    events.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<(f64, f64)> = Vec::new();
    let mut acc = 0.0;
    for (d, w) in events {
        acc += w;
        match out.last_mut() {
            Some(last) if last.0 == d => last.1 = acc,
            _ => out.push((d, acc)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ads_set::AdsSet;
    use adsketch_graph::generators;

    #[test]
    fn view_defaults_match_sketch_level_queries() {
        let g = generators::gnp_directed(120, 0.05, 3);
        let ads = AdsSet::build(&g, 4, 9);
        for v in [0u32, 7, 50, 119] {
            let sketch = ads.sketch(v);
            let hip = sketch.hip_weights();
            assert_eq!(AdsView::hip_weights_of(&ads, v), hip);
            assert_eq!(ads.hip_reachable(v), hip.reachable_estimate());
            for d in [0.0, 1.0, 2.5, f64::INFINITY] {
                assert_eq!(ads.hip_cardinality_at(v, d), hip.cardinality_at(d));
                assert_eq!(AdsView::minhash_at(&ads, v, d), sketch.minhash_at(d));
                assert_eq!(AdsView::size_at(&ads, v, d), sketch.size_at(d));
            }
            assert_eq!(ads.neighborhood_function_of(v), hip.neighborhood_function());
            assert_eq!(ads.hip_qg(v, |_, d| d), hip.qg(|_, d| d));
        }
    }

    #[test]
    fn distance_distribution_generic_matches_method() {
        let g = generators::gnp(100, 0.05, 11);
        let ads = AdsSet::build(&g, 8, 2);
        assert_eq!(
            distance_distribution_estimate(&ads),
            ads.distance_distribution_estimate()
        );
    }
}
