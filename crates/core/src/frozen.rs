//! The frozen, immutable, columnar ADS store and its on-disk format.
//!
//! An [`crate::AdsSet`] is the *build output*: one heap-allocated `Vec`
//! of entries per node, convenient to construct incrementally but paying
//! a pointer chase per sketch and a full HIP threshold recomputation per
//! query. [`FrozenAdsSet`] is the *query form* the paper's use cases
//! (neighborhood cardinalities, closeness centralities, similarities over
//! massive graphs) actually serve from: build once, [`AdsSet::freeze`]
//! into struct-of-arrays CSR layout with the HIP adjusted weights
//! precomputed inline, then answer any number of queries — directly or
//! batched through [`crate::engine::QueryEngine`] — with zero per-query
//! allocation. Estimator answers are bitwise identical to the heap-backed
//! set the store was frozen from (see [`crate::view::AdsView`]).
//!
//! # On-disk format (version 1)
//!
//! [`FrozenAdsSet::to_bytes`] serializes to one contiguous little-endian
//! buffer: a 40-byte header followed by the five column arrays, in order
//! and without padding:
//!
//! ```text
//! offset  size          field
//! 0       8             magic  = b"ADSKFRZ1"
//! 8       4             format version (u32, = 1)
//! 12      4             k (u32)
//! 16      8             n = number of nodes (u64)
//! 24      8             E = total number of entries (u64)
//! 32      8             FNV-1a 64 checksum of every other byte of the
//!                       buffer (header with this field zeroed + payload)
//! 40      (n+1)*4       offsets  (u32; offsets[v]..offsets[v+1] is ADS(v))
//! ...     E*4           nodes    (u32 node ids)
//! ...     E*8           dists    (f64 bits)
//! ...     E*8           ranks    (f64 bits)
//! ...     E*8           weights  (f64 bits, HIP adjusted weights)
//! ```
//!
//! Distances, ranks and weights round-trip through `f64::to_bits`, so
//! deserialization is lossless. [`FrozenAdsSet::from_bytes`] rejects a
//! wrong magic, an unknown version, a truncated or oversized buffer, a
//! checksum mismatch, and structurally corrupt payloads (non-monotone
//! offsets, out-of-range node ids, entries out of canonical order).

use std::fmt;
use std::path::Path;

use adsketch_graph::NodeId;

use crate::ads_set::AdsSet;
use crate::bottomk::BottomKAds;
use crate::entry::AdsEntry;
use crate::hip::HipItem;
use crate::view::AdsView;

/// Magic bytes identifying a serialized frozen ADS store.
pub const FROZEN_MAGIC: [u8; 8] = *b"ADSKFRZ1";
/// The on-disk format version this build writes and reads.
pub const FROZEN_FORMAT_VERSION: u32 = 1;

const HEADER_LEN: usize = 40;
const CHECKSUM_OFFSET: usize = 32;

/// A frozen, immutable, struct-of-arrays ADS set.
///
/// CSR-style layout: node `v`'s entries occupy the index range
/// `offsets[v]..offsets[v+1]` of the four parallel columns. The
/// `weights` column holds the HIP adjusted weights (Lemma 5.1),
/// precomputed once at freeze time — queries never rerun the bottom-k
/// threshold scan.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenAdsSet {
    k: u32,
    /// `n + 1` prefix offsets into the entry columns.
    offsets: Vec<u32>,
    /// Sampled node ids, per node in canonical `(dist, node)` order.
    nodes: Vec<NodeId>,
    /// Distances from each sketch's source.
    dists: Vec<f64>,
    /// The sampled nodes' random ranks.
    ranks: Vec<f64>,
    /// Precomputed HIP adjusted weights `1/τ`.
    weights: Vec<f64>,
}

/// Errors surfaced by [`FrozenAdsSet::from_bytes`] / [`FrozenAdsSet::load`].
#[derive(Debug)]
pub enum FrozenError {
    /// The buffer does not start with [`FROZEN_MAGIC`].
    BadMagic,
    /// The format version is not one this build understands.
    UnsupportedVersion(u32),
    /// The buffer is shorter than its header claims.
    Truncated {
        /// Bytes the header-derived layout requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The stored checksum does not match the buffer contents.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum recomputed over the buffer.
        computed: u64,
    },
    /// The payload is structurally invalid (details in the message).
    Corrupt(String),
    /// An underlying filesystem error (from [`FrozenAdsSet::load`]).
    Io(std::io::Error),
}

impl fmt::Display for FrozenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrozenError::BadMagic => write!(f, "not a frozen ADS store (bad magic)"),
            FrozenError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported frozen-store format version {v} (this build reads \
                     {FROZEN_FORMAT_VERSION})"
                )
            }
            FrozenError::Truncated { expected, actual } => {
                write!(f, "buffer truncated: need {expected} bytes, have {actual}")
            }
            FrozenError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: header records {stored:#018x}, buffer hashes to \
                     {computed:#018x}"
                )
            }
            FrozenError::Corrupt(msg) => write!(f, "corrupt frozen store: {msg}"),
            FrozenError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrozenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrozenError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrozenError {
    fn from(e: std::io::Error) -> Self {
        FrozenError::Io(e)
    }
}

/// Streaming FNV-1a 64 (the format's checksum: dependency-free, byte-order
/// independent, and strong enough to catch the bit flips and truncations a
/// store can pick up at rest — not a cryptographic integrity guarantee).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Checksum of a complete serialized buffer, treating the 8 checksum bytes
/// themselves as zero.
fn buffer_checksum(buf: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(&buf[..CHECKSUM_OFFSET]);
    h.update(&[0u8; 8]);
    h.update(&buf[CHECKSUM_OFFSET + 8..]);
    h.0
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("bounds checked"))
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("bounds checked"))
}

impl FrozenAdsSet {
    /// Freezes a heap-backed ADS set into columnar form, precomputing the
    /// HIP adjusted weight of every entry.
    ///
    /// Panics if the set holds ≥ 2³² entries (the CSR offsets are `u32`;
    /// at the paper's `k(1 + ln n − ln k)` expected entries per node that
    /// bound is only reached beyond ~10⁷ nodes at k = 64 — shard the graph
    /// before freezing at that scale).
    pub fn from_ads_set(ads: &AdsSet) -> Self {
        let total = ads.total_entries();
        assert!(
            u32::try_from(total).is_ok(),
            "frozen store is limited to 2^32 − 1 entries; got {total}"
        );
        let n = ads.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut nodes = Vec::with_capacity(total);
        let mut dists = Vec::with_capacity(total);
        let mut ranks = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        offsets.push(0u32);
        for sketch in ads.sketches() {
            for e in sketch.entries() {
                nodes.push(e.node);
                dists.push(e.dist);
                ranks.push(e.rank);
            }
            sketch.hip_scan(|it| weights.push(it.weight));
            offsets.push(nodes.len() as u32);
        }
        Self {
            k: ads.k() as u32,
            offsets,
            nodes,
            dists,
            ranks,
            weights,
        }
    }

    /// Reconstructs a heap-backed [`AdsSet`] (e.g. to continue mutating a
    /// loaded store). The round trip `ads.freeze().thaw()` is lossless.
    pub fn thaw(&self) -> AdsSet {
        let sketches = (0..self.num_nodes() as NodeId)
            .map(|v| {
                let r = self.entry_range(v);
                let entries: Vec<AdsEntry> = r
                    .clone()
                    .map(|i| AdsEntry::new(self.nodes[i], self.dists[i], self.ranks[i]))
                    .collect();
                BottomKAds::from_entries(self.k as usize, entries)
            })
            .collect();
        AdsSet::from_sketches(self.k as usize, sketches)
    }

    /// The sketch parameter k.
    #[inline]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// Number of nodes covered.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored entries.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn entry_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize
    }

    /// The precomputed HIP adjusted weights of `ADS(v)`, in canonical
    /// order (zero-copy column slice).
    #[inline]
    pub fn hip_weights_slice(&self, v: NodeId) -> &[f64] {
        &self.weights[self.entry_range(v)]
    }

    /// The distances of `ADS(v)` in canonical order (zero-copy slice).
    #[inline]
    pub fn dists_slice(&self, v: NodeId) -> &[f64] {
        &self.dists[self.entry_range(v)]
    }

    /// Resident memory of the store in bytes (struct + columns).
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.nodes.capacity() * std::mem::size_of::<NodeId>()
            + (self.dists.capacity() + self.ranks.capacity() + self.weights.capacity())
                * std::mem::size_of::<f64>()
    }

    /// Exact length of [`FrozenAdsSet::to_bytes`]'s output in bytes.
    pub fn serialized_len(&self) -> usize {
        HEADER_LEN + self.offsets.len() * 4 + self.nodes.len() * 4 + self.nodes.len() * 3 * 8
    }

    /// Serializes to the version-1 on-disk format (one contiguous
    /// little-endian buffer; see the module docs for the layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.serialized_len());
        buf.extend_from_slice(&FROZEN_MAGIC);
        buf.extend_from_slice(&FROZEN_FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.k.to_le_bytes());
        buf.extend_from_slice(&(self.num_nodes() as u64).to_le_bytes());
        buf.extend_from_slice(&(self.num_entries() as u64).to_le_bytes());
        buf.extend_from_slice(&[0u8; 8]); // checksum, patched below
        for &o in &self.offsets {
            buf.extend_from_slice(&o.to_le_bytes());
        }
        for &nd in &self.nodes {
            buf.extend_from_slice(&nd.to_le_bytes());
        }
        for col in [&self.dists, &self.ranks, &self.weights] {
            for &x in col.iter() {
                buf.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        debug_assert_eq!(buf.len(), self.serialized_len());
        let checksum = buffer_checksum(&buf);
        buf[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Deserializes a buffer produced by [`FrozenAdsSet::to_bytes`],
    /// validating magic, version, length, checksum, and the structural
    /// payload invariants. Lossless: the result compares equal to the
    /// store that was serialized.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, FrozenError> {
        if buf.len() < HEADER_LEN {
            return Err(FrozenError::Truncated {
                expected: HEADER_LEN as u64,
                actual: buf.len() as u64,
            });
        }
        if buf[..8] != FROZEN_MAGIC {
            return Err(FrozenError::BadMagic);
        }
        let version = read_u32(buf, 8);
        if version != FROZEN_FORMAT_VERSION {
            return Err(FrozenError::UnsupportedVersion(version));
        }
        let k = read_u32(buf, 12);
        let n = read_u64(buf, 16);
        let entries = read_u64(buf, 24);
        let stored_checksum = read_u64(buf, CHECKSUM_OFFSET);
        if k == 0 {
            return Err(FrozenError::Corrupt("k must be ≥ 1".into()));
        }
        if n > u32::MAX as u64 || entries > u32::MAX as u64 {
            return Err(FrozenError::Corrupt(format!(
                "node/entry counts exceed the u32 CSR limit (n = {n}, entries = {entries})"
            )));
        }
        // All arithmetic in u128: header fields are untrusted.
        let expected = HEADER_LEN as u128 + (n as u128 + 1) * 4 + entries as u128 * (4 + 3 * 8);
        if (buf.len() as u128) < expected {
            return Err(FrozenError::Truncated {
                expected: expected as u64,
                actual: buf.len() as u64,
            });
        }
        if buf.len() as u128 != expected {
            return Err(FrozenError::Corrupt(format!(
                "{} trailing bytes after the payload",
                buf.len() as u128 - expected
            )));
        }
        let computed = buffer_checksum(buf);
        if computed != stored_checksum {
            return Err(FrozenError::ChecksumMismatch {
                stored: stored_checksum,
                computed,
            });
        }

        let (n, entries) = (n as usize, entries as usize);
        let mut at = HEADER_LEN;
        let mut offsets = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            offsets.push(read_u32(buf, at));
            at += 4;
        }
        let mut nodes = Vec::with_capacity(entries);
        for _ in 0..entries {
            nodes.push(read_u32(buf, at));
            at += 4;
        }
        let read_f64_col = |at: &mut usize| {
            let mut col = Vec::with_capacity(entries);
            for _ in 0..entries {
                col.push(f64::from_bits(read_u64(buf, *at)));
                *at += 8;
            }
            col
        };
        let dists = read_f64_col(&mut at);
        let ranks = read_f64_col(&mut at);
        let weights = read_f64_col(&mut at);
        debug_assert_eq!(at, buf.len());

        let store = Self {
            k,
            offsets,
            nodes,
            dists,
            ranks,
            weights,
        };
        store.validate_structure()?;
        Ok(store)
    }

    /// Structural invariants the CSR columns must satisfy for every query
    /// to be well-defined: monotone offsets spanning exactly the entry
    /// columns, in-range node ids, canonical per-node entry order.
    fn validate_structure(&self) -> Result<(), FrozenError> {
        let n = self.num_nodes();
        if self.offsets[0] != 0 {
            return Err(FrozenError::Corrupt("offsets[0] must be 0".into()));
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(FrozenError::Corrupt(
                "offsets must be non-decreasing".into(),
            ));
        }
        if *self.offsets.last().expect("n+1 offsets") as usize != self.nodes.len() {
            return Err(FrozenError::Corrupt(
                "last offset must equal the entry count".into(),
            ));
        }
        for v in 0..n as NodeId {
            let r = self.entry_range(v);
            if self.nodes[r.clone()].iter().any(|&nd| nd as usize >= n) {
                return Err(FrozenError::Corrupt(format!(
                    "node {v}: sampled node id out of range"
                )));
            }
            let ds = &self.dists[r.clone()];
            let ns = &self.nodes[r];
            let in_order = ds.windows(2).zip(ns.windows(2)).all(|(d, nd)| {
                d[0].total_cmp(&d[1]).then(nd[0].cmp(&nd[1])) == std::cmp::Ordering::Less
            });
            if !in_order {
                return Err(FrozenError::Corrupt(format!(
                    "node {v}: entries out of canonical (dist, node) order"
                )));
            }
        }
        Ok(())
    }

    /// Writes [`FrozenAdsSet::to_bytes`] to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads and deserializes a store written by [`FrozenAdsSet::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, FrozenError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Estimated distance distribution of the whole graph — same quantity
    /// as [`AdsSet::distance_distribution_estimate`], bitwise identical,
    /// served from the precomputed weight column.
    pub fn distance_distribution_estimate(&self) -> Vec<(f64, f64)> {
        crate::view::distance_distribution_estimate(self)
    }
}

impl AdsView for FrozenAdsSet {
    #[inline]
    fn k(&self) -> usize {
        self.k as usize
    }

    #[inline]
    fn num_nodes(&self) -> usize {
        FrozenAdsSet::num_nodes(self)
    }

    #[inline]
    fn entry_count(&self, v: NodeId) -> usize {
        self.entry_range(v).len()
    }

    fn for_each_entry(&self, v: NodeId, mut f: impl FnMut(AdsEntry)) {
        let r = self.entry_range(v);
        for i in r {
            f(AdsEntry::new(self.nodes[i], self.dists[i], self.ranks[i]));
        }
    }

    fn for_each_hip(&self, v: NodeId, mut f: impl FnMut(HipItem)) {
        let r = self.entry_range(v);
        for i in r {
            f(HipItem {
                node: self.nodes[i],
                dist: self.dists[i],
                weight: self.weights[i],
            });
        }
    }

    fn size_at(&self, v: NodeId, d: f64) -> usize {
        self.dists_slice(v).partition_point(|&x| x <= d)
    }

    #[inline]
    fn total_entries(&self) -> usize {
        self.num_entries()
    }

    fn minhash_at(&self, v: NodeId, d: f64) -> adsketch_minhash::BottomKSketch {
        // Insert only the binary-searched distance-≤ d prefix, like the
        // heap path — not the trait default's full-sketch filter scan.
        let start = self.offsets[v as usize] as usize;
        let cut = start + AdsView::size_at(self, v, d);
        let mut sketch = adsketch_minhash::BottomKSketch::new(self.k as usize);
        for i in start..cut {
            sketch.insert_ranked(self.ranks[i], self.nodes[i] as u64);
        }
        sketch
    }

    fn hip_cardinality_at(&self, v: NodeId, d: f64) -> f64 {
        let cut = AdsView::size_at(self, v, d);
        self.hip_weights_slice(v)[..cut].iter().sum()
    }

    fn hip_reachable(&self, v: NodeId) -> f64 {
        self.hip_weights_slice(v).iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_graph::generators;

    fn sample_set() -> AdsSet {
        let g = generators::gnp_directed(90, 0.05, 7);
        AdsSet::build(&g, 4, 3)
    }

    #[test]
    fn freeze_preserves_counts_and_entries() {
        let ads = sample_set();
        let frozen = ads.freeze();
        assert_eq!(frozen.k(), ads.k());
        assert_eq!(frozen.num_nodes(), ads.num_nodes());
        assert_eq!(frozen.num_entries(), ads.total_entries());
        for v in 0..ads.num_nodes() as NodeId {
            let mut got = Vec::new();
            frozen.for_each_entry(v, |e| got.push(e));
            assert_eq!(got.as_slice(), ads.sketch(v).entries());
        }
    }

    #[test]
    fn frozen_hip_matches_heap_bitwise() {
        let ads = sample_set();
        let frozen = ads.freeze();
        for v in 0..ads.num_nodes() as NodeId {
            let hip = ads.hip(v);
            assert_eq!(frozen.hip_weights_of(v), hip);
            assert_eq!(frozen.hip_reachable(v), hip.reachable_estimate());
            for d in [0.0, 1.0, 2.0, 5.0, f64::INFINITY] {
                assert_eq!(frozen.hip_cardinality_at(v, d), hip.cardinality_at(d));
            }
        }
    }

    #[test]
    fn thaw_roundtrip_is_lossless() {
        let ads = sample_set();
        assert_eq!(ads.freeze().thaw(), ads);
    }

    #[test]
    fn bytes_roundtrip_is_lossless() {
        let frozen = sample_set().freeze();
        let restored = FrozenAdsSet::from_bytes(&frozen.to_bytes()).unwrap();
        assert_eq!(restored, frozen);
    }

    #[test]
    fn serialized_len_is_exact() {
        let frozen = sample_set().freeze();
        assert_eq!(frozen.to_bytes().len(), frozen.serialized_len());
    }

    #[test]
    fn empty_set_roundtrips() {
        let ads = AdsSet::from_sketches(2, vec![]);
        let frozen = ads.freeze();
        assert_eq!(frozen.num_nodes(), 0);
        let restored = FrozenAdsSet::from_bytes(&frozen.to_bytes()).unwrap();
        assert_eq!(restored, frozen);
        assert_eq!(restored.thaw(), ads);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = sample_set().freeze().to_bytes();
        buf[0] ^= 0xff;
        assert!(matches!(
            FrozenAdsSet::from_bytes(&buf),
            Err(FrozenError::BadMagic)
        ));
    }

    #[test]
    fn rejects_unknown_version() {
        let mut buf = sample_set().freeze().to_bytes();
        buf[8] = 99;
        assert!(matches!(
            FrozenAdsSet::from_bytes(&buf),
            Err(FrozenError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_at_every_prefix_length() {
        let buf = sample_set().freeze().to_bytes();
        for cut in [0, 7, HEADER_LEN - 1, HEADER_LEN + 3, buf.len() - 1] {
            assert!(
                FrozenAdsSet::from_bytes(&buf[..cut]).is_err(),
                "prefix of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut buf = sample_set().freeze().to_bytes();
        buf.push(0);
        assert!(matches!(
            FrozenAdsSet::from_bytes(&buf),
            Err(FrozenError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_payload_bit_flip_via_checksum() {
        let mut buf = sample_set().freeze().to_bytes();
        let mid = HEADER_LEN + (buf.len() - HEADER_LEN) / 2;
        buf[mid] ^= 0x01;
        assert!(matches!(
            FrozenAdsSet::from_bytes(&buf),
            Err(FrozenError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_header_field_tamper_via_checksum() {
        // Flipping k alone (checksummed header field) must not produce a
        // silently different store.
        let mut buf = sample_set().freeze().to_bytes();
        buf[12] ^= 0x01;
        assert!(FrozenAdsSet::from_bytes(&buf).is_err());
    }

    #[test]
    fn error_messages_render() {
        let e = FrozenError::Truncated {
            expected: 100,
            actual: 7,
        };
        assert!(e.to_string().contains("100"));
        assert!(FrozenError::BadMagic.to_string().contains("magic"));
    }
}
