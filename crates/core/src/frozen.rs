//! The frozen, immutable, columnar ADS store and its on-disk format.
//!
//! An [`crate::AdsSet`] is the *build output*: one heap-allocated `Vec`
//! of entries per node, convenient to construct incrementally but paying
//! a pointer chase per sketch and a full HIP threshold recomputation per
//! query. [`FrozenAdsSet`] is the *query form* the paper's use cases
//! (neighborhood cardinalities, closeness centralities, similarities over
//! massive graphs) actually serve from: build once, [`AdsSet::freeze`]
//! into struct-of-arrays CSR layout with the HIP adjusted weights
//! precomputed inline, then answer any number of queries — directly or
//! batched through [`crate::engine::QueryEngine`] — with zero per-query
//! allocation. Estimator answers are bitwise identical to the heap-backed
//! set the store was frozen from (see [`crate::view::AdsView`]).
//!
//! # On-disk format (version 1)
//!
//! [`FrozenAdsSet::to_bytes`] serializes to one contiguous little-endian
//! buffer: a 40-byte header followed by the five column arrays, in order
//! and without padding:
//!
//! ```text
//! offset  size          field
//! 0       8             magic  = b"ADSKFRZ1"
//! 8       4             format version (u32, = 1)
//! 12      4             k (u32)
//! 16      8             n = number of nodes (u64)
//! 24      8             E = total number of entries (u64)
//! 32      8             FNV-1a 64 checksum of every other byte of the
//!                       buffer (header with this field zeroed + payload)
//! 40      (n+1)*4       offsets  (u32; offsets[v]..offsets[v+1] is ADS(v))
//! ...     E*4           nodes    (u32 node ids)
//! ...     E*8           dists    (f64 bits)
//! ...     E*8           ranks    (f64 bits)
//! ...     E*8           weights  (f64 bits, HIP adjusted weights)
//! ```
//!
//! Distances, ranks and weights round-trip through `f64::to_bits`, so
//! deserialization is lossless. [`FrozenAdsSet::from_bytes`] rejects a
//! wrong magic, an unknown version, a truncated or oversized buffer, a
//! checksum mismatch, and structurally corrupt payloads (non-monotone
//! offsets, out-of-range node ids, entries out of canonical order).
//! [`FrozenAdsSet::write_to`] / [`FrozenAdsSet::from_reader`] stream the
//! same format through any `Write`/`Read` without materializing the whole
//! buffer; `to_bytes`/`from_bytes` are thin wrappers over them.
//!
//! # On-disk format (version 2, compressed)
//!
//! [`FrozenAdsSet::to_bytes_format`] with [`StoreFormat::V2`] writes the
//! opt-in compressed format (v1 stays the default and every reader
//! accepts both, dispatching on the header's version field). The header
//! shares its first 40 bytes with v1 — same magic, same checksum
//! convention — followed by four per-column encoding tags and the block
//! granularity:
//!
//! ```text
//! offset  size          field
//! 0       8             magic  = b"ADSKFRZ1"
//! 8       4             format version (u32, = 2)
//! 12      4             k (u32)
//! 16      8             n = number of nodes (u64)
//! 24      8             E = total number of entries (u64)
//! 32      8             FNV-1a 64 checksum (as in v1: this field zeroed)
//! 40      1             node-column tag   (0 delta+varint, 1 raw u32)
//! 41      1             dist-column tag   (0 dict u16, 1 dict u32, 2 raw f64 bits)
//! 42      1             rank-column tag   (0 fixed 7-byte m·2⁻⁵³, 1 raw f64 bits)
//! 43      1             weight-column tag (0 varint τ back-reference, 1 raw f64 bits)
//! 44      4             R = rows per block (u32)
//! 48      (n+1)*4       offsets  (u32, identical to the v1 column)
//! ...     4             D = distance-dictionary size (u32)
//! ...     D*8           distance dictionary (distinct f64 bits, ascending)
//! ...     (B+1)*8       block byte offsets into the blob (u64),
//!                       B = ⌈n / R⌉ blocks of R rows each
//! ...     8             blob length (u64)
//! ...     blob          per-block payloads, back to back
//! ```
//!
//! Each block's payload is column-major: a 16-byte header of four u32
//! section lengths, then the `[dists][ranks][weights][nodes]` sections
//! for that block's entries. A `1` (or for dists `2`) tag byte marks a
//! whole column *escaped* to raw full-width values; the encoder picks
//! tags by **verifying bit-exact reconstruction of every entry**, so
//! v1 ↔ v2 round trips are bitwise lossless for any store and every
//! estimator answers bit-identically on either format. Queries decode
//! blocks lazily on first touch into a per-thread scratch (see
//! `frozen/v2.rs`), so a mapped v2 store only ever touches the pages of
//! the blocks it serves. v1 readers predating this version reject v2
//! stores with [`FrozenError::UnsupportedVersion`]`(2)`.
//!
//! # Sharded stores (manifest format version 1)
//!
//! [`freeze_sharded`] partitions the node range `0..n` into `S` contiguous
//! sub-ranges (balanced by entry count) and writes one store per shard
//! (version 1 by default; [`freeze_sharded_format`] opts the whole fleet
//! into v2) — each shard file covers all `n` rows but only its own range
//! is populated, so every shard is independently loadable by
//! [`FrozenAdsSet::load`] and valid against the structural checks of its
//! format. Next to the shards it writes a checksummed manifest
//! ([`SHARD_MANIFEST_FILE`], magic `ADSKSHD1`):
//!
//! ```text
//! offset  size          field
//! 0       8             magic  = b"ADSKSHD1"
//! 8       4             format version (u32, = 1)
//! 12      4             k (u32)
//! 16      8             n = number of nodes (u64)
//! 24      8             E = total number of entries (u64)
//! 32      8             FNV-1a 64 checksum (as in the store header)
//! 40      4             S = shard count (u32)
//! 44      S*32          per-shard records: start (u64), end (u64),
//!                       entries (u64), FNV-1a 64 digest of the complete
//!                       shard file (u64)
//! ```
//!
//! Shard `i` covers nodes `start..end` and lives in
//! [`shard_file_name`]`(i)` next to the manifest.
//! [`ShardManifest::from_bytes`] rejects bad magic/version, truncation,
//! trailing bytes, checksum mismatches, and structurally invalid shard
//! tables (overlapping ranges, gaps, ranges not covering exactly `0..n`,
//! entry counts that don't sum to `E`). The serving-side loader
//! (`adsketch-serve`'s `ShardedStore`) additionally verifies every shard
//! file against its recorded digest.

use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

use adsketch_graph::NodeId;

use crate::ads_set::AdsSet;
use crate::bottomk::BottomKAds;
use crate::entry::AdsEntry;
use crate::hip::HipItem;
use crate::view::AdsView;

#[allow(unsafe_code)] // the workspace's single unsafe module; see its docs
mod mmap;
mod v2;
mod varint;

use mmap::MapRegion;
use v2::RowSlices;

/// Magic bytes identifying a serialized frozen ADS store.
pub const FROZEN_MAGIC: [u8; 8] = *b"ADSKFRZ1";
/// The default on-disk format version ([`StoreFormat::V1`], full-width
/// columns). Writers opt into the compressed version 2 via
/// [`StoreFormat::V2`]; readers accept both.
pub const FROZEN_FORMAT_VERSION: u32 = 1;
/// The compressed on-disk format version (see the module docs).
pub const FROZEN_FORMAT_VERSION_V2: u32 = 2;

/// Which on-disk format a store is written in. Readers never need this:
/// every load path dispatches on the header's version field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreFormat {
    /// Version 1: full-width columns (u32 node, f64 dist/rank/weight),
    /// 28 bytes per entry. The default; fastest to write, loadable by
    /// every build since the format was introduced, and the only format
    /// whose mapped loads are zero-decode.
    #[default]
    V1,
    /// Version 2: compressed block-columnar encoding (delta+varint node
    /// ids, dictionary distances, 7-byte ranks, τ-back-reference
    /// weights — each with a bit-exact raw escape). Typically 2–3×
    /// smaller than v1 on unit-weight graphs; queries block-decode
    /// lazily through a per-thread scratch. Bitwise-lossless: a
    /// v1 ↔ v2 round trip reproduces every stored bit.
    V2,
}

impl StoreFormat {
    /// The on-disk version number this format writes.
    pub fn version(self) -> u32 {
        match self {
            StoreFormat::V1 => FROZEN_FORMAT_VERSION,
            StoreFormat::V2 => FROZEN_FORMAT_VERSION_V2,
        }
    }
}

const HEADER_LEN: usize = 40;
const CHECKSUM_OFFSET: usize = 32;

/// One CSR column: either owned on the heap or a typed view into the
/// store's mapped file region (byte offset + element count; the region
/// itself lives on the enclosing [`FrozenAdsSet`]).
#[derive(Debug)]
enum Col<T> {
    Owned(Vec<T>),
    Mapped { off: usize, count: usize },
}

/// Column element types that can be viewed directly out of a mapped
/// region. Views were alignment-checked once at load time, so resolution
/// here is infallible.
trait ColElem: Copy {
    fn view(region: &MapRegion, off: usize, count: usize) -> &[Self];
}

impl ColElem for u32 {
    #[inline]
    fn view(region: &MapRegion, off: usize, count: usize) -> &[u32] {
        region
            .u32_slice(off, count)
            .expect("column checked at load")
    }
}

impl ColElem for f64 {
    #[inline]
    fn view(region: &MapRegion, off: usize, count: usize) -> &[f64] {
        region
            .f64_slice(off, count)
            .expect("column checked at load")
    }
}

impl<T: ColElem> Col<T> {
    /// The column contents, whichever backing holds them.
    #[inline]
    fn slice<'a>(&'a self, region: Option<&'a MapRegion>) -> &'a [T] {
        match self {
            Col::Owned(v) => v,
            Col::Mapped { off, count } => T::view(
                region.expect("mapped column requires a region"),
                *off,
                *count,
            ),
        }
    }
}

/// A frozen, immutable, struct-of-arrays ADS set.
///
/// CSR-style layout: node `v`'s entries occupy the index range
/// `offsets[v]..offsets[v+1]` of the four parallel columns. The
/// `weights` column holds the HIP adjusted weights (Lemma 5.1),
/// precomputed once at freeze time — queries never rerun the bottom-k
/// threshold scan.
///
/// Columns are either owned heap `Vec`s (freeze, `from_bytes`, the
/// buffered loaders) or zero-copy views into a memory-mapped store file
/// ([`FrozenAdsSet::load_with`] with [`LoadOptions::map`]); every query
/// path is backing-agnostic and bitwise identical across the two.
#[derive(Debug)]
pub struct FrozenAdsSet {
    k: u32,
    /// Backs any `Col::Mapped` column and a mapped v2 blob; `None` for
    /// fully-owned stores.
    region: Option<MapRegion>,
    /// `n + 1` prefix offsets into the entry columns (identical layout
    /// and meaning in both formats).
    offsets: Col<u32>,
    /// The entry columns, in whichever representation the store was
    /// built or loaded with.
    repr: Repr,
}

/// How a store's entry columns are held in memory.
#[derive(Debug)]
enum Repr {
    /// Full-width parallel columns (freeze output and v1 stores).
    Wide {
        /// Sampled node ids, per node in canonical `(dist, node)` order.
        nodes: Col<NodeId>,
        /// Distances from each sketch's source.
        dists: Col<f64>,
        /// The sampled nodes' random ranks.
        ranks: Col<f64>,
        /// Precomputed HIP adjusted weights `1/τ`.
        weights: Col<f64>,
    },
    /// Compressed block-columnar payload (v2 stores), decoded lazily
    /// per block on first touch.
    V2(v2::V2Repr),
}

impl Clone for FrozenAdsSet {
    /// Deep copy: a clone always owns its backing (cloning a mapped
    /// store copies the bytes out, dropping the dependence on the
    /// mapping) and keeps its representation — a v2 store clones to a
    /// v2 store, still compressed.
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Wide { .. } => {
                let mut cols = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
                self.for_each_row(|_, row| {
                    cols.0.extend_from_slice(row.nodes);
                    cols.1.extend_from_slice(row.dists);
                    cols.2.extend_from_slice(row.ranks);
                    cols.3.extend_from_slice(row.weights);
                });
                Self::from_owned_cols(
                    self.k,
                    self.offsets().to_vec(),
                    cols.0,
                    cols.1,
                    cols.2,
                    cols.3,
                )
            }
            Repr::V2(repr) => Self {
                k: self.k,
                region: None,
                offsets: Col::Owned(self.offsets().to_vec()),
                repr: Repr::V2(repr.to_owned_copy(self.region.as_ref())),
            },
        }
    }
}

impl PartialEq for FrozenAdsSet {
    /// Logical equality over `k`, the offsets, and the per-row entry
    /// data (floats compared bitwise) — a mapped store and its owned
    /// copy compare equal, and so do a v1 store and its v2 re-encoding.
    fn eq(&self, other: &Self) -> bool {
        if self.k != other.k || self.offsets() != other.offsets() {
            return false;
        }
        let bits_eq = |a: &[f64], b: &[f64]| {
            a.iter()
                .map(|x| x.to_bits())
                .eq(b.iter().map(|x| x.to_bits()))
        };
        let mut equal = true;
        self.for_each_row(|v, row| {
            if equal {
                equal = other.with_row(v as NodeId, |o| {
                    row.nodes == o.nodes
                        && bits_eq(row.dists, o.dists)
                        && bits_eq(row.ranks, o.ranks)
                        && bits_eq(row.weights, o.weights)
                });
            }
        });
        equal
    }
}

/// Errors surfaced by [`FrozenAdsSet::from_bytes`] / [`FrozenAdsSet::load`].
#[derive(Debug)]
pub enum FrozenError {
    /// The buffer does not start with [`FROZEN_MAGIC`].
    BadMagic,
    /// The format version is not one this build understands.
    UnsupportedVersion(u32),
    /// The buffer is shorter than its header claims.
    Truncated {
        /// Bytes the header-derived layout requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The stored checksum does not match the buffer contents.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum recomputed over the buffer.
        computed: u64,
    },
    /// The payload is structurally invalid (details in the message).
    Corrupt(String),
    /// An underlying filesystem error (from [`FrozenAdsSet::load`]).
    Io(std::io::Error),
}

impl fmt::Display for FrozenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrozenError::BadMagic => write!(f, "not a frozen ADS store (bad magic)"),
            FrozenError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported frozen-store format version {v} (this build reads \
                     {FROZEN_FORMAT_VERSION} and {FROZEN_FORMAT_VERSION_V2})"
                )
            }
            FrozenError::Truncated { expected, actual } => {
                write!(f, "buffer truncated: need {expected} bytes, have {actual}")
            }
            FrozenError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: header records {stored:#018x}, buffer hashes to \
                     {computed:#018x}"
                )
            }
            FrozenError::Corrupt(msg) => write!(f, "corrupt frozen store: {msg}"),
            FrozenError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrozenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrozenError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrozenError {
    fn from(e: std::io::Error) -> Self {
        FrozenError::Io(e)
    }
}

/// Streaming FNV-1a 64 (the format's checksum: dependency-free, byte-order
/// independent, and strong enough to catch the bit flips and truncations a
/// store can pick up at rest — not a cryptographic integrity guarantee).
///
/// Public so that tooling and tests can (re)compute the digests recorded
/// in store headers and shard manifests.
#[derive(Debug, Clone)]
pub struct Fnv1a64(u64);

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a64 {
    /// Fresh hasher at the FNV-1a 64 offset basis.
    pub fn new() -> Self {
        Fnv1a64(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs `bytes` into the running digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest of everything absorbed so far.
    pub fn digest(&self) -> u64 {
        self.0
    }
}

/// Checksum of a complete serialized buffer, treating the 8 checksum bytes
/// themselves as zero.
fn buffer_checksum(buf: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(&buf[..CHECKSUM_OFFSET]);
    h.update(&[0u8; 8]);
    h.update(&buf[CHECKSUM_OFFSET + 8..]);
    h.digest()
}

/// A `Write` adapter that FNV-hashes every byte it forwards (used to
/// record whole-file shard digests while streaming a store to disk).
struct HashingWriter<W: Write> {
    inner: W,
    hash: Fnv1a64,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        Self {
            inner,
            hash: Fnv1a64::new(),
        }
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// The `Read` twin of [`HashingWriter`]: FNV-hashes every byte it
/// yields, so the buffered loader can produce whole-file digests in the
/// same pass that parses the store.
struct HashingReader<R: Read> {
    inner: R,
    hash: Fnv1a64,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        Self {
            inner,
            hash: Fnv1a64::new(),
        }
    }

    fn digest(&self) -> u64 {
        self.hash.digest()
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hash.update(&buf[..n]);
        Ok(n)
    }
}

/// How [`FrozenAdsSet::load_with`] brings a store off disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOptions {
    /// Verify the header checksum and the full structural invariants
    /// (default **on**). Turning this off is the warm-restart fast path
    /// for files this process (or a trusted peer) already verified:
    /// header sanity, exact length, and offset-table invariants are
    /// still enforced, but the per-byte checksum walk and the O(E)
    /// canonical-order scan are skipped.
    pub verify: bool,
    /// Map the file's columns in place with `mmap` instead of copying
    /// them into owned memory (default **off**, matching
    /// [`FrozenAdsSet::load`]'s historical behaviour). Zero-copy on
    /// 64-bit Linux; elsewhere (and whenever the syscall declines) the
    /// loader silently falls back to buffered reads, so the option is
    /// a pure fast path. Replicas mapping the same file share its pages
    /// through the kernel page cache.
    pub map: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            verify: true,
            map: false,
        }
    }
}

impl LoadOptions {
    /// Verified, zero-copy: the serving tier's cold-start default.
    pub fn mapped() -> Self {
        Self {
            verify: true,
            map: true,
        }
    }

    /// Unverified, zero-copy: the warm-replica-restart fast path for
    /// stores that were already verified when first deployed.
    pub fn trusted() -> Self {
        Self {
            verify: false,
            map: true,
        }
    }
}

/// Sets the process-global **per-thread** budget (in bytes) for the
/// compressed store's decoded-block scratch cache.
///
/// Format-v2 stores decode row blocks lazily on first touch and retain
/// them per thread up to this budget; past it the thread's scratch is
/// flushed wholesale and refills as the sweep proceeds. The 64 MiB
/// default keeps point-query working sets resident while bounding
/// memory on wide fleets. A **buffered** (non-mapped) store whose
/// *entire* decoded form fits the budget instead thaws on first touch
/// into one shared contiguous column set — the full-width (v1) memory
/// layout — so hosts that repeatedly sweep one large store (batch
/// benchmarks, dedicated query servers with memory to spare) can raise
/// the budget above the store's decoded size and get v1 sweep
/// throughput from the compressed file after the first touch; mapped
/// stores always keep the lazy per-block path. Affects v2 stores only;
/// answers are bit-identical at any budget.
pub fn set_block_cache_budget(bytes: usize) {
    v2::set_scratch_budget(bytes);
}

/// The current per-thread decoded-block scratch budget in bytes (see
/// [`set_block_cache_budget`]).
pub fn block_cache_budget() -> usize {
    v2::scratch_budget()
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("bounds checked"))
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("bounds checked"))
}

/// The untrusted fields common to both store-header versions, after the
/// O(1) sanity checks shared by the streaming and mapped loaders.
struct ParsedHeader {
    version: u32,
    k: u32,
    n: u64,
    entries: u64,
    stored_checksum: u64,
    /// Exact serialized length a **v1** header implies (u128:
    /// untrusted). For v2 the total length depends on body fields the
    /// header does not carry; v2 loaders derive lengths progressively.
    expected_len: u128,
}

/// Validates magic/version/counts of the 40 common store-header bytes.
fn parse_store_header(header: &[u8; HEADER_LEN]) -> Result<ParsedHeader, FrozenError> {
    if header[..8] != FROZEN_MAGIC {
        return Err(FrozenError::BadMagic);
    }
    let version = read_u32(header, 8);
    if version != FROZEN_FORMAT_VERSION && version != FROZEN_FORMAT_VERSION_V2 {
        return Err(FrozenError::UnsupportedVersion(version));
    }
    let k = read_u32(header, 12);
    let n = read_u64(header, 16);
    let entries = read_u64(header, 24);
    let stored_checksum = read_u64(header, CHECKSUM_OFFSET);
    if k == 0 {
        return Err(FrozenError::Corrupt("k must be ≥ 1".into()));
    }
    if n > u32::MAX as u64 || entries > u32::MAX as u64 {
        return Err(FrozenError::Corrupt(format!(
            "node/entry counts exceed the u32 CSR limit (n = {n}, entries = {entries})"
        )));
    }
    // All arithmetic in u128: header fields are untrusted.
    let expected_len = HEADER_LEN as u128 + (n as u128 + 1) * 4 + entries as u128 * (4 + 3 * 8);
    Ok(ParsedHeader {
        version,
        k,
        n,
        entries,
        stored_checksum,
        expected_len,
    })
}

/// Fills `buf` from the reader, mapping end-of-input to
/// [`FrozenError::Truncated`] (with `already` bytes known consumed so far).
fn read_exact_or_truncated<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    expected: u64,
    already: u64,
) -> Result<(), FrozenError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FrozenError::Truncated {
                    expected,
                    actual: already + filled as u64,
                })
            }
            Ok(m) => filled += m,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrozenError::Io(e)),
        }
    }
    Ok(())
}

/// Capacity hint cap for column vectors: element counts come from an
/// untrusted header, so never pre-reserve more than this many elements —
/// a short input hits [`FrozenError::Truncated`] before growth hurts.
const COL_CAPACITY_HINT: usize = 1 << 20;

/// Streams one store's column arrays off a reader in fixed-size chunks,
/// hashing every byte for the header checksum.
struct ColumnReader<'a, R: Read> {
    r: &'a mut R,
    /// `None` when the caller opted out of checksum verification — the
    /// expensive per-byte FNV walk is skipped entirely.
    hash: Option<&'a mut Fnv1a64>,
    /// Total serialized length the header promised (for error reporting).
    expected: u64,
    consumed: &'a mut u64,
}

impl<R: Read> ColumnReader<'_, R> {
    fn read_chunks(
        &mut self,
        total_bytes: usize,
        mut on_chunk: impl FnMut(&[u8]),
    ) -> Result<(), FrozenError> {
        // 8192 is a multiple of both element sizes (4 and 8), so every
        // chunk holds whole elements.
        let mut buf = [0u8; 8192];
        let mut remaining = total_bytes;
        while remaining > 0 {
            let take = remaining.min(buf.len());
            read_exact_or_truncated(self.r, &mut buf[..take], self.expected, *self.consumed)?;
            *self.consumed += take as u64;
            if let Some(hash) = self.hash.as_deref_mut() {
                hash.update(&buf[..take]);
            }
            on_chunk(&buf[..take]);
            remaining -= take;
        }
        Ok(())
    }

    fn read_u32_col(&mut self, count: usize) -> Result<Vec<u32>, FrozenError> {
        let mut col = Vec::with_capacity(count.min(COL_CAPACITY_HINT));
        self.read_chunks(count * 4, |chunk| {
            for w in chunk.chunks_exact(4) {
                col.push(u32::from_le_bytes(w.try_into().expect("4-byte chunks")));
            }
        })?;
        Ok(col)
    }

    fn read_f64_col(&mut self, count: usize) -> Result<Vec<f64>, FrozenError> {
        let mut col = Vec::with_capacity(count.min(COL_CAPACITY_HINT));
        self.read_chunks(count * 8, |chunk| {
            for w in chunk.chunks_exact(8) {
                col.push(f64::from_bits(u64::from_le_bytes(
                    w.try_into().expect("8-byte chunks"),
                )));
            }
        })?;
        Ok(col)
    }
}

impl FrozenAdsSet {
    /// Assembles a fully-owned wide store from its columns.
    fn from_owned_cols(
        k: u32,
        offsets: Vec<u32>,
        nodes: Vec<NodeId>,
        dists: Vec<f64>,
        ranks: Vec<f64>,
        weights: Vec<f64>,
    ) -> Self {
        Self {
            k,
            region: None,
            offsets: Col::Owned(offsets),
            repr: Repr::Wide {
                nodes: Col::Owned(nodes),
                dists: Col::Owned(dists),
                ranks: Col::Owned(ranks),
                weights: Col::Owned(weights),
            },
        }
    }

    /// The CSR prefix-offset column (`n + 1` elements).
    #[inline]
    fn offsets(&self) -> &[u32] {
        self.offsets.slice(self.region.as_ref())
    }

    /// The four wide columns, for code paths that require full-width
    /// representation. Panics on a v2 store — every caller dispatches on
    /// `repr` first.
    #[inline]
    fn wide_cols(&self) -> (&[NodeId], &[f64], &[f64], &[f64]) {
        match &self.repr {
            Repr::Wide {
                nodes,
                dists,
                ranks,
                weights,
            } => {
                let region = self.region.as_ref();
                (
                    nodes.slice(region),
                    dists.slice(region),
                    ranks.slice(region),
                    weights.slice(region),
                )
            }
            Repr::V2(_) => panic!("full-width column access on a compressed (v2) store"),
        }
    }

    /// The sampled-node-id column (`E` elements; wide stores only).
    #[inline]
    fn nodes(&self) -> &[NodeId] {
        self.wide_cols().0
    }

    /// The distance column (`E` elements; wide stores only).
    #[inline]
    fn dists(&self) -> &[f64] {
        self.wide_cols().1
    }

    /// The rank column (`E` elements; wide stores only).
    #[inline]
    fn ranks(&self) -> &[f64] {
        self.wide_cols().2
    }

    /// The HIP adjusted-weight column (`E` elements; wide stores only).
    #[inline]
    fn weights(&self) -> &[f64] {
        self.wide_cols().3
    }

    /// The v2 decode context (compressed stores only).
    #[inline]
    fn v2_ctx<'a>(&'a self, repr: &'a v2::V2Repr) -> v2::V2Ctx<'a> {
        v2::V2Ctx {
            repr,
            region: self.region.as_ref(),
            offsets: self.offsets(),
        }
    }

    /// Runs `f` on row `v`'s four column slices, whichever representation
    /// holds them. Wide stores slice in place, and a **thawed** v2 store
    /// takes the identical slicing path over its shared full-width
    /// columns (one extra atomic load); other v2 stores hand out the row
    /// from the lazily decoded per-thread block scratch. This is the
    /// single dispatch point every query goes through, so estimator
    /// arithmetic is shared — and bit-identical — across formats.
    #[inline]
    fn with_row<T>(&self, v: NodeId, f: impl FnOnce(RowSlices<'_>) -> T) -> T {
        let (nodes, dists, ranks, weights) = match &self.repr {
            Repr::Wide { .. } => self.wide_cols(),
            Repr::V2(repr) => match repr.thawed_cols() {
                Some(cols) => cols,
                None => return self.v2_ctx(repr).with_row(v, f),
            },
        };
        let r = self.entry_range(v);
        f(RowSlices {
            nodes: &nodes[r.clone()],
            dists: &dists[r.clone()],
            ranks: &ranks[r.clone()],
            weights: &weights[r],
        })
    }

    /// Visits every row in order — the cold full-scan twin of
    /// [`FrozenAdsSet::with_row`] (serialization, thaw, equality). For
    /// v2 stores this decodes block by block into one reused local
    /// buffer, bypassing the per-thread scratch.
    fn for_each_row(&self, mut f: impl FnMut(usize, RowSlices<'_>)) {
        match &self.repr {
            Repr::Wide { .. } => {
                let (nodes, dists, ranks, weights) = self.wide_cols();
                for v in 0..self.num_nodes() {
                    let r = self.entry_range(v as NodeId);
                    f(
                        v,
                        RowSlices {
                            nodes: &nodes[r.clone()],
                            dists: &dists[r.clone()],
                            ranks: &ranks[r.clone()],
                            weights: &weights[r],
                        },
                    );
                }
            }
            Repr::V2(repr) => self.v2_ctx(repr).for_each_row_decoded(f),
        }
    }

    /// Decodes the store into fully-owned wide columns (identity for
    /// wide stores other than copying). The v1 writer and `thaw` use
    /// this to serve from a compressed store.
    fn to_wide_owned(&self) -> Self {
        let mut nodes = Vec::with_capacity(self.num_entries());
        let mut dists = Vec::with_capacity(self.num_entries());
        let mut ranks = Vec::with_capacity(self.num_entries());
        let mut weights = Vec::with_capacity(self.num_entries());
        self.for_each_row(|_, row| {
            nodes.extend_from_slice(row.nodes);
            dists.extend_from_slice(row.dists);
            ranks.extend_from_slice(row.ranks);
            weights.extend_from_slice(row.weights);
        });
        Self::from_owned_cols(
            self.k,
            self.offsets().to_vec(),
            nodes,
            dists,
            ranks,
            weights,
        )
    }

    /// The on-disk format version this store was built or loaded in:
    /// `1` for full-width (wide) stores, `2` for compressed stores.
    pub fn format_version(&self) -> u32 {
        match &self.repr {
            Repr::Wide { .. } => FROZEN_FORMAT_VERSION,
            Repr::V2(_) => FROZEN_FORMAT_VERSION_V2,
        }
    }

    /// True when the store's columns view a memory-mapped file instead
    /// of owned heap memory (see [`LoadOptions::map`]).
    pub fn is_mapped(&self) -> bool {
        self.region.is_some()
    }

    /// Freezes a heap-backed ADS set into columnar form, precomputing the
    /// HIP adjusted weight of every entry.
    ///
    /// Panics if the set holds ≥ 2³² entries (the CSR offsets are `u32`;
    /// at the paper's `k(1 + ln n − ln k)` expected entries per node that
    /// bound is only reached beyond ~10⁷ nodes at k = 64 — shard the graph
    /// before freezing at that scale).
    pub fn from_ads_set(ads: &AdsSet) -> Self {
        let total = ads.total_entries();
        assert!(
            u32::try_from(total).is_ok(),
            "frozen store is limited to 2^32 − 1 entries; got {total}"
        );
        let n = ads.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut nodes = Vec::with_capacity(total);
        let mut dists = Vec::with_capacity(total);
        let mut ranks = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        offsets.push(0u32);
        for sketch in ads.sketches() {
            for e in sketch.entries() {
                nodes.push(e.node);
                dists.push(e.dist);
                ranks.push(e.rank);
            }
            sketch.hip_scan(|it| weights.push(it.weight));
            offsets.push(nodes.len() as u32);
        }
        Self::from_owned_cols(ads.k() as u32, offsets, nodes, dists, ranks, weights)
    }

    /// Freezes only rows `lo..hi` of `ads` into a *full-width* store: the
    /// result covers all `n` rows (so it is a valid version-1 store with
    /// the usual in-range node-id invariant), but rows outside `lo..hi`
    /// are empty. This is the per-shard form [`freeze_sharded`] writes.
    fn from_ads_set_range(ads: &AdsSet, lo: usize, hi: usize) -> Self {
        debug_assert!(lo <= hi && hi <= ads.num_nodes());
        let total: usize = ads.sketches()[lo..hi]
            .iter()
            .map(|s| s.entries().len())
            .sum();
        assert!(
            u32::try_from(total).is_ok(),
            "frozen store is limited to 2^32 − 1 entries; got {total}"
        );
        let n = ads.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut nodes = Vec::with_capacity(total);
        let mut dists = Vec::with_capacity(total);
        let mut ranks = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        offsets.push(0u32);
        for (v, sketch) in ads.sketches().iter().enumerate() {
            if v >= lo && v < hi {
                for e in sketch.entries() {
                    nodes.push(e.node);
                    dists.push(e.dist);
                    ranks.push(e.rank);
                }
                sketch.hip_scan(|it| weights.push(it.weight));
            }
            offsets.push(nodes.len() as u32);
        }
        Self::from_owned_cols(ads.k() as u32, offsets, nodes, dists, ranks, weights)
    }

    /// Reconstructs a heap-backed [`AdsSet`] (e.g. to continue mutating a
    /// loaded store). The round trip `ads.freeze().thaw()` is lossless.
    pub fn thaw(&self) -> AdsSet {
        let mut sketches = Vec::with_capacity(self.num_nodes());
        self.for_each_row(|_, row| {
            let entries: Vec<AdsEntry> = (0..row.nodes.len())
                .map(|i| AdsEntry::new(row.nodes[i], row.dists[i], row.ranks[i]))
                .collect();
            sketches.push(BottomKAds::from_entries(self.k as usize, entries));
        });
        AdsSet::from_sketches(self.k as usize, sketches)
    }

    /// The sketch parameter k.
    #[inline]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// Number of nodes covered.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets().len() - 1
    }

    /// Total number of stored entries.
    #[inline]
    pub fn num_entries(&self) -> usize {
        match &self.repr {
            Repr::Wide { nodes, .. } => nodes.slice(self.region.as_ref()).len(),
            // Valid for any loaded/constructed store: every load path
            // validates the offset column before handing the store out.
            Repr::V2(_) => *self.offsets().last().expect("n+1 offsets") as usize,
        }
    }

    /// Number of entries stored before node `v`'s range (the CSR prefix
    /// offset). `v` may equal [`FrozenAdsSet::num_nodes`], giving the
    /// total entry count. Offsets are validated monotone on load, so
    /// "rows `lo..hi` hold every entry" collapses to
    /// `entry_offset(lo) == 0 && entry_offset(hi) == num_entries()` —
    /// the O(1) check sharded-store loaders use.
    #[inline]
    pub fn entry_offset(&self, v: usize) -> usize {
        self.offsets()[v] as usize
    }

    #[inline]
    fn entry_range(&self, v: NodeId) -> std::ops::Range<usize> {
        let offsets = self.offsets();
        offsets[v as usize] as usize..offsets[v as usize + 1] as usize
    }

    /// The precomputed HIP adjusted weights of `ADS(v)`, in canonical
    /// order (zero-copy column slice).
    ///
    /// # Panics
    ///
    /// On a compressed (v2) store — there is no stable slice to borrow
    /// from a lazily decoded block. Format-agnostic callers should go
    /// through [`crate::view::AdsView`] instead.
    #[inline]
    pub fn hip_weights_slice(&self, v: NodeId) -> &[f64] {
        &self.weights()[self.entry_range(v)]
    }

    /// The distances of `ADS(v)` in canonical order (zero-copy slice).
    ///
    /// # Panics
    ///
    /// On a compressed (v2) store, like
    /// [`FrozenAdsSet::hip_weights_slice`].
    #[inline]
    pub fn dists_slice(&self, v: NodeId) -> &[f64] {
        &self.dists()[self.entry_range(v)]
    }

    /// Resident *heap* memory of the store in bytes (struct + owned
    /// columns; for v2, the actual compressed structures, not a
    /// decoded-width estimate). Mapped columns and blobs count as zero:
    /// their pages are file-backed, shared with every other process
    /// mapping the same store, and reclaimable by the kernel at any
    /// time.
    pub fn resident_bytes(&self) -> usize {
        fn owned<T>(col: &Col<T>) -> usize {
            match col {
                Col::Owned(v) => v.capacity() * std::mem::size_of::<T>(),
                Col::Mapped { .. } => 0,
            }
        }
        let repr = match &self.repr {
            Repr::Wide {
                nodes,
                dists,
                ranks,
                weights,
            } => owned(nodes) + owned(dists) + owned(ranks) + owned(weights),
            Repr::V2(repr) => repr.resident_bytes(),
        };
        std::mem::size_of::<Self>() + owned(&self.offsets) + repr
    }

    /// Exact length of [`FrozenAdsSet::to_bytes`]'s (always version-1)
    /// output in bytes. v2 output lengths depend on the data; measure
    /// [`FrozenAdsSet::to_bytes_format`]'s result instead.
    pub fn serialized_len(&self) -> usize {
        HEADER_LEN + self.offsets().len() * 4 + self.num_entries() * 4 + self.num_entries() * 3 * 8
    }

    /// The 40-byte version-1 header with the checksum field zeroed.
    fn header_with_zero_checksum(&self) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        h[0..8].copy_from_slice(&FROZEN_MAGIC);
        h[8..12].copy_from_slice(&FROZEN_FORMAT_VERSION.to_le_bytes());
        h[12..16].copy_from_slice(&self.k.to_le_bytes());
        h[16..24].copy_from_slice(&(self.num_nodes() as u64).to_le_bytes());
        h[24..32].copy_from_slice(&(self.num_entries() as u64).to_le_bytes());
        h
    }

    /// Streams every payload byte (the five column arrays, in on-disk
    /// order) into `sink`.
    fn for_each_payload_chunk(
        &self,
        mut sink: impl FnMut(&[u8]) -> std::io::Result<()>,
    ) -> std::io::Result<()> {
        let mut chunk = [0u8; 8192];
        let mut fill = 0usize;
        macro_rules! push {
            ($bytes:expr) => {{
                let b = $bytes;
                if fill + b.len() > chunk.len() {
                    sink(&chunk[..fill])?;
                    fill = 0;
                }
                chunk[fill..fill + b.len()].copy_from_slice(&b);
                fill += b.len();
            }};
        }
        for &o in self.offsets() {
            push!(o.to_le_bytes());
        }
        for &nd in self.nodes() {
            push!(nd.to_le_bytes());
        }
        for col in [self.dists(), self.ranks(), self.weights()] {
            for &x in col.iter() {
                push!(x.to_bits().to_le_bytes());
            }
        }
        if fill > 0 {
            sink(&chunk[..fill])?;
        }
        Ok(())
    }

    /// Streams the version-1 on-disk format into `w` without materializing
    /// the serialized buffer (two passes over the columns: one to compute
    /// the header checksum, one to write). [`FrozenAdsSet::to_bytes`] is a
    /// thin wrapper over this. A compressed store is decoded to wide
    /// columns first — the v1 ↔ v2 round trip is bitwise lossless.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        if matches!(self.repr, Repr::V2(_)) {
            return self.to_wide_owned().write_to(w);
        }
        let mut header = self.header_with_zero_checksum();
        // Pass 1: the checksum, over header-with-zeroed-field + payload.
        let mut hash = Fnv1a64::new();
        hash.update(&header);
        self.for_each_payload_chunk(|chunk| {
            hash.update(chunk);
            Ok(())
        })
        .expect("in-memory pass cannot fail");
        header[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&hash.digest().to_le_bytes());
        // Pass 2: write.
        w.write_all(&header)?;
        self.for_each_payload_chunk(|chunk| w.write_all(chunk))
    }

    /// Serializes to the version-1 on-disk format (one contiguous
    /// little-endian buffer; see the module docs for the layout). Always
    /// v1 regardless of the store's in-memory representation — the
    /// compatibility baseline; use [`FrozenAdsSet::to_bytes_format`] to
    /// opt into v2.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.serialized_len());
        self.write_to(&mut buf)
            .expect("Vec<u8> writes are infallible");
        debug_assert_eq!(buf.len(), self.serialized_len());
        buf
    }

    /// Serializes to the requested [`StoreFormat`]. Both outputs decode
    /// to stores that compare equal to `self` (bitwise on every float),
    /// so the choice only trades bytes against encode time.
    pub fn to_bytes_format(&self, format: StoreFormat) -> Vec<u8> {
        match format {
            StoreFormat::V1 => self.to_bytes(),
            StoreFormat::V2 => match &self.repr {
                Repr::Wide { .. } => {
                    let (nodes, dists, ranks, weights) = self.wide_cols();
                    v2::encode(
                        self.k,
                        v2::RowsSource {
                            offsets: self.offsets(),
                            nodes,
                            dists,
                            ranks,
                            weights,
                        },
                    )
                }
                // Re-encoding a compressed store: decode to wide first
                // (the encoder verifies every entry against wide input).
                Repr::V2(_) => self.to_wide_owned().to_bytes_format(StoreFormat::V2),
            },
        }
    }

    /// [`FrozenAdsSet::write_to`] with an explicit [`StoreFormat`].
    pub fn write_to_format<W: Write>(&self, w: &mut W, format: StoreFormat) -> std::io::Result<()> {
        match format {
            StoreFormat::V1 => self.write_to(w),
            StoreFormat::V2 => w.write_all(&self.to_bytes_format(StoreFormat::V2)),
        }
    }

    /// [`FrozenAdsSet::save`] with an explicit [`StoreFormat`].
    pub fn save_format(&self, path: impl AsRef<Path>, format: StoreFormat) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        self.write_to_format(&mut w, format)?;
        w.flush()
    }

    /// Deserializes the version-1 format from any `Read`, streaming the
    /// columns in fixed-size chunks — shard and store loading never
    /// materializes an intermediate whole-file `Vec<u8>`.
    ///
    /// Consumes exactly one serialized store from the reader and leaves
    /// anything after it unread (callers that require end-of-input, like
    /// [`FrozenAdsSet::from_bytes`] and [`FrozenAdsSet::load`], check for
    /// trailing bytes themselves). All header/checksum/structural
    /// validations of `from_bytes` apply.
    pub fn from_reader<R: Read>(r: &mut R) -> Result<Self, FrozenError> {
        Self::from_reader_opts(r, true)
    }

    /// [`FrozenAdsSet::from_reader`] with checksum/structural validation
    /// controlled by `verify` (the buffered half of
    /// [`FrozenAdsSet::load_with`]). With `verify` off, only the O(1)
    /// header sanity checks and the O(n) offset invariants every query
    /// relies on are enforced — the per-byte checksum walk and the O(E)
    /// canonical-order scan are skipped.
    fn from_reader_opts<R: Read>(r: &mut R, verify: bool) -> Result<Self, FrozenError> {
        let mut header = [0u8; HEADER_LEN];
        read_exact_or_truncated(r, &mut header, HEADER_LEN as u64, 0)?;
        let parsed = parse_store_header(&header)?;
        let (k, n, entries) = (parsed.k, parsed.n as usize, parsed.entries as usize);

        // Hash the header with the checksum field zeroed, then every
        // payload byte as it streams past.
        let mut hash = Fnv1a64::new();
        if verify {
            hash.update(&header[..CHECKSUM_OFFSET]);
            hash.update(&[0u8; 8]);
            hash.update(&header[CHECKSUM_OFFSET + 8..]);
        }

        if parsed.version == FROZEN_FORMAT_VERSION_V2 {
            let body = v2::read_body(r, n, entries, verify.then_some(&mut hash))?;
            if verify {
                let computed = hash.digest();
                if computed != parsed.stored_checksum {
                    return Err(FrozenError::ChecksumMismatch {
                        stored: parsed.stored_checksum,
                        computed,
                    });
                }
            }
            let store = Self {
                k,
                region: None,
                offsets: body.offsets,
                repr: Repr::V2(body.repr),
            };
            store.validate_offsets(entries)?;
            if verify {
                if let Repr::V2(repr) = &store.repr {
                    store.v2_ctx(repr).validate()?;
                }
            }
            return Ok(store);
        }

        let mut consumed = HEADER_LEN as u64;
        let mut col_reader = ColumnReader {
            r,
            hash: verify.then_some(&mut hash),
            expected: parsed.expected_len as u64,
            consumed: &mut consumed,
        };
        // Capacity hints are capped: the counts come from an untrusted
        // header, and a short input hits EOF before over-allocation hurts.
        let offsets = col_reader.read_u32_col(n + 1)?;
        let nodes = col_reader.read_u32_col(entries)?;
        let dists = col_reader.read_f64_col(entries)?;
        let ranks = col_reader.read_f64_col(entries)?;
        let weights = col_reader.read_f64_col(entries)?;

        if verify {
            let computed = hash.digest();
            if computed != parsed.stored_checksum {
                return Err(FrozenError::ChecksumMismatch {
                    stored: parsed.stored_checksum,
                    computed,
                });
            }
        }
        let store = Self::from_owned_cols(k, offsets, nodes, dists, ranks, weights);
        if verify {
            store.validate_structure()?;
        } else {
            store.validate_offsets(store.num_entries())?;
        }
        Ok(store)
    }

    /// Deserializes a buffer produced by [`FrozenAdsSet::to_bytes`],
    /// validating magic, version, length, checksum, and the structural
    /// payload invariants (thin wrapper over
    /// [`FrozenAdsSet::from_reader`] that additionally rejects trailing
    /// bytes). Lossless: the result compares equal to the store that was
    /// serialized.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, FrozenError> {
        let mut r = buf;
        let store = Self::from_reader(&mut r)?;
        if !r.is_empty() {
            return Err(FrozenError::Corrupt(format!(
                "{} trailing bytes after the payload",
                r.len()
            )));
        }
        Ok(store)
    }

    /// The O(n) offset invariants every query's slicing relies on:
    /// monotone offsets starting at 0 and spanning exactly `entries`
    /// stored entries (the count is passed explicitly: for wide stores
    /// it is the physical column length, for v2 the header's claim).
    /// Enforced even by trust-the-file loads ([`LoadOptions::verify`]
    /// off) so no column access can panic on an inverted or
    /// out-of-bounds range.
    fn validate_offsets(&self, entries: usize) -> Result<(), FrozenError> {
        let offsets = self.offsets();
        if offsets[0] != 0 {
            return Err(FrozenError::Corrupt("offsets[0] must be 0".into()));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(FrozenError::Corrupt(
                "offsets must be non-decreasing".into(),
            ));
        }
        if *offsets.last().expect("n+1 offsets") as usize != entries {
            return Err(FrozenError::Corrupt(
                "last offset must equal the entry count".into(),
            ));
        }
        Ok(())
    }

    /// Structural invariants the CSR columns must satisfy for every query
    /// to be well-defined: monotone offsets spanning exactly the entry
    /// columns, in-range node ids, canonical per-node entry order.
    /// (Wide stores only; v2 stores run the block-level validator in
    /// `frozen/v2.rs` instead.)
    fn validate_structure(&self) -> Result<(), FrozenError> {
        self.validate_offsets(self.num_entries())?;
        let n = self.num_nodes();
        let (nodes, dists) = (self.nodes(), self.dists());
        for v in 0..n as NodeId {
            let r = self.entry_range(v);
            if nodes[r.clone()].iter().any(|&nd| nd as usize >= n) {
                return Err(FrozenError::Corrupt(format!(
                    "node {v}: sampled node id out of range"
                )));
            }
            let ds = &dists[r.clone()];
            let ns = &nodes[r];
            let in_order = ds.windows(2).zip(ns.windows(2)).all(|(d, nd)| {
                d[0].total_cmp(&d[1]).then(nd[0].cmp(&nd[1])) == std::cmp::Ordering::Less
            });
            if !in_order {
                return Err(FrozenError::Corrupt(format!(
                    "node {v}: entries out of canonical (dist, node) order"
                )));
            }
        }
        Ok(())
    }

    /// Streams the store to a file (buffered [`FrozenAdsSet::write_to`] —
    /// no intermediate whole-file buffer).
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Streams in and deserializes a store written by
    /// [`FrozenAdsSet::save`], rejecting files with trailing bytes after
    /// the payload. Equivalent to [`FrozenAdsSet::load_with`] with
    /// [`LoadOptions::default`]: fully verified, owned (copying) columns.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, FrozenError> {
        Self::load_with(path, LoadOptions::default())
    }

    /// Loads a store with explicit [`LoadOptions`]: optionally mapping
    /// the file's columns in place (zero-copy, kernel-page-cache-shared)
    /// and optionally skipping checksum + full structural verification
    /// for warm restarts of already-trusted files.
    ///
    /// All of [`FrozenAdsSet::load`]'s rejections apply whenever
    /// `opts.verify` is on, regardless of backing; with `verify` off,
    /// header sanity, exact file length, and the offset-table invariants
    /// are still enforced (queries can never slice out of bounds), but
    /// bit rot in the entry columns goes undetected by design.
    pub fn load_with(path: impl AsRef<Path>, opts: LoadOptions) -> Result<Self, FrozenError> {
        Ok(Self::load_with_digest(path, opts)?.0)
    }

    /// [`FrozenAdsSet::load_with`], additionally returning the FNV-1a 64
    /// digest of the complete file when `opts.verify` is on (`None`
    /// otherwise). Sharded-store loaders use this to check the
    /// manifest's whole-file shard digests in the same pass instead of
    /// re-reading the file.
    pub fn load_with_digest(
        path: impl AsRef<Path>,
        opts: LoadOptions,
    ) -> Result<(Self, Option<u64>), FrozenError> {
        let file = std::fs::File::open(path)?;
        if opts.map {
            if let Some(region) = mmap::map_readonly(&file)? {
                return Self::from_mapped(region, opts.verify);
            }
        }
        // Buffered copying path: no mmap requested, unsupported
        // platform, or the map syscall declined.
        let mut r = std::io::BufReader::new(file);
        let (store, digest) = if opts.verify {
            let mut hr = HashingReader::new(&mut r);
            let store = Self::from_reader_opts(&mut hr, true)?;
            if !reader_at_eof(&mut hr)? {
                return Err(FrozenError::Corrupt(
                    "trailing bytes after the payload".into(),
                ));
            }
            let digest = hr.digest();
            (store, Some(digest))
        } else {
            let store = Self::from_reader_opts(&mut r, false)?;
            if !reader_at_eof(&mut r)? {
                return Err(FrozenError::Corrupt(
                    "trailing bytes after the payload".into(),
                ));
            }
            (store, None)
        };
        Ok((store, digest))
    }

    /// Builds a store over a mapped file region: header and length
    /// checks always; checksum + full structural scan only under
    /// `verify`. Columns stay zero-copy views except the three `f64`
    /// columns of files whose layout lands them 8-misaligned (possible
    /// in the padding-free v1 format when `n + 1 + E` is odd) — those
    /// are decoded into owned memory so every slice access stays sound.
    fn from_mapped(region: MapRegion, verify: bool) -> Result<(Self, Option<u64>), FrozenError> {
        let buf = region.bytes();
        if buf.len() < HEADER_LEN {
            return Err(FrozenError::Truncated {
                expected: HEADER_LEN as u64,
                actual: buf.len() as u64,
            });
        }
        let header: [u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().expect("length checked");
        let parsed = parse_store_header(&header)?;
        if parsed.version == FROZEN_FORMAT_VERSION_V2 {
            // v2: metadata (dictionary, block-offset table) decodes into
            // small owned vectors; the offset column and the compressed
            // blob stay zero-copy views. Blocks decode lazily on first
            // touch, so unqueried pages are never faulted in.
            let body = v2::parse_mapped(&region, parsed.n as usize, parsed.entries as usize)?;
            let whole_file_digest = if verify {
                let computed = buffer_checksum(buf);
                if computed != parsed.stored_checksum {
                    return Err(FrozenError::ChecksumMismatch {
                        stored: parsed.stored_checksum,
                        computed,
                    });
                }
                let mut h = Fnv1a64::new();
                h.update(buf);
                Some(h.digest())
            } else {
                None
            };
            let store = Self {
                k: parsed.k,
                offsets: body.offsets,
                repr: Repr::V2(body.repr),
                region: Some(region),
            };
            store.validate_offsets(parsed.entries as usize)?;
            if verify {
                if let Repr::V2(repr) = &store.repr {
                    store.v2_ctx(repr).validate()?;
                }
            }
            return Ok((store, whole_file_digest));
        }
        if (buf.len() as u128) < parsed.expected_len {
            return Err(FrozenError::Truncated {
                expected: parsed.expected_len as u64,
                actual: buf.len() as u64,
            });
        }
        if buf.len() as u128 > parsed.expected_len {
            return Err(FrozenError::Corrupt(format!(
                "{} trailing bytes after the payload",
                buf.len() as u128 - parsed.expected_len
            )));
        }
        let whole_file_digest = if verify {
            let computed = buffer_checksum(buf);
            if computed != parsed.stored_checksum {
                return Err(FrozenError::ChecksumMismatch {
                    stored: parsed.stored_checksum,
                    computed,
                });
            }
            let mut h = Fnv1a64::new();
            h.update(buf);
            Some(h.digest())
        } else {
            None
        };

        let (n, entries) = (parsed.n as usize, parsed.entries as usize);
        let off_offsets = HEADER_LEN;
        let off_nodes = off_offsets + (n + 1) * 4;
        let off_dists = off_nodes + entries * 4;
        let off_ranks = off_dists + entries * 8;
        let off_weights = off_ranks + entries * 8;
        // u32 columns are always 4-aligned (page-aligned base, 4-aligned
        // offsets); assert the invariant rather than trusting it.
        assert!(
            region.u32_slice(off_offsets, n + 1).is_some()
                && region.u32_slice(off_nodes, entries).is_some(),
            "u32 columns must be in bounds and aligned in a length-checked mapping"
        );
        let f64_mapped = region.f64_slice(off_dists, entries).is_some();
        let f64_col = |off: usize| -> Col<f64> {
            if f64_mapped {
                Col::Mapped {
                    off,
                    count: entries,
                }
            } else {
                Col::Owned(
                    buf[off..off + entries * 8]
                        .chunks_exact(8)
                        .map(|w| f64::from_bits(u64::from_le_bytes(w.try_into().expect("8-byte"))))
                        .collect(),
                )
            }
        };
        let dists = f64_col(off_dists);
        let ranks = f64_col(off_ranks);
        let weights = f64_col(off_weights);
        let store = Self {
            k: parsed.k,
            offsets: Col::Mapped {
                off: off_offsets,
                count: n + 1,
            },
            repr: Repr::Wide {
                nodes: Col::Mapped {
                    off: off_nodes,
                    count: entries,
                },
                dists,
                ranks,
                weights,
            },
            region: Some(region),
        };
        if verify {
            store.validate_structure()?;
        } else {
            store.validate_offsets(store.num_entries())?;
        }
        Ok((store, whole_file_digest))
    }

    /// Estimated distance distribution of the whole graph — same quantity
    /// as [`AdsSet::distance_distribution_estimate`], bitwise identical,
    /// served from the precomputed weight column.
    pub fn distance_distribution_estimate(&self) -> Vec<(f64, f64)> {
        crate::view::distance_distribution_estimate(self)
    }
}

impl AdsView for FrozenAdsSet {
    #[inline]
    fn k(&self) -> usize {
        self.k as usize
    }

    #[inline]
    fn num_nodes(&self) -> usize {
        FrozenAdsSet::num_nodes(self)
    }

    #[inline]
    fn entry_count(&self, v: NodeId) -> usize {
        self.entry_range(v).len()
    }

    fn for_each_entry(&self, v: NodeId, mut f: impl FnMut(AdsEntry)) {
        self.with_row(v, |row| {
            for i in 0..row.nodes.len() {
                f(AdsEntry::new(row.nodes[i], row.dists[i], row.ranks[i]));
            }
        })
    }

    fn for_each_hip(&self, v: NodeId, mut f: impl FnMut(HipItem)) {
        self.with_row(v, |row| {
            for i in 0..row.nodes.len() {
                f(HipItem {
                    node: row.nodes[i],
                    dist: row.dists[i],
                    weight: row.weights[i],
                });
            }
        })
    }

    fn size_at(&self, v: NodeId, d: f64) -> usize {
        self.with_row(v, |row| row.dists.partition_point(|&x| x <= d))
    }

    #[inline]
    fn total_entries(&self) -> usize {
        self.num_entries()
    }

    fn minhash_at(&self, v: NodeId, d: f64) -> adsketch_minhash::BottomKSketch {
        // Insert only the binary-searched distance-≤ d prefix, like the
        // heap path — not the trait default's full-sketch filter scan.
        self.with_row(v, |row| {
            let cut = row.dists.partition_point(|&x| x <= d);
            let mut sketch = adsketch_minhash::BottomKSketch::new(self.k as usize);
            for i in 0..cut {
                sketch.insert_ranked(row.ranks[i], row.nodes[i] as u64);
            }
            sketch
        })
    }

    fn hip_cardinality_at(&self, v: NodeId, d: f64) -> f64 {
        self.with_row(v, |row| {
            let cut = row.dists.partition_point(|&x| x <= d);
            row.weights[..cut].iter().sum()
        })
    }

    fn hip_reachable(&self, v: NodeId) -> f64 {
        self.with_row(v, |row| row.weights.iter().sum())
    }
}

/// True iff the reader has no bytes left (probes with a 1-byte read).
pub fn reader_at_eof<R: Read>(r: &mut R) -> std::io::Result<bool> {
    let mut probe = [0u8; 1];
    loop {
        match r.read(&mut probe) {
            Ok(0) => return Ok(true),
            Ok(_) => return Ok(false),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Magic bytes identifying a serialized shard manifest.
pub const SHARD_MAGIC: [u8; 8] = *b"ADSKSHD1";
/// The shard-manifest format version this build writes and reads.
pub const SHARD_FORMAT_VERSION: u32 = 1;
/// The manifest's file name inside a sharded-store directory.
pub const SHARD_MANIFEST_FILE: &str = "manifest.adsm";

const MANIFEST_HEADER_LEN: usize = 44;
const SHARD_RECORD_LEN: usize = 32;

/// The file name of shard `i` inside a sharded-store directory.
pub fn shard_file_name(i: usize) -> String {
    format!("shard-{i:05}.ads")
}

/// One shard's row in the manifest's node-range table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRecord {
    /// First node id the shard covers (inclusive).
    pub start: u64,
    /// One past the last node id the shard covers (exclusive).
    pub end: u64,
    /// Number of ADS entries stored in the shard.
    pub entries: u64,
    /// FNV-1a 64 digest of the complete shard file, **as written** — it
    /// pins the exact bytes, including the store-format version in the
    /// shard's own header. A shard file re-encoded in a different format
    /// (say, the v2 encoding of a shard the manifest digested as v1)
    /// hashes differently and is rejected by digest-checking loaders,
    /// even though both encodings decode to identical entries.
    pub digest: u64,
}

/// The checksummed manifest of a sharded frozen store: global parameters
/// plus the contiguous node-range table (see the module docs for the
/// on-disk layout). Written by [`freeze_sharded`] /
/// [`freeze_sharded_format`]; consumed by the `adsketch-serve` loader.
///
/// # Store-format versions a manifest may reference
///
/// The manifest format itself is unchanged at version 1 and carries no
/// per-shard format field: shard files are self-describing (their own
/// headers carry the version), and loaders accept any version the
/// [`FrozenAdsSet`] readers accept — v1 and v2 shards, even mixed
/// within one directory. What binds a manifest to specific formats is
/// the digest column: each [`ShardRecord::digest`] was computed over
/// one concrete byte image, so swapping a referenced shard file for its
/// re-encoding in another version (without re-freezing) is detected and
/// rejected exactly like any other byte-level mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    k: u32,
    n: u64,
    entries: u64,
    records: Vec<ShardRecord>,
}

impl ShardManifest {
    /// The sketch parameter k all shards were frozen with.
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// Number of nodes the sharded store covers.
    pub fn num_nodes(&self) -> usize {
        self.n as usize
    }

    /// Total number of entries across all shards.
    pub fn total_entries(&self) -> u64 {
        self.entries
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.records.len()
    }

    /// The node-range table, in shard order.
    pub fn records(&self) -> &[ShardRecord] {
        &self.records
    }

    /// The shard owning node `v` — the unique shard whose `start..end`
    /// range contains it. Callers must pass `v < num_nodes`. This is the
    /// routing primitive shared by every consumer of the manifest: the
    /// serving tier's all-shards store, per-shard backend processes, and
    /// the scatter/gather router all partition by this exact function, so
    /// a node can never be claimed by two tiers at once.
    #[inline]
    pub fn shard_of(&self, v: u64) -> usize {
        debug_assert!(v < self.n);
        // Last shard whose range start is ≤ v. Empty shards share their
        // start with the following shard and sort before it, so the
        // search lands on the owning (populated-range) shard.
        self.records.partition_point(|r| r.start <= v) - 1
    }

    /// Serializes the manifest (header + records, checksum patched in).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf =
            Vec::with_capacity(MANIFEST_HEADER_LEN + self.records.len() * SHARD_RECORD_LEN);
        buf.extend_from_slice(&SHARD_MAGIC);
        buf.extend_from_slice(&SHARD_FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.k.to_le_bytes());
        buf.extend_from_slice(&self.n.to_le_bytes());
        buf.extend_from_slice(&self.entries.to_le_bytes());
        buf.extend_from_slice(&[0u8; 8]); // checksum, patched below
        buf.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        for r in &self.records {
            buf.extend_from_slice(&r.start.to_le_bytes());
            buf.extend_from_slice(&r.end.to_le_bytes());
            buf.extend_from_slice(&r.entries.to_le_bytes());
            buf.extend_from_slice(&r.digest.to_le_bytes());
        }
        let checksum = buffer_checksum(&buf);
        buf[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Deserializes and validates a manifest: magic, version, length,
    /// checksum, and the structural invariants of the shard table
    /// (contiguous non-overlapping coverage of exactly `0..n`, entry
    /// counts summing to the recorded total).
    pub fn from_bytes(buf: &[u8]) -> Result<Self, FrozenError> {
        if buf.len() < MANIFEST_HEADER_LEN {
            return Err(FrozenError::Truncated {
                expected: MANIFEST_HEADER_LEN as u64,
                actual: buf.len() as u64,
            });
        }
        if buf[..8] != SHARD_MAGIC {
            return Err(FrozenError::BadMagic);
        }
        let version = read_u32(buf, 8);
        if version != SHARD_FORMAT_VERSION {
            return Err(FrozenError::UnsupportedVersion(version));
        }
        let k = read_u32(buf, 12);
        let n = read_u64(buf, 16);
        let entries = read_u64(buf, 24);
        let stored_checksum = read_u64(buf, CHECKSUM_OFFSET);
        let shard_count = read_u32(buf, 40);
        let expected = MANIFEST_HEADER_LEN as u128 + shard_count as u128 * SHARD_RECORD_LEN as u128;
        if (buf.len() as u128) < expected {
            return Err(FrozenError::Truncated {
                expected: expected as u64,
                actual: buf.len() as u64,
            });
        }
        if buf.len() as u128 != expected {
            return Err(FrozenError::Corrupt(format!(
                "{} trailing bytes after the shard table",
                buf.len() as u128 - expected
            )));
        }
        let computed = buffer_checksum(buf);
        if computed != stored_checksum {
            return Err(FrozenError::ChecksumMismatch {
                stored: stored_checksum,
                computed,
            });
        }
        let mut records = Vec::with_capacity(shard_count as usize);
        let mut at = MANIFEST_HEADER_LEN;
        for _ in 0..shard_count {
            records.push(ShardRecord {
                start: read_u64(buf, at),
                end: read_u64(buf, at + 8),
                entries: read_u64(buf, at + 16),
                digest: read_u64(buf, at + 24),
            });
            at += SHARD_RECORD_LEN;
        }
        let manifest = Self {
            k,
            n,
            entries,
            records,
        };
        manifest.validate()?;
        Ok(manifest)
    }

    /// The structural invariants every loadable manifest satisfies.
    fn validate(&self) -> Result<(), FrozenError> {
        if self.k == 0 {
            return Err(FrozenError::Corrupt("k must be ≥ 1".into()));
        }
        if self.n > u32::MAX as u64 {
            return Err(FrozenError::Corrupt(format!(
                "node count exceeds the u32 CSR limit (n = {})",
                self.n
            )));
        }
        if self.records.is_empty() {
            return Err(FrozenError::Corrupt("manifest lists no shards".into()));
        }
        let mut cursor = 0u64;
        for (i, r) in self.records.iter().enumerate() {
            if r.start != cursor {
                return Err(FrozenError::Corrupt(format!(
                    "shard {i}: range {}..{} does not continue at node {cursor} \
                     (overlapping or gapped shard table)",
                    r.start, r.end
                )));
            }
            if r.end < r.start {
                return Err(FrozenError::Corrupt(format!(
                    "shard {i}: inverted range {}..{}",
                    r.start, r.end
                )));
            }
            cursor = r.end;
        }
        if cursor != self.n {
            return Err(FrozenError::Corrupt(format!(
                "shard table covers 0..{cursor} but the store has {} nodes",
                self.n
            )));
        }
        let sum: u64 = self.records.iter().map(|r| r.entries).sum();
        if sum != self.entries {
            return Err(FrozenError::Corrupt(format!(
                "shard entry counts sum to {sum}, manifest records {}",
                self.entries
            )));
        }
        Ok(())
    }

    /// Writes the manifest to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads and validates a manifest written by [`ShardManifest::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, FrozenError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

/// Contiguous node-range cut points for `shards` shards, balanced by
/// entry count (each node weighted by `entries + 1` so empty sketches
/// still spread). Returns `shards + 1` monotone cut points from `0` to
/// `n`; trailing shards may be empty when `shards > n`.
fn shard_cuts(ads: &AdsSet, shards: usize) -> Vec<usize> {
    let n = ads.num_nodes();
    let total: u64 = ads
        .sketches()
        .iter()
        .map(|s| s.entries().len() as u64 + 1)
        .sum();
    let mut cuts = Vec::with_capacity(shards + 1);
    cuts.push(0);
    let mut consumed = 0u64;
    let mut v = 0usize;
    for i in 0..shards {
        let target = total * (i as u64 + 1) / shards as u64;
        while v < n && consumed < target {
            consumed += ads.sketch(v as NodeId).entries().len() as u64 + 1;
            v += 1;
        }
        if i + 1 == shards {
            v = n;
        }
        cuts.push(v);
    }
    cuts
}

/// Partitions `ads` into `shards` contiguous node ranges and writes one
/// full-width version-1 store per shard plus the checksummed
/// [`ShardManifest`] into `dir` (created if missing). Every shard file is
/// independently loadable by [`FrozenAdsSet::load`]; serving loaders
/// route node `v` to the shard whose manifest range contains it, and
/// answers are bitwise identical to the unsharded store (the per-node
/// entries are byte-for-byte the same). Equivalent to
/// [`freeze_sharded_format`] with [`StoreFormat::V1`].
pub fn freeze_sharded(
    ads: &AdsSet,
    shards: usize,
    dir: impl AsRef<Path>,
) -> Result<ShardManifest, FrozenError> {
    freeze_sharded_format(ads, shards, dir, StoreFormat::V1)
}

/// [`freeze_sharded`] with an explicit per-shard [`StoreFormat`].
///
/// Every shard of one freeze is written in the same format, and the
/// manifest's per-shard digests are computed over the bytes actually
/// written — so a manifest pins each shard file's exact bytes *and
/// therefore its format version*. Replacing a shard file with a
/// re-encoding of the same data in the other format fails the serving
/// loader's digest check by construction (see [`ShardRecord::digest`]);
/// mixing formats requires re-freezing, never file swapping.
pub fn freeze_sharded_format(
    ads: &AdsSet,
    shards: usize,
    dir: impl AsRef<Path>,
    format: StoreFormat,
) -> Result<ShardManifest, FrozenError> {
    assert!(shards >= 1, "shard count must be ≥ 1");
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let cuts = shard_cuts(ads, shards);
    let mut records = Vec::with_capacity(shards);
    for i in 0..shards {
        let (lo, hi) = (cuts[i], cuts[i + 1]);
        let shard = FrozenAdsSet::from_ads_set_range(ads, lo, hi);
        let file = std::fs::File::create(dir.join(shard_file_name(i)))?;
        let mut w = HashingWriter::new(std::io::BufWriter::new(file));
        shard.write_to_format(&mut w, format)?;
        w.flush()?;
        records.push(ShardRecord {
            start: lo as u64,
            end: hi as u64,
            entries: shard.num_entries() as u64,
            digest: w.hash.digest(),
        });
    }
    let manifest = ShardManifest {
        k: ads.k() as u32,
        n: ads.num_nodes() as u64,
        entries: ads.total_entries() as u64,
        records,
    };
    manifest.save(dir.join(SHARD_MANIFEST_FILE))?;
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_graph::generators;

    fn sample_set() -> AdsSet {
        let g = generators::gnp_directed(90, 0.05, 7);
        AdsSet::build(&g, 4, 3)
    }

    #[test]
    fn freeze_preserves_counts_and_entries() {
        let ads = sample_set();
        let frozen = ads.freeze();
        assert_eq!(frozen.k(), ads.k());
        assert_eq!(frozen.num_nodes(), ads.num_nodes());
        assert_eq!(frozen.num_entries(), ads.total_entries());
        for v in 0..ads.num_nodes() as NodeId {
            let mut got = Vec::new();
            frozen.for_each_entry(v, |e| got.push(e));
            assert_eq!(got.as_slice(), ads.sketch(v).entries());
        }
    }

    #[test]
    fn frozen_hip_matches_heap_bitwise() {
        let ads = sample_set();
        let frozen = ads.freeze();
        for v in 0..ads.num_nodes() as NodeId {
            let hip = ads.hip(v);
            assert_eq!(frozen.hip_weights_of(v), hip);
            assert_eq!(frozen.hip_reachable(v), hip.reachable_estimate());
            for d in [0.0, 1.0, 2.0, 5.0, f64::INFINITY] {
                assert_eq!(frozen.hip_cardinality_at(v, d), hip.cardinality_at(d));
            }
        }
    }

    #[test]
    fn thaw_roundtrip_is_lossless() {
        let ads = sample_set();
        assert_eq!(ads.freeze().thaw(), ads);
    }

    #[test]
    fn bytes_roundtrip_is_lossless() {
        let frozen = sample_set().freeze();
        let restored = FrozenAdsSet::from_bytes(&frozen.to_bytes()).unwrap();
        assert_eq!(restored, frozen);
    }

    #[test]
    fn serialized_len_is_exact() {
        let frozen = sample_set().freeze();
        assert_eq!(frozen.to_bytes().len(), frozen.serialized_len());
    }

    #[test]
    fn empty_set_roundtrips() {
        let ads = AdsSet::from_sketches(2, vec![]);
        let frozen = ads.freeze();
        assert_eq!(frozen.num_nodes(), 0);
        let restored = FrozenAdsSet::from_bytes(&frozen.to_bytes()).unwrap();
        assert_eq!(restored, frozen);
        assert_eq!(restored.thaw(), ads);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = sample_set().freeze().to_bytes();
        buf[0] ^= 0xff;
        assert!(matches!(
            FrozenAdsSet::from_bytes(&buf),
            Err(FrozenError::BadMagic)
        ));
    }

    #[test]
    fn rejects_unknown_version() {
        let mut buf = sample_set().freeze().to_bytes();
        buf[8] = 99;
        assert!(matches!(
            FrozenAdsSet::from_bytes(&buf),
            Err(FrozenError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_at_every_prefix_length() {
        let buf = sample_set().freeze().to_bytes();
        for cut in [0, 7, HEADER_LEN - 1, HEADER_LEN + 3, buf.len() - 1] {
            assert!(
                FrozenAdsSet::from_bytes(&buf[..cut]).is_err(),
                "prefix of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut buf = sample_set().freeze().to_bytes();
        buf.push(0);
        assert!(matches!(
            FrozenAdsSet::from_bytes(&buf),
            Err(FrozenError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_payload_bit_flip_via_checksum() {
        let mut buf = sample_set().freeze().to_bytes();
        let mid = HEADER_LEN + (buf.len() - HEADER_LEN) / 2;
        buf[mid] ^= 0x01;
        assert!(matches!(
            FrozenAdsSet::from_bytes(&buf),
            Err(FrozenError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_header_field_tamper_via_checksum() {
        // Flipping k alone (checksummed header field) must not produce a
        // silently different store.
        let mut buf = sample_set().freeze().to_bytes();
        buf[12] ^= 0x01;
        assert!(FrozenAdsSet::from_bytes(&buf).is_err());
    }

    #[test]
    fn streaming_roundtrip_matches_bytes() {
        let frozen = sample_set().freeze();
        let mut buf = Vec::new();
        frozen.write_to(&mut buf).unwrap();
        assert_eq!(buf, frozen.to_bytes());
        let mut r = &buf[..];
        let restored = FrozenAdsSet::from_reader(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(restored, frozen);
    }

    #[test]
    fn from_reader_leaves_trailing_input() {
        let frozen = sample_set().freeze();
        let mut buf = frozen.to_bytes();
        buf.extend_from_slice(b"NEXT");
        let mut r = &buf[..];
        let restored = FrozenAdsSet::from_reader(&mut r).unwrap();
        assert_eq!(restored, frozen);
        assert_eq!(r, b"NEXT");
    }

    #[test]
    fn freeze_sharded_writes_loadable_shards() {
        let ads = sample_set();
        let dir = std::env::temp_dir().join("adsketch_core_freeze_sharded");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = freeze_sharded(&ads, 3, &dir).unwrap();
        assert_eq!(manifest.num_shards(), 3);
        assert_eq!(manifest.num_nodes(), ads.num_nodes());
        assert_eq!(manifest.total_entries(), ads.total_entries() as u64);
        let full = ads.freeze();
        for (i, rec) in manifest.records().iter().enumerate() {
            // Every shard is an independently loadable, full-width v1 store…
            let shard = FrozenAdsSet::load(dir.join(shard_file_name(i))).unwrap();
            assert_eq!(shard.k(), ads.k());
            assert_eq!(shard.num_nodes(), ads.num_nodes());
            assert_eq!(shard.num_entries() as u64, rec.entries);
            // …whose in-range rows equal the unsharded store's rows
            // (entries and precomputed HIP weights alike)…
            for v in rec.start as NodeId..rec.end as NodeId {
                let mut got = Vec::new();
                shard.for_each_entry(v, |e| got.push(e));
                assert_eq!(got.as_slice(), ads.sketch(v).entries());
                assert_eq!(shard.hip_weights_slice(v), full.hip_weights_slice(v));
            }
            // …and whose out-of-range rows are empty.
            for v in 0..ads.num_nodes() as NodeId {
                if (v as u64) < rec.start || (v as u64) >= rec.end {
                    assert_eq!(shard.entry_count(v), 0, "shard {i}, node {v}");
                }
            }
        }
        let reloaded = ShardManifest::load(dir.join(SHARD_MANIFEST_FILE)).unwrap();
        assert_eq!(reloaded, manifest);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_cuts_cover_everything_for_any_shard_count() {
        let ads = sample_set();
        for shards in [1, 2, 3, 7, 200] {
            let cuts = shard_cuts(&ads, shards);
            assert_eq!(cuts.len(), shards + 1);
            assert_eq!(cuts[0], 0);
            assert_eq!(*cuts.last().unwrap(), ads.num_nodes());
            assert!(cuts.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn manifest_roundtrips_and_rejects_overlap() {
        let rec = |start, end, entries| ShardRecord {
            start,
            end,
            entries,
            digest: 0x1234,
        };
        let good = ShardManifest {
            k: 4,
            n: 10,
            entries: 30,
            records: vec![rec(0, 6, 20), rec(6, 10, 10)],
        };
        let restored = ShardManifest::from_bytes(&good.to_bytes()).unwrap();
        assert_eq!(restored, good);
        // Overlap (or a gap) in the range table must be rejected even
        // with a valid checksum.
        for records in [
            vec![rec(0, 7, 20), rec(6, 10, 10)], // overlap
            vec![rec(0, 5, 20), rec(6, 10, 10)], // gap
            vec![rec(0, 6, 20), rec(6, 9, 10)],  // short coverage
            vec![rec(0, 6, 20), rec(6, 10, 11)], // entry sum mismatch
        ] {
            let bad = ShardManifest {
                records,
                ..good.clone()
            };
            assert!(matches!(
                ShardManifest::from_bytes(&bad.to_bytes()),
                Err(FrozenError::Corrupt(_))
            ));
        }
    }

    #[test]
    fn manifest_shard_of_routes_every_node_once() {
        let rec = |start, end, entries| ShardRecord {
            start,
            end,
            entries,
            digest: 0,
        };
        // Shard 1 is empty (5..5): it shares its start with shard 2 and
        // must never claim a node.
        let manifest = ShardManifest {
            k: 2,
            n: 10,
            entries: 12,
            records: vec![rec(0, 5, 6), rec(5, 5, 0), rec(5, 8, 4), rec(8, 10, 2)],
        };
        for v in 0..10u64 {
            let s = manifest.shard_of(v);
            let r = manifest.records()[s];
            assert!(r.start <= v && v < r.end, "node {v} routed to shard {s}");
        }
        assert_eq!(manifest.shard_of(5), 2);
    }

    #[test]
    fn manifest_rejects_bad_magic_truncation_and_bit_flips() {
        let manifest = ShardManifest {
            k: 2,
            n: 5,
            entries: 9,
            records: vec![ShardRecord {
                start: 0,
                end: 5,
                entries: 9,
                digest: 7,
            }],
        };
        let bytes = manifest.to_bytes();
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            ShardManifest::from_bytes(&bad),
            Err(FrozenError::BadMagic)
        ));
        for cut in [0, 7, MANIFEST_HEADER_LEN - 1, bytes.len() - 1] {
            assert!(ShardManifest::from_bytes(&bytes[..cut]).is_err());
        }
        for at in [12, 20, 40, bytes.len() - 3] {
            let mut flipped = bytes.clone();
            flipped[at] ^= 0x04;
            assert!(
                ShardManifest::from_bytes(&flipped).is_err(),
                "bit flip at byte {at} must be rejected"
            );
        }
    }

    /// Writes `frozen` to a unique temp file and returns the path.
    fn save_temp(frozen: &FrozenAdsSet, tag: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("adsketch_frozen_{tag}.ads"));
        frozen.save(&path).unwrap();
        path
    }

    #[test]
    fn mapped_load_is_bitwise_identical() {
        let frozen = sample_set().freeze();
        let path = save_temp(&frozen, "mapped_roundtrip");
        for opts in [LoadOptions::mapped(), LoadOptions::trusted()] {
            let loaded = FrozenAdsSet::load_with(&path, opts).unwrap();
            // On 64-bit Linux the columns must actually be zero-copy.
            if cfg!(all(target_os = "linux", target_pointer_width = "64")) {
                assert!(loaded.is_mapped(), "expected a mapped store under {opts:?}");
            }
            assert_eq!(loaded, frozen);
            // Clones of a mapped store own their columns.
            let clone = loaded.clone();
            assert!(!clone.is_mapped());
            assert_eq!(clone, frozen);
            // Serialization is backing-agnostic.
            assert_eq!(loaded.to_bytes(), frozen.to_bytes());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_load_rejects_corruption_like_buffered() {
        let frozen = sample_set().freeze();
        let good = frozen.to_bytes();
        let path = std::env::temp_dir().join("adsketch_frozen_mapped_corrupt.ads");
        let check = |bytes: &[u8], what: &str| {
            std::fs::write(&path, bytes).unwrap();
            let mapped = FrozenAdsSet::load_with(&path, LoadOptions::mapped());
            let buffered = FrozenAdsSet::load(&path);
            assert!(mapped.is_err(), "mapped load must reject {what}");
            assert!(buffered.is_err(), "buffered load must reject {what}");
        };
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        check(&bad, "bad magic");
        let mut bad = good.clone();
        bad[HEADER_LEN + (good.len() - HEADER_LEN) / 2] ^= 0x01;
        check(&bad, "payload bit flip");
        check(&good[..good.len() - 1], "truncation");
        let mut bad = good.clone();
        bad.push(0);
        check(&bad, "trailing bytes");
        // The trusted loader still rejects length/offset-table damage
        // (only checksum + canonical-order checks are waived).
        std::fs::write(&path, &good[..good.len() - 1]).unwrap();
        assert!(FrozenAdsSet::load_with(&path, LoadOptions::trusted()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_with_digest_returns_whole_file_fnv() {
        let frozen = sample_set().freeze();
        let path = save_temp(&frozen, "digest");
        let mut expected = Fnv1a64::new();
        expected.update(&std::fs::read(&path).unwrap());
        for opts in [LoadOptions::mapped(), LoadOptions::default()] {
            let (_, digest) = FrozenAdsSet::load_with_digest(&path, opts).unwrap();
            assert_eq!(digest, Some(expected.digest()), "under {opts:?}");
        }
        let (_, digest) = FrozenAdsSet::load_with_digest(&path, LoadOptions::trusted()).unwrap();
        assert_eq!(digest, None, "trusted loads skip hashing entirely");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_messages_render() {
        let e = FrozenError::Truncated {
            expected: 100,
            actual: 7,
        };
        assert!(e.to_string().contains("100"));
        assert!(FrozenError::BadMagic.to_string().contains("magic"));
    }

    #[test]
    fn v2_roundtrip_is_bitwise_lossless() {
        let frozen = sample_set().freeze();
        let v2_bytes = frozen.to_bytes_format(StoreFormat::V2);
        assert!(
            v2_bytes.len() * 2 < frozen.to_bytes().len(),
            "v2 should be at least 2x smaller on a unit-weight graph \
             ({} vs {} bytes)",
            v2_bytes.len(),
            frozen.to_bytes().len()
        );
        let decoded = FrozenAdsSet::from_bytes(&v2_bytes).unwrap();
        assert_eq!(decoded.format_version(), 2);
        assert_eq!(decoded, frozen);
        // v2 → v1 reproduces the original v1 image byte for byte.
        assert_eq!(decoded.to_bytes(), frozen.to_bytes());
        // Re-encoding the decoded store is deterministic.
        assert_eq!(decoded.to_bytes_format(StoreFormat::V2), v2_bytes);
    }

    #[test]
    fn v2_estimates_match_v1_bitwise() {
        let frozen = sample_set().freeze();
        let v2 = FrozenAdsSet::from_bytes(&frozen.to_bytes_format(StoreFormat::V2)).unwrap();
        for v in 0..frozen.num_nodes() as NodeId {
            assert_eq!(
                frozen.hip_reachable(v).to_bits(),
                v2.hip_reachable(v).to_bits()
            );
            assert_eq!(
                frozen.hip_cardinality_at(v, 2.0).to_bits(),
                v2.hip_cardinality_at(v, 2.0).to_bits()
            );
            assert_eq!(frozen.size_at(v, 1.0), v2.size_at(v, 1.0));
            let mut a = Vec::new();
            let mut b = Vec::new();
            frozen.for_each_hip(v, |it| {
                a.push((it.node, it.dist.to_bits(), it.weight.to_bits()))
            });
            v2.for_each_hip(v, |it| {
                b.push((it.node, it.dist.to_bits(), it.weight.to_bits()))
            });
            assert_eq!(a, b);
        }
        assert_eq!(
            frozen.distance_distribution_estimate(),
            v2.distance_distribution_estimate()
        );
    }

    #[test]
    fn v2_clone_and_thaw_preserve_everything() {
        let ads = sample_set();
        let frozen = ads.freeze();
        let v2 = FrozenAdsSet::from_bytes(&frozen.to_bytes_format(StoreFormat::V2)).unwrap();
        let cloned = v2.clone();
        assert_eq!(cloned.format_version(), 2, "clones keep their format");
        assert_eq!(cloned, frozen);
        let thawed = v2.thaw();
        assert_eq!(thawed.freeze().to_bytes(), frozen.to_bytes());
        let _ = ads;
    }

    #[test]
    fn v2_mapped_and_buffered_loads_are_identical() {
        let frozen = sample_set().freeze();
        let path = std::env::temp_dir().join("adsketch_frozen_v2_mapped.ads");
        frozen.save_format(&path, StoreFormat::V2).unwrap();
        for opts in [
            LoadOptions::default(),
            LoadOptions::mapped(),
            LoadOptions::trusted(),
        ] {
            let loaded = FrozenAdsSet::load_with(&path, opts).unwrap();
            assert_eq!(loaded.format_version(), 2, "under {opts:?}");
            assert_eq!(loaded, frozen, "under {opts:?}");
            assert_eq!(loaded.to_bytes(), frozen.to_bytes(), "under {opts:?}");
        }
        // Mapped v2 stores report only their real resident structures,
        // far below the decoded width of the wide store.
        let mapped = FrozenAdsSet::load_with(&path, LoadOptions::mapped()).unwrap();
        assert!(mapped.is_mapped());
        assert!(mapped.resident_bytes() < frozen.resident_bytes() / 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_rejects_corruption_like_v1() {
        let frozen = sample_set().freeze();
        let good = frozen.to_bytes_format(StoreFormat::V2);
        // Truncation mid-body.
        assert!(FrozenAdsSet::from_bytes(&good[..good.len() / 2]).is_err());
        // Bit flip in the blob → checksum mismatch.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(
            FrozenAdsSet::from_bytes(&bad),
            Err(FrozenError::ChecksumMismatch { .. })
        ));
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0);
        assert!(FrozenAdsSet::from_bytes(&long).is_err());
        // Unknown future version is still rejected with the typed error.
        let mut vnext = good;
        vnext[8] = 3;
        assert!(matches!(
            FrozenAdsSet::from_bytes(&vnext),
            Err(FrozenError::UnsupportedVersion(3))
        ));
    }

    #[test]
    fn v2_sharded_freeze_is_loadable_and_digest_pinned() {
        let ads = sample_set();
        let dir = std::env::temp_dir().join("adsketch_frozen_v2_shards");
        std::fs::remove_dir_all(&dir).ok();
        let manifest = freeze_sharded_format(&ads, 3, &dir, StoreFormat::V2).unwrap();
        let whole = ads.freeze();
        for (i, rec) in manifest.records().iter().enumerate() {
            let path = dir.join(shard_file_name(i));
            let (shard, digest) =
                FrozenAdsSet::load_with_digest(&path, LoadOptions::default()).unwrap();
            assert_eq!(shard.format_version(), 2);
            assert_eq!(digest, Some(rec.digest), "digests cover the v2 bytes");
            for v in rec.start..rec.end {
                assert_eq!(
                    whole.hip_reachable(v as NodeId).to_bits(),
                    shard.hip_reachable(v as NodeId).to_bits()
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
