//! The batch query engine: sharded, allocation-free HIP query serving.
//!
//! Sketch queries are embarrassingly parallel — each node's estimate
//! reads only that node's entries — so serving them one
//! [`crate::AdsSet::hip`] call at a time leaves both cores and memory
//! bandwidth idle while paying a `HipWeights` allocation plus a bottom-k
//! threshold recomputation per call. [`QueryEngine`] answers *batches*
//! (closeness centralities over all nodes, neighborhood cardinalities,
//! pairwise similarities) by sharding the request across threads with the
//! same chunking helper the parallel builders use, running each shard
//! through the allocation-free [`AdsView`] accessors.
//!
//! The engine is generic over the view, so the same code serves the
//! heap-backed build output and the frozen columnar store; pointing it at
//! a [`crate::frozen::FrozenAdsSet`] additionally skips the per-node HIP
//! recomputation entirely (the adjusted weights are precomputed at freeze
//! time), which is where the batch-throughput win measured by
//! `BENCH_query.json` comes from. Results are bitwise identical across
//! back ends and thread counts.
//!
//! Against a **compressed** (format v2) frozen store nothing here
//! changes: a buffered store that fits the decode budget thaws once
//! into shared full-width columns, and on mapped stores the engine's
//! ascending-node shard loop sweeps row blocks sequentially so the
//! per-thread block-decode scratch (see [`crate::frozen`]) turns each
//! block's decode cost into a one-time event per sweep — the batch
//! queries run against decoded, full-width row slices either way, and
//! answers stay bitwise identical across formats.

use adsketch_graph::NodeId;

use crate::builder::shard_slots;
use crate::centrality::DecayKernel;
use crate::frozen::FrozenAdsSet;
use crate::similarity;
use crate::view::AdsView;

/// A sharded batch query engine over any [`AdsView`].
///
/// `QueryEngine::new(&frozen)` serves from a frozen store;
/// `QueryEngine::new(&ads_set)` runs the same queries against the heap
/// representation (useful as a correctness and performance baseline).
#[derive(Debug, Clone, Copy)]
pub struct QueryEngine<'a, V: AdsView + Sync = FrozenAdsSet> {
    view: &'a V,
    threads: usize,
}

impl<'a, V: AdsView + Sync> QueryEngine<'a, V> {
    /// Creates an engine using all available cores.
    pub fn new(view: &'a V) -> Self {
        Self { view, threads: 0 }
    }

    /// Creates an engine with an explicit thread count (`0` ⇒ all cores).
    pub fn with_threads(view: &'a V, threads: usize) -> Self {
        Self { view, threads }
    }

    /// The view this engine serves from.
    #[inline]
    pub fn view(&self) -> &'a V {
        self.view
    }

    /// Runs `f(i)` for `i in 0..len` across the engine's threads and
    /// collects the results in order.
    fn batch_map<T, F>(&self, len: usize, f: F) -> Vec<T>
    where
        T: Send + Default + Clone,
        F: Fn(usize) -> T + Sync,
    {
        let mut out = vec![T::default(); len];
        shard_slots(&mut out, self.threads, || (), |(), i, slot| *slot = f(i));
        out
    }

    /// HIP estimate of the general statistic `Q_g(v)` for every node,
    /// indexed by node id.
    pub fn qg_all<F>(&self, g: F) -> Vec<f64>
    where
        F: Fn(NodeId, f64) -> f64 + Sync,
    {
        self.batch_map(self.view.num_nodes(), |i| self.view.hip_qg(i as NodeId, &g))
    }

    /// Distance-decay closeness centrality `C_α(v)` for every node.
    pub fn decay_all(&self, kernel: DecayKernel) -> Vec<f64> {
        self.qg_all(|_, d| kernel.eval(d))
    }

    /// Harmonic centrality estimate for every node.
    pub fn harmonic_all(&self) -> Vec<f64> {
        self.decay_all(DecayKernel::Harmonic)
    }

    /// Distance-decay centrality for an explicit batch of nodes — the
    /// same floating-point sequence as [`QueryEngine::decay_all`]
    /// restricted to `nodes`, so `decay_batch(kernel, &[v])[0]` is
    /// bitwise equal to `decay_all(kernel)[v]`. This is the form the
    /// `adsketch-serve` wire protocol serves.
    pub fn decay_batch(&self, kernel: DecayKernel, nodes: &[NodeId]) -> Vec<f64> {
        self.batch_map(nodes.len(), |i| {
            self.view.hip_qg(nodes[i], |_, d| kernel.eval(d))
        })
    }

    /// Harmonic centrality for an explicit batch of nodes (see
    /// [`QueryEngine::decay_batch`]).
    pub fn harmonic_batch(&self, nodes: &[NodeId]) -> Vec<f64> {
        self.decay_batch(DecayKernel::Harmonic, nodes)
    }

    /// Sum-of-distances (inverse Bavelas closeness) estimate per node.
    pub fn sum_of_distances_all(&self) -> Vec<f64> {
        self.qg_all(|_, d| d)
    }

    /// HIP reachability estimate for every node.
    pub fn reachable_all(&self) -> Vec<f64> {
        self.batch_map(self.view.num_nodes(), |i| {
            self.view.hip_reachable(i as NodeId)
        })
    }

    /// HIP `|N_d(v)|` estimates for a batch of `(node, distance)` queries.
    pub fn cardinality_batch(&self, queries: &[(NodeId, f64)]) -> Vec<f64> {
        self.batch_map(queries.len(), |i| {
            let (v, d) = queries[i];
            self.view.hip_cardinality_at(v, d)
        })
    }

    /// The estimated cumulative neighborhood function of each requested
    /// node (the per-node ANF curves).
    pub fn neighborhood_function_batch(&self, nodes: &[NodeId]) -> Vec<Vec<(f64, f64)>> {
        self.batch_map(nodes.len(), |i| {
            self.view.neighborhood_function_of(nodes[i])
        })
    }

    /// Estimated Jaccard similarity of `N_d(u)` and `N_d(v)` for a batch
    /// of node pairs at one query distance.
    pub fn jaccard_batch(&self, pairs: &[(NodeId, NodeId)], d: f64) -> Vec<f64> {
        self.batch_map(pairs.len(), |i| {
            let (u, v) = pairs[i];
            similarity::neighborhood_jaccard_in(self.view, u, v, d)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ads_set::AdsSet;
    use crate::centrality;
    use adsketch_graph::generators;

    #[test]
    fn batch_matches_per_node_across_backends_and_threads() {
        let g = generators::gnp_directed(150, 0.04, 5);
        let ads = AdsSet::build(&g, 4, 11);
        let frozen = ads.freeze();
        let per_node: Vec<f64> = (0..ads.num_nodes() as NodeId)
            .map(|v| centrality::harmonic(&ads.hip(v)))
            .collect();
        for threads in [1usize, 2, 4, 0] {
            let from_heap = QueryEngine::with_threads(&ads, threads).harmonic_all();
            let from_frozen = QueryEngine::with_threads(&frozen, threads).harmonic_all();
            assert_eq!(from_heap, per_node, "heap, threads = {threads}");
            assert_eq!(from_frozen, per_node, "frozen, threads = {threads}");
        }
    }

    #[test]
    fn node_batches_match_all_node_sweeps_bitwise() {
        let g = generators::gnp_directed(90, 0.05, 13);
        let ads = AdsSet::build(&g, 4, 3);
        let frozen = ads.freeze();
        let engine = QueryEngine::with_threads(&frozen, 2);
        let all = engine.harmonic_all();
        let decay_all = engine.decay_all(centrality::DecayKernel::Exponential { base: 2.0 });
        let nodes: Vec<NodeId> = (0..90u32).rev().collect();
        let batch = engine.harmonic_batch(&nodes);
        let decay_batch =
            engine.decay_batch(centrality::DecayKernel::Exponential { base: 2.0 }, &nodes);
        for (i, &v) in nodes.iter().enumerate() {
            assert_eq!(batch[i], all[v as usize]);
            assert_eq!(decay_batch[i], decay_all[v as usize]);
        }
    }

    #[test]
    fn cardinality_batch_matches_hip_weights() {
        let g = generators::gnp(100, 0.05, 9);
        let ads = AdsSet::build(&g, 8, 2);
        let frozen = ads.freeze();
        let engine = QueryEngine::with_threads(&frozen, 2);
        let queries: Vec<(NodeId, f64)> = (0..100u32).map(|v| (v, (v % 5) as f64)).collect();
        let got = engine.cardinality_batch(&queries);
        for (&(v, d), &est) in queries.iter().zip(&got) {
            assert_eq!(est, ads.hip(v).cardinality_at(d));
        }
    }

    #[test]
    fn jaccard_batch_matches_sketch_level() {
        let g = generators::gnp(80, 0.06, 4);
        let ads = AdsSet::build(&g, 8, 6);
        let frozen = ads.freeze();
        let engine = QueryEngine::new(&frozen);
        let pairs: Vec<(NodeId, NodeId)> = (0..40u32).map(|i| (i, 79 - i)).collect();
        let got = engine.jaccard_batch(&pairs, 3.0);
        for (&(u, v), &est) in pairs.iter().zip(&got) {
            assert_eq!(
                est,
                similarity::neighborhood_jaccard(ads.sketch(u), ads.sketch(v), 3.0)
            );
        }
    }

    #[test]
    fn neighborhood_function_batch_matches() {
        let g = generators::gnp_directed(60, 0.07, 8);
        let ads = AdsSet::build(&g, 4, 1);
        let frozen = ads.freeze();
        let nodes: Vec<NodeId> = (0..60).collect();
        let got = QueryEngine::new(&frozen).neighborhood_function_batch(&nodes);
        for (&v, nf) in nodes.iter().zip(&got) {
            assert_eq!(*nf, ads.hip(v).neighborhood_function());
        }
    }

    #[test]
    fn empty_batches_and_empty_view() {
        let ads = AdsSet::from_sketches(2, vec![]);
        let frozen = ads.freeze();
        let engine = QueryEngine::new(&frozen);
        assert!(engine.harmonic_all().is_empty());
        assert!(engine.cardinality_batch(&[]).is_empty());
        assert!(engine.jaccard_batch(&[], 1.0).is_empty());
    }
}
