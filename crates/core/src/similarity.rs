//! Similarity between the neighborhoods of two nodes, estimated from
//! their coordinated ADSs (one of the applications enabled by sample
//! coordination — paper, Section 1 and the follow-up COSN'13 work).
//!
//! Because all sketches share one rank assignment, extracting the
//! bottom-k MinHash sketches of `N_d(u)` and `N_d(v)` from `ADS(u)` and
//! `ADS(v)` yields *coordinated* samples, from which Jaccard similarity,
//! union and intersection cardinalities of the two neighborhoods follow —
//! for any query distance `d`, with no graph access.

//! Each estimator comes in two forms: per-sketch-pair and `_in` (generic
//! over any [`AdsView`] back end, addressed by node ids) — bitwise
//! identical; batch evaluation lives in
//! [`crate::engine::QueryEngine::jaccard_batch`].

use adsketch_graph::NodeId;
use adsketch_minhash::similarity as mh;

use crate::bottomk::BottomKAds;
use crate::view::AdsView;

/// Estimated Jaccard similarity of `N_d(u)` and `N_d(v)` from the two
/// nodes' ADSs.
pub fn neighborhood_jaccard(u: &BottomKAds, v: &BottomKAds, d: f64) -> f64 {
    assert_eq!(u.k(), v.k(), "sketches must share k");
    mh::jaccard(&u.minhash_at(d), &v.minhash_at(d))
}

/// Estimated `|N_d(u) ∪ N_d(v)|`.
pub fn neighborhood_union(u: &BottomKAds, v: &BottomKAds, d: f64) -> f64 {
    assert_eq!(u.k(), v.k(), "sketches must share k");
    mh::union_cardinality(&u.minhash_at(d), &v.minhash_at(d))
}

/// Estimated `|N_d(u) ∩ N_d(v)|`.
pub fn neighborhood_intersection(u: &BottomKAds, v: &BottomKAds, d: f64) -> f64 {
    assert_eq!(u.k(), v.k(), "sketches must share k");
    mh::intersection_cardinality(&u.minhash_at(d), &v.minhash_at(d))
}

/// [`neighborhood_jaccard`] for nodes `u`, `v` of any [`AdsView`] back
/// end.
pub fn neighborhood_jaccard_in<V: AdsView + ?Sized>(view: &V, u: NodeId, v: NodeId, d: f64) -> f64 {
    mh::jaccard(&view.minhash_at(u, d), &view.minhash_at(v, d))
}

/// [`neighborhood_union`] for nodes `u`, `v` of any [`AdsView`] back end.
pub fn neighborhood_union_in<V: AdsView + ?Sized>(view: &V, u: NodeId, v: NodeId, d: f64) -> f64 {
    mh::union_cardinality(&view.minhash_at(u, d), &view.minhash_at(v, d))
}

/// [`neighborhood_intersection`] for nodes `u`, `v` of any [`AdsView`]
/// back end.
pub fn neighborhood_intersection_in<V: AdsView + ?Sized>(
    view: &V,
    u: NodeId,
    v: NodeId,
    d: f64,
) -> f64 {
    mh::intersection_cardinality(&view.minhash_at(u, d), &view.minhash_at(v, d))
}

/// The *closeness similarity* profile of two nodes: Jaccard similarity of
/// their d-neighborhoods at each distance in `ds`. Nodes in similar
/// positions of the network have profiles near 1 at all scales; the
/// profile's rise distance is a scale-aware distance proxy.
pub fn closeness_profile(u: &BottomKAds, v: &BottomKAds, ds: &[f64]) -> Vec<(f64, f64)> {
    ds.iter()
        .map(|&d| (d, neighborhood_jaccard(u, v, d)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdsSet;
    use adsketch_graph::{generators, Graph};
    use adsketch_util::stats::RunningStat;

    #[test]
    fn identical_neighborhoods_similarity_one() {
        // Two nodes feeding the same downstream component: N_d identical
        // for d ≥ 1 shifted… simplest exact case: the same node.
        let g = generators::gnp(100, 0.05, 3);
        let ads = AdsSet::build(&g, 8, 5);
        assert_eq!(neighborhood_jaccard(ads.sketch(4), ads.sketch(4), 2.0), 1.0);
    }

    #[test]
    fn far_apart_nodes_have_low_small_scale_similarity() {
        // A long path: the 1-neighborhoods of the two endpoints are
        // disjoint.
        let g = Graph::undirected(200, &generators::path_edges(200)).unwrap();
        let ads = AdsSet::build(&g, 16, 7);
        let j = neighborhood_jaccard(ads.sketch(0), ads.sketch(199), 5.0);
        assert_eq!(j, 0.0);
    }

    #[test]
    fn adjacent_path_nodes_share_most_of_their_neighborhoods() {
        let g = Graph::undirected(200, &generators::path_edges(200)).unwrap();
        // Exact Jaccard of N_10(100) and N_10(101): |∩| = 20, |∪| = 22.
        let truth = 20.0 / 22.0;
        let mut stat = RunningStat::new();
        for seed in 0..150 {
            let ads = AdsSet::build(&g, 16, seed);
            stat.push(neighborhood_jaccard(ads.sketch(100), ads.sketch(101), 10.0));
        }
        assert!(
            (stat.mean() - truth).abs() < 0.07,
            "mean {} vs exact {truth}",
            stat.mean()
        );
    }

    #[test]
    fn union_and_intersection_track_truth() {
        let g = Graph::undirected(200, &generators::path_edges(200)).unwrap();
        let mut us = RunningStat::new();
        let mut is = RunningStat::new();
        for seed in 0..200 {
            let ads = AdsSet::build(&g, 16, seed + 500);
            us.push(neighborhood_union(ads.sketch(100), ads.sketch(104), 10.0));
            is.push(neighborhood_intersection(
                ads.sketch(100),
                ads.sketch(104),
                10.0,
            ));
        }
        // N_10(100) = [90,110], N_10(104) = [94,114]: union 25, inter 17.
        assert!((us.mean() - 25.0).abs() < 2.0, "union {}", us.mean());
        assert!((is.mean() - 17.0).abs() < 2.0, "inter {}", is.mean());
    }

    #[test]
    fn profile_is_monotone_for_nested_growth() {
        // On a path, the similarity of two nearby nodes grows with scale.
        let g = Graph::undirected(300, &generators::path_edges(300)).unwrap();
        let ads = AdsSet::build(&g, 32, 9);
        let profile =
            closeness_profile(ads.sketch(150), ads.sketch(153), &[2.0, 10.0, 50.0, 140.0]);
        assert!(profile.first().unwrap().1 < profile.last().unwrap().1);
    }
}
