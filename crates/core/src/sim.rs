//! Stream-order simulation harness (paper, Section 5.5).
//!
//! The content of an ADS — and therefore the behavior of every
//! neighborhood-cardinality estimator — depends only on the sequence of
//! random ranks in canonical distance order, not on any graph structure.
//! The paper exploits this to evaluate estimators on a synthetic stream of
//! `n` distinct elements; [`StreamSim`] is that experiment: it advances one
//! element at a time, maintaining *all five* Figure-2 estimators
//! incrementally, so NRMSE/MRE can be sampled at any prefix cardinality.
//!
//! [`BaseBHipSim`] is the analogous harness for base-b rounded ranks
//! (Section 5.6), and is reused by the `tbl_base_b` experiment.

use adsketch_util::ranks::BaseB;
use adsketch_util::rng::{Rng64, SplitMix64};
use adsketch_util::topk::KSmallest;
use adsketch_util::RankHasher;

use adsketch_minhash::baseb::BaseBBottomK;
use adsketch_minhash::estimators::{
    bottomk_cardinality, kmins_cardinality, kpartition_cardinality,
};

use crate::permutation::PermutationCardinality;

/// Incremental state of the five neighborhood-cardinality estimators over
/// a stream of distinct elements in distance order.
#[derive(Debug, Clone)]
pub struct StreamSim {
    k: usize,
    hasher: RankHasher,
    processed: u64,
    /// k-mins sketch: per-permutation minima.
    kmins: Vec<f64>,
    /// k-partition sketch: per-bucket minima.
    kpart: Vec<f64>,
    /// Bottom-k sketch (k smallest `(rank, id)`).
    botk: KSmallest,
    /// Running HIP estimate (sum of adjusted weights).
    hip_sum: f64,
    /// Permutation estimator, when a domain size was given.
    perm: Option<(Vec<u32>, PermutationCardinality)>,
}

impl StreamSim {
    /// Creates the harness. `perm_domain` enables the permutation
    /// estimator for a stream drawn from a domain of exactly that size
    /// (elements `0..perm_domain` in some order).
    pub fn new(k: usize, seed: u64, perm_domain: Option<u64>) -> Self {
        assert!(k >= 2, "the basic estimators need k ≥ 2");
        let perm = perm_domain.map(|n| {
            let mut rng = SplitMix64::new(seed ^ 0x9E37_79B9_7F4A_7C15);
            (
                rng.permutation(n as usize),
                PermutationCardinality::new(n, k),
            )
        });
        Self {
            k,
            hasher: RankHasher::new(seed),
            processed: 0,
            kmins: vec![1.0; k],
            kpart: vec![1.0; k],
            botk: KSmallest::new(k),
            hip_sum: 0.0,
            perm,
        }
    }

    /// Number of distinct elements processed so far (the ground truth the
    /// estimators target).
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Processes the next distinct element.
    pub fn step(&mut self) {
        let e = self.processed;
        self.processed += 1;
        // k-mins.
        for (i, m) in self.kmins.iter_mut().enumerate() {
            let r = self.hasher.perm_rank(e, i as u32);
            if r < *m {
                *m = r;
            }
        }
        // k-partition.
        let b = self.hasher.bucket(e, self.k);
        let r = self.hasher.rank(e);
        if r < self.kpart[b] {
            self.kpart[b] = r;
        }
        // Bottom-k + HIP: the adjusted weight uses the threshold *before*
        // insertion (Lemma 5.1).
        if self.botk.would_enter(r, e) {
            self.hip_sum += 1.0 / self.botk.threshold_rank_or(1.0);
            self.botk.offer(r, e);
        }
        // Permutation estimator (1-based σ ranks).
        if let Some((perm, est)) = self.perm.as_mut() {
            est.process(perm[e as usize] + 1);
        }
    }

    /// Basic k-mins estimate (Section 4.1).
    pub fn kmins_basic(&self) -> f64 {
        kmins_cardinality(&self.kmins)
    }

    /// Basic k-partition estimate (Section 4.3).
    pub fn kpartition_basic(&self) -> f64 {
        kpartition_cardinality(&self.kpart)
    }

    /// Basic bottom-k estimate (Section 4.2).
    pub fn bottomk_basic(&self) -> f64 {
        bottomk_cardinality(
            self.k,
            self.botk.len(),
            self.botk.threshold().map(|t| t.rank),
        )
    }

    /// Bottom-k HIP estimate (Section 5.1).
    pub fn bottomk_hip(&self) -> f64 {
        self.hip_sum
    }

    /// Permutation estimate (Section 5.4); `None` if no domain was given.
    pub fn permutation(&self) -> Option<f64> {
        self.perm.as_ref().map(|(_, est)| est.estimate())
    }
}

/// Incremental bottom-k HIP estimator over base-b rounded ranks
/// (Section 5.6): identical to the full-rank HIP except that thresholds and
/// inclusion tests use the discretized rank values, inflating the variance
/// by ≈ `(1+b)/2`.
#[derive(Debug, Clone)]
pub struct BaseBHipSim {
    hasher: RankHasher,
    sketch: BaseBBottomK,
    processed: u64,
    hip_sum: f64,
}

impl BaseBHipSim {
    /// Creates the harness for sketch size `k` and rounding base `base`.
    pub fn new(k: usize, base: BaseB, seed: u64) -> Self {
        Self {
            hasher: RankHasher::new(seed),
            sketch: BaseBBottomK::new(k, base),
            processed: 0,
            hip_sum: 0.0,
        }
    }

    /// Number of distinct elements processed.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Processes the next distinct element.
    pub fn step(&mut self) {
        let e = self.processed;
        self.processed += 1;
        let r = self.hasher.rank(e);
        // The inclusion probability is exactly the discretized threshold
        // value (P(r' < b^-m) = b^-m), so the inverse-probability weight is
        // 1/threshold_value, taken before the offer.
        let tau = self.sketch.threshold_value();
        if self.sketch.offer(r) {
            self.hip_sum += 1.0 / tau;
        }
    }

    /// The running HIP estimate.
    pub fn estimate(&self) -> f64 {
        self.hip_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_util::stats::{cv_basic, cv_hip, ErrorStats};

    #[test]
    fn exact_for_small_prefixes() {
        let mut sim = StreamSim::new(8, 3, Some(100));
        for i in 1..=8u64 {
            sim.step();
            if i < 8 {
                // The basic bottom-k estimator is exact only below k: at
                // n = k the sketch is full and switches to (k−1)/τ_k.
                assert_eq!(sim.bottomk_basic(), i as f64);
            }
            assert_eq!(sim.bottomk_hip(), i as f64);
            assert_eq!(sim.permutation(), Some(i as f64));
        }
    }

    #[test]
    fn all_estimators_converge() {
        let n = 5000u64;
        let k = 64;
        let mut sim = StreamSim::new(k, 7, None);
        for _ in 0..n {
            sim.step();
        }
        for (name, est) in [
            ("kmins", sim.kmins_basic()),
            ("kpart", sim.kpartition_basic()),
            ("botk", sim.bottomk_basic()),
            ("hip", sim.bottomk_hip()),
        ] {
            let rel = (est - n as f64).abs() / n as f64;
            assert!(rel < 0.5, "{name}: estimate {est} for truth {n}");
        }
    }

    /// The headline Figure-2 shape: at n >> k, HIP's NRMSE ≈ basic/√2.
    #[test]
    fn hip_nrmse_is_factor_sqrt2_below_basic() {
        let n = 3000u64;
        let k = 10;
        let runs = 1200;
        let mut basic = ErrorStats::new(n as f64);
        let mut hip = ErrorStats::new(n as f64);
        for seed in 0..runs {
            let mut sim = StreamSim::new(k, seed, None);
            for _ in 0..n {
                sim.step();
            }
            basic.push(sim.bottomk_basic());
            hip.push(sim.bottomk_hip());
        }
        // Against the paper's reference curves.
        assert!(
            (basic.nrmse() - cv_basic(k)).abs() / cv_basic(k) < 0.2,
            "basic NRMSE {} vs theory {}",
            basic.nrmse(),
            cv_basic(k)
        );
        assert!(
            (hip.nrmse() - cv_hip(k)).abs() / cv_hip(k) < 0.2,
            "HIP NRMSE {} vs theory {}",
            hip.nrmse(),
            cv_hip(k)
        );
        let ratio = basic.nrmse() / hip.nrmse();
        assert!(
            (ratio - std::f64::consts::SQRT_2).abs() < 0.2,
            "ratio {ratio}"
        );
    }

    #[test]
    fn base_b_hip_unbiased_and_inflated() {
        let n = 2000u64;
        let k = 16;
        let runs = 1500;
        for &b in &[2.0, 1.2] {
            let base = BaseB::new(b);
            let mut err = ErrorStats::new(n as f64);
            for seed in 0..runs {
                let mut sim = BaseBHipSim::new(k, base, seed * 31 + 7);
                for _ in 0..n {
                    sim.step();
                }
                err.push(sim.estimate());
            }
            let z = err.relative_bias() / err.bias_std_error();
            assert!(z.abs() < 4.0, "base {b}: bias z = {z}");
            // CV should track sqrt((1+b)/(4(k-1))) (Section 5.6).
            let theory = base.hip_cv(k);
            assert!(
                (err.nrmse() - theory).abs() / theory < 0.25,
                "base {b}: NRMSE {} vs theory {theory}",
                err.nrmse()
            );
        }
    }

    #[test]
    fn permutation_dominates_hip_near_domain_size() {
        let n = 300u64;
        let k = 6;
        let runs = 1500;
        let mut hip = ErrorStats::new(280.0);
        let mut perm = ErrorStats::new(280.0);
        for seed in 0..runs {
            let mut sim = StreamSim::new(k, seed + 50, Some(n));
            for _ in 0..280 {
                sim.step();
            }
            hip.push(sim.bottomk_hip());
            perm.push(sim.permutation().unwrap());
        }
        assert!(
            perm.nrmse() < hip.nrmse(),
            "perm {} should beat HIP {} at 93% of domain",
            perm.nrmse(),
            hip.nrmse()
        );
    }
}
