//! Dynamic-programming ADS construction for unweighted graphs
//! (paper, Section 3; the ANF/HyperANF computation pattern).
//!
//! Iteration `d` relaxes exactly the edges whose source sketch changed in
//! iteration `d−1`, so entries are inserted in increasing distance and are
//! never retracted. Within an iteration, candidates are applied in
//! ascending node id, matching the canonical `(dist, id)` order.

use adsketch_graph::{Graph, NodeId};

use crate::ads_set::AdsSet;
use crate::builder::{validate_ranks, BuildStats, PartialAds};
use crate::error::CoreError;

/// Builds the forward bottom-k ADS set of an unweighted graph.
pub fn build(g: &Graph, k: usize, ranks: &[f64]) -> Result<AdsSet, CoreError> {
    build_with_stats(g, k, ranks).map(|(s, _)| s)
}

/// Like [`build`], also returning work counters (`rounds` = eccentricity
/// bound actually reached).
pub fn build_with_stats(
    g: &Graph,
    k: usize,
    ranks: &[f64],
) -> Result<(AdsSet, BuildStats), CoreError> {
    if g.is_weighted() {
        return Err(CoreError::RequiresUnweighted);
    }
    let n = g.num_nodes();
    validate_ranks(ranks, n)?;
    let gt = g.transpose();
    let mut partials: Vec<PartialAds> = vec![PartialAds::default(); n];
    let mut stats = BuildStats::default();

    // Distance 0: every node samples itself.
    let mut frontier: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n];
    for v in 0..n as NodeId {
        partials[v as usize].insert_distance_monotone(k, v, 0.0, ranks[v as usize]);
        stats.insertions += 1;
        frontier[v as usize].push((v, ranks[v as usize]));
    }

    let mut dist = 0.0f64;
    loop {
        dist += 1.0;
        // Collect candidates: an entry inserted at u last round propagates
        // to u's out-neighbors in the transpose (= in-neighbors in g).
        let mut candidates: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n];
        let mut any = false;
        for u in 0..n as NodeId {
            if frontier[u as usize].is_empty() {
                continue;
            }
            for &y in gt.neighbors(u) {
                stats.relaxations += frontier[u as usize].len() as u64;
                candidates[y as usize].extend_from_slice(&frontier[u as usize]);
                any = true;
            }
        }
        if !any {
            break;
        }
        stats.rounds += 1;
        // Apply candidates in ascending node id (canonical order within the
        // distance level), deduplicated.
        let mut new_frontier: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n];
        let mut inserted_any = false;
        for v in 0..n {
            let cs = &mut candidates[v];
            if cs.is_empty() {
                continue;
            }
            cs.sort_unstable_by_key(|&(node, _)| node);
            cs.dedup_by_key(|&mut (node, _)| node);
            for &(node, rank) in cs.iter() {
                if partials[v].insert_distance_monotone(k, node, dist, rank) {
                    stats.insertions += 1;
                    new_frontier[v].push((node, rank));
                    inserted_any = true;
                }
            }
        }
        if !inserted_any {
            break;
        }
        frontier = new_frontier;
    }

    let sketches = partials.into_iter().map(|p| p.into_ads(k)).collect();
    Ok((AdsSet::from_sketches(k, sketches), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform_ranks;
    use adsketch_graph::generators;

    #[test]
    fn rejects_weighted_graphs() {
        let g = Graph::directed_weighted(2, &[(0, 1, 2.0)]).unwrap();
        assert_eq!(
            build(&g, 2, &[0.1, 0.2]).unwrap_err(),
            CoreError::RequiresUnweighted
        );
    }

    #[test]
    fn matches_pruned_dijkstra_on_random_digraphs() {
        for seed in 0..6u64 {
            let g = generators::gnp_directed(80, 0.05, seed);
            let ranks = uniform_ranks(80, seed + 400);
            let dp = build(&g, 3, &ranks).unwrap();
            let pd = crate::builder::pruned_dijkstra::build(&g, 3, &ranks).unwrap();
            assert_eq!(dp, pd, "seed {seed}");
        }
    }

    #[test]
    fn matches_brute_force_on_undirected() {
        for seed in 0..4u64 {
            let g = generators::gnp(60, 0.07, seed + 17);
            let ranks = uniform_ranks(60, seed + 500);
            let dp = build(&g, 2, &ranks).unwrap();
            let brute = crate::reference::build_bottomk(&g, 2, &ranks);
            assert_eq!(dp, brute, "seed {seed}");
        }
    }

    #[test]
    fn rounds_bounded_by_diameter() {
        let g = Graph::undirected(20, &generators::path_edges(20)).unwrap();
        let ranks = uniform_ranks(20, 3);
        let (_, stats) = build_with_stats(&g, 2, &ranks).unwrap();
        assert!(
            stats.rounds <= 19,
            "rounds {} must be at most the diameter",
            stats.rounds
        );
    }

    #[test]
    fn star_graph_with_ties() {
        let g = Graph::undirected(30, &generators::star_edges(30)).unwrap();
        let ranks = uniform_ranks(30, 9);
        let dp = build(&g, 3, &ranks).unwrap();
        let brute = crate::reference::build_bottomk(&g, 3, &ranks);
        assert_eq!(dp, brute);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = Graph::directed(0, &[]).unwrap();
        let set = build(&g, 2, &[]).unwrap();
        assert_eq!(set.num_nodes(), 0);

        let g1 = Graph::directed(1, &[]).unwrap();
        let set1 = build(&g1, 2, &[0.4]).unwrap();
        assert_eq!(set1.sketch(0).len(), 1);
    }
}
