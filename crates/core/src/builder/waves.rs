//! Wave-parallel PrunedDijkstra (paper, Appendix B.4 suggests pipelining
//! the rank-ordered searches; this is the batched — "wave" — variant).
//!
//! Sources are processed in increasing rank order, in waves of
//! geometrically growing size. Within a wave every source runs its pruned
//! search concurrently against the *frozen* sketch state left by earlier
//! waves, recording insert candidates `(node, dist)` instead of mutating
//! shared state. A sequential rank-order merge then replays each
//! candidate through the real admission test and re-prunes.
//!
//! # Why the output is bitwise identical to the sequential builder
//!
//! The frozen state is a subset of the state each source would have seen
//! sequentially, so a wave search prunes *no more* than the sequential
//! search: it reaches a superset of the sequentially-visited nodes.
//! Pruning only ever happens at nodes whose final sketch rejects the
//! source, so for every node that sequentially *accepts* the source the
//! frozen search finds the true shortest distance; for every node that
//! rejects it, the frozen distance can only be ≥ the true one, and the
//! admission test is monotone in distance — the replay rejects it too.
//! By induction over sources in rank order, the merge performs exactly
//! the sequential insert sequence. Over-exploration is bounded by keeping
//! each wave no larger than half the number of already-merged sources (so
//! the frozen state is at most 1.5× stale), which is also why wave sizes
//! grow geometrically. The exception is the floor `max(WAVE_MIN, t)` that
//! keeps early waves from starving the thread pool: the first wave runs
//! against an empty arena and therefore prunes nothing — the same is true
//! of the sequential builder's first ~k sources, but the floor is why the
//! bound above does not hold verbatim for waves smaller than the floor.
//!
//! The same argument covers the **relax-time frontier filter** the wave
//! searches now share with the sequential core: workers consult the
//! frozen arena's admission-threshold array before pushing a candidate.
//! Frozen thresholds are ≥ the thresholds the sequential run would have
//! had at the same point (fewer inserts have happened), so the frozen
//! filter admits a superset of what the sequential filter admits — every
//! sequentially-inserted entry is still found at its true distance, and
//! everything extra is re-pruned by the sequential replay. Because the
//! arena is completely frozen during a wave's search phase, the filter is
//! *exact* there: a candidate that passes it is recorded, so the wave's
//! per-search settled count collapses to its candidate count. That is the
//! push-time answer to the waves' over-exploration: branches another wave
//! member (or any earlier wave) already saturated are rejected before
//! they cost a push instead of after a pop.

use adsketch_graph::bfs::{bfs_visit_filtered_scratch, bfs_visit_scratch, BfsScratch};
use adsketch_graph::dijkstra::{
    dijkstra_visit_filtered_scratch, dijkstra_visit_scratch, DijkstraScratch,
};
use adsketch_graph::{FrontierVisitor, Graph, NodeId, Visit};

use crate::builder::{shard_slots, thread_count, BuildStats, PartialAdsArena};
use crate::error::CoreError;

/// Smallest wave; keeps the first waves from being pure sync overhead.
const WAVE_MIN: usize = 16;

/// Reusable per-thread search state: BFS frontier queues on unit-weight
/// graphs, a binary heap otherwise.
pub(crate) enum SearchScratch {
    /// Level-synchronous BFS state (unit-weight fast path).
    Bfs(BfsScratch),
    /// Binary-heap Dijkstra state.
    Dijkstra(DijkstraScratch),
}

impl SearchScratch {
    /// Scratch matching `g`'s weight structure.
    pub fn for_graph(g: &Graph) -> Self {
        if g.is_unit_weight() {
            Self::Bfs(BfsScratch::new())
        } else {
            Self::Dijkstra(DijkstraScratch::new())
        }
    }

    /// Runs the matching pruned search from `src`, feeding `(node, dist)`
    /// to the visitor. BFS hop counts are widened to `f64` — identical to
    /// the unit-weight sums Dijkstra would produce.
    pub fn visit<F: FnMut(NodeId, f64) -> Visit>(
        &mut self,
        g: &Graph,
        src: NodeId,
        mut visitor: F,
    ) {
        match self {
            Self::Bfs(s) => bfs_visit_scratch(g, src, s, |v, d| visitor(v, d as f64)),
            Self::Dijkstra(s) => dijkstra_visit_scratch(g, src, s, visitor),
        }
    }

    /// Like [`Self::visit`] but through the full [`FrontierVisitor`]
    /// protocol, so the driver's relax-time `admit` hook filters the
    /// frontier of whichever search runs.
    pub fn run<V: FrontierVisitor>(&mut self, g: &Graph, src: NodeId, vis: &mut V) {
        match self {
            Self::Bfs(s) => bfs_visit_filtered_scratch(g, src, s, vis),
            Self::Dijkstra(s) => dijkstra_visit_filtered_scratch(g, src, s, vis),
        }
    }
}

/// Per-source result of a wave's concurrent search phase.
#[derive(Default)]
struct WaveSlot {
    /// `(node, dist)` pairs that passed the frozen admission test, in
    /// visit order.
    candidates: Vec<(NodeId, f64)>,
    /// Nodes visited by this search (work counter).
    relaxations: u64,
    /// Frontier insertions (incl. the source seed).
    heap_pushes: u64,
    /// Candidates the frozen-threshold relax filter kept out.
    pruned_at_relax: u64,
}

/// Wave worker driver: a read-only view of the frozen arena plus this
/// source's private slot. `admit` filters the frontier against the frozen
/// admission thresholds (safe and exact: nothing mutates the arena during
/// the search phase); `visit` re-checks the same frozen probe and records
/// the candidate for the sequential replay.
struct WaveDriver<'a> {
    arena: &'a PartialAdsArena,
    src: NodeId,
    slot: &'a mut WaveSlot,
}

impl FrontierVisitor for WaveDriver<'_> {
    #[inline]
    fn admit(&mut self, v: NodeId, d: f64) -> bool {
        if self.arena.would_insert(v, self.src, d) {
            self.slot.heap_pushes += 1;
            true
        } else {
            self.slot.pruned_at_relax += 1;
            false
        }
    }

    #[inline]
    fn visit(&mut self, v: NodeId, d: f64) -> Visit {
        self.slot.relaxations += 1;
        // Every non-seed settle was admitted by `admit` against the same
        // frozen state at the same final distance, so only the unfiltered
        // source seed needs the probe here.
        if v != self.src {
            debug_assert!(self.arena.would_insert(v, self.src, d));
            self.slot.candidates.push((v, d));
            return Visit::Continue;
        }
        if self.arena.would_insert(v, self.src, d) {
            self.slot.candidates.push((v, d));
            Visit::Continue
        } else {
            Visit::Prune
        }
    }
}

/// Sources in increasing `(rank, id)` order — the total order every
/// rank-monotone builder processes sources in.
pub(crate) fn rank_order(ranks: &[f64], sources: Option<&[NodeId]>, n: usize) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = match sources {
        Some(s) => s.to_vec(),
        None => (0..n as NodeId).collect(),
    };
    // Ranks are hash-derived (collisions ~2^-53) but the order must still
    // be total.
    order.sort_unstable_by(|&a, &b| {
        ranks[a as usize]
            .total_cmp(&ranks[b as usize])
            .then(a.cmp(&b))
    });
    order
}

/// Wave-parallel core loop: builds the same `(arena, stats)` as the
/// sequential `run_core`, with searches fanned out over `threads`
/// (`0` ⇒ all cores). `stats.rounds` counts waves; relaxation counts
/// include the over-exploration of the frozen searches and therefore
/// depend on the wave layout (and thus the thread count) — the returned
/// arena does not.
pub(crate) fn run_core_parallel(
    g: &Graph,
    k: usize,
    ranks: &[f64],
    threads: usize,
) -> Result<(PartialAdsArena, BuildStats), CoreError> {
    let n = g.num_nodes();
    let t = thread_count(threads).min(n.max(1));
    if t == 1 {
        // One worker: the wave machinery would only buy over-exploration
        // and candidate buffering. Degenerate to the sequential core —
        // identical output by construction.
        return super::pruned_dijkstra::run_core(g, k, ranks, None, false, true);
    }
    crate::builder::validate_ranks(ranks, n)?;
    let gt = g.transpose();
    let order = rank_order(ranks, None, n);
    let mut arena = PartialAdsArena::new(n, k);
    let mut stats = BuildStats::default();
    let mut merged = 0usize;
    while merged < order.len() {
        // Growth factor 1.5: each wave is at most half the merged prefix,
        // so the frozen state is at most 1.5× stale — measurably less
        // over-exploration than doubling, for O(log n) extra waves. The
        // floor keeps each thread busy without inflating the unpruned
        // first waves (see module docs).
        let wave_len = (order.len() - merged).min((merged / 2).max(WAVE_MIN.max(t)));
        let wave = &order[merged..merged + wave_len];
        let mut slots: Vec<WaveSlot> = Vec::new();
        slots.resize_with(wave_len, WaveSlot::default);
        // Search phase: concurrent, read-only against the frozen arena —
        // both the relax-time frontier filter and the candidate test read
        // the same frozen admission thresholds.
        {
            let (arena, gt) = (&arena, &gt);
            shard_slots(
                &mut slots,
                t,
                || SearchScratch::for_graph(gt),
                |scratch, i, slot| {
                    slot.heap_pushes += 1; // the source seed
                    let mut driver = WaveDriver {
                        arena,
                        src: wave[i],
                        slot,
                    };
                    scratch.run(gt, wave[i], &mut driver);
                },
            );
        }
        // Merge phase: sequential rank-order replay with re-pruning.
        for (i, slot) in slots.into_iter().enumerate() {
            let u = wave[i];
            let r_u = ranks[u as usize];
            stats.relaxations += slot.relaxations;
            stats.heap_pushes += slot.heap_pushes;
            stats.pruned_at_relax += slot.pruned_at_relax;
            for (v, d) in slot.candidates {
                if arena.insert_rank_monotone(v, u, d, r_u) {
                    stats.insertions += 1;
                }
            }
        }
        stats.rounds += 1;
        merged += wave_len;
    }
    Ok((arena, stats))
}
