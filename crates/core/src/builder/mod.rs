//! Scalable ADS construction algorithms (paper, Section 3 and Appendix B).
//!
//! All three build the *same* canonical bottom-k ADS set (tested to be
//! bitwise identical to the brute force in [`crate::reference`]):
//!
//! * [`pruned_dijkstra`] — Algorithm 1: one pruned Dijkstra per node in
//!   increasing rank order. Works on weighted and unweighted graphs;
//!   `O(km log n)` expected edge relaxations.
//! * [`dp`] — the node-centric dynamic-programming / Bellman–Ford approach
//!   (ANF/HyperANF style). Unweighted graphs only; entries are inserted in
//!   increasing distance, so no entry is ever retracted.
//! * [`local_updates`] — Algorithm 2: asynchronous-style message passing
//!   (here executed in synchronized rounds, as on Pregel/MapReduce), the
//!   extension of DP to weighted graphs. Entries may be inserted and later
//!   displaced by shorter paths, so sketches support deletion; also
//!   provides the `(1+ε)`-approximate variant that bounds the retraction
//!   overhead.
//!
//! Builders for the other two flavors ([`kmins`]/[`kpartition`]) reduce to
//! bottom-1 runs of PrunedDijkstra per permutation/bucket.
//!
//! # The threshold-monotonicity invariant
//!
//! The PrunedDijkstra-family builders prune in two places: the canonical
//! *pop-time* test (a settled node whose sketch rejects the source stops
//! the search branch — Algorithm 1), and a *relax-time* filter that keeps
//! doomed candidates out of the frontier before they pay a push. The
//! relax-time filter is sound because the per-node admission thresholds
//! maintained by the arena (`kth_dist[v]`, the k-th canonically-smallest
//! distance in `v`'s partial sketch, `+∞` while under-full) **only ever
//! tighten**: inserts move the k-th smallest key down, never up. A
//! candidate that is not admissible against a stale threshold therefore
//! can never become admissible later, so suppressing its push removes
//! only visits that would have ended in a prune — output is bitwise
//! identical, settled-node counts (`BuildStats::relaxations`) only
//! shrink. The same staleness argument lets the wave scheduler consult
//! the frozen threshold array concurrently from worker threads.

mod arena;
pub mod dp;
pub mod kmins;
pub mod kpartition;
pub mod local_updates;
pub mod parallel;
mod partial;
pub mod pruned_dijkstra;
mod waves;

pub(crate) use arena::PartialAdsArena;
pub(crate) use partial::PartialAds;

/// Resolves a requested thread count: `0` means "all available cores".
pub fn thread_count(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// The one chunking loop behind every parallel builder (and the
/// `adsketch-serve` worker pool): splits `slots` into ≤ `threads`
/// contiguous chunks and runs `f(scratch, global_index, slot)` for each
/// slot under [`std::thread::scope`], with one `init()`-built scratch per
/// thread (reused across that thread's slots — this is what lets
/// per-permutation rank buffers and per-source search state be allocated
/// once per thread instead of once per slot). A resolved thread count of
/// one runs inline on the calling thread, so single-threaded batch work
/// (e.g. one query request on a server worker) pays no spawn.
pub fn shard_slots<T, S, I, F>(slots: &mut [T], threads: usize, init: I, f: F)
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut T) + Sync,
{
    let total = slots.len();
    if total == 0 {
        return;
    }
    let t = thread_count(threads).min(total);
    if t == 1 {
        let mut scratch = init();
        for (i, slot) in slots.iter_mut().enumerate() {
            f(&mut scratch, i, slot);
        }
        return;
    }
    let chunk = total.div_ceil(t);
    std::thread::scope(|scope| {
        for (ci, part) in slots.chunks_mut(chunk).enumerate() {
            let (init, f) = (&init, &f);
            scope.spawn(move || {
                let mut scratch = init();
                for (j, slot) in part.iter_mut().enumerate() {
                    f(&mut scratch, ci * chunk + j, slot);
                }
            });
        }
    });
}

/// Work counters reported by the builders (the paper's cost model counts
/// edge relaxations; Appendix B.2 discusses their per-operation cost).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Edge relaxations / messages processed. For the search-based
    /// builders this counts *settled* (visited) nodes, so relax-time
    /// frontier pruning legitimately lowers it: candidates suppressed
    /// before entering the frontier are never settled. It can only ever
    /// shrink relative to the pop-time-pruning-only builds — never grow.
    pub relaxations: u64,
    /// Entries inserted into sketches (including ones later displaced).
    /// Invariant under the pruning strategy: relax-time filtering removes
    /// only candidates the pop-time test would have rejected.
    pub insertions: u64,
    /// Entries removed again (LocalUpdates only — its extra overhead).
    pub removals: u64,
    /// Synchronized rounds (DP: graph diameter; LocalUpdates: bounded by
    /// the shortest-path hop diameter; parallel PrunedDijkstra: number of
    /// source waves).
    pub rounds: u64,
    /// Frontier insertions: binary-heap pushes on weighted graphs, BFS
    /// next-level enqueues on the unit-weight fast path, plus one seed
    /// per search source. `0` for builders that don't instrument the
    /// frontier (the retained PR-1 heap baseline, DP, LocalUpdates).
    pub heap_pushes: u64,
    /// Candidates rejected by the relax-time admission filter before ever
    /// entering the frontier (see the threshold-monotonicity invariant in
    /// the [module docs](self)). `0` when the filter is disabled
    /// ([`pruned_dijkstra::build_pop_prune_with_stats`] and the
    /// non-search builders).
    pub pruned_at_relax: u64,
}

pub(crate) fn validate_ranks(ranks: &[f64], n: usize) -> Result<(), crate::error::CoreError> {
    if ranks.len() != n {
        return Err(crate::error::CoreError::RankCountMismatch {
            ranks: ranks.len(),
            nodes: n,
        });
    }
    for &r in ranks {
        if !(r.is_finite() && r >= 0.0) {
            return Err(crate::error::CoreError::InvalidRank { rank: r });
        }
    }
    Ok(())
}
