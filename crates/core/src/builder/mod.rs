//! Scalable ADS construction algorithms (paper, Section 3 and Appendix B).
//!
//! All three build the *same* canonical bottom-k ADS set (tested to be
//! bitwise identical to the brute force in [`crate::reference`]):
//!
//! * [`pruned_dijkstra`] — Algorithm 1: one pruned Dijkstra per node in
//!   increasing rank order. Works on weighted and unweighted graphs;
//!   `O(km log n)` expected edge relaxations.
//! * [`dp`] — the node-centric dynamic-programming / Bellman–Ford approach
//!   (ANF/HyperANF style). Unweighted graphs only; entries are inserted in
//!   increasing distance, so no entry is ever retracted.
//! * [`local_updates`] — Algorithm 2: asynchronous-style message passing
//!   (here executed in synchronized rounds, as on Pregel/MapReduce), the
//!   extension of DP to weighted graphs. Entries may be inserted and later
//!   displaced by shorter paths, so sketches support deletion; also
//!   provides the `(1+ε)`-approximate variant that bounds the retraction
//!   overhead.
//!
//! Builders for the other two flavors ([`kmins`]/[`kpartition`]) reduce to
//! bottom-1 runs of PrunedDijkstra per permutation/bucket.

pub mod dp;
pub mod kmins;
pub mod kpartition;
pub mod local_updates;
pub mod parallel;
mod partial;
pub mod pruned_dijkstra;

pub(crate) use partial::PartialAds;

/// Work counters reported by the builders (the paper's cost model counts
/// edge relaxations; Appendix B.2 discusses their per-operation cost).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Edge relaxations / messages processed.
    pub relaxations: u64,
    /// Entries inserted into sketches (including ones later displaced).
    pub insertions: u64,
    /// Entries removed again (LocalUpdates only — its extra overhead).
    pub removals: u64,
    /// Synchronized rounds (DP: graph diameter; LocalUpdates: bounded by
    /// the shortest-path hop diameter).
    pub rounds: u64,
}

pub(crate) fn validate_ranks(ranks: &[f64], n: usize) -> Result<(), crate::error::CoreError> {
    if ranks.len() != n {
        return Err(crate::error::CoreError::RankCountMismatch {
            ranks: ranks.len(),
            nodes: n,
        });
    }
    for &r in ranks {
        if !(r.is_finite() && r >= 0.0) {
            return Err(crate::error::CoreError::InvalidRank { rank: r });
        }
    }
    Ok(())
}
