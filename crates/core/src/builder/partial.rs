//! A mutable per-node sketch under construction, shared by all builders.
//!
//! Holds entries in canonical `(dist, node)` order and implements the
//! paper's `insert` edge-relaxation primitive in the three regimes the
//! algorithms need: rank-monotone (PrunedDijkstra), distance-monotone
//! (DP), and fully general with retraction (LocalUpdates).

use adsketch_graph::NodeId;
use adsketch_util::topk::KSmallest;

use crate::entry::AdsEntry;

/// A bottom-k ADS being built.
#[derive(Debug, Clone, Default)]
pub(crate) struct PartialAds {
    pub entries: Vec<AdsEntry>,
}

impl PartialAds {
    /// Binary-search position of the canonical key `(dist, node)`.
    #[inline]
    fn position(&self, dist: f64, node: NodeId) -> Result<usize, usize> {
        self.entries.binary_search_by(|e| e.cmp_key(dist, node))
    }

    /// Index of `node`'s entry, if present (linear scan: ADSs are
    /// logarithmic in n, so this is cheap).
    #[inline]
    pub fn find_node(&self, node: NodeId) -> Option<usize> {
        self.entries.iter().position(|e| e.node == node)
    }

    /// Number of existing entries whose `(rank, node)` is below the
    /// candidate's among the first `prefix` entries.
    #[inline]
    fn count_lower_ranked(&self, prefix: usize, rank: f64, node: NodeId) -> usize {
        self.entries[..prefix]
            .iter()
            .filter(|e| (e.rank, e.node) < (rank, node))
            .count()
    }

    /// PrunedDijkstra insert: sources arrive in increasing rank, so every
    /// existing entry out-ranks the candidate and the inclusion test
    /// reduces to "fewer than k entries are closer". Never retracts.
    ///
    /// Returns `true` if inserted (i.e. the search should continue through
    /// this node), `false` to prune.
    pub fn insert_rank_monotone(&mut self, k: usize, node: NodeId, dist: f64, rank: f64) -> bool {
        match self.position(dist, node) {
            Ok(_) => false, // already present (cannot happen across distinct sources)
            Err(pos) => {
                debug_assert!(
                    self.entries.iter().all(|e| (e.rank, e.node) < (rank, node)),
                    "sources must be processed in increasing rank"
                );
                if pos >= k {
                    return false;
                }
                self.entries.insert(pos, AdsEntry::new(node, dist, rank));
                true
            }
        }
    }

    /// Tieless (Appendix A) variant of the rank-monotone insert: the
    /// candidate is blocked by entries at distance *≤ d* (not `< d` with id
    /// tie-breaks), so at most k nodes per distinct distance survive.
    ///
    /// Production tieless builds moved to the arena
    /// ([`crate::builder::PartialAdsArena`]); this stays as the reference
    /// the arena is parity-tested against.
    #[cfg(test)]
    pub fn insert_rank_monotone_tieless(
        &mut self,
        k: usize,
        node: NodeId,
        dist: f64,
        rank: f64,
    ) -> bool {
        let within = self.entries.partition_point(|e| e.dist <= dist);
        if within >= k {
            return false;
        }
        let pos = match self.position(dist, node) {
            Ok(_) => return false,
            Err(p) => p,
        };
        self.entries.insert(pos, AdsEntry::new(node, dist, rank));
        true
    }

    /// DP insert: candidates arrive in non-decreasing canonical order, so
    /// the candidate belongs at the end and all existing entries are
    /// closer. Skips nodes already present (shorter occurrence wins).
    pub fn insert_distance_monotone(
        &mut self,
        k: usize,
        node: NodeId,
        dist: f64,
        rank: f64,
    ) -> bool {
        if self.find_node(node).is_some() {
            return false;
        }
        debug_assert!(self
            .entries
            .last()
            .is_none_or(|e| e.cmp_key(dist, node) == std::cmp::Ordering::Less));
        if self.count_lower_ranked(self.entries.len(), rank, node) >= k {
            return false;
        }
        self.entries.push(AdsEntry::new(node, dist, rank));
        true
    }

    /// General LocalUpdates insert with retraction. `epsilon ≥ 0` applies
    /// the `(1+ε)`-approximate admission rule (paper, Section 3): the
    /// candidate is compared against the k-th smallest rank among entries
    /// within distance `dist·(1+ε)`, suppressing insertions that a slightly
    /// closer entry would displace anyway.
    ///
    /// Returns `(inserted, removed)` — the number of retracted entries, for
    /// overhead accounting.
    pub fn insert_general(
        &mut self,
        k: usize,
        node: NodeId,
        dist: f64,
        rank: f64,
        epsilon: f64,
    ) -> (bool, usize) {
        // Existing entry for this node: keep whichever is closer.
        if let Some(i) = self.find_node(node) {
            if self.entries[i].dist <= dist {
                return (false, 0);
            }
            self.entries.remove(i);
            // Fall through: reinsert at the shorter distance. The removal
            // is not counted as overhead (it is a distance improvement, not
            // a sketch retraction).
        }
        // Admission test.
        let horizon = if epsilon > 0.0 {
            self.entries
                .partition_point(|e| e.dist <= dist * (1.0 + epsilon))
        } else {
            match self.position(dist, node) {
                Ok(_) => unreachable!("node entry was removed above"),
                Err(p) => p,
            }
        };
        if self.count_lower_ranked(horizon, rank, node) >= k {
            return (false, 0);
        }
        let pos = match self.position(dist, node) {
            Ok(_) => unreachable!(),
            Err(p) => p,
        };
        self.entries.insert(pos, AdsEntry::new(node, dist, rank));
        // Retraction pass: later entries may now have k lower-ranked
        // predecessors. One forward sweep is exact, because a dropped entry
        // never contributes to any later threshold.
        let removed = self.cleanup_from(k, pos + 1);
        (true, removed)
    }

    /// Removes entries from `start` onward that violate the bottom-k rule;
    /// returns how many were dropped.
    fn cleanup_from(&mut self, k: usize, start: usize) -> usize {
        if start >= self.entries.len() {
            return 0;
        }
        let mut ks = KSmallest::new(k);
        for e in &self.entries[..start] {
            ks.offer(e.rank, e.node as u64);
        }
        let before = self.entries.len();
        let mut write = start;
        for read in start..self.entries.len() {
            let e = self.entries[read];
            if ks.would_enter(e.rank, e.node as u64) {
                ks.offer(e.rank, e.node as u64);
                self.entries[write] = e;
                write += 1;
            }
        }
        self.entries.truncate(write);
        before - write
    }

    /// Finishes construction.
    pub fn into_ads(self, k: usize) -> crate::bottomk::BottomKAds {
        crate::bottomk::BottomKAds::from_entries(k, self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_monotone_keeps_k_closest_prefix() {
        let mut p = PartialAds::default();
        // Sources in increasing rank; k = 2.
        assert!(p.insert_rank_monotone(2, 5, 3.0, 0.1));
        assert!(p.insert_rank_monotone(2, 6, 1.0, 0.2));
        // Candidate at distance 5: two closer entries exist ⇒ pruned.
        assert!(!p.insert_rank_monotone(2, 7, 5.0, 0.3));
        // Candidate at distance 0.5: fewer than two closer ⇒ inserted.
        assert!(p.insert_rank_monotone(2, 8, 0.5, 0.4));
        let nodes: Vec<NodeId> = p.entries.iter().map(|e| e.node).collect();
        assert_eq!(nodes, vec![8, 6, 5]);
    }

    #[test]
    fn tieless_blocks_on_equal_distance() {
        let mut p = PartialAds::default();
        assert!(p.insert_rank_monotone_tieless(1, 1, 2.0, 0.1));
        // Same distance, later rank: blocked by the ≤ rule even though the
        // canonical rule (id tie-break, 0 < 1… node 2 > 1) would also block;
        // use a smaller id to expose the difference.
        assert!(!p.insert_rank_monotone_tieless(1, 0, 2.0, 0.2));
        // Canonical rule would have admitted node 0 (it precedes node 1 in
        // (dist, id) order and only k=1 … sanity-check via a fresh sketch):
        let mut q = PartialAds::default();
        assert!(q.insert_rank_monotone(1, 1, 2.0, 0.1));
        assert!(q.insert_rank_monotone(1, 0, 2.0, 0.2));
    }

    #[test]
    fn distance_monotone_counts_ranks() {
        let mut p = PartialAds::default();
        assert!(p.insert_distance_monotone(2, 0, 0.0, 0.5));
        assert!(p.insert_distance_monotone(2, 1, 1.0, 0.4));
        // Rank 0.6 is not among the 2 smallest of {0.5, 0.4} ⇒ rejected.
        assert!(!p.insert_distance_monotone(2, 2, 2.0, 0.6));
        // Rank 0.3 is ⇒ accepted.
        assert!(p.insert_distance_monotone(2, 3, 3.0, 0.3));
        // Duplicate node skipped.
        assert!(!p.insert_distance_monotone(2, 1, 4.0, 0.01));
    }

    #[test]
    fn general_insert_replaces_longer_distance() {
        let mut p = PartialAds::default();
        let (ins, rem) = p.insert_general(2, 4, 5.0, 0.2, 0.0);
        assert!(ins && rem == 0);
        // Shorter path to the same node: replaces.
        let (ins, rem) = p.insert_general(2, 4, 2.0, 0.2, 0.0);
        assert!(ins && rem == 0);
        assert_eq!(p.entries.len(), 1);
        assert_eq!(p.entries[0].dist, 2.0);
        // Longer path: ignored.
        let (ins, _) = p.insert_general(2, 4, 9.0, 0.2, 0.0);
        assert!(!ins);
        assert_eq!(p.entries[0].dist, 2.0);
    }

    #[test]
    fn general_insert_retracts_displaced_entries() {
        let mut p = PartialAds::default();
        // k = 1: farther, higher-rank entries get displaced by a closer,
        // lower-rank arrival.
        p.insert_general(1, 1, 1.0, 0.5, 0.0);
        p.insert_general(1, 2, 2.0, 0.3, 0.0);
        assert_eq!(p.entries.len(), 2);
        // Node 3 at distance 0.5 with rank 0.1 invalidates both.
        let (ins, removed) = p.insert_general(1, 3, 0.5, 0.1, 0.0);
        assert!(ins);
        assert_eq!(removed, 2);
        assert_eq!(p.entries.len(), 1);
        assert_eq!(p.entries[0].node, 3);
    }

    #[test]
    fn general_insert_partial_retraction() {
        let mut p = PartialAds::default();
        // k = 1, decreasing ranks: all three stay.
        p.insert_general(1, 1, 1.0, 0.5, 0.0);
        p.insert_general(1, 2, 2.0, 0.3, 0.0);
        p.insert_general(1, 3, 3.0, 0.1, 0.0);
        // Insert rank 0.2 at distance 1.5: displaces node 2 (rank .3) but
        // not node 3 (rank .1).
        let (ins, removed) = p.insert_general(1, 4, 1.5, 0.2, 0.0);
        assert!(ins);
        assert_eq!(removed, 1);
        let nodes: Vec<NodeId> = p.entries.iter().map(|e| e.node).collect();
        assert_eq!(nodes, vec![1, 4, 3]);
    }

    #[test]
    fn epsilon_suppresses_marginal_inserts() {
        let mut p = PartialAds::default();
        // k = 1. Entry at distance 10 with rank 0.1.
        p.insert_general(1, 1, 10.0, 0.1, 0.0);
        // Candidate at distance 9.8 with rank 0.5: exactly admissible
        // (closer than 10), but within the (1+ε) horizon of the stronger
        // entry for ε = 0.1 ⇒ suppressed.
        let (ins, _) = p.insert_general(1, 2, 9.8, 0.5, 0.1);
        assert!(!ins, "ε-rule should suppress the marginal insert");
        // With ε = 0 it is admitted.
        let (ins, _) = p.insert_general(1, 2, 9.8, 0.5, 0.0);
        assert!(ins);
    }

    #[test]
    fn into_ads_validates() {
        let mut p = PartialAds::default();
        p.insert_general(2, 0, 0.0, 0.9, 0.0);
        p.insert_general(2, 1, 1.0, 0.7, 0.0);
        p.insert_general(2, 2, 2.0, 0.8, 0.0);
        let ads = p.into_ads(2);
        assert!(ads.validate().is_ok());
    }
}
