//! PrunedDijkstra ADS construction (paper, Algorithm 1).
//!
//! Nodes are processed in increasing rank order; each runs a search on
//! the transpose graph, inserting itself into the sketches of the nodes it
//! scans and pruning wherever the sketch already holds k closer (and
//! necessarily lower-ranked) entries. Pruning is exact: an entry that fails
//! at `v` fails at every node behind `v` on a shortest path, so the
//! search volume shrinks as ranks grow, giving `O(km log n)` expected
//! relaxations in total.
//!
//! Three hot-path optimizations over the textbook formulation, none of
//! which changes the output:
//!
//! * **BFS fast path** — on unit-weight graphs
//!   ([`adsketch_graph::Graph::is_unit_weight`]) the per-source search is a
//!   pruned level-synchronous BFS instead of binary-heap Dijkstra; the
//!   visit sequence is identical, the heap cost is gone.
//! * **Arena-backed sketch state** — the n partial sketches live in one
//!   contiguous buffer with per-node spans instead of n separate `Vec`s.
//! * **Relax-time frontier pruning** — the textbook algorithm discovers
//!   that a sketch rejects the source at *pop* time, after the candidate
//!   already paid a full frontier push + pop. The builder instead consults
//!   the arena's flat admission-threshold array *before* pushing a
//!   neighbor; thresholds only ever tighten, so a candidate rejected
//!   against a stale threshold can never pass later (the
//!   threshold-monotonicity invariant, see the
//!   [`builder` module docs](crate::builder)), and the canonical pop-time
//!   test is kept for everything that does enter the frontier.
//!
//! [`build_parallel`] additionally fans the searches out over threads in
//! rank-ordered waves (see the `waves` module); its output is
//! bitwise identical to [`build`]. Two yardsticks are retained for
//! benchmarking only: [`build_baseline_with_stats`] (the original
//! sequential heap-based implementation, per-source allocations and all)
//! and [`build_pop_prune_with_stats`] (arena + BFS fast path, but
//! pop-time pruning only — what this module shipped before the relax-time
//! filter).

use adsketch_graph::dijkstra::dijkstra_visit;
use adsketch_graph::{FrontierVisitor, Graph, NodeId, Visit};

use crate::ads_set::AdsSet;
use crate::builder::waves::{rank_order, run_core_parallel, SearchScratch};
use crate::builder::{validate_ranks, BuildStats, PartialAds, PartialAdsArena};
use crate::error::CoreError;

/// Builds the forward bottom-k ADS set of `g` for the given node ranks.
pub fn build(g: &Graph, k: usize, ranks: &[f64]) -> Result<AdsSet, CoreError> {
    build_with_stats(g, k, ranks).map(|(set, _)| set)
}

/// Like [`build`], also returning work counters.
pub fn build_with_stats(
    g: &Graph,
    k: usize,
    ranks: &[f64],
) -> Result<(AdsSet, BuildStats), CoreError> {
    let (arena, stats) = run_core(g, k, ranks, None, false, true)?;
    Ok((arena.into_ads_set(), stats))
}

/// Wave-parallel PrunedDijkstra over `threads` threads (`0` ⇒ all cores).
///
/// Output is **bitwise identical** to [`build`] for every graph, rank
/// assignment and thread count: sources are searched concurrently in
/// rank-ordered waves against frozen sketch state, then merged by a
/// deterministic rank-order replay that re-applies the exact sequential
/// admission test (see the `builder::waves` module for the argument).
pub fn build_parallel(
    g: &Graph,
    k: usize,
    ranks: &[f64],
    threads: usize,
) -> Result<AdsSet, CoreError> {
    build_parallel_with_stats(g, k, ranks, threads).map(|(set, _)| set)
}

/// Like [`build_parallel`], also returning work counters. `stats.rounds`
/// is the number of waves; relaxations include the waves' bounded
/// over-exploration and therefore vary with `threads` (the sketch set
/// does not).
pub fn build_parallel_with_stats(
    g: &Graph,
    k: usize,
    ranks: &[f64],
    threads: usize,
) -> Result<(AdsSet, BuildStats), CoreError> {
    let (arena, stats) = run_core_parallel(g, k, ranks, threads)?;
    Ok((arena.into_ads_set(), stats))
}

/// Tieless (Appendix A) variant: at most k entries per distinct distance,
/// no id tie-breaking. Pair it with
/// [`crate::tieless::TielessAds::from_entries`] for HIP estimation.
pub fn build_tieless_entries(
    g: &Graph,
    k: usize,
    ranks: &[f64],
) -> Result<Vec<Vec<crate::entry::AdsEntry>>, CoreError> {
    let (arena, _) = run_core(g, k, ranks, None, true, true)?;
    Ok(arena.into_per_node())
}

/// The PR-2 sequential fast path, retained as the pop-time-pruning
/// yardstick: arena sketch state and the BFS fast path, but **no**
/// relax-time frontier filter — every discovered candidate enters the
/// frontier and doomed ones are only pruned when popped. Output is
/// identical to [`build`]; `stats.relaxations` counts all the settled
/// nodes the relax-time filter of [`build_with_stats`] never lets into
/// the frontier, so benchmarking the two against each other measures
/// exactly what push-time pruning buys (`tbl_parallel` reports this as
/// `pruned_seq` vs `pruned_relax_seq`).
pub fn build_pop_prune_with_stats(
    g: &Graph,
    k: usize,
    ranks: &[f64],
) -> Result<(AdsSet, BuildStats), CoreError> {
    let (arena, stats) = run_core(g, k, ranks, None, false, false)?;
    Ok((arena.into_ads_set(), stats))
}

/// The original (pre-wave, pre-arena) sequential implementation, retained
/// verbatim as the benchmarking baseline: binary-heap Dijkstra with
/// freshly allocated per-source search state and one heap-allocated `Vec`
/// per node sketch. Output is identical to [`build`]; use it only to
/// measure what the fast paths buy (`tbl_parallel`, `BENCH_build.json`).
pub fn build_baseline_with_stats(
    g: &Graph,
    k: usize,
    ranks: &[f64],
) -> Result<(AdsSet, BuildStats), CoreError> {
    let n = g.num_nodes();
    validate_ranks(ranks, n)?;
    let gt = g.transpose();
    let order = rank_order(ranks, None, n);
    let mut partials: Vec<PartialAds> = vec![PartialAds::default(); n];
    let mut stats = BuildStats::default();
    for &u in &order {
        let r_u = ranks[u as usize];
        dijkstra_visit(&gt, u, |v, d| {
            stats.relaxations += 1;
            if partials[v as usize].insert_rank_monotone(k, u, d, r_u) {
                stats.insertions += 1;
                Visit::Continue
            } else {
                Visit::Prune
            }
        });
    }
    let sketches = partials.into_iter().map(|p| p.into_ads(k)).collect();
    Ok((AdsSet::from_sketches(k, sketches), stats))
}

/// Sequential search driver: one source's mutable view of the arena and
/// counters, implementing both hooks of the relax-time-filtered searches.
///
/// `admit` is the push-time frontier filter (exact, not just
/// conservative: the probes compare the full canonical key, so on the
/// sequential path — where a node's threshold cannot change between its
/// discovery and its pop within one search — every admitted candidate is
/// also accepted at pop time). `visit` keeps the canonical pop-time
/// admission-and-insert of Algorithm 1.
struct SeqDriver<'a> {
    arena: &'a mut PartialAdsArena,
    stats: &'a mut BuildStats,
    src: NodeId,
    rank: f64,
    tieless: bool,
    relax: bool,
}

impl FrontierVisitor for SeqDriver<'_> {
    #[inline]
    fn admit(&mut self, v: NodeId, d: f64) -> bool {
        if self.relax {
            let ok = if self.tieless {
                self.arena.tieless_admits(v, d)
            } else {
                self.arena.would_insert(v, self.src, d)
            };
            if !ok {
                self.stats.pruned_at_relax += 1;
                return false;
            }
        }
        self.stats.heap_pushes += 1;
        true
    }

    #[inline]
    fn visit(&mut self, v: NodeId, d: f64) -> Visit {
        self.stats.relaxations += 1;
        let inserted = if self.tieless {
            self.arena
                .insert_rank_monotone_tieless(v, self.src, d, self.rank)
        } else {
            self.arena.insert_rank_monotone(v, self.src, d, self.rank)
        };
        if inserted {
            self.stats.insertions += 1;
            Visit::Continue
        } else {
            Visit::Prune
        }
    }
}

/// Core loop, also used by the k-mins and k-partition builders
/// (`sources = Some(..)` restricts which nodes act as sources; all nodes
/// still *receive* entries). Dispatches to the pruned BFS on unit-weight
/// transposes and reuses one search scratch across all sources. `relax`
/// enables the relax-time frontier filter (sound by threshold
/// monotonicity; `false` preserves the pop-time-only PR-2 behavior for
/// the yardstick).
pub(crate) fn run_core(
    g: &Graph,
    k: usize,
    ranks: &[f64],
    sources: Option<&[NodeId]>,
    tieless: bool,
    relax: bool,
) -> Result<(PartialAdsArena, BuildStats), CoreError> {
    let n = g.num_nodes();
    validate_ranks(ranks, n)?;
    let gt = g.transpose();
    let order = rank_order(ranks, sources, n);
    let mut arena = PartialAdsArena::new(n, k);
    let mut stats = BuildStats::default();
    let mut scratch = SearchScratch::for_graph(&gt);
    for &u in &order {
        // The source seeds the frontier unfiltered (its self-entry is
        // judged by the pop-time test like everything else).
        stats.heap_pushes += 1;
        let mut driver = SeqDriver {
            arena: &mut arena,
            stats: &mut stats,
            src: u,
            rank: ranks[u as usize],
            tieless,
            relax,
        };
        scratch.run(&gt, u, &mut driver);
    }
    Ok((arena, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform_ranks;
    use adsketch_graph::generators;

    #[test]
    fn matches_brute_force_on_unweighted_digraph() {
        for seed in 0..5u64 {
            let g = generators::gnp_directed(60, 0.08, seed);
            let ranks = uniform_ranks(60, seed + 100);
            let fast = build(&g, 3, &ranks).unwrap();
            let slow = crate::reference::build_bottomk(&g, 3, &ranks);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn matches_brute_force_on_weighted_digraph() {
        for seed in 0..5u64 {
            let g = generators::random_weighted_digraph(50, 4, 0.5, 3.0, seed);
            let ranks = uniform_ranks(50, seed + 200);
            let fast = build(&g, 4, &ranks).unwrap();
            let slow = crate::reference::build_bottomk(&g, 4, &ranks);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn matches_brute_force_with_distance_ties() {
        // Unweighted undirected graphs are full of equal distances; the
        // canonical (dist, id) order must agree between builders.
        for seed in 0..5u64 {
            let g = generators::gnp(70, 0.06, seed + 9);
            let ranks = uniform_ranks(70, seed + 300);
            let fast = build(&g, 2, &ranks).unwrap();
            let slow = crate::reference::build_bottomk(&g, 2, &ranks);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn disconnected_components_stay_separate() {
        // Two disjoint triangles.
        let g = Graph::undirected(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let ranks = uniform_ranks(6, 4);
        let set = build(&g, 8, &ranks).unwrap();
        for v in 0..3u32 {
            assert_eq!(set.sketch(v).len(), 3, "k ≥ n: whole component sampled");
            assert!(set.sketch(v).entries().iter().all(|e| e.node < 3));
        }
        for v in 3..6u32 {
            assert!(set.sketch(v).entries().iter().all(|e| e.node >= 3));
        }
    }

    #[test]
    fn k_at_least_n_samples_everything() {
        let g = generators::gnp(30, 0.2, 1);
        let ranks = uniform_ranks(30, 2);
        let set = build(&g, 64, &ranks).unwrap();
        let reach = adsketch_graph::bfs::reachable_count(&g, 0);
        assert_eq!(set.sketch(0).len(), reach);
        // HIP estimate is exact when everything is sampled with weight 1.
        let hip = set.hip(0);
        assert!((hip.reachable_estimate() - reach as f64).abs() < 1e-9);
    }

    #[test]
    fn pruning_reduces_relaxations() {
        let g = generators::barabasi_albert(500, 3, 7);
        let ranks = uniform_ranks(500, 8);
        let (_, stats) = build_with_stats(&g, 2, &ranks).unwrap();
        // Unpruned cost would be n · m; pruned must be far below.
        let full = (g.num_nodes() as u64) * (g.num_nodes() as u64);
        assert!(
            stats.relaxations < full / 4,
            "relaxations {} vs full {}",
            stats.relaxations,
            full
        );
        assert!(stats.insertions >= 500, "each node samples itself");
    }

    #[test]
    fn directed_forward_semantics() {
        // Path 0→1→2: ADS(0) samples downstream nodes, ADS(2) only itself.
        let g = Graph::directed(3, &[(0, 1), (1, 2)]).unwrap();
        let ranks = uniform_ranks(3, 5);
        let set = build(&g, 4, &ranks).unwrap();
        assert_eq!(set.sketch(0).len(), 3);
        assert_eq!(set.sketch(2).len(), 1);
        assert_eq!(set.sketch(0).get(2).unwrap().dist, 2.0);
    }

    #[test]
    fn zero_weight_edges_tie_correctly() {
        // Zero-weight arcs put several nodes at identical distances —
        // including distance 0 from each other — exercising the
        // (dist, id) tie-breaking everywhere at once.
        use adsketch_util::rng::{Rng64, SplitMix64};
        for seed in 0..4u64 {
            let mut rng = SplitMix64::new(seed);
            let n = 40usize;
            let mut arcs = Vec::new();
            for u in 0..n as u32 {
                for _ in 0..3 {
                    let v = rng.range_usize(n) as u32;
                    if v != u {
                        // Half the arcs have zero weight.
                        let w = if rng.bernoulli(0.5) { 0.0 } else { 1.0 };
                        arcs.push((u, v, w));
                    }
                }
            }
            let g = Graph::directed_weighted(n, &arcs).unwrap();
            let ranks = uniform_ranks(n, seed + 900);
            let fast = build(&g, 3, &ranks).unwrap();
            let slow = crate::reference::build_bottomk(&g, 3, &ranks);
            assert_eq!(fast, slow, "seed {seed}");
            let lu = crate::builder::local_updates::build(&g, 3, &ranks).unwrap();
            assert_eq!(lu, slow, "local updates, seed {seed}");
        }
    }

    #[test]
    fn rejects_bad_ranks() {
        let g = generators::gnp(10, 0.3, 1);
        assert!(matches!(
            build(&g, 2, &[0.5; 9]),
            Err(CoreError::RankCountMismatch { .. })
        ));
        let mut bad = uniform_ranks(10, 1);
        bad[3] = f64::NAN;
        assert!(matches!(
            build(&g, 2, &bad),
            Err(CoreError::InvalidRank { .. })
        ));
        assert!(matches!(
            build_parallel(&g, 2, &bad, 2),
            Err(CoreError::InvalidRank { .. })
        ));
    }

    #[test]
    fn tieless_respects_per_distance_cap() {
        // Star graph: all leaves at distance 1. The tieless ADS keeps at
        // most k entries per distance level.
        let g = Graph::undirected(50, &generators::star_edges(50)).unwrap();
        let ranks = uniform_ranks(50, 6);
        let k = 4;
        let entries = build_tieless_entries(&g, k, &ranks).unwrap();
        // ADS of the center: level 0 = itself, level 1 = at most k leaves.
        let center = &entries[0];
        let level1 = center.iter().filter(|e| e.dist == 1.0).count();
        assert!(level1 <= k, "level-1 entries {level1} exceed k");
        // Canonical ADS would include far more level-1 leaves.
        let canonical = build(&g, k, &ranks).unwrap();
        let canon_level1 = canonical
            .sketch(0)
            .entries()
            .iter()
            .filter(|e| e.dist == 1.0)
            .count();
        assert!(
            canon_level1 > k,
            "canonical keeps {canon_level1} > k under ties"
        );
    }

    #[test]
    fn baseline_matches_fast_paths() {
        // The retained PR-1 baseline, the pop-prune yardstick, the
        // relax-pruned sequential build and the wave-parallel build agree
        // bitwise on both weight regimes.
        let ug = generators::gnp(80, 0.06, 21);
        let wg = generators::random_weighted_digraph(70, 4, 0.5, 3.0, 22);
        for g in [&ug, &wg] {
            let ranks = uniform_ranks(g.num_nodes(), 23);
            let (base, base_stats) = build_baseline_with_stats(g, 4, &ranks).unwrap();
            let (pop, pop_stats) = build_pop_prune_with_stats(g, 4, &ranks).unwrap();
            let (fast, fast_stats) = build_with_stats(g, 4, &ranks).unwrap();
            assert_eq!(base, pop);
            assert_eq!(base, fast);
            // Pop-time pruning settles exactly what the baseline settles
            // (the BFS fast path replays the exact Dijkstra visit
            // sequence); the relax-time filter settles no more — and
            // inserts exactly the same entries.
            assert_eq!(pop_stats.relaxations, base_stats.relaxations);
            assert_eq!(pop_stats.insertions, base_stats.insertions);
            assert!(fast_stats.relaxations <= base_stats.relaxations);
            assert_eq!(fast_stats.insertions, base_stats.insertions);
            // Suppressed candidates + surviving pushes account for every
            // frontier decision the pop-prune run pushed through.
            assert!(fast_stats.heap_pushes <= pop_stats.heap_pushes);
            assert_eq!(pop_stats.pruned_at_relax, 0);
            assert!(fast_stats.pruned_at_relax > 0, "filter must fire");
            for threads in [1, 2, 4, 0] {
                assert_eq!(build_parallel(g, 4, &ranks, threads).unwrap(), fast);
            }
        }
    }

    #[test]
    fn relax_filter_is_exact_on_the_sequential_path() {
        // Within one source's search a node's threshold cannot change
        // between discovery and pop, so every candidate the relax filter
        // admits is also inserted at pop time: settled == inserted, except
        // for source seeds (which skip the filter and can be rejected at
        // their own pop under zero-weight ties).
        let ug = generators::barabasi_albert(400, 3, 31);
        let wg = generators::random_weighted_digraph(300, 4, 0.5, 3.0, 32);
        for g in [&ug, &wg] {
            let ranks = uniform_ranks(g.num_nodes(), 33);
            let (_, stats) = build_with_stats(g, 4, &ranks).unwrap();
            assert!(
                stats.relaxations - stats.insertions <= g.num_nodes() as u64,
                "settled {} vs inserted {} diverge beyond the source seeds",
                stats.relaxations,
                stats.insertions
            );
        }
    }

    #[test]
    fn tieless_relax_filter_matches_pop_pruning() {
        // The tieless (Appendix A) entry path through the relax-pruned
        // search core must be bitwise identical to the pop-prune-only
        // core across the same regimes the canonical suite covers:
        // unweighted directed, weighted, zero-weight ties, disconnected.
        use adsketch_util::rng::{Rng64, SplitMix64};
        let mut graphs = vec![
            generators::gnp_directed(60, 0.08, 41),
            generators::random_weighted_digraph(50, 4, 0.5, 3.0, 42),
            Graph::undirected(8, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap(),
        ];
        let mut rng = SplitMix64::new(43);
        let n = 40usize;
        let mut arcs = Vec::new();
        for u in 0..n as u32 {
            for _ in 0..3 {
                let v = rng.range_usize(n) as u32;
                if v != u {
                    let w = if rng.bernoulli(0.5) { 0.0 } else { 1.0 };
                    arcs.push((u, v, w));
                }
            }
        }
        graphs.push(Graph::directed_weighted(n, &arcs).unwrap());
        for (i, g) in graphs.iter().enumerate() {
            let ranks = uniform_ranks(g.num_nodes(), 44 + i as u64);
            for k in [1usize, 3, 8] {
                let (relax_arena, relax_stats) = run_core(g, k, &ranks, None, true, true).unwrap();
                let (pop_arena, pop_stats) = run_core(g, k, &ranks, None, true, false).unwrap();
                assert_eq!(
                    relax_arena.into_per_node(),
                    pop_arena.into_per_node(),
                    "graph {i}, k {k}"
                );
                assert_eq!(relax_stats.insertions, pop_stats.insertions);
                assert!(relax_stats.relaxations <= pop_stats.relaxations);
            }
        }
    }
}
