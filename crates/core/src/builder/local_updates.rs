//! LocalUpdates ADS construction (paper, Algorithm 2): node-centric
//! message passing for weighted graphs, executed in synchronized rounds
//! as on Pregel/MapReduce-style platforms.
//!
//! Unlike PrunedDijkstra and DP, entries can be admitted and later
//! *displaced* when a shorter path or a lower-ranked closer node arrives —
//! the overhead the paper bounds with the `(1+ε)`-approximate admission
//! rule (pass `epsilon > 0`). With `epsilon = 0` the fixpoint equals the
//! exact canonical ADS.

use adsketch_graph::{Graph, NodeId};

use crate::ads_set::AdsSet;
use crate::builder::{validate_ranks, BuildStats, PartialAds};
use crate::error::CoreError;

/// A message: "node `node` with rank `rank` is at distance `dist` of you".
#[derive(Debug, Clone, Copy)]
struct Msg {
    target: NodeId,
    node: NodeId,
    rank: f64,
    dist: f64,
}

/// Builds the exact forward bottom-k ADS set (ε = 0).
pub fn build(g: &Graph, k: usize, ranks: &[f64]) -> Result<AdsSet, CoreError> {
    build_approx_with_stats(g, k, ranks, 0.0).map(|(s, _)| s)
}

/// Like [`build`] with work counters.
pub fn build_with_stats(
    g: &Graph,
    k: usize,
    ranks: &[f64],
) -> Result<(AdsSet, BuildStats), CoreError> {
    build_approx_with_stats(g, k, ranks, 0.0)
}

/// `(1+ε)`-approximate construction: candidate entries must beat the k-th
/// smallest rank within distance `(1+ε)·d`, trading sketch exactness for a
/// provably logarithmic retraction overhead (paper, Section 3).
pub fn build_approx_with_stats(
    g: &Graph,
    k: usize,
    ranks: &[f64],
    epsilon: f64,
) -> Result<(AdsSet, BuildStats), CoreError> {
    if !(epsilon.is_finite() && epsilon >= 0.0) {
        return Err(CoreError::InvalidEpsilon { epsilon });
    }
    let n = g.num_nodes();
    validate_ranks(ranks, n)?;
    let gt = g.transpose();
    let mut partials: Vec<PartialAds> = vec![PartialAds::default(); n];
    let mut stats = BuildStats::default();

    // Initialization: each node holds itself and announces it.
    let mut inbox: Vec<Msg> = Vec::new();
    for u in 0..n as NodeId {
        partials[u as usize].insert_general(k, u, 0.0, ranks[u as usize], epsilon);
        stats.insertions += 1;
        for (y, w) in gt.arcs(u) {
            inbox.push(Msg {
                target: y,
                node: u,
                rank: ranks[u as usize],
                dist: w,
            });
        }
    }

    while !inbox.is_empty() {
        stats.rounds += 1;
        // Keep only the shortest copy of each (target, node) pair this
        // round — a cheap, semantics-preserving message reduction.
        inbox.sort_unstable_by(|a, b| {
            (a.target, a.node)
                .cmp(&(b.target, b.node))
                .then(a.dist.total_cmp(&b.dist))
        });
        inbox.dedup_by_key(|m| (m.target, m.node));
        let mut outbox: Vec<Msg> = Vec::new();
        for m in inbox.drain(..) {
            stats.relaxations += 1;
            let (inserted, removed) =
                partials[m.target as usize].insert_general(k, m.node, m.dist, m.rank, epsilon);
            stats.removals += removed as u64;
            if inserted {
                stats.insertions += 1;
                for (y, w) in gt.arcs(m.target) {
                    outbox.push(Msg {
                        target: y,
                        node: m.node,
                        rank: m.rank,
                        dist: m.dist + w,
                    });
                }
            }
        }
        inbox = outbox;
    }

    let sketches = partials.into_iter().map(|p| p.into_ads(k)).collect();
    Ok((AdsSet::from_sketches(k, sketches), stats))
}

/// An incrementally maintained exact bottom-k ADS set over a growing
/// edge stream (paper, Section 4): arcs arrive one at a time and each
/// insertion runs the local-update rule to a fixpoint, so after every
/// [`insert_edge`](DynamicAds::insert_edge) the held sketches are the
/// canonical ADS of the graph seen so far.
///
/// The maintenance rule is the same relaxation the batch builder uses
/// (`PartialAds::insert_general` with ε = 0), seeded from the sketch
/// of the new arc's head: every current entry `(j, d)` of `ADS(v)` is
/// offered to `u` at distance `d + w`, and admitted entries propagate
/// along the in-arcs accumulated so far. Admission thresholds only ever
/// tighten as edges arrive, so a rejection against the *current* sketch
/// is also a rejection against the *final* one — the standing soundness
/// invariant carries over verbatim — while entries admitted on stale
/// thresholds are displaced by the insert's retraction sweep. Distances
/// accumulate in the same reverse-path association order as every other
/// builder, so the fixpoint is **bitwise identical** to a from-scratch
/// [`AdsSet::build`] on the final graph, regardless of the order edges
/// were inserted in (gated by the `dynamic_*` tests here and the
/// insertion-order proptest in the workspace suite).
#[derive(Debug, Clone)]
pub struct DynamicAds {
    k: usize,
    ranks: Vec<f64>,
    partials: Vec<PartialAds>,
    /// `in_arcs[t]` lists `(y, w)` for every inserted arc `y → t`: the
    /// transpose adjacency, grown incrementally, along which admitted
    /// entries propagate (mirrors `gt.arcs(t)` in the batch builder).
    in_arcs: Vec<Vec<(NodeId, f64)>>,
    edges: u64,
    stats: BuildStats,
}

impl DynamicAds {
    /// An edgeless `n`-node dynamic sketch set with the same
    /// [`uniform_ranks`](crate::uniform_ranks) rank assignment
    /// [`AdsSet::build`] uses for `seed` — so
    /// `DynamicAds::new(n, k, seed)` fed any permutation of a graph's
    /// arcs compares bitwise against `AdsSet::build(&g, k, seed)`.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        Self::with_ranks(k, crate::uniform_ranks(n, seed)).expect("uniform ranks are valid")
    }

    /// An edgeless dynamic sketch set over explicit per-node ranks
    /// (`n = ranks.len()`).
    pub fn with_ranks(k: usize, ranks: Vec<f64>) -> Result<Self, CoreError> {
        validate_ranks(&ranks, ranks.len())?;
        let n = ranks.len();
        let mut partials: Vec<PartialAds> = vec![PartialAds::default(); n];
        let mut stats = BuildStats::default();
        for u in 0..n {
            partials[u].insert_general(k, u as NodeId, 0.0, ranks[u], 0.0);
            stats.insertions += 1;
        }
        Ok(Self {
            k,
            ranks,
            partials,
            in_arcs: vec![Vec::new(); n],
            edges: 0,
            stats,
        })
    }

    /// Inserts the directed arc `u → v` with weight `w` and restores the
    /// exact-ADS invariant by running the local-update rule to its
    /// fixpoint. Undirected edges are two calls. Parallel arcs,
    /// self-loops, and zero weights are all legal (zero-weight cycles
    /// terminate because an equal-distance candidate is rejected, not
    /// propagated).
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId, w: f64) -> Result<(), CoreError> {
        let n = self.ranks.len();
        for node in [u, v] {
            if node as usize >= n {
                return Err(CoreError::NodeOutOfRange { node, nodes: n });
            }
        }
        if !(w.is_finite() && w >= 0.0) {
            return Err(CoreError::InvalidWeight { weight: w });
        }
        self.in_arcs[v as usize].push((u, w));
        self.edges += 1;

        // Seed: every current entry of ADS(v) crosses the new arc into
        // u — exactly the messages the batch builder would have sent
        // along this arc when those entries were admitted at v. Distance
        // accumulates as `entry.dist + w`, matching the batch builder's
        // `m.dist + w` association order bit for bit.
        let mut inbox: Vec<Msg> = Vec::with_capacity(self.partials[v as usize].entries.len());
        for i in 0..self.partials[v as usize].entries.len() {
            let e = self.partials[v as usize].entries[i];
            inbox.push(Msg {
                target: u,
                node: e.node,
                rank: e.rank,
                dist: e.dist + w,
            });
        }

        while !inbox.is_empty() {
            self.stats.rounds += 1;
            inbox.sort_unstable_by(|a, b| {
                (a.target, a.node)
                    .cmp(&(b.target, b.node))
                    .then(a.dist.total_cmp(&b.dist))
            });
            inbox.dedup_by_key(|m| (m.target, m.node));
            let mut outbox: Vec<Msg> = Vec::new();
            for m in inbox.drain(..) {
                self.stats.relaxations += 1;
                let (inserted, removed) = self.partials[m.target as usize]
                    .insert_general(self.k, m.node, m.dist, m.rank, 0.0);
                self.stats.removals += removed as u64;
                if inserted {
                    self.stats.insertions += 1;
                    for &(y, aw) in &self.in_arcs[m.target as usize] {
                        outbox.push(Msg {
                            target: y,
                            node: m.node,
                            rank: m.rank,
                            dist: m.dist + aw,
                        });
                    }
                }
            }
            inbox = outbox;
        }
        Ok(())
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.ranks.len()
    }

    /// Sketch parameter k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of arcs applied so far.
    pub fn edges_applied(&self) -> u64 {
        self.edges
    }

    /// Cumulative work counters across all insertions.
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The current sketches as an immutable [`AdsSet`] — bitwise
    /// identical to `AdsSet::build` on the graph of all arcs inserted so
    /// far (with matching ranks). The live state keeps accepting edges;
    /// this is the freezer's snapshot point.
    pub fn snapshot(&self) -> AdsSet {
        let sketches = self
            .partials
            .iter()
            .map(|p| p.clone().into_ads(self.k))
            .collect();
        AdsSet::from_sketches(self.k, sketches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform_ranks;
    use adsketch_graph::generators;

    #[test]
    fn matches_pruned_dijkstra_on_weighted_digraphs() {
        for seed in 0..6u64 {
            let g = generators::random_weighted_digraph(50, 4, 0.5, 2.5, seed);
            let ranks = uniform_ranks(50, seed + 600);
            let lu = build(&g, 3, &ranks).unwrap();
            let pd = crate::builder::pruned_dijkstra::build(&g, 3, &ranks).unwrap();
            assert_eq!(lu, pd, "seed {seed}");
        }
    }

    #[test]
    fn matches_on_unweighted_with_ties() {
        for seed in 0..4u64 {
            let g = generators::gnp(50, 0.08, seed + 31);
            let ranks = uniform_ranks(50, seed + 700);
            let lu = build(&g, 2, &ranks).unwrap();
            let brute = crate::reference::build_bottomk(&g, 2, &ranks);
            assert_eq!(lu, brute, "seed {seed}");
        }
    }

    #[test]
    fn handles_weighted_undirected() {
        let edges =
            generators::assign_uniform_weights(&generators::gnp_edges(40, 0.1, 3), 0.5, 2.0, 4);
        let g = Graph::undirected_weighted(40, &edges).unwrap();
        let ranks = uniform_ranks(40, 5);
        let lu = build(&g, 4, &ranks).unwrap();
        let pd = crate::builder::pruned_dijkstra::build(&g, 4, &ranks).unwrap();
        assert_eq!(lu, pd);
    }

    #[test]
    fn rejects_negative_epsilon() {
        let g = generators::gnp(5, 0.5, 1);
        let ranks = uniform_ranks(5, 1);
        assert!(matches!(
            build_approx_with_stats(&g, 2, &ranks, -0.5),
            Err(CoreError::InvalidEpsilon { .. })
        ));
    }

    #[test]
    fn approx_mode_reduces_churn_and_respects_guarantee() {
        // A graph engineered for retractions: long chain distances that
        // shortcut edges later undercut.
        let g = generators::random_weighted_digraph(80, 5, 0.1, 10.0, 12);
        let ranks = uniform_ranks(80, 13);
        let (exact, exact_stats) = build_with_stats(&g, 4, &ranks).unwrap();
        let eps = 0.25;
        let (approx, approx_stats) = build_approx_with_stats(&g, 4, &ranks, eps).unwrap();
        assert!(
            approx_stats.insertions <= exact_stats.insertions,
            "ε-rule must not insert more ({} vs {})",
            approx_stats.insertions,
            exact_stats.insertions
        );
        // Guarantee: every entry of the exact ADS that is missing from the
        // approximate one must fail the (1+ε)-relaxed threshold, i.e. the
        // approx sketch holds k entries within (1+ε)·d with lower ranks.
        for v in 0..80u32 {
            let ex = exact.sketch(v);
            let ap = approx.sketch(v);
            for e in ex.entries() {
                if ap.get(e.node).is_some() {
                    continue;
                }
                let blockers = ap
                    .entries()
                    .iter()
                    .filter(|b| {
                        b.dist <= e.dist * (1.0 + eps) && (b.rank, b.node) < (e.rank, e.node)
                    })
                    .count();
                assert!(
                    blockers >= 4,
                    "node {v}: dropped entry {} lacks (1+ε) justification",
                    e.node
                );
            }
        }
    }

    #[test]
    fn stats_report_retractions_on_adversarial_order() {
        // A weighted graph where low-rank nodes are far: entries inserted
        // early must later be displaced.
        let mut arcs = Vec::new();
        // Chain 0→1→…→19 with weight 1 plus a shortcut 0→19 of weight 30
        // (the shortcut delivers node 19's entries early at distance 30,
        // then the chain path displaces them with distance 19).
        for i in 0..19u32 {
            arcs.push((i, i + 1, 1.0));
        }
        arcs.push((0, 19, 30.0));
        let g = Graph::directed_weighted(20, &arcs).unwrap();
        // Transposed propagation: messages flow 19→…→0.
        let ranks = uniform_ranks(20, 21);
        let (set, _stats) = build_with_stats(&g, 2, &ranks).unwrap();
        let pd = crate::builder::pruned_dijkstra::build(&g, 2, &ranks).unwrap();
        assert_eq!(set, pd);
        // The shortest distance must win for node 19 in ADS(0) if present.
        if let Some(e) = set.sketch(0).get(19) {
            assert_eq!(e.dist, 19.0);
        }
    }

    #[test]
    fn dynamic_matches_batch_build_bitwise() {
        for seed in 0..5u64 {
            let g = generators::random_weighted_digraph(60, 4, 0.5, 2.5, seed);
            let batch = AdsSet::build(&g, 3, seed + 40);
            let mut dyn_ads = DynamicAds::new(60, 3, seed + 40);
            for u in 0..60u32 {
                for (v, w) in g.arcs(u) {
                    dyn_ads.insert_edge(u, v, w).unwrap();
                }
            }
            assert_eq!(dyn_ads.snapshot(), batch, "seed {seed}");
            assert_eq!(dyn_ads.edges_applied(), g.num_arcs() as u64);
        }
    }

    #[test]
    fn dynamic_is_insertion_order_invariant() {
        let g = generators::random_weighted_digraph(40, 4, 0.5, 2.5, 9);
        let mut arcs: Vec<(u32, u32, f64)> = Vec::new();
        for u in 0..40u32 {
            for (v, w) in g.arcs(u) {
                arcs.push((u, v, w));
            }
        }
        let batch = AdsSet::build(&g, 4, 77);
        // Forward, reversed, and a deterministic shuffle.
        let mut shuffled = arcs.clone();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }
        let orders = [
            arcs.clone(),
            arcs.iter().rev().copied().collect::<Vec<_>>(),
            shuffled,
        ];
        for (i, order) in orders.iter().enumerate() {
            let mut dyn_ads = DynamicAds::new(40, 4, 77);
            for &(u, v, w) in order {
                dyn_ads.insert_edge(u, v, w).unwrap();
            }
            assert_eq!(dyn_ads.snapshot(), batch, "order {i}");
        }
    }

    #[test]
    fn dynamic_handles_zero_weights_self_loops_and_parallel_arcs() {
        // Zero-weight 2-cycle, a self-loop, and a parallel arc pair.
        let arcs: Vec<(u32, u32, f64)> = vec![
            (0, 1, 0.0),
            (1, 0, 0.0),
            (2, 2, 1.0),
            (0, 2, 3.0),
            (0, 2, 1.5),
            (2, 3, 0.5),
            (3, 1, 0.0),
        ];
        let g = Graph::directed_weighted(4, &arcs).unwrap();
        let batch = AdsSet::build(&g, 2, 5);
        let mut dyn_ads = DynamicAds::new(4, 2, 5);
        for &(u, v, w) in &arcs {
            dyn_ads.insert_edge(u, v, w).unwrap();
        }
        assert_eq!(dyn_ads.snapshot(), batch);
    }

    #[test]
    fn dynamic_every_prefix_is_exact() {
        // The invariant holds after *every* insertion, not just the last:
        // each prefix of the stream answers identically to a batch build
        // on that prefix.
        let g = generators::random_weighted_digraph(25, 3, 0.5, 2.0, 3);
        let mut arcs: Vec<(u32, u32, f64)> = Vec::new();
        for u in 0..25u32 {
            for (v, w) in g.arcs(u) {
                arcs.push((u, v, w));
            }
        }
        let mut dyn_ads = DynamicAds::new(25, 3, 11);
        for i in 0..arcs.len() {
            let (u, v, w) = arcs[i];
            dyn_ads.insert_edge(u, v, w).unwrap();
            if i % 7 == 0 || i + 1 == arcs.len() {
                let prefix = Graph::directed_weighted(25, &arcs[..=i]).unwrap();
                assert_eq!(
                    dyn_ads.snapshot(),
                    AdsSet::build(&prefix, 3, 11),
                    "prefix {i}"
                );
            }
        }
    }

    #[test]
    fn dynamic_rejects_bad_edges() {
        let mut dyn_ads = DynamicAds::new(4, 2, 1);
        assert!(matches!(
            dyn_ads.insert_edge(0, 4, 1.0),
            Err(CoreError::NodeOutOfRange { node: 4, nodes: 4 })
        ));
        assert!(matches!(
            dyn_ads.insert_edge(0, 1, -1.0),
            Err(CoreError::InvalidWeight { .. })
        ));
        assert!(matches!(
            dyn_ads.insert_edge(0, 1, f64::NAN),
            Err(CoreError::InvalidWeight { .. })
        ));
        assert_eq!(dyn_ads.edges_applied(), 0);
    }

    #[test]
    fn dynamic_snapshot_leaves_live_state_usable() {
        let mut dyn_ads = DynamicAds::new(10, 2, 2);
        dyn_ads.insert_edge(0, 1, 1.0).unwrap();
        let first = dyn_ads.snapshot();
        dyn_ads.insert_edge(1, 2, 1.0).unwrap();
        let second = dyn_ads.snapshot();
        assert_eq!(first.k(), 2);
        // The earlier snapshot is unaffected by later inserts.
        assert!(first.sketch(0).get(2).is_none());
        assert!(second.sketch(0).get(2).is_some());
    }
}
