//! LocalUpdates ADS construction (paper, Algorithm 2): node-centric
//! message passing for weighted graphs, executed in synchronized rounds
//! as on Pregel/MapReduce-style platforms.
//!
//! Unlike PrunedDijkstra and DP, entries can be admitted and later
//! *displaced* when a shorter path or a lower-ranked closer node arrives —
//! the overhead the paper bounds with the `(1+ε)`-approximate admission
//! rule (pass `epsilon > 0`). With `epsilon = 0` the fixpoint equals the
//! exact canonical ADS.

use adsketch_graph::{Graph, NodeId};

use crate::ads_set::AdsSet;
use crate::builder::{validate_ranks, BuildStats, PartialAds};
use crate::error::CoreError;

/// A message: "node `node` with rank `rank` is at distance `dist` of you".
#[derive(Debug, Clone, Copy)]
struct Msg {
    target: NodeId,
    node: NodeId,
    rank: f64,
    dist: f64,
}

/// Builds the exact forward bottom-k ADS set (ε = 0).
pub fn build(g: &Graph, k: usize, ranks: &[f64]) -> Result<AdsSet, CoreError> {
    build_approx_with_stats(g, k, ranks, 0.0).map(|(s, _)| s)
}

/// Like [`build`] with work counters.
pub fn build_with_stats(
    g: &Graph,
    k: usize,
    ranks: &[f64],
) -> Result<(AdsSet, BuildStats), CoreError> {
    build_approx_with_stats(g, k, ranks, 0.0)
}

/// `(1+ε)`-approximate construction: candidate entries must beat the k-th
/// smallest rank within distance `(1+ε)·d`, trading sketch exactness for a
/// provably logarithmic retraction overhead (paper, Section 3).
pub fn build_approx_with_stats(
    g: &Graph,
    k: usize,
    ranks: &[f64],
    epsilon: f64,
) -> Result<(AdsSet, BuildStats), CoreError> {
    if !(epsilon.is_finite() && epsilon >= 0.0) {
        return Err(CoreError::InvalidEpsilon { epsilon });
    }
    let n = g.num_nodes();
    validate_ranks(ranks, n)?;
    let gt = g.transpose();
    let mut partials: Vec<PartialAds> = vec![PartialAds::default(); n];
    let mut stats = BuildStats::default();

    // Initialization: each node holds itself and announces it.
    let mut inbox: Vec<Msg> = Vec::new();
    for u in 0..n as NodeId {
        partials[u as usize].insert_general(k, u, 0.0, ranks[u as usize], epsilon);
        stats.insertions += 1;
        for (y, w) in gt.arcs(u) {
            inbox.push(Msg {
                target: y,
                node: u,
                rank: ranks[u as usize],
                dist: w,
            });
        }
    }

    while !inbox.is_empty() {
        stats.rounds += 1;
        // Keep only the shortest copy of each (target, node) pair this
        // round — a cheap, semantics-preserving message reduction.
        inbox.sort_unstable_by(|a, b| {
            (a.target, a.node)
                .cmp(&(b.target, b.node))
                .then(a.dist.total_cmp(&b.dist))
        });
        inbox.dedup_by_key(|m| (m.target, m.node));
        let mut outbox: Vec<Msg> = Vec::new();
        for m in inbox.drain(..) {
            stats.relaxations += 1;
            let (inserted, removed) =
                partials[m.target as usize].insert_general(k, m.node, m.dist, m.rank, epsilon);
            stats.removals += removed as u64;
            if inserted {
                stats.insertions += 1;
                for (y, w) in gt.arcs(m.target) {
                    outbox.push(Msg {
                        target: y,
                        node: m.node,
                        rank: m.rank,
                        dist: m.dist + w,
                    });
                }
            }
        }
        inbox = outbox;
    }

    let sketches = partials.into_iter().map(|p| p.into_ads(k)).collect();
    Ok((AdsSet::from_sketches(k, sketches), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform_ranks;
    use adsketch_graph::generators;

    #[test]
    fn matches_pruned_dijkstra_on_weighted_digraphs() {
        for seed in 0..6u64 {
            let g = generators::random_weighted_digraph(50, 4, 0.5, 2.5, seed);
            let ranks = uniform_ranks(50, seed + 600);
            let lu = build(&g, 3, &ranks).unwrap();
            let pd = crate::builder::pruned_dijkstra::build(&g, 3, &ranks).unwrap();
            assert_eq!(lu, pd, "seed {seed}");
        }
    }

    #[test]
    fn matches_on_unweighted_with_ties() {
        for seed in 0..4u64 {
            let g = generators::gnp(50, 0.08, seed + 31);
            let ranks = uniform_ranks(50, seed + 700);
            let lu = build(&g, 2, &ranks).unwrap();
            let brute = crate::reference::build_bottomk(&g, 2, &ranks);
            assert_eq!(lu, brute, "seed {seed}");
        }
    }

    #[test]
    fn handles_weighted_undirected() {
        let edges =
            generators::assign_uniform_weights(&generators::gnp_edges(40, 0.1, 3), 0.5, 2.0, 4);
        let g = Graph::undirected_weighted(40, &edges).unwrap();
        let ranks = uniform_ranks(40, 5);
        let lu = build(&g, 4, &ranks).unwrap();
        let pd = crate::builder::pruned_dijkstra::build(&g, 4, &ranks).unwrap();
        assert_eq!(lu, pd);
    }

    #[test]
    fn rejects_negative_epsilon() {
        let g = generators::gnp(5, 0.5, 1);
        let ranks = uniform_ranks(5, 1);
        assert!(matches!(
            build_approx_with_stats(&g, 2, &ranks, -0.5),
            Err(CoreError::InvalidEpsilon { .. })
        ));
    }

    #[test]
    fn approx_mode_reduces_churn_and_respects_guarantee() {
        // A graph engineered for retractions: long chain distances that
        // shortcut edges later undercut.
        let g = generators::random_weighted_digraph(80, 5, 0.1, 10.0, 12);
        let ranks = uniform_ranks(80, 13);
        let (exact, exact_stats) = build_with_stats(&g, 4, &ranks).unwrap();
        let eps = 0.25;
        let (approx, approx_stats) = build_approx_with_stats(&g, 4, &ranks, eps).unwrap();
        assert!(
            approx_stats.insertions <= exact_stats.insertions,
            "ε-rule must not insert more ({} vs {})",
            approx_stats.insertions,
            exact_stats.insertions
        );
        // Guarantee: every entry of the exact ADS that is missing from the
        // approximate one must fail the (1+ε)-relaxed threshold, i.e. the
        // approx sketch holds k entries within (1+ε)·d with lower ranks.
        for v in 0..80u32 {
            let ex = exact.sketch(v);
            let ap = approx.sketch(v);
            for e in ex.entries() {
                if ap.get(e.node).is_some() {
                    continue;
                }
                let blockers = ap
                    .entries()
                    .iter()
                    .filter(|b| {
                        b.dist <= e.dist * (1.0 + eps) && (b.rank, b.node) < (e.rank, e.node)
                    })
                    .count();
                assert!(
                    blockers >= 4,
                    "node {v}: dropped entry {} lacks (1+ε) justification",
                    e.node
                );
            }
        }
    }

    #[test]
    fn stats_report_retractions_on_adversarial_order() {
        // A weighted graph where low-rank nodes are far: entries inserted
        // early must later be displaced.
        let mut arcs = Vec::new();
        // Chain 0→1→…→19 with weight 1 plus a shortcut 0→19 of weight 30
        // (the shortcut delivers node 19's entries early at distance 30,
        // then the chain path displaces them with distance 19).
        for i in 0..19u32 {
            arcs.push((i, i + 1, 1.0));
        }
        arcs.push((0, 19, 30.0));
        let g = Graph::directed_weighted(20, &arcs).unwrap();
        // Transposed propagation: messages flow 19→…→0.
        let ranks = uniform_ranks(20, 21);
        let (set, _stats) = build_with_stats(&g, 2, &ranks).unwrap();
        let pd = crate::builder::pruned_dijkstra::build(&g, 2, &ranks).unwrap();
        assert_eq!(set, pd);
        // The shortest distance must win for node 19 in ADS(0) if present.
        if let Some(e) = set.sketch(0).get(19) {
            assert_eq!(e.dist, 19.0);
        }
    }
}
