//! Scalable k-partition ADS construction: one bottom-1 PrunedDijkstra pass
//! per bucket, with only the bucket's members acting as sources (paper,
//! Section 3: "we perform a separate bottom-1 ADS computation for each of
//! the k buckets, with the ADS of nodes not in the bucket initialized
//! to ∅").

use adsketch_graph::{Graph, NodeId};
use adsketch_util::RankHasher;

use crate::builder::pruned_dijkstra::run_core;
use crate::builder::BuildStats;
use crate::error::CoreError;
use crate::kpartition::{KPartRecord, KPartitionAds};

/// Builds the forward k-partition ADS of every node.
pub fn build(g: &Graph, k: usize, hasher: &RankHasher) -> Result<Vec<KPartitionAds>, CoreError> {
    build_with_stats(g, k, hasher).map(|(s, _)| s)
}

/// Like [`build`] with aggregate work counters over the k passes.
pub fn build_with_stats(
    g: &Graph,
    k: usize,
    hasher: &RankHasher,
) -> Result<(Vec<KPartitionAds>, BuildStats), CoreError> {
    assert!(k >= 1);
    let n = g.num_nodes();
    let ranks: Vec<f64> = (0..n as u64).map(|v| hasher.rank(v)).collect();
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for v in 0..n as NodeId {
        buckets[hasher.bucket(v as u64, k)].push(v);
    }
    let mut records: Vec<Vec<KPartRecord>> = vec![Vec::new(); n];
    let mut stats = BuildStats::default();
    for (b, sources) in buckets.iter().enumerate() {
        if sources.is_empty() {
            continue;
        }
        let (arena, s) = run_core(g, 1, &ranks, Some(sources), false, true)?;
        stats.relaxations += s.relaxations;
        stats.insertions += s.insertions;
        stats.heap_pushes += s.heap_pushes;
        stats.pruned_at_relax += s.pruned_at_relax;
        for (v, entries) in arena.into_per_node().into_iter().enumerate() {
            records[v].extend(entries.into_iter().map(|e| KPartRecord {
                node: e.node,
                dist: e.dist,
                rank: e.rank,
                bucket: b as u32,
            }));
        }
    }
    let sets = records
        .into_iter()
        .map(|mut rs| {
            rs.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist).then(a.node.cmp(&b.node)));
            KPartitionAds::from_records(k, rs)
        })
        .collect();
    Ok((sets, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_graph::generators;

    #[test]
    fn matches_brute_force() {
        for seed in 0..4u64 {
            let g = generators::gnp_directed(60, 0.06, seed);
            let hasher = RankHasher::new(seed + 1000);
            let fast = build(&g, 4, &hasher).unwrap();
            let slow = crate::reference::build_kpartition(&g, 4, &hasher);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn weighted_graphs_supported() {
        let g = generators::random_weighted_digraph(40, 3, 0.25, 2.25, 9);
        let hasher = RankHasher::new(1100);
        let fast = build(&g, 4, &hasher).unwrap();
        let slow = crate::reference::build_kpartition(&g, 4, &hasher);
        assert_eq!(fast, slow);
    }

    #[test]
    fn sketch_size_near_lemma_2_2() {
        use adsketch_util::harmonic::expected_kpartition_ads_size;
        let n = 300;
        let g = generators::barabasi_albert(n, 3, 3);
        let k = 8;
        let mut total = 0usize;
        let runs = 15;
        for seed in 0..runs {
            let sets = build(&g, k, &RankHasher::new(seed)).unwrap();
            total += sets.iter().map(|s| s.len()).sum::<usize>();
        }
        let mean = total as f64 / (runs as f64 * n as f64);
        let expect = expected_kpartition_ads_size(n as u64, k);
        // k·H_{n/k} is an approximation (buckets are multinomial, not
        // exactly n/k); allow generous slack.
        assert!(
            (mean - expect).abs() / expect < 0.25,
            "mean {mean} vs Lemma 2.2 ≈ {expect}"
        );
    }
}
