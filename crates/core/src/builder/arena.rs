//! Flat arena for the per-node sketch state of rank-monotone builders.
//!
//! `Vec<PartialAds>` costs one heap allocation per node and, worse, a
//! sorted *insert into the whole sketch* per accepted entry — an ADS
//! grows to `k·ln n` entries, so late inserts memmove kilobytes. The
//! arena exploits the structure of rank-monotone admission instead:
//!
//! * a candidate is admitted iff fewer than k existing entries precede it
//!   canonically, i.e. iff it beats the k-th canonically-smallest entry —
//!   only the **k-prefix** of the sketch ever decides admission;
//! * admitted entries land at canonical position < k (for the tieless
//!   rule too: < k entries at distance ≤ d implies < k entries canonically
//!   before the candidate);
//! * entries pushed out of the k-prefix are *never* consulted again
//!   (the prefix max only decreases), they just belong to the final ADS.
//!
//! So the arena keeps one flat `n × min(k, n)` prefix buffer (sorted per
//! node, O(1) reject, ≤ k-entry memmove per insert, zero reallocation)
//! plus a global append-only overflow log of displaced entries, grouped
//! and merged only when construction finishes. The layout also makes the
//! read-only admission probe ([`PartialAdsArena::would_insert`]) O(1),
//! which is what the wave scheduler hammers from worker threads.
//!
//! # The admission-threshold array
//!
//! The arena additionally maintains a flat `n`-sized threshold array:
//! `kth_dist[v]` is the distance of the k-th canonically-smallest entry in
//! `v`'s partial sketch, `+∞` while the sketch holds fewer than k entries.
//! It is refreshed on every insert (`debug_assert!`-checked against the
//! prefix row each time) and backs the hot admission probes with a single
//! 8-byte load — the prefix row is only touched to break exact distance
//! ties by node id. **Threshold monotonicity** is the invariant everything
//! rests on: inserts only ever tighten `kth_dist[v]`, so a candidate that
//! fails the probe against a *stale* threshold can never pass against a
//! current one. That is what makes the probe safe to use as a relax-time
//! frontier filter (push-time pruning in the builders) and safe to read
//! concurrently from frozen state in the wave scheduler.
//!
//! Only the rank-monotone insert regimes live here (canonical and
//! tieless — everything the PrunedDijkstra-family builders need); the
//! general retraction regimes remain on [`crate::builder::PartialAds`].

use adsketch_graph::NodeId;

use crate::ads_set::AdsSet;
use crate::bottomk::BottomKAds;
use crate::entry::AdsEntry;

const PLACEHOLDER: AdsEntry = AdsEntry {
    node: 0,
    dist: 0.0,
    rank: 0.0,
};

/// Sketches-under-construction for every node, arena-backed.
#[derive(Debug, Clone)]
pub(crate) struct PartialAdsArena {
    k: usize,
    /// Prefix row width: `min(k, n)` (a sketch never holds more distinct
    /// sources than nodes, so wider rows would be dead weight for k ≥ n).
    width: usize,
    /// `n × width` row-major buffer; row `v` holds `len[v]` entries in
    /// canonical `(dist, node)` order — the k canonically-smallest entries
    /// of `v`'s sketch so far.
    prefix: Vec<AdsEntry>,
    /// Per-node prefix lengths.
    len: Vec<u32>,
    /// Entries displaced from some prefix, in arrival order (parallel
    /// owner ids in `overflow_owner`). Unordered; grouped at finish.
    overflow: Vec<AdsEntry>,
    overflow_owner: Vec<NodeId>,
    /// Admission thresholds: `kth_dist[v]` = distance of the k-th
    /// canonically-smallest entry of `v`'s sketch, `+∞` while under-full.
    /// Monotone non-increasing over the build (see module docs).
    kth_dist: Vec<f64>,
}

impl PartialAdsArena {
    /// An arena for `n` nodes with sketch parameter `k`, all sketches
    /// empty.
    pub fn new(n: usize, k: usize) -> Self {
        let width = k.min(n);
        Self {
            k,
            width,
            prefix: vec![PLACEHOLDER; n * width],
            len: vec![0; n],
            overflow: Vec::new(),
            overflow_owner: Vec::new(),
            kth_dist: vec![f64::INFINITY; n],
        }
    }

    /// `v`'s current k-prefix, canonically sorted.
    #[inline]
    fn row(&self, v: NodeId) -> &[AdsEntry] {
        let off = v as usize * self.width;
        &self.prefix[off..off + self.len[v as usize] as usize]
    }

    /// Read-only rank-monotone admission probe: would
    /// [`Self::insert_rank_monotone`] accept `(node, dist)` into `v`'s
    /// sketch right now? O(1): one compare against the flat threshold
    /// array; the prefix row is read only to break an exact distance tie
    /// by node id. Safe to call concurrently on a shared `&self` — this is
    /// both the frozen-state prune test of the wave scheduler *and* the
    /// relax-time frontier filter of the sequential builder (threshold
    /// monotonicity makes a stale reject permanent; see module docs).
    ///
    /// (For a duplicate `(dist, node)` key this reports `true` where the
    /// insert would be a no-op; distinct sources can never produce one.)
    #[inline]
    pub fn would_insert(&self, v: NodeId, node: NodeId, dist: f64) -> bool {
        let t = self.kth_dist[v as usize];
        if dist < t {
            return true;
        }
        if dist > t {
            return false;
        }
        // dist == t: the threshold is finite, so the prefix holds exactly
        // k entries; the id tie-break against the k-th smallest key
        // decides. (Search distances are finite, so dist == t == +∞ cannot
        // happen.)
        self.prefix[v as usize * self.width + self.k - 1].node > node
    }

    /// Relax-time admission probe for the *tieless* (Appendix A) regime:
    /// a candidate at distance `dist` is admissible iff fewer than k
    /// entries sit at distance ≤ `dist`, i.e. iff `dist` lies strictly
    /// below the k-th smallest distance. Exact (no tie slack: the tieless
    /// rule has no id tie-break), O(1), and stale-safe like
    /// [`Self::would_insert`].
    #[inline]
    pub fn tieless_admits(&self, v: NodeId, dist: f64) -> bool {
        dist < self.kth_dist[v as usize]
    }

    /// PrunedDijkstra insert (see `PartialAds::insert_rank_monotone`):
    /// sources arrive in increasing rank, so the inclusion test reduces to
    /// "fewer than k entries are closer". Returns `true` if inserted.
    pub fn insert_rank_monotone(&mut self, v: NodeId, node: NodeId, dist: f64, rank: f64) -> bool {
        if !self.would_insert(v, node, dist) {
            return false;
        }
        let pos = match self.row(v).binary_search_by(|e| e.cmp_key(dist, node)) {
            Ok(_) => return false, // duplicate key (cannot happen across distinct sources)
            Err(p) => p,
        };
        debug_assert!(
            self.row(v).iter().all(|e| (e.rank, e.node) < (rank, node)),
            "sources must be processed in increasing rank"
        );
        self.insert_at(v, pos, AdsEntry::new(node, dist, rank));
        true
    }

    /// Tieless (Appendix A) rank-monotone insert: blocked by entries at
    /// distance ≤ `dist`, so at most k nodes per distinct distance
    /// survive. (Entries in overflow always sit at distances beyond the
    /// prefix horizon, so the prefix alone decides here too.)
    pub fn insert_rank_monotone_tieless(
        &mut self,
        v: NodeId,
        node: NodeId,
        dist: f64,
        rank: f64,
    ) -> bool {
        if !self.tieless_admits(v, dist) {
            return false;
        }
        debug_assert!(
            self.row(v).partition_point(|e| e.dist <= dist) < self.k,
            "threshold probe must agree with the positional tieless test"
        );
        let pos = match self.row(v).binary_search_by(|e| e.cmp_key(dist, node)) {
            Ok(_) => return false,
            Err(p) => p,
        };
        debug_assert!(pos < self.k, "tieless admits only into the k-prefix");
        self.insert_at(v, pos, AdsEntry::new(node, dist, rank));
        true
    }

    /// Inserts into `v`'s prefix row at `pos`, spilling the displaced
    /// prefix maximum (if the row is full) into the overflow log.
    fn insert_at(&mut self, v: NodeId, pos: usize, e: AdsEntry) {
        let off = v as usize * self.width;
        let l = self.len[v as usize] as usize;
        // A full row below k (width = n < k) cannot receive another entry:
        // that would require more distinct sources than the graph has
        // nodes. The admission tests guarantee pos < l whenever l == width.
        debug_assert!(
            pos < l || l < self.width,
            "more distinct sources than nodes"
        );
        if l == self.width {
            self.overflow.push(self.prefix[off + l - 1]);
            self.overflow_owner.push(v);
            self.prefix
                .copy_within(off + pos..off + l - 1, off + pos + 1);
        } else {
            self.prefix.copy_within(off + pos..off + l, off + pos + 1);
            self.len[v as usize] += 1;
        }
        self.prefix[off + pos] = e;
        // Threshold maintenance: once the prefix reaches k entries, the
        // k-th smallest distance is the row maximum. It only ever
        // decreases from here (inserts land before it and push it left),
        // which is the monotonicity the relax-time filter relies on.
        if self.len[v as usize] as usize == self.k {
            self.kth_dist[v as usize] = self.prefix[off + self.k - 1].dist;
        }
        debug_assert!(
            self.threshold_consistent(v),
            "kth_dist[{v}] diverged from the prefix row"
        );
    }

    /// Consistency of `kth_dist[v]` with the prefix row — the invariant
    /// `debug_assert!`-checked on every insert.
    fn threshold_consistent(&self, v: NodeId) -> bool {
        let l = self.len[v as usize] as usize;
        let expect = if l == self.k {
            self.prefix[v as usize * self.width + self.k - 1].dist
        } else {
            f64::INFINITY
        };
        self.kth_dist[v as usize].to_bits() == expect.to_bits()
    }

    /// Current admission threshold of `v` (test diagnostics).
    #[cfg(test)]
    pub fn threshold(&self, v: NodeId) -> f64 {
        self.kth_dist[v as usize]
    }

    /// Number of nodes covered.
    #[cfg(test)]
    pub fn num_nodes(&self) -> usize {
        self.len.len()
    }

    /// `v`'s full sketch so far, canonically sorted (test diagnostics —
    /// production reads happen via the bulk finishers below).
    #[cfg(test)]
    pub fn sorted_entries_of(&self, v: NodeId) -> Vec<AdsEntry> {
        let mut out: Vec<AdsEntry> = self.row(v).to_vec();
        out.extend(
            self.overflow_owner
                .iter()
                .zip(&self.overflow)
                .filter(|(&o, _)| o == v)
                .map(|(_, e)| *e),
        );
        out.sort_unstable_by(AdsEntry::cmp_canonical);
        out
    }

    /// Regroups prefix rows and overflow into one canonically sorted entry
    /// vector per node.
    pub fn into_per_node(self) -> Vec<Vec<AdsEntry>> {
        let mut out: Vec<Vec<AdsEntry>> = (0..self.len.len())
            .map(|v| self.row(v as NodeId).to_vec())
            .collect();
        for (v, e) in self.overflow_owner.iter().zip(&self.overflow) {
            out[*v as usize].push(*e);
        }
        for es in &mut out {
            es.sort_unstable_by(AdsEntry::cmp_canonical);
        }
        out
    }

    /// Finishes construction into a validated sketch set.
    pub fn into_ads_set(self) -> AdsSet {
        let k = self.k;
        let sketches = self
            .into_per_node()
            .into_iter()
            .map(|es| BottomKAds::from_entries(k, es))
            .collect();
        AdsSet::from_sketches(k, sketches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PartialAds;
    use adsketch_util::rng::{Rng64, SplitMix64};

    #[test]
    fn matches_partial_ads_under_random_workload() {
        // The arena must be behavior-identical to the Vec<PartialAds> it
        // replaces: drive both with the same rank-monotone insert stream
        // (k small enough that prefix spills are frequent).
        for seed in 0..5u64 {
            let mut rng = SplitMix64::new(seed);
            let n = 12usize;
            let k = 3usize;
            let mut arena = PartialAdsArena::new(n, k);
            let mut partials: Vec<PartialAds> = vec![PartialAds::default(); n];
            // Sources in increasing rank (rank-monotone contract).
            for (src, milli) in (0..60u32).zip(1..) {
                let rank = milli as f64 / 100.0;
                for v in 0..n as NodeId {
                    if rng.bernoulli(0.6) {
                        let dist = rng.range_usize(6) as f64;
                        let a = arena.would_insert(v, src + 100, dist);
                        let b = arena.insert_rank_monotone(v, src + 100, dist, rank);
                        assert_eq!(a, b, "would_insert must predict insert");
                        let c = partials[v as usize].insert_rank_monotone(k, src + 100, dist, rank);
                        assert_eq!(b, c, "seed {seed}, src {src}, node {v}");
                    }
                }
            }
            for v in 0..n as NodeId {
                assert_eq!(
                    arena.sorted_entries_of(v),
                    partials[v as usize].entries,
                    "node {v}"
                );
            }
        }
    }

    #[test]
    fn tieless_matches_partial_ads() {
        // Sources are node ids of the same 10-node graph (the arena sizes
        // its prefix rows as min(k, n)).
        let mut arena = PartialAdsArena::new(10, 2);
        let mut p = PartialAds::default();
        let cases = [
            (1u32, 2.0, 0.1),
            (0, 2.0, 0.2),
            (5, 1.0, 0.3),
            (9, 2.0, 0.4),
        ];
        for (node, dist, rank) in cases {
            let a = arena.insert_rank_monotone_tieless(0, node, dist, rank);
            let b = p.insert_rank_monotone_tieless(2, node, dist, rank);
            assert_eq!(a, b);
        }
        assert_eq!(arena.sorted_entries_of(0), p.entries);
    }

    #[test]
    fn prefix_spill_keeps_all_inserted_entries() {
        // Ever-closer arrivals repeatedly displace the prefix maximum;
        // nothing inserted may be lost and the final order is canonical.
        let n = 3usize;
        let k = 2usize;
        let mut arena = PartialAdsArena::new(n, k);
        let mut expect: Vec<Vec<AdsEntry>> = vec![Vec::new(); n];
        for step in 0..20u32 {
            for v in 0..n as NodeId {
                let node = 100 + step * 3 + v;
                let dist = (40 - step as i64) as f64 + 0.1 * v as f64;
                let rank = 0.01 * (step * 3 + v) as f64;
                // Decreasing distances: every insert is admitted and
                // spills once the prefix is full.
                assert!(arena.insert_rank_monotone(v, node, dist, rank));
                expect[v as usize].push(AdsEntry::new(node, dist, rank));
            }
        }
        let per_node = arena.into_per_node();
        for v in 0..n {
            let mut e = expect[v].clone();
            e.sort_unstable_by(AdsEntry::cmp_canonical);
            assert_eq!(per_node[v], e, "node {v}");
        }
    }

    #[test]
    fn k_larger_than_n_never_rejects_distinct_sources() {
        // width = min(k, n): the narrow prefix must still admit up to n
        // distinct sources per node when k ≥ n.
        let n = 4usize;
        let mut arena = PartialAdsArena::new(n, 64);
        for src in 0..n as u32 {
            assert!(arena.insert_rank_monotone(0, src, (n as u32 - src) as f64, 0.1 * src as f64));
        }
        assert_eq!(arena.sorted_entries_of(0).len(), n);
    }

    #[test]
    fn threshold_tracks_kth_distance_and_only_tightens() {
        let k = 3;
        let mut arena = PartialAdsArena::new(8, k);
        assert!(arena.threshold(0).is_infinite(), "under-full ⇒ +∞");
        // Fill node 0's prefix: threshold snaps to the k-th distance.
        assert!(arena.insert_rank_monotone(0, 10, 5.0, 0.1));
        assert!(arena.insert_rank_monotone(0, 11, 3.0, 0.2));
        assert!(arena.threshold(0).is_infinite(), "still under-full");
        assert!(arena.insert_rank_monotone(0, 12, 7.0, 0.3));
        assert_eq!(arena.threshold(0), 7.0);
        // A closer insert displaces the maximum: threshold tightens.
        assert!(arena.insert_rank_monotone(0, 13, 1.0, 0.4));
        assert_eq!(arena.threshold(0), 5.0);
        // Rejected candidates leave it untouched.
        assert!(!arena.insert_rank_monotone(0, 14, 9.0, 0.5));
        assert_eq!(arena.threshold(0), 5.0);
        // Exact-tie admission is decided by node id against the k-th
        // entry (node 10 at distance 5): id 9 < 10 admits, id 15 > 10
        // does not.
        assert!(arena.would_insert(0, 9, 5.0));
        assert!(!arena.would_insert(0, 15, 5.0));
    }

    #[test]
    fn tieless_probe_predicts_tieless_insert() {
        // Drive random tieless workloads and check the O(1) probe always
        // agrees with the insert outcome.
        for seed in 0..4u64 {
            let mut rng = SplitMix64::new(seed + 50);
            let n = 10usize;
            let k = 3usize;
            let mut arena = PartialAdsArena::new(n, k);
            for (src, milli) in (0..50u32).zip(1..) {
                let rank = milli as f64 / 100.0;
                for v in 0..n as NodeId {
                    if rng.bernoulli(0.5) {
                        let dist = rng.range_usize(4) as f64;
                        let probe = arena.tieless_admits(v, dist);
                        let inserted = arena.insert_rank_monotone_tieless(v, src + 100, dist, rank);
                        assert_eq!(probe, inserted, "seed {seed}, src {src}, node {v}");
                    }
                }
            }
        }
    }

    #[test]
    fn empty_arena() {
        let arena = PartialAdsArena::new(3, 2);
        assert_eq!(arena.num_nodes(), 3);
        assert!(arena.sorted_entries_of(1).is_empty());
        let set = arena.into_ads_set();
        assert_eq!(set.num_nodes(), 3);
    }
}
