//! Parallel ADS construction with `std::thread::scope`.
//!
//! Three construction strategies parallelize naturally (paper, Appendix
//! B.4 discusses deeper pipelining of PrunedDijkstra itself; these simpler
//! decompositions already give near-linear speedups and keep outputs
//! *bitwise identical* to the sequential builders):
//!
//! * per-node: each node's ADS depends only on its own canonical order, so
//!   the brute-force builder shards nodes across threads
//!   ([`build_bottomk_per_node`]);
//! * per-permutation: a k-mins ADS set is k independent bottom-1 builds
//!   ([`build_kmins`]);
//! * per-bucket: a k-partition ADS set is k independent bucket-restricted
//!   bottom-1 builds ([`build_kpartition`]).

use adsketch_graph::dijkstra::dijkstra_order_canonical;
use adsketch_graph::{Graph, NodeId};
use adsketch_util::RankHasher;

use crate::ads_set::AdsSet;
use crate::bottomk::BottomKAds;
use crate::builder::pruned_dijkstra::run_core;
use crate::error::CoreError;
use crate::kmins::{KMinsAds, KMinsRecord};
use crate::kpartition::{KPartRecord, KPartitionAds};
use crate::reference::bottomk_from_order;

fn thread_count(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Per-node parallel bottom-k construction (`threads = 0` ⇒ all cores).
/// Output equals [`crate::reference::build_bottomk`] exactly.
pub fn build_bottomk_per_node(g: &Graph, k: usize, ranks: &[f64], threads: usize) -> AdsSet {
    assert_eq!(ranks.len(), g.num_nodes());
    let n = g.num_nodes();
    let t = thread_count(threads).min(n.max(1));
    let mut sketches: Vec<Option<BottomKAds>> = vec![None; n];
    if n > 0 {
        let chunk = n.div_ceil(t);
        std::thread::scope(|scope| {
            for (i, slot) in sketches.chunks_mut(chunk).enumerate() {
                let start = i * chunk;
                scope.spawn(move || {
                    for (j, out) in slot.iter_mut().enumerate() {
                        let v = (start + j) as NodeId;
                        let order = dijkstra_order_canonical(g, v);
                        *out = Some(bottomk_from_order(k, &order, ranks));
                    }
                });
            }
        });
    }
    AdsSet::from_sketches(
        k,
        sketches.into_iter().map(|s| s.expect("filled")).collect(),
    )
}

/// Per-permutation parallel k-mins construction; output equals
/// [`crate::builder::kmins::build`] exactly.
pub fn build_kmins(
    g: &Graph,
    k: usize,
    hasher: &RankHasher,
    threads: usize,
) -> Result<Vec<KMinsAds>, CoreError> {
    assert!(k >= 1);
    let n = g.num_nodes();
    let t = thread_count(threads).min(k);
    let mut per_perm: Vec<Option<Result<Vec<Vec<KMinsRecord>>, CoreError>>> = vec![None; k];
    std::thread::scope(|scope| {
        for (chunk_idx, slot) in per_perm.chunks_mut(k.div_ceil(t)).enumerate() {
            let start = chunk_idx * k.div_ceil(t);
            scope.spawn(move || {
                for (j, out) in slot.iter_mut().enumerate() {
                    let h = (start + j) as u32;
                    let ranks: Vec<f64> = (0..n as u64).map(|v| hasher.perm_rank(v, h)).collect();
                    *out = Some(run_core(g, 1, &ranks, None, false).map(|(partials, _)| {
                        partials
                            .into_iter()
                            .map(|p| {
                                p.entries
                                    .into_iter()
                                    .map(|e| KMinsRecord {
                                        node: e.node,
                                        dist: e.dist,
                                        rank: e.rank,
                                        perm: h,
                                    })
                                    .collect()
                            })
                            .collect()
                    }));
                }
            });
        }
    });
    let mut records: Vec<Vec<KMinsRecord>> = vec![Vec::new(); n];
    for slot in per_perm {
        let per_node = slot.expect("filled")?;
        for (v, rs) in per_node.into_iter().enumerate() {
            records[v].extend(rs);
        }
    }
    Ok(records
        .into_iter()
        .map(|mut rs| {
            rs.sort_unstable_by(|a, b| {
                a.dist
                    .total_cmp(&b.dist)
                    .then(a.node.cmp(&b.node))
                    .then(a.perm.cmp(&b.perm))
            });
            KMinsAds::from_records(k, rs)
        })
        .collect())
}

/// Per-bucket parallel k-partition construction; output equals
/// [`crate::builder::kpartition::build`] exactly.
pub fn build_kpartition(
    g: &Graph,
    k: usize,
    hasher: &RankHasher,
    threads: usize,
) -> Result<Vec<KPartitionAds>, CoreError> {
    assert!(k >= 1);
    let n = g.num_nodes();
    let ranks: Vec<f64> = (0..n as u64).map(|v| hasher.rank(v)).collect();
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for v in 0..n as NodeId {
        buckets[hasher.bucket(v as u64, k)].push(v);
    }
    let t = thread_count(threads).min(k);
    let ranks_ref = &ranks;
    let buckets_ref = &buckets;
    let mut per_bucket: Vec<Option<Result<Vec<Vec<KPartRecord>>, CoreError>>> = vec![None; k];
    std::thread::scope(|scope| {
        for (chunk_idx, slot) in per_bucket.chunks_mut(k.div_ceil(t)).enumerate() {
            let start = chunk_idx * k.div_ceil(t);
            scope.spawn(move || {
                for (j, out) in slot.iter_mut().enumerate() {
                    let b = start + j;
                    if buckets_ref[b].is_empty() {
                        *out = Some(Ok(vec![Vec::new(); n]));
                        continue;
                    }
                    *out = Some(run_core(g, 1, ranks_ref, Some(&buckets_ref[b]), false).map(
                        |(partials, _)| {
                            partials
                                .into_iter()
                                .map(|p| {
                                    p.entries
                                        .into_iter()
                                        .map(|e| KPartRecord {
                                            node: e.node,
                                            dist: e.dist,
                                            rank: e.rank,
                                            bucket: b as u32,
                                        })
                                        .collect()
                                })
                                .collect()
                        },
                    ));
                }
            });
        }
    });
    let mut records: Vec<Vec<KPartRecord>> = vec![Vec::new(); n];
    for slot in per_bucket {
        let per_node = slot.expect("filled")?;
        for (v, rs) in per_node.into_iter().enumerate() {
            records[v].extend(rs);
        }
    }
    Ok(records
        .into_iter()
        .map(|mut rs| {
            rs.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist).then(a.node.cmp(&b.node)));
            KPartitionAds::from_records(k, rs)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform_ranks;
    use adsketch_graph::generators;

    #[test]
    fn per_node_matches_sequential() {
        let g = generators::gnp_directed(80, 0.05, 3);
        let ranks = uniform_ranks(80, 4);
        for threads in [1usize, 2, 0] {
            let par = build_bottomk_per_node(&g, 3, &ranks, threads);
            let seq = crate::reference::build_bottomk(&g, 3, &ranks);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn kmins_parallel_matches_sequential() {
        let g = generators::gnp_directed(60, 0.06, 5);
        let h = RankHasher::new(6);
        let par = build_kmins(&g, 5, &h, 3).unwrap();
        let seq = crate::builder::kmins::build(&g, 5, &h).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn kpartition_parallel_matches_sequential() {
        let g = generators::gnp_directed(60, 0.06, 7);
        let h = RankHasher::new(8);
        let par = build_kpartition(&g, 6, &h, 4).unwrap();
        let seq = crate::builder::kpartition::build(&g, 6, &h).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_graph_parallel() {
        let g = adsketch_graph::Graph::directed(0, &[]).unwrap();
        let set = build_bottomk_per_node(&g, 2, &[], 4);
        assert_eq!(set.num_nodes(), 0);
    }
}
