//! Parallel ADS construction with `std::thread::scope`.
//!
//! The flagship wave-parallel PrunedDijkstra lives in
//! [`crate::builder::pruned_dijkstra::build_parallel`]; this module holds
//! the three simpler decompositions, all rebased on the same shared
//! infrastructure (the `shard_slots` chunking helper and the per-thread
//! `SearchScratch` reuse) and all *bitwise identical* to
//! their sequential counterparts:
//!
//! * per-node: each node's ADS depends only on its own canonical order, so
//!   the brute-force builder shards nodes across threads
//!   ([`build_bottomk_per_node`]);
//! * per-permutation: a k-mins ADS set is k independent bottom-1 builds
//!   ([`build_kmins`]);
//! * per-bucket: a k-partition ADS set is k independent bucket-restricted
//!   bottom-1 builds ([`build_kpartition`]).

use adsketch_graph::{Graph, NodeId, Visit};
use adsketch_util::RankHasher;

use crate::ads_set::AdsSet;
use crate::bottomk::BottomKAds;
use crate::builder::pruned_dijkstra::run_core;
use crate::builder::shard_slots;
use crate::builder::waves::SearchScratch;
use crate::entry::AdsEntry;
use crate::error::CoreError;
use crate::kmins::{KMinsAds, KMinsRecord};
use crate::kpartition::{KPartRecord, KPartitionAds};
use crate::reference::bottomk_from_order;

/// Collects the canonical `(dist, id)`-ordered reachable set of `src` into
/// `out`, reusing the thread's search scratch. The BFS fast path already
/// visits in canonical order; Dijkstra needs the tie-order restored.
fn canonical_order_into(
    g: &Graph,
    src: NodeId,
    scratch: &mut SearchScratch,
    out: &mut Vec<(NodeId, f64)>,
) {
    out.clear();
    let needs_sort = matches!(scratch, SearchScratch::Dijkstra(_));
    scratch.visit(g, src, |v, d| {
        out.push((v, d));
        Visit::Continue
    });
    if needs_sort {
        out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    }
}

/// Per-node parallel bottom-k construction (`threads = 0` ⇒ all cores).
/// Output equals [`crate::reference::build_bottomk`] exactly.
pub fn build_bottomk_per_node(g: &Graph, k: usize, ranks: &[f64], threads: usize) -> AdsSet {
    assert_eq!(ranks.len(), g.num_nodes());
    let mut sketches: Vec<Option<BottomKAds>> = vec![None; g.num_nodes()];
    shard_slots(
        &mut sketches,
        threads,
        || (SearchScratch::for_graph(g), Vec::new()),
        |(scratch, order), v, out| {
            canonical_order_into(g, v as NodeId, scratch, order);
            *out = Some(bottomk_from_order(k, order, ranks));
        },
    );
    AdsSet::from_sketches(
        k,
        sketches.into_iter().map(|s| s.expect("filled")).collect(),
    )
}

/// Per-permutation parallel k-mins construction; output equals
/// [`crate::builder::kmins::build`] exactly.
pub fn build_kmins(
    g: &Graph,
    k: usize,
    hasher: &RankHasher,
    threads: usize,
) -> Result<Vec<KMinsAds>, CoreError> {
    assert!(k >= 1);
    let n = g.num_nodes();
    let mut per_perm: Vec<Option<Result<Vec<Vec<AdsEntry>>, CoreError>>> = vec![None; k];
    shard_slots(
        &mut per_perm,
        threads,
        // One rank buffer per thread, refilled per permutation — not one
        // fresh Vec<f64> of length n per permutation.
        || vec![0.0f64; n],
        |ranks_buf, j, out| {
            let h = j as u32;
            for (v, r) in ranks_buf.iter_mut().enumerate() {
                *r = hasher.perm_rank(v as u64, h);
            }
            *out = Some(
                run_core(g, 1, ranks_buf, None, false, true)
                    .map(|(arena, _)| arena.into_per_node()),
            );
        },
    );
    let mut records: Vec<Vec<KMinsRecord>> = vec![Vec::new(); n];
    for (h, slot) in per_perm.into_iter().enumerate() {
        let per_node = slot.expect("filled")?;
        for (v, entries) in per_node.into_iter().enumerate() {
            records[v].extend(entries.into_iter().map(|e| KMinsRecord {
                node: e.node,
                dist: e.dist,
                rank: e.rank,
                perm: h as u32,
            }));
        }
    }
    Ok(records
        .into_iter()
        .map(|mut rs| {
            rs.sort_unstable_by(|a, b| {
                a.dist
                    .total_cmp(&b.dist)
                    .then(a.node.cmp(&b.node))
                    .then(a.perm.cmp(&b.perm))
            });
            KMinsAds::from_records(k, rs)
        })
        .collect())
}

/// Per-bucket parallel k-partition construction; output equals
/// [`crate::builder::kpartition::build`] exactly.
pub fn build_kpartition(
    g: &Graph,
    k: usize,
    hasher: &RankHasher,
    threads: usize,
) -> Result<Vec<KPartitionAds>, CoreError> {
    assert!(k >= 1);
    let n = g.num_nodes();
    let ranks: Vec<f64> = (0..n as u64).map(|v| hasher.rank(v)).collect();
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for v in 0..n as NodeId {
        buckets[hasher.bucket(v as u64, k)].push(v);
    }
    let ranks_ref = &ranks;
    let buckets_ref = &buckets;
    let mut per_bucket: Vec<Option<Result<Vec<Vec<AdsEntry>>, CoreError>>> = vec![None; k];
    shard_slots(
        &mut per_bucket,
        threads,
        || (),
        |(), b, out| {
            if buckets_ref[b].is_empty() {
                *out = Some(Ok(vec![Vec::new(); n]));
                return;
            }
            *out = Some(
                run_core(g, 1, ranks_ref, Some(&buckets_ref[b]), false, true)
                    .map(|(arena, _)| arena.into_per_node()),
            );
        },
    );
    let mut records: Vec<Vec<KPartRecord>> = vec![Vec::new(); n];
    for (b, slot) in per_bucket.into_iter().enumerate() {
        let per_node = slot.expect("filled")?;
        for (v, entries) in per_node.into_iter().enumerate() {
            records[v].extend(entries.into_iter().map(|e| KPartRecord {
                node: e.node,
                dist: e.dist,
                rank: e.rank,
                bucket: b as u32,
            }));
        }
    }
    Ok(records
        .into_iter()
        .map(|mut rs| {
            rs.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist).then(a.node.cmp(&b.node)));
            KPartitionAds::from_records(k, rs)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform_ranks;
    use adsketch_graph::generators;

    #[test]
    fn per_node_matches_sequential() {
        let g = generators::gnp_directed(80, 0.05, 3);
        let ranks = uniform_ranks(80, 4);
        for threads in [1usize, 2, 0] {
            let par = build_bottomk_per_node(&g, 3, &ranks, threads);
            let seq = crate::reference::build_bottomk(&g, 3, &ranks);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn per_node_matches_sequential_weighted() {
        // Exercises the Dijkstra branch of the shared scratch (ties must be
        // re-sorted into canonical order before sketch extraction).
        let g = generators::random_weighted_digraph(60, 4, 0.5, 2.5, 31);
        let ranks = uniform_ranks(60, 32);
        let par = build_bottomk_per_node(&g, 3, &ranks, 3);
        let seq = crate::reference::build_bottomk(&g, 3, &ranks);
        assert_eq!(par, seq);
    }

    #[test]
    fn kmins_parallel_matches_sequential() {
        let g = generators::gnp_directed(60, 0.06, 5);
        let h = RankHasher::new(6);
        let par = build_kmins(&g, 5, &h, 3).unwrap();
        let seq = crate::builder::kmins::build(&g, 5, &h).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn kpartition_parallel_matches_sequential() {
        let g = generators::gnp_directed(60, 0.06, 7);
        let h = RankHasher::new(8);
        let par = build_kpartition(&g, 6, &h, 4).unwrap();
        let seq = crate::builder::kpartition::build(&g, 6, &h).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_graph_parallel() {
        let g = adsketch_graph::Graph::directed(0, &[]).unwrap();
        let set = build_bottomk_per_node(&g, 2, &[], 4);
        assert_eq!(set.num_nodes(), 0);
    }
}
