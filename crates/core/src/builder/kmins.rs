//! Scalable k-mins ADS construction: k independent bottom-1
//! PrunedDijkstra passes, one per permutation (paper, Section 3:
//! "a k-mins ADS set can be computed by performing k separate computations
//! of bottom-1 ADS sets").

use adsketch_graph::Graph;
use adsketch_util::RankHasher;

use crate::builder::pruned_dijkstra::run_core;
use crate::builder::BuildStats;
use crate::error::CoreError;
use crate::kmins::{KMinsAds, KMinsRecord};

/// Builds the forward k-mins ADS of every node.
pub fn build(g: &Graph, k: usize, hasher: &RankHasher) -> Result<Vec<KMinsAds>, CoreError> {
    build_with_stats(g, k, hasher).map(|(s, _)| s)
}

/// Like [`build`] with aggregate work counters over the k passes.
pub fn build_with_stats(
    g: &Graph,
    k: usize,
    hasher: &RankHasher,
) -> Result<(Vec<KMinsAds>, BuildStats), CoreError> {
    assert!(k >= 1);
    let n = g.num_nodes();
    let mut records: Vec<Vec<KMinsRecord>> = vec![Vec::new(); n];
    let mut stats = BuildStats::default();
    for h in 0..k as u32 {
        let ranks: Vec<f64> = (0..n as u64).map(|v| hasher.perm_rank(v, h)).collect();
        let (arena, s) = run_core(g, 1, &ranks, None, false, true)?;
        stats.relaxations += s.relaxations;
        stats.insertions += s.insertions;
        stats.heap_pushes += s.heap_pushes;
        stats.pruned_at_relax += s.pruned_at_relax;
        for (v, entries) in arena.into_per_node().into_iter().enumerate() {
            records[v].extend(entries.into_iter().map(|e| KMinsRecord {
                node: e.node,
                dist: e.dist,
                rank: e.rank,
                perm: h,
            }));
        }
    }
    let sets = records
        .into_iter()
        .map(|mut rs| {
            rs.sort_unstable_by(|a, b| {
                a.dist
                    .total_cmp(&b.dist)
                    .then(a.node.cmp(&b.node))
                    .then(a.perm.cmp(&b.perm))
            });
            KMinsAds::from_records(k, rs)
        })
        .collect();
    Ok((sets, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_graph::generators;

    #[test]
    fn matches_brute_force() {
        for seed in 0..4u64 {
            let g = generators::gnp_directed(50, 0.07, seed);
            let hasher = RankHasher::new(seed + 800);
            let fast = build(&g, 3, &hasher).unwrap();
            let slow = crate::reference::build_kmins(&g, 3, &hasher);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn weighted_graphs_supported() {
        let g = generators::random_weighted_digraph(40, 3, 0.25, 2.25, 5);
        let hasher = RankHasher::new(900);
        let fast = build(&g, 2, &hasher).unwrap();
        let slow = crate::reference::build_kmins(&g, 2, &hasher);
        assert_eq!(fast, slow);
    }

    #[test]
    fn hip_estimates_track_truth_on_graph() {
        use adsketch_util::stats::ErrorStats;
        let g = generators::barabasi_albert(200, 3, 7);
        let truth = adsketch_graph::bfs::reachable_count(&g, 0) as f64;
        let mut err = ErrorStats::new(truth);
        for seed in 0..60 {
            let hasher = RankHasher::new(seed);
            let sets = build(&g, 8, &hasher).unwrap();
            err.push(sets[0].hip_weights().reachable_estimate());
        }
        assert!(
            err.relative_bias().abs() < 0.15,
            "bias {}",
            err.relative_bias()
        );
    }
}
