//! The k-partition all-distances sketch (paper, Section 2; implicit in
//! HyperANF): one bottom-1 ADS per random bucket.

use adsketch_graph::NodeId;
use adsketch_minhash::KPartitionSketch;

use crate::hip::{HipItem, HipWeights};

/// One k-partition ADS record: node `node` (in bucket `bucket`) is the
/// running minimum of its bucket at distance `dist`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KPartRecord {
    /// The sampled node.
    pub node: NodeId,
    /// Its distance from the source.
    pub dist: f64,
    /// Its rank.
    pub rank: f64,
    /// The bucket the node hashes into.
    pub bucket: u32,
}

/// A k-partition ADS: bucket-wise prefix minima merged in canonical
/// `(dist, node)` order (each node appears at most once — it lives in
/// exactly one bucket).
#[derive(Debug, Clone, PartialEq)]
pub struct KPartitionAds {
    k: usize,
    records: Vec<KPartRecord>,
}

impl KPartitionAds {
    /// Wraps records sorted canonically by `(dist, node)`.
    pub fn from_records(k: usize, records: Vec<KPartRecord>) -> Self {
        assert!(k >= 1);
        debug_assert!(records
            .windows(2)
            .all(|w| (w[0].dist, w[0].node) < (w[1].dist, w[1].node)));
        Self { k, records }
    }

    /// The number of buckets k.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// All records in canonical order.
    #[inline]
    pub fn records(&self) -> &[KPartRecord] {
        &self.records
    }

    /// Number of records (expected ≈ `k·ln(n/k)`, Lemma 2.2).
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the sketch is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Extracts the k-partition MinHash sketch of `N_d(v)`.
    pub fn minhash_at(&self, d: f64) -> KPartitionSketch {
        let mut mins = vec![1.0f64; self.k];
        for r in self.records.iter().take_while(|r| r.dist <= d) {
            let m = &mut mins[r.bucket as usize];
            if r.rank < *m {
                *m = r.rank;
            }
        }
        KPartitionSketch::from_mins(mins)
    }

    /// The basic neighborhood-cardinality estimate at distance `d`
    /// (Section 4.3 estimator; biased low for `n ≲ 2k`).
    pub fn basic_cardinality_at(&self, d: f64) -> f64 {
        self.minhash_at(d).estimate()
    }

    /// HIP adjusted weights for the k-partition ADS (paper, equation (8)):
    /// with per-bucket running minima `m_h` over closer nodes, a sampled
    /// node's HIP probability is `τ = (1/k) Σ_h m_h` — a fresh element
    /// lands in bucket `h` with probability `1/k` and updates it with
    /// probability `m_h` (empty buckets count 1).
    pub fn hip_weights(&self) -> HipWeights {
        let mut minima = vec![1.0f64; self.k];
        let mut sum: f64 = self.k as f64; // Σ m_h, kept incrementally
        let items = self
            .records
            .iter()
            .map(|r| {
                let tau = sum / self.k as f64;
                let item = HipItem {
                    node: r.node,
                    dist: r.dist,
                    weight: 1.0 / tau,
                };
                let m = &mut minima[r.bucket as usize];
                debug_assert!(r.rank < *m, "record must improve its bucket minimum");
                sum -= *m - r.rank;
                *m = r.rank;
                item
            })
            .collect();
        HipWeights::from_sorted_items(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_util::stats::ErrorStats;
    use adsketch_util::RankHasher;

    fn order(n: usize) -> Vec<(NodeId, f64)> {
        (0..n).map(|i| (i as NodeId, i as f64)).collect()
    }

    #[test]
    fn first_node_weight_is_one() {
        let h = RankHasher::new(1);
        let ads = crate::reference::kpartition_from_order(8, &order(100), &h);
        let hip = ads.hip_weights();
        assert_eq!(hip.items()[0].weight, 1.0);
    }

    #[test]
    fn weights_at_least_one_and_nondecreasing_tau() {
        let h = RankHasher::new(2);
        let ads = crate::reference::kpartition_from_order(4, &order(300), &h);
        let hip = ads.hip_weights();
        for it in hip.items() {
            assert!(it.weight >= 1.0);
        }
        // τ shrinks as minima shrink ⇒ weights non-decreasing with distance.
        for w in hip.items().windows(2) {
            assert!(w[1].weight >= w[0].weight - 1e-12);
        }
    }

    #[test]
    fn minhash_at_matches_direct_sketch() {
        let h = RankHasher::new(3);
        let ads = crate::reference::kpartition_from_order(8, &order(150), &h);
        let mut direct = KPartitionSketch::new(8);
        for e in 0..80u64 {
            direct.insert(&h, e);
        }
        assert_eq!(ads.minhash_at(79.0), direct);
    }

    #[test]
    fn hip_cardinality_unbiased() {
        let n = 400usize;
        let k = 8;
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..3000u64 {
            let h = RankHasher::new(seed + 31_000);
            let ads = crate::reference::kpartition_from_order(k, &order(n), &h);
            err.push(ads.hip_weights().reachable_estimate());
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "k-partition HIP bias z-score {z}");
    }

    #[test]
    fn hip_beats_basic_variance() {
        let n = 600usize;
        let k = 8;
        let mut hip_err = ErrorStats::new(n as f64);
        let mut basic_err = ErrorStats::new(n as f64);
        for seed in 0..1500u64 {
            let h = RankHasher::new(seed + 77_000);
            let ads = crate::reference::kpartition_from_order(k, &order(n), &h);
            hip_err.push(ads.hip_weights().reachable_estimate());
            basic_err.push(ads.basic_cardinality_at(f64::INFINITY));
        }
        assert!(
            hip_err.nrmse() < basic_err.nrmse(),
            "HIP {} should beat basic {}",
            hip_err.nrmse(),
            basic_err.nrmse()
        );
    }

    #[test]
    fn tau_sum_stays_consistent() {
        // The incremental Σ m_h bookkeeping must match a fresh recompute.
        let h = RankHasher::new(5);
        let ads = crate::reference::kpartition_from_order(16, &order(500), &h);
        let hip = ads.hip_weights();
        // Recompute the last item's τ directly.
        let last = *hip.items().last().unwrap();
        let mut minima = [1.0f64; 16];
        for r in ads.records().iter().take(ads.len() - 1) {
            let m = &mut minima[r.bucket as usize];
            if r.rank < *m {
                *m = r.rank;
            }
        }
        let tau: f64 = minima.iter().sum::<f64>() / 16.0;
        assert!((last.weight - 1.0 / tau).abs() < 1e-9);
    }

    #[test]
    fn empty_ads() {
        let ads = KPartitionAds::from_records(4, vec![]);
        assert!(ads.is_empty());
        assert_eq!(ads.hip_weights().reachable_estimate(), 0.0);
    }
}
