//! A per-graph collection of bottom-k all-distances sketches.

use adsketch_graph::{Graph, NodeId};

use crate::bottomk::BottomKAds;
use crate::entry::AdsEntry;
use crate::error::CoreError;
use crate::frozen::FrozenAdsSet;
use crate::hip::{HipItem, HipWeights};
use crate::uniform_ranks;
use crate::view::AdsView;

/// Forward bottom-k ADSs for every node of a graph.
///
/// Obtained from one of the builders in [`crate::builder`] (or the brute
/// force in [`crate::reference`]). `sketches[v]` samples the nodes
/// *reachable from* `v` with their forward distances.
#[derive(Debug, Clone, PartialEq)]
pub struct AdsSet {
    k: usize,
    sketches: Vec<BottomKAds>,
}

impl AdsSet {
    /// Builds the ADS set with PrunedDijkstra (the general-purpose
    /// algorithm: weighted or unweighted graphs) using deterministic
    /// uniform ranks derived from `seed`.
    ///
    /// Panics only on internal invariant violations; construction itself
    /// cannot fail for a valid [`Graph`].
    pub fn build(g: &Graph, k: usize, seed: u64) -> Self {
        let ranks = uniform_ranks(g.num_nodes(), seed);
        crate::builder::pruned_dijkstra::build(g, k, &ranks)
            .expect("uniform ranks are always valid")
    }

    /// Like [`AdsSet::build`], fanning the PrunedDijkstra searches out over
    /// `threads` threads (`0` ⇒ all cores). The result is bitwise identical
    /// to [`AdsSet::build`] with the same `seed` for every thread count —
    /// see [`crate::builder::pruned_dijkstra::build_parallel`].
    pub fn build_parallel(g: &Graph, k: usize, seed: u64, threads: usize) -> Self {
        let ranks = uniform_ranks(g.num_nodes(), seed);
        crate::builder::pruned_dijkstra::build_parallel(g, k, &ranks, threads)
            .expect("uniform ranks are always valid")
    }

    /// Wraps pre-built sketches (one per node).
    pub fn from_sketches(k: usize, sketches: Vec<BottomKAds>) -> Self {
        assert!(sketches.iter().all(|s| s.k() == k), "mixed k in ADS set");
        Self { k, sketches }
    }

    /// The sketch parameter k.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of nodes covered.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.sketches.len()
    }

    /// The ADS of node `v`.
    #[inline]
    pub fn sketch(&self, v: NodeId) -> &BottomKAds {
        &self.sketches[v as usize]
    }

    /// All sketches, indexed by node.
    #[inline]
    pub fn sketches(&self) -> &[BottomKAds] {
        &self.sketches
    }

    /// HIP adjusted weights for node `v` (see [`crate::hip`]).
    ///
    /// **Recomputes** the Lemma 5.1 threshold scan and allocates a fresh
    /// [`HipWeights`] on every call — fine for ad-hoc queries, wasteful in
    /// a serving loop. For repeated or batched querying, [`AdsSet::freeze`]
    /// the set once: the frozen store carries every entry's adjusted
    /// weight precomputed, and [`crate::engine::QueryEngine`] batches over
    /// it without any per-query allocation.
    pub fn hip(&self, v: NodeId) -> HipWeights {
        self.sketches[v as usize].hip_weights()
    }

    /// Freezes this set into the immutable columnar query form
    /// ([`FrozenAdsSet`]): CSR-flattened entries plus precomputed HIP
    /// adjusted weights, ready for single-buffer checksummed
    /// serialization ([`FrozenAdsSet::to_bytes`]) and batch serving
    /// ([`crate::engine::QueryEngine`]). All estimator answers from the
    /// frozen store are bitwise identical to this set's.
    pub fn freeze(&self) -> FrozenAdsSet {
        FrozenAdsSet::from_ads_set(self)
    }

    /// Approximate resident heap size of this set in bytes (sketch
    /// headers, entry vectors, and node-index vectors, by capacity).
    /// Compare with [`FrozenAdsSet::resident_bytes`] and
    /// [`FrozenAdsSet::serialized_len`] for the columnar/on-disk costs.
    pub fn approx_heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.sketches.capacity() * std::mem::size_of::<BottomKAds>()
            + self
                .sketches
                .iter()
                .map(|s| s.heap_bytes_excluding_self())
                .sum::<usize>()
    }

    /// Total number of stored entries across all nodes.
    pub fn total_entries(&self) -> usize {
        self.sketches.iter().map(|s| s.len()).sum()
    }

    /// Mean entries per node — Lemma 2.2 predicts
    /// `k(1 + ln n − ln k)` on a strongly-connected graph.
    pub fn mean_entries(&self) -> f64 {
        if self.sketches.is_empty() {
            0.0
        } else {
            self.total_entries() as f64 / self.sketches.len() as f64
        }
    }

    /// Estimated distance distribution of the whole graph: sums every
    /// node's HIP neighborhood function, excluding each node itself —
    /// the ANF/HyperANF quantity, estimated sketch-side. Returns
    /// `(distance, estimated #ordered pairs within distance)` pairs.
    ///
    /// Routed through the [`AdsView`] streaming path, so no per-node
    /// `HipWeights` is allocated.
    pub fn distance_distribution_estimate(&self) -> Vec<(f64, f64)> {
        crate::view::distance_distribution_estimate(self)
    }

    /// Validates every sketch's structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        for (v, s) in self.sketches.iter().enumerate() {
            s.validate().map_err(|e| format!("node {v}: {e}"))?;
        }
        Ok(())
    }
}

impl AdsView for AdsSet {
    #[inline]
    fn k(&self) -> usize {
        self.k
    }

    #[inline]
    fn num_nodes(&self) -> usize {
        self.sketches.len()
    }

    #[inline]
    fn entry_count(&self, v: NodeId) -> usize {
        self.sketches[v as usize].len()
    }

    fn for_each_entry(&self, v: NodeId, mut f: impl FnMut(AdsEntry)) {
        for e in self.sketches[v as usize].entries() {
            f(*e);
        }
    }

    fn for_each_hip(&self, v: NodeId, f: impl FnMut(HipItem)) {
        self.sketches[v as usize].hip_scan(f);
    }

    fn size_at(&self, v: NodeId, d: f64) -> usize {
        self.sketches[v as usize].size_at(d)
    }

    fn minhash_at(&self, v: NodeId, d: f64) -> adsketch_minhash::BottomKSketch {
        self.sketches[v as usize].minhash_at(d)
    }

    fn hip_weights_of(&self, v: NodeId) -> HipWeights {
        self.sketches[v as usize].hip_weights()
    }
}

/// Builds with explicit ranks (weighted-node sketches, tests).
pub fn build_with_ranks(g: &Graph, k: usize, ranks: &[f64]) -> Result<AdsSet, CoreError> {
    crate::builder::pruned_dijkstra::build(g, k, ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_graph::generators;

    #[test]
    fn build_and_query_roundtrip() {
        let g = generators::gnp(120, 0.05, 3);
        let ads = AdsSet::build(&g, 4, 9);
        assert_eq!(ads.k(), 4);
        assert_eq!(ads.num_nodes(), 120);
        assert!(ads.validate().is_ok());
        assert!(ads.total_entries() >= 120, "every node samples itself");
        let hip = ads.hip(0);
        assert!(hip.reachable_estimate() >= 1.0);
    }

    #[test]
    fn mean_entries_tracks_lemma_2_2() {
        use adsketch_util::harmonic::expected_bottomk_ads_size;
        let n = 400;
        let g = generators::barabasi_albert(n, 3, 5);
        let k = 4;
        // Average over seeds to tame variance.
        let mut total = 0.0;
        let runs = 20;
        for seed in 0..runs {
            total += AdsSet::build(&g, k, seed).mean_entries();
        }
        let mean = total / runs as f64;
        let expect = expected_bottomk_ads_size(n as u64, k);
        assert!(
            (mean - expect).abs() / expect < 0.1,
            "mean {mean} vs Lemma 2.2 {expect}"
        );
    }

    #[test]
    fn distance_distribution_estimate_close_to_exact() {
        let g = generators::gnp(150, 0.04, 11);
        let exact = adsketch_graph::exact::distance_distribution(&g);
        let mut est_final = 0.0;
        let runs = 15;
        for seed in 0..runs {
            let ads = AdsSet::build(&g, 8, seed);
            let dd = ads.distance_distribution_estimate();
            est_final += dd.last().map_or(0.0, |&(_, c)| c);
        }
        est_final /= runs as f64;
        let truth = exact.connected_pairs() as f64;
        assert!(
            (est_final - truth).abs() / truth < 0.1,
            "estimated pairs {est_final}, exact {truth}"
        );
    }

    #[test]
    #[should_panic(expected = "mixed k")]
    fn from_sketches_rejects_mixed_k() {
        let a = BottomKAds::empty(2);
        let b = BottomKAds::empty(3);
        let _ = AdsSet::from_sketches(2, vec![a, b]);
    }
}
