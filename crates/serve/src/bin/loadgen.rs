//! SERVE experiment: end-to-end throughput and latency of the sharded
//! TCP query tier, with served answers asserted **bitwise identical** to
//! the local [`QueryEngine`] on the unsharded store before anything is
//! timed.
//!
//! Workload: a Barabási–Albert graph is sketched, frozen into S ∈ {1, 2,
//! 4} shards, loaded through [`ShardedStore`], and served over loopback
//! TCP. Concurrent client threads fire batched harmonic-centrality and
//! neighborhood-cardinality requests, recording per-request latency;
//! throughput counts node-queries per second. With `--json PATH` the
//! measurements are written as a machine-readable snapshot (see
//! `tools/bench_snapshot.sh`, which maintains `BENCH_serve.json`).
//!
//! ```text
//! cargo run --release -p adsketch-serve --bin loadgen -- \
//!     [--n 100000] [--k 16] [--clients 4] [--workers 4] [--batch 256] \
//!     [--requests 200] [--router N] [--json BENCH_serve.json] [--smoke]
//! ```
//!
//! `--router N` switches to the distributed topology: the store is
//! frozen into `N` shards, `N` in-process backend servers (one
//! [`BackendStore`] each) come up on ephemeral ports, a [`Router`]
//! fronts them, and the same identity gate + workloads run against the
//! router (workload names gain a `router_` prefix in the snapshot).
//!
//! `--smoke` shrinks everything to CI size (tiny graph, a handful of
//! requests, no timing gates) — the identity assertions still run.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use adsketch_core::frozen::SHARD_MANIFEST_FILE;
use adsketch_core::{freeze_sharded, AdsSet, QueryEngine, ShardManifest};
use adsketch_graph::{generators, NodeId};
use adsketch_serve::{BackendStore, Client, Router, RouterConfig, Server, ShardedStore};
use adsketch_util::args::{arg_flag, arg_str, arg_u64};
use adsketch_util::{Rng64, SplitMix64};

/// One measured serving configuration.
struct Record {
    workload: &'static str,
    shards: usize,
    workers: usize,
    clients: usize,
    batch: usize,
    requests_per_client: usize,
    n: usize,
    m: usize,
    k: usize,
    node_queries_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    host_threads: usize,
}

fn main() {
    let smoke = arg_flag("smoke");
    let n = if smoke {
        2_000
    } else {
        arg_u64("n", 100_000) as usize
    };
    let k = arg_u64("k", 16) as usize;
    let clients = arg_u64("clients", if smoke { 2 } else { 4 }) as usize;
    let workers = arg_u64("workers", if smoke { 2 } else { 4 }) as usize;
    let batch = arg_u64("batch", 256) as usize;
    let requests = arg_u64("requests", if smoke { 10 } else { 200 }) as usize;
    let router_n = arg_u64("router", 0) as usize;
    let json = arg_str("json", "");

    let g = generators::barabasi_albert(n, 4, 7);
    println!(
        "=== barabasi_albert_m4: n={n}, arcs={}, k={k} ===",
        g.num_arcs()
    );
    let t0 = Instant::now();
    let ads = AdsSet::build_parallel(&g, k, 13, 0);
    println!("build: {:.2?}", t0.elapsed());
    let frozen = ads.freeze();
    let local = QueryEngine::new(&frozen);

    // Local baselines every served answer must match bitwise.
    let harmonic_all = local.harmonic_all();
    let card_all: Vec<(NodeId, f64)> = (0..n as NodeId).map(|v| (v, 3.0)).collect();
    let card_baseline = local.cardinality_batch(&card_all);
    let jac_pairs: Vec<(NodeId, NodeId)> = (0..(n as NodeId).min(1_000))
        .map(|i| (i, (i * 7 + 1) % n as NodeId))
        .collect();
    let jac_baseline = local.jaccard_batch(&jac_pairs, 2.0);

    let mut records = Vec::new();
    // `--router N` replaces the single-process sweep with the
    // distributed topology.
    let shard_sweep: &[usize] = if router_n > 0 { &[] } else { &[1, 2, 4] };
    for &shards in shard_sweep {
        let dir = std::env::temp_dir().join(format!("adsketch_loadgen_s{shards}"));
        let _ = std::fs::remove_dir_all(&dir);
        let t0 = Instant::now();
        freeze_sharded(&ads, shards, &dir).expect("freeze_sharded");
        let freeze_t = t0.elapsed();
        let t0 = Instant::now();
        let store = Arc::new(ShardedStore::load(&dir).expect("load sharded store"));
        println!(
            "\n--- shards = {shards}: freeze {freeze_t:.2?}, parallel load {:.2?}, {} B resident ---",
            t0.elapsed(),
            store.resident_bytes()
        );

        let server = Server::bind("127.0.0.1:0", Arc::clone(&store), workers).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());

        // Identity gate: a full served sweep must equal the local engine
        // bitwise before this configuration is timed.
        verify_identity(
            addr,
            n,
            &harmonic_all,
            &card_all,
            &card_baseline,
            &jac_pairs,
            &jac_baseline,
        );

        run_workload(
            "harmonic_batch",
            addr,
            clients,
            requests,
            batch,
            n,
            |rng, batch, n| {
                let nodes: Vec<NodeId> = (0..batch)
                    .map(|_| (rng.next_u64() % n as u64) as NodeId)
                    .collect();
                WorkItem::Harmonic(nodes)
            },
            &mut records,
            RecordCtx {
                shards,
                workers,
                g: &g,
                k,
            },
        );
        run_workload(
            "cardinality_batch",
            addr,
            clients,
            requests,
            batch,
            n,
            |rng, batch, n| {
                let queries: Vec<(NodeId, f64)> = (0..batch)
                    .map(|_| {
                        let v = (rng.next_u64() % n as u64) as NodeId;
                        (v, (rng.next_u64() % 5) as f64)
                    })
                    .collect();
                WorkItem::Cardinality(queries)
            },
            &mut records,
            RecordCtx {
                shards,
                workers,
                g: &g,
                k,
            },
        );

        handle.shutdown();
        join.join().expect("server thread").expect("server run");
        std::fs::remove_dir_all(&dir).ok();
    }

    if router_n > 0 {
        let dir = std::env::temp_dir().join(format!("adsketch_loadgen_router_s{router_n}"));
        let _ = std::fs::remove_dir_all(&dir);
        freeze_sharded(&ads, router_n, &dir).expect("freeze_sharded");

        // One in-process backend server per shard, each holding only its
        // own shard file, then a stateless router in front.
        let mut backend_handles = Vec::new();
        let mut backend_joins = Vec::new();
        let mut backend_addrs = Vec::new();
        for i in 0..router_n {
            let store = BackendStore::load(&dir, i).expect("load backend shard");
            let server = store
                .into_server("127.0.0.1:0", workers)
                .expect("bind backend");
            backend_addrs.push(server.local_addr().expect("backend addr"));
            backend_handles.push(server.handle());
            backend_joins.push(std::thread::spawn(move || server.run()));
        }
        let manifest = ShardManifest::load(dir.join(SHARD_MANIFEST_FILE)).expect("manifest");
        let router = Router::bind(
            "127.0.0.1:0",
            manifest,
            backend_addrs,
            workers,
            RouterConfig::default(),
        )
        .expect("bind router");
        let addr = router.local_addr().expect("router addr");
        let router_handle = router.handle();
        let router_join = std::thread::spawn(move || router.run());
        println!("\n--- router over {router_n} backends ---");

        // The same pre-timing identity gate the single-process sweep
        // runs — including the jaccard sample, whose cross-shard pairs
        // exercise the router's sketch-prefix merge path.
        verify_identity(
            addr,
            n,
            &harmonic_all,
            &card_all,
            &card_baseline,
            &jac_pairs,
            &jac_baseline,
        );

        run_workload(
            "router_harmonic_batch",
            addr,
            clients,
            requests,
            batch,
            n,
            |rng, batch, n| {
                let nodes: Vec<NodeId> = (0..batch)
                    .map(|_| (rng.next_u64() % n as u64) as NodeId)
                    .collect();
                WorkItem::Harmonic(nodes)
            },
            &mut records,
            RecordCtx {
                shards: router_n,
                workers,
                g: &g,
                k,
            },
        );
        run_workload(
            "router_cardinality_batch",
            addr,
            clients,
            requests,
            batch,
            n,
            |rng, batch, n| {
                let queries: Vec<(NodeId, f64)> = (0..batch)
                    .map(|_| {
                        let v = (rng.next_u64() % n as u64) as NodeId;
                        (v, (rng.next_u64() % 5) as f64)
                    })
                    .collect();
                WorkItem::Cardinality(queries)
            },
            &mut records,
            RecordCtx {
                shards: router_n,
                workers,
                g: &g,
                k,
            },
        );

        router_handle.shutdown();
        router_join
            .join()
            .expect("router thread")
            .expect("router run");
        for h in &backend_handles {
            h.shutdown();
        }
        for j in backend_joins {
            j.join().expect("backend thread").expect("backend run");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    if !json.is_empty() {
        std::fs::write(&json, render_json(&records)).expect("write json snapshot");
        eprintln!("snapshot written to {json}");
    }
}

/// Asserts that a full served node sweep equals the committed local
/// baselines bitwise (harmonic + cardinality + a jaccard sample).
#[allow(clippy::too_many_arguments)]
fn verify_identity(
    addr: SocketAddr,
    n: usize,
    harmonic_all: &[f64],
    card_all: &[(NodeId, f64)],
    card_baseline: &[f64],
    jac_pairs: &[(NodeId, NodeId)],
    jac_baseline: &[f64],
) {
    let mut client = Client::connect(addr).expect("verify client");
    let chunk = 4096;
    let mut served_h = Vec::with_capacity(n);
    let mut served_c = Vec::with_capacity(n);
    let all_nodes: Vec<NodeId> = (0..n as NodeId).collect();
    for nodes in all_nodes.chunks(chunk) {
        served_h.extend(client.harmonic(nodes).expect("served harmonic"));
    }
    for queries in card_all.chunks(chunk) {
        served_c.extend(client.cardinality(queries).expect("served cardinality"));
    }
    assert_eq!(served_h, harmonic_all, "served harmonic diverged");
    assert_eq!(served_c, card_baseline, "served cardinality diverged");
    let served_j = client.jaccard(2.0, jac_pairs).expect("served jaccard");
    assert_eq!(served_j, jac_baseline, "served jaccard diverged");
}

enum WorkItem {
    Harmonic(Vec<NodeId>),
    Cardinality(Vec<(NodeId, f64)>),
}

struct RecordCtx<'a> {
    shards: usize,
    workers: usize,
    g: &'a adsketch_graph::Graph,
    k: usize,
}

/// Drives `clients` concurrent connections, each issuing `requests`
/// batches generated by `make`, and records throughput + latency.
#[allow(clippy::too_many_arguments)]
fn run_workload(
    workload: &'static str,
    addr: SocketAddr,
    clients: usize,
    requests: usize,
    batch: usize,
    n: usize,
    make: impl Fn(&mut SplitMix64, usize, usize) -> WorkItem + Sync,
    records: &mut Vec<Record>,
    ctx: RecordCtx<'_>,
) {
    let mut per_client: Vec<Vec<u64>> = vec![Vec::new(); clients];
    let wall = Instant::now();
    std::thread::scope(|s| {
        for (ci, lat) in per_client.iter_mut().enumerate() {
            let make = &make;
            s.spawn(move || {
                let mut rng = SplitMix64::new(0xC0FFEE ^ (ci as u64) << 32 | workload.len() as u64);
                let mut client = Client::connect(addr).expect("loadgen client");
                for _ in 0..requests {
                    let item = make(&mut rng, batch, n);
                    let t0 = Instant::now();
                    match item {
                        WorkItem::Harmonic(nodes) => {
                            let got = client.harmonic(&nodes).expect("harmonic request");
                            assert_eq!(got.len(), nodes.len());
                        }
                        WorkItem::Cardinality(queries) => {
                            let got = client.cardinality(&queries).expect("cardinality request");
                            assert_eq!(got.len(), queries.len());
                        }
                    }
                    lat.push(t0.elapsed().as_nanos() as u64);
                }
            });
        }
    });
    let wall_s = wall.elapsed().as_secs_f64();

    let mut lats: Vec<u64> = per_client.into_iter().flatten().collect();
    lats.sort_unstable();
    let total_requests = lats.len();
    let node_queries = (total_requests * batch) as f64;
    let pct = |p: f64| -> f64 {
        if lats.is_empty() {
            return 0.0;
        }
        let idx = ((lats.len() as f64 - 1.0) * p).round() as usize;
        lats[idx] as f64 / 1_000.0
    };
    let (p50_us, p99_us) = (pct(0.50), pct(0.99));
    let qps = node_queries / wall_s;
    println!(
        "{workload}: shards={} clients={clients} batch={batch}: {total_requests} requests in \
         {wall_s:.2}s  →  {qps:.0} node-queries/s, p50 {p50_us:.0}µs, p99 {p99_us:.0}µs",
        ctx.shards
    );
    records.push(Record {
        workload,
        shards: ctx.shards,
        workers: ctx.workers,
        clients,
        batch,
        requests_per_client: requests,
        n: ctx.g.num_nodes(),
        m: ctx.g.num_arcs(),
        k: ctx.k,
        node_queries_per_sec: qps,
        p50_us,
        p99_us,
        host_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
    });
}

fn render_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "  {{\"workload\": \"{}\", \"shards\": {}, \"workers\": {}, \"clients\": {}, ",
                "\"batch\": {}, \"requests_per_client\": {}, \"n\": {}, \"m\": {}, \"k\": {}, ",
                "\"node_queries_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, ",
                "\"host_threads\": {}}}{}\n"
            ),
            r.workload,
            r.shards,
            r.workers,
            r.clients,
            r.batch,
            r.requests_per_client,
            r.n,
            r.m,
            r.k,
            r.node_queries_per_sec,
            r.p50_us,
            r.p99_us,
            r.host_threads,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}
