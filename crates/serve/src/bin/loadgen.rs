//! SERVE experiment: end-to-end throughput and latency of the sharded
//! TCP query tier, with served answers asserted **bitwise identical** to
//! the local [`QueryEngine`] on the unsharded store before anything is
//! timed.
//!
//! Workload: a Barabási–Albert graph is sketched, frozen into S ∈ {1, 2,
//! 4} shards, loaded through [`ShardedStore`], and served over loopback
//! TCP. Concurrent client threads fire batched harmonic-centrality and
//! neighborhood-cardinality requests, recording per-request latency;
//! throughput counts node-queries per second. With `--json PATH` the
//! measurements are written as a machine-readable snapshot (see
//! `tools/bench_snapshot.sh`, which maintains `BENCH_serve.json`).
//!
//! ```text
//! cargo run --release -p adsketch-serve --bin loadgen -- \
//!     [--n 100000] [--k 16] [--clients 4] [--workers 4] [--batch 256] \
//!     [--requests 200] [--router N] [--replicas R] [--chaos] [--churn] \
//!     [--zipf S] [--cache BYTES] [--coalesce-us U] [--format v1|v2] \
//!     [--json BENCH_serve.json] [--append] [--smoke]
//! ```
//!
//! `--format v2` freezes the store in the compressed on-disk format
//! (delta+varint columns; see `adsketch-core`'s `frozen` module): every
//! identity gate still runs, so the bitwise-equality guarantee is
//! asserted over the wire on v2 shards too, and the cold-start line
//! reports the mapped store's **actual** resident bytes (compressed
//! footprint for v2, not the decoded width).
//!
//! `--append` splices this run's records onto an existing `--json`
//! snapshot instead of overwriting it, so one file can collect rows
//! from several tiers.
//!
//! `--zipf S` (default 0 = uniform) skews every workload's node sampling
//! to a Zipf(S) popularity distribution over node ids and pins the
//! cardinality workload to one query distance — the hot-set,
//! single-SLO-threshold shape an answer cache is built for. `--cache BYTES` and
//! `--coalesce-us U` configure the router's answer cache and coalescing
//! window (router mode only); records carry a `tier` field
//! (`direct` / `router` / `router+cache`) plus the workload's observed
//! `cache_hit_rate`.
//!
//! Every record also reports `cold_start_ms` — the wall time from cold
//! process start to a query-ready store for the tier that served it. The
//! direct sweep additionally emits three dedicated `cold_start_*`
//! records comparing the copying loader (`cold_start_copy`), the mmap
//! loader with checksums (`cold_start_mmap_verified`), and the trusted
//! warm-restart mmap path that skips checksum scans
//! (`cold_start_mmap`).
//!
//! `--router N` switches to the distributed topology: the store is
//! frozen into `N` shards, `N × R` in-process backend servers (one
//! [`BackendStore`] each, `--replicas R` per shard, default 1) come up
//! on ephemeral ports, a [`Router`] fronts them, and the same identity
//! gate + workloads run against the router (workload names gain a
//! `router_` prefix in the snapshot).
//!
//! `--chaos` (router mode, `R ≥ 2`) adds a fault scheduler: while
//! client threads hammer the router asserting every single response
//! bitwise against the local baseline, the scheduler kills and restarts
//! one backend replica at a time — always leaving at least one live
//! replica per shard — and the run fails on **any** client-visible
//! error or identity mismatch.
//!
//! `--churn` runs the **dynamic-graph drill** instead of the static
//! sweeps: edges stream through the ingest tier (`adsketch-ingest`) in
//! three phases, each phase is frozen into a numbered generation, and a
//! live [`GenerationStore`]-backed server is hot-swapped to generations
//! 2 and 3 **while client threads hammer it**. Every response is
//! asserted bitwise against the from-scratch build of some generation
//! the request could legally observe (the serving generation is polled
//! around each request via `GenInfo`); once the server reports a
//! generation, an answer matching an older one fails the drill. Any
//! client-visible error, hang (10 s read timeout), or stale post-swap
//! answer panics the process. The drill's snapshot records report
//! ingest throughput (edges/s) and freeze latency.
//!
//! `--smoke` shrinks everything to CI size (tiny graph, a handful of
//! requests, no timing gates) — the identity assertions still run.

use std::net::SocketAddr;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use adsketch_core::frozen::SHARD_MANIFEST_FILE;
use adsketch_core::{
    freeze_sharded_format, AdsSet, LoadOptions, QueryEngine, ShardManifest, StoreFormat,
};
use adsketch_graph::{generators, Graph, NodeId};
use adsketch_ingest::{Freezer, Ingestor};
use adsketch_serve::{
    BackendStore, CacheStatsHandle, Client, GenerationStore, Router, RouterConfig, Server,
    ServerHandle, ShardedStore,
};
use adsketch_util::args::{arg_flag, arg_str, arg_u64};
use adsketch_util::{Rng64, SplitMix64};

/// One measured serving configuration.
struct Record {
    workload: &'static str,
    /// Which serving tier answered: `direct` (single-process server),
    /// `router` (scatter/gather fleet), or `router+cache` (fleet with
    /// the answer cache enabled).
    tier: &'static str,
    shards: usize,
    workers: usize,
    clients: usize,
    batch: usize,
    requests_per_client: usize,
    n: usize,
    m: usize,
    k: usize,
    /// Zipf skew of the node sampler (0 = uniform).
    zipf_s: f64,
    node_queries_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    /// Router answer-cache hit rate observed during this workload
    /// (`None` when no cache fronted it).
    cache_hit_rate: Option<f64>,
    /// Cold start to a query-ready store for this tier, in ms.
    cold_start_ms: f64,
    host_threads: usize,
}

/// Query distance for the cardinality workload. Uniform mode spreads
/// over five thresholds; Zipf mode pins one threshold — the skewed
/// workload models dashboard/SLO traffic, where one distance bound
/// dominates (and where an answer cache is meant to win).
fn card_d(rng: &mut SplitMix64, zipf_s: f64) -> f64 {
    if zipf_s > 0.0 {
        3.0
    } else {
        (rng.next_u64() % 5) as f64
    }
}

/// Samples a node id from a Zipf(`s`) popularity distribution over
/// `0..n` via the bounded-Pareto inverse CDF (rank 1 → node 0 is the
/// most popular). `s = 0` degenerates to uniform.
fn zipf_node(rng: &mut SplitMix64, n: usize, s: f64) -> NodeId {
    if s == 0.0 {
        return (rng.next_u64() % n as u64) as NodeId;
    }
    let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    let nf = n as f64;
    let rank = if (s - 1.0).abs() < 1e-9 {
        nf.powf(u)
    } else {
        let a = 1.0 - s;
        ((nf.powf(a) - 1.0) * u + 1.0).powf(1.0 / a)
    };
    (rank.floor() as usize).clamp(1, n) as NodeId - 1
}

fn main() {
    let smoke = arg_flag("smoke");
    let churn = arg_flag("churn");
    let n = if smoke {
        2_000
    } else {
        // The churn drill builds three from-scratch oracle generations
        // and replays every edge through the incremental builder, so its
        // default graph is smaller than the static sweep's.
        arg_u64("n", if churn { 20_000 } else { 100_000 }) as usize
    };
    let k = arg_u64("k", 16) as usize;
    let clients = arg_u64("clients", if smoke { 2 } else { 4 }) as usize;
    let workers = arg_u64("workers", if smoke { 2 } else { 4 }) as usize;
    let batch = arg_u64("batch", 256) as usize;
    let requests = arg_u64("requests", if smoke { 10 } else { 200 }) as usize;
    let router_n = arg_u64("router", 0) as usize;
    let replicas = arg_u64("replicas", 1) as usize;
    let chaos = arg_flag("chaos");
    let zipf_s: f64 = arg_str("zipf", "0").parse().unwrap_or(0.0);
    let cache_bytes = arg_u64("cache", 0) as usize;
    let coalesce_us = arg_u64("coalesce-us", 0);
    let store_format = match arg_str("format", "v1").as_str() {
        "v1" => StoreFormat::V1,
        "v2" => StoreFormat::V2,
        other => {
            eprintln!("--format must be v1 or v2, got {other:?}");
            std::process::exit(2);
        }
    };
    let json = arg_str("json", "");
    let append = arg_flag("append");
    if chaos && (router_n == 0 || replicas < 2) {
        eprintln!("--chaos needs --router N and --replicas >= 2");
        std::process::exit(2);
    }
    if churn && (chaos || router_n > 0) {
        eprintln!("--churn is a standalone dynamic-graph drill; drop --router/--chaos");
        std::process::exit(2);
    }
    assert!(replicas >= 1, "--replicas must be at least 1");

    if churn {
        let records = run_churn_drill(ChurnParams {
            n,
            k,
            clients,
            workers,
            batch,
            requests,
            store_format,
            smoke,
        });
        write_snapshot(&json, append, &records);
        return;
    }

    let g = generators::barabasi_albert(n, 4, 7);
    println!(
        "=== barabasi_albert_m4: n={n}, arcs={}, k={k} ===",
        g.num_arcs()
    );
    let t0 = Instant::now();
    let ads = AdsSet::build_parallel(&g, k, 13, 0);
    println!("build: {:.2?}", t0.elapsed());
    let frozen = ads.freeze();
    let local = QueryEngine::new(&frozen);

    // Local baselines every served answer must match bitwise.
    let harmonic_all = local.harmonic_all();
    let card_all: Vec<(NodeId, f64)> = (0..n as NodeId).map(|v| (v, 3.0)).collect();
    let card_baseline = local.cardinality_batch(&card_all);
    let jac_pairs: Vec<(NodeId, NodeId)> = (0..(n as NodeId).min(1_000))
        .map(|i| (i, (i * 7 + 1) % n as NodeId))
        .collect();
    let jac_baseline = local.jaccard_batch(&jac_pairs, 2.0);

    let mut records = Vec::new();
    // `--router N` replaces the single-process sweep with the
    // distributed topology.
    let shard_sweep: &[usize] = if router_n > 0 { &[] } else { &[1, 2, 4] };
    for &shards in shard_sweep {
        let dir = std::env::temp_dir().join(format!("adsketch_loadgen_s{shards}"));
        let _ = std::fs::remove_dir_all(&dir);
        let t0 = Instant::now();
        freeze_sharded_format(&ads, shards, &dir, store_format).expect("freeze_sharded");
        let freeze_t = t0.elapsed();
        // Cold-start triple over the same frozen store: the copying
        // loader, the trusted warm-restart mmap path (no checksum
        // scans), and the serve-default mmap loader (checksums on) —
        // the last one also becomes the store this config serves from.
        let t0 = Instant::now();
        drop(ShardedStore::load_with(&dir, LoadOptions::default()).expect("copying load"));
        let copy_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        drop(ShardedStore::load_with(&dir, LoadOptions::trusted()).expect("trusted mmap load"));
        let trusted_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let store = Arc::new(ShardedStore::load(&dir).expect("load sharded store"));
        let mmap_ms = t0.elapsed().as_secs_f64() * 1e3;
        // `resident_bytes` is format-aware: a mapped v2 store reports its
        // compressed on-disk footprint (plus parsed metadata), not the
        // decoded full-width size.
        println!(
            "\n--- shards = {shards} ({}): freeze {freeze_t:.2?}, cold start copy {copy_ms:.2} ms \
             / mmap+verify {mmap_ms:.2} ms / mmap trusted {trusted_ms:.2} ms, {} B resident ---",
            match store_format {
                StoreFormat::V1 => "v1",
                StoreFormat::V2 => "v2",
            },
            store.resident_bytes()
        );
        if shards == 1 {
            for (workload, ms) in [
                ("cold_start_copy", copy_ms),
                ("cold_start_mmap_verified", mmap_ms),
                ("cold_start_mmap", trusted_ms),
            ] {
                records.push(cold_start_record(workload, ms, &g, k, workers));
            }
        }

        let server = Server::bind("127.0.0.1:0", Arc::clone(&store), workers).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());

        // Identity gate: a full served sweep must equal the local engine
        // bitwise before this configuration is timed.
        verify_identity(
            addr,
            n,
            &harmonic_all,
            &card_all,
            &card_baseline,
            &jac_pairs,
            &jac_baseline,
        );

        run_workload(
            "harmonic_batch",
            addr,
            clients,
            requests,
            batch,
            n,
            |rng, batch, n| {
                let nodes: Vec<NodeId> = (0..batch).map(|_| zipf_node(rng, n, zipf_s)).collect();
                WorkItem::Harmonic(nodes)
            },
            &mut records,
            RecordCtx {
                tier: "direct",
                shards,
                workers,
                g: &g,
                k,
                zipf_s,
                cache: None,
                cold_start_ms: mmap_ms,
            },
        );
        run_workload(
            "cardinality_batch",
            addr,
            clients,
            requests,
            batch,
            n,
            |rng, batch, n| {
                let queries: Vec<(NodeId, f64)> = (0..batch)
                    .map(|_| (zipf_node(rng, n, zipf_s), card_d(rng, zipf_s)))
                    .collect();
                WorkItem::Cardinality(queries)
            },
            &mut records,
            RecordCtx {
                tier: "direct",
                shards,
                workers,
                g: &g,
                k,
                zipf_s,
                cache: None,
                cold_start_ms: mmap_ms,
            },
        );

        handle.shutdown();
        join.join().expect("server thread").expect("server run");
        std::fs::remove_dir_all(&dir).ok();
    }

    if router_n > 0 {
        let dir = std::env::temp_dir().join(format!("adsketch_loadgen_router_s{router_n}"));
        let _ = std::fs::remove_dir_all(&dir);
        freeze_sharded_format(&ads, router_n, &dir, store_format).expect("freeze_sharded");

        // One in-process backend server per (shard, replica), each
        // holding only its own shard file, then a stateless router in
        // front of the whole fleet. Backend pools are sized for their
        // fan-in, not the client count: every router worker keeps one
        // standing pipelined connection per replica, and the health
        // prober plus the chaos scheduler's liveness pings each need a
        // free slot on top — a pool of exactly `workers` would let the
        // router's standing connections starve those probes forever.
        let backend_workers = workers + 2;
        let mut fleet: Vec<BackendSlot> = Vec::new();
        let mut replica_addrs: Vec<Vec<SocketAddr>> = vec![Vec::new(); router_n];
        let any_port: SocketAddr = "127.0.0.1:0".parse().expect("loopback addr");
        let t0 = Instant::now();
        for (shard, shard_addrs) in replica_addrs.iter_mut().enumerate() {
            for _rep in 0..replicas {
                let (addr, handle, join) = spawn_backend(&dir, shard, any_port, backend_workers);
                shard_addrs.push(addr);
                fleet.push(BackendSlot {
                    shard,
                    addr,
                    handle,
                    join: Some(join),
                });
            }
        }
        // Fleet cold start: every replica's mmap shard load + serve bind.
        let fleet_cold_ms = t0.elapsed().as_secs_f64() * 1e3;
        let manifest = ShardManifest::load(dir.join(SHARD_MANIFEST_FILE)).expect("manifest");
        let mut config = RouterConfig {
            cache_bytes,
            ..RouterConfig::default()
        };
        if coalesce_us > 0 {
            config.coalesce_window = Some(Duration::from_micros(coalesce_us));
        }
        let tier = if cache_bytes > 0 {
            "router+cache"
        } else {
            "router"
        };
        if chaos {
            // The scheduler kills a replica every couple hundred ms, so
            // recovery has to be fast: quick probing, short backoff, an
            // extra failover pass, and hedging to shave straggler tails.
            config.retries = 2;
            config.probe_interval = Duration::from_millis(25);
            config.backoff_base = Duration::from_millis(10);
            config.backoff_cap = Duration::from_millis(100);
            config.hedge_delay = Some(Duration::from_millis(15));
        }
        let router = Router::bind("127.0.0.1:0", manifest, replica_addrs, workers, config)
            .expect("bind router");
        let addr = router.local_addr().expect("router addr");
        let router_handle = router.handle();
        let cache_stats = router.cache_stats();
        let router_join = std::thread::spawn(move || router.run());
        println!(
            "\n--- {tier} over {router_n} shards x {replicas} replica(s), \
             fleet cold start {fleet_cold_ms:.2} ms ---"
        );

        // The same pre-timing identity gate the single-process sweep
        // runs — including the jaccard sample, whose cross-shard pairs
        // exercise the router's sketch-prefix merge path.
        verify_identity(
            addr,
            n,
            &harmonic_all,
            &card_all,
            &card_baseline,
            &jac_pairs,
            &jac_baseline,
        );

        if chaos {
            run_chaos(ChaosCtx {
                addr,
                n,
                clients,
                requests,
                batch,
                replicas,
                harmonic_all: &harmonic_all,
                card_baseline: &card_baseline,
                dir: &dir,
                workers: backend_workers,
                fleet: &mut fleet,
            });
        }

        run_workload(
            "router_harmonic_batch",
            addr,
            clients,
            requests,
            batch,
            n,
            |rng, batch, n| {
                let nodes: Vec<NodeId> = (0..batch).map(|_| zipf_node(rng, n, zipf_s)).collect();
                WorkItem::Harmonic(nodes)
            },
            &mut records,
            RecordCtx {
                tier,
                shards: router_n,
                workers,
                g: &g,
                k,
                zipf_s,
                cache: cache_stats.as_ref(),
                cold_start_ms: fleet_cold_ms,
            },
        );
        run_workload(
            "router_cardinality_batch",
            addr,
            clients,
            requests,
            batch,
            n,
            |rng, batch, n| {
                let queries: Vec<(NodeId, f64)> = (0..batch)
                    .map(|_| (zipf_node(rng, n, zipf_s), card_d(rng, zipf_s)))
                    .collect();
                WorkItem::Cardinality(queries)
            },
            &mut records,
            RecordCtx {
                tier,
                shards: router_n,
                workers,
                g: &g,
                k,
                zipf_s,
                cache: cache_stats.as_ref(),
                cold_start_ms: fleet_cold_ms,
            },
        );

        router_handle.shutdown();
        router_join
            .join()
            .expect("router thread")
            .expect("router run");
        for slot in &mut fleet {
            slot.handle.shutdown();
            slot.join
                .take()
                .expect("running backend")
                .join()
                .expect("backend thread")
                .expect("backend run");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    write_snapshot(&json, append, &records);
}

/// Writes (or `--append`-splices) this run's records to `json`, if set.
fn write_snapshot(json: &str, append: bool, records: &[Record]) {
    if json.is_empty() || records.is_empty() {
        return;
    }
    let rendered = render_json(records);
    // `--append` splices this run's records onto an existing snapshot
    // array, so one BENCH_serve.json can hold rows from several tiers
    // (see tools/bench_snapshot.sh).
    let payload = match std::fs::read_to_string(json) {
        Ok(prev) if append && prev.trim_end().ends_with(']') => merge_json_arrays(&prev, &rendered),
        _ => rendered,
    };
    std::fs::write(json, payload).expect("write json snapshot");
    eprintln!("snapshot written to {json}");
}

/// Splices two rendered record arrays into one flat array.
fn merge_json_arrays(prev: &str, new: &str) -> String {
    let prev_body = prev.trim_end().trim_end_matches(']').trim_end();
    let new_body = new.trim_start().trim_start_matches('[').trim_start();
    if prev_body == "[" {
        return new.to_string();
    }
    format!("{prev_body},\n  {new_body}")
}

/// Knobs for the `--churn` dynamic-graph drill.
struct ChurnParams {
    n: usize,
    k: usize,
    clients: usize,
    workers: usize,
    batch: usize,
    requests: usize,
    store_format: StoreFormat,
    smoke: bool,
}

/// Streams `edges` through the ingest pipeline in small locked chunks
/// (so a concurrent freeze can interleave), flushes the journal, and
/// returns the observed throughput in edges per second.
fn ingest_range(ingestor: &Mutex<Ingestor>, edges: &[(NodeId, NodeId, f64)]) -> f64 {
    let t0 = Instant::now();
    for chunk in edges.chunks(64) {
        let mut ing = ingestor.lock().expect("ingestor lock");
        for &(u, v, w) in chunk {
            ing.ingest(u, v, w).expect("ingest edge");
        }
    }
    ingestor
        .lock()
        .expect("ingestor lock")
        .flush()
        .expect("flush edge log");
    edges.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// The dynamic-graph chaos drill: three edge tranches become three
/// frozen generations; generations 2 and 3 are hot-swapped into a live
/// server while client threads assert every answer bitwise against the
/// from-scratch oracle of a generation the request could legally
/// observe. Panics (non-zero exit) on any client error, hang, stale
/// post-swap answer, or generation regression.
fn run_churn_drill(p: ChurnParams) -> Vec<Record> {
    const SEED: u64 = 13;
    let ChurnParams {
        n,
        k,
        clients,
        workers,
        batch,
        requests,
        store_format,
        smoke,
    } = p;
    let g = generators::barabasi_albert(n, 4, 7);
    let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::with_capacity(g.num_arcs());
    for u in 0..n as NodeId {
        for (v, w) in g.arcs(u) {
            edges.push((u, v, w));
        }
    }
    let m = edges.len();
    let cuts = [m / 3, 2 * m / 3, m];
    println!("=== churn drill: n={n}, arcs={m}, k={k}, 3 generations, 2 live swaps ===");

    // From-scratch oracle per generation: what a cold rebuild of that
    // edge prefix answers. The live incremental server must match one of
    // these bitwise on every response.
    let t0 = Instant::now();
    let oracle: Vec<(Vec<f64>, Vec<f64>)> = cuts
        .iter()
        .map(|&cut| {
            let gp = Graph::directed_weighted(n, &edges[..cut]).expect("prefix graph");
            let ads = AdsSet::build_parallel(&gp, k, SEED, 0);
            let frozen = ads.freeze();
            let engine = QueryEngine::new(&frozen);
            let card_all: Vec<(NodeId, f64)> = (0..n as NodeId).map(|v| (v, 3.0)).collect();
            (engine.harmonic_all(), engine.cardinality_batch(&card_all))
        })
        .collect();
    println!("oracles (3 from-scratch builds): {:.2?}", t0.elapsed());

    let scratch =
        std::env::temp_dir().join(format!("adsketch_loadgen_churn_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let ingestor = Arc::new(Mutex::new(
        Ingestor::open(scratch.join("log"), n, k, SEED, 1 << 16).expect("open ingestor"),
    ));
    let mut freezer = Freezer::new(scratch.join("store"), 2, store_format).expect("freezer");

    // Generation 1: first tranche, frozen and serving before traffic.
    let mut edge_rates = vec![ingest_range(&ingestor, &edges[..cuts[0]])];
    let gen1 = freezer.freeze(ingestor.as_ref()).expect("freeze gen 1");
    let mut freeze_secs = vec![gen1.freeze_seconds];
    let store = Arc::new(GenerationStore::new(
        ShardedStore::load(&gen1.dir).expect("load gen 1"),
        gen1.generation,
    ));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&store), workers).expect("bind churn");
    let addr = server.local_addr().expect("churn addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let done = AtomicBool::new(false);
    let swap_pause = Duration::from_millis(if smoke { 50 } else { 200 });
    std::thread::scope(|s| {
        for ci in 0..clients {
            let done = &done;
            let oracle = &oracle;
            s.spawn(move || {
                let mut rng = SplitMix64::new(0xD1CE ^ ci as u64);
                let mut client = Client::connect(addr).expect("churn client");
                // A hang is a failure, not a stall: any response taking
                // longer than this kills the drill.
                client
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .expect("read timeout");
                let mut issued = 0usize;
                let mut last_gen = 0u64;
                while issued < requests || !done.load(Ordering::SeqCst) {
                    let nodes: Vec<NodeId> = (0..batch)
                        .map(|_| (rng.next_u64() % n as u64) as NodeId)
                        .collect();
                    let g_before = client.gen_info().expect("gen info");
                    assert!(g_before >= last_gen, "serving generation regressed");
                    last_gen = g_before;
                    let col = issued % 2;
                    let got = if col == 0 {
                        client.harmonic(&nodes).expect("churn harmonic")
                    } else {
                        let queries: Vec<(NodeId, f64)> = nodes.iter().map(|&v| (v, 3.0)).collect();
                        client.cardinality(&queries).expect("churn cardinality")
                    };
                    let g_after = client.gen_info().expect("gen info");
                    let matches_gen = |gen: u64| {
                        let base = if col == 0 {
                            &oracle[gen as usize - 1].0
                        } else {
                            &oracle[gen as usize - 1].1
                        };
                        nodes
                            .iter()
                            .zip(&got)
                            .all(|(&v, &x)| x.to_bits() == base[v as usize].to_bits())
                    };
                    if g_before == g_after {
                        // No swap straddled this request: the answer must
                        // be that exact generation's, bit for bit.
                        assert!(
                            matches_gen(g_before),
                            "stale or wrong answer at generation {g_before}"
                        );
                    } else {
                        // A swap landed between the bracketing GenInfo
                        // probes. The per-frame pin still forbids mixing:
                        // the whole response must match ONE generation in
                        // the bracket.
                        assert!(
                            (g_before..=g_after).any(matches_gen),
                            "answer matches no single generation in {g_before}..={g_after}"
                        );
                    }
                    issued += 1;
                }
            });
        }

        // The swapper runs on the scope's own thread; the drop guard
        // releases the clients even if a freeze/swap panics.
        struct SetOnDrop<'a>(&'a AtomicBool);
        impl Drop for SetOnDrop<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let _release = SetOnDrop(&done);
        std::thread::sleep(swap_pause); // let clients observe generation 1
        for phase in 1..3 {
            edge_rates.push(ingest_range(
                &ingestor,
                &edges[cuts[phase - 1]..cuts[phase]],
            ));
            let frozen = freezer
                .freeze(ingestor.as_ref())
                .expect("freeze generation");
            let next = ShardedStore::load(&frozen.dir).expect("load generation");
            let old = store.swap(next, frozen.generation);
            assert_eq!(old, frozen.generation - 1, "swaps must be sequential");
            freeze_secs.push(frozen.freeze_seconds);
            println!(
                "swapped live server to generation {} ({} edges, freeze {:.1} ms)",
                frozen.generation,
                frozen.edges,
                frozen.freeze_seconds * 1e3
            );
            std::thread::sleep(swap_pause); // let clients straddle the swap
        }
    });

    // Post-drill strict gate: the live server now answers generation 3
    // bitwise equal to its from-scratch oracle...
    let mut client = Client::connect(addr).expect("final client");
    assert_eq!(client.gen_info().expect("final gen info"), 3);
    let all_nodes: Vec<NodeId> = (0..n as NodeId).collect();
    let mut served = Vec::with_capacity(n);
    for chunk in all_nodes.chunks(4096) {
        served.extend(client.harmonic(chunk).expect("final harmonic"));
    }
    assert_eq!(served, oracle[2].0, "post-swap sweep diverged from oracle");
    // ...and a cold process loading the published CURRENT generation
    // agrees with both.
    let (cur_gen, cur_dir) = adsketch_ingest::current_generation(scratch.join("store"))
        .expect("read CURRENT")
        .expect("a published generation");
    assert_eq!(cur_gen, 3, "CURRENT must point at the last generation");
    let fresh = ShardedStore::load(&cur_dir).expect("fresh load");
    assert_eq!(
        QueryEngine::new(&fresh).harmonic_all(),
        oracle[2].0,
        "fresh load of CURRENT diverged"
    );
    println!("churn drill passed: 2 swaps under load, zero client errors, bitwise oracle match");

    handle.shutdown();
    join.join()
        .expect("churn server thread")
        .expect("churn server run");
    std::fs::remove_dir_all(&scratch).ok();

    let edges_per_sec = edge_rates.iter().sum::<f64>() / edge_rates.len() as f64;
    let freeze_ms = freeze_secs.iter().sum::<f64>() / freeze_secs.len() as f64 * 1e3;
    vec![Record {
        workload: "churn_ingest_freeze_swap",
        tier: "dynamic",
        shards: 2,
        workers,
        clients,
        batch,
        requests_per_client: requests,
        n,
        m,
        k,
        zipf_s: 0.0,
        // For this row the throughput column is ingest throughput
        // (edges/s through the incremental builder + journal) and the
        // cold-start column is the mean freeze-to-published latency.
        node_queries_per_sec: edges_per_sec,
        p50_us: 0.0,
        p99_us: 0.0,
        cache_hit_rate: None,
        cold_start_ms: freeze_ms,
        host_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
    }]
}

/// Asserts that a full served node sweep equals the committed local
/// baselines bitwise (harmonic + cardinality + a jaccard sample).
#[allow(clippy::too_many_arguments)]
fn verify_identity(
    addr: SocketAddr,
    n: usize,
    harmonic_all: &[f64],
    card_all: &[(NodeId, f64)],
    card_baseline: &[f64],
    jac_pairs: &[(NodeId, NodeId)],
    jac_baseline: &[f64],
) {
    let mut client = Client::connect(addr).expect("verify client");
    let chunk = 4096;
    let mut served_h = Vec::with_capacity(n);
    let mut served_c = Vec::with_capacity(n);
    let all_nodes: Vec<NodeId> = (0..n as NodeId).collect();
    for nodes in all_nodes.chunks(chunk) {
        served_h.extend(client.harmonic(nodes).expect("served harmonic"));
    }
    for queries in card_all.chunks(chunk) {
        served_c.extend(client.cardinality(queries).expect("served cardinality"));
    }
    assert_eq!(served_h, harmonic_all, "served harmonic diverged");
    assert_eq!(served_c, card_baseline, "served cardinality diverged");
    let served_j = client.jaccard(2.0, jac_pairs).expect("served jaccard");
    assert_eq!(served_j, jac_baseline, "served jaccard diverged");
}

/// One running backend replica of the router fleet.
struct BackendSlot {
    shard: usize,
    addr: SocketAddr,
    handle: ServerHandle,
    join: Option<std::thread::JoinHandle<std::io::Result<u64>>>,
}

/// Loads shard `shard` fresh from disk and serves it on `addr` (port 0
/// for an ephemeral port; the chaos scheduler passes the replica's old
/// address so the router's endpoint table stays valid). Rebinding a
/// just-released port can race the old socket's teardown, so bind
/// failures retry briefly.
fn spawn_backend(
    dir: &Path,
    shard: usize,
    addr: SocketAddr,
    workers: usize,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<u64>>,
) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let store = BackendStore::load(dir, shard).expect("load backend shard");
        match store.into_server(addr, workers) {
            Ok(server) => {
                let addr = server.local_addr().expect("backend addr");
                let handle = server.handle();
                let join = std::thread::spawn(move || server.run());
                return (addr, handle, join);
            }
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "rebind backend shard {shard} at {addr}: {e}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

struct ChaosCtx<'a> {
    addr: SocketAddr,
    n: usize,
    clients: usize,
    requests: usize,
    batch: usize,
    replicas: usize,
    harmonic_all: &'a [f64],
    card_baseline: &'a [f64],
    dir: &'a Path,
    workers: usize,
    fleet: &'a mut [BackendSlot],
}

/// Chaos drill: client threads hammer the router, asserting every
/// response bitwise against the local baseline, while the scheduler
/// kills and restarts one backend replica at a time (never leaving a
/// shard without a live replica). Any client-visible error or identity
/// mismatch panics the process.
fn run_chaos(ctx: ChaosCtx<'_>) {
    println!("chaos: killing and restarting every backend replica, one at a time, under load");
    let chaos_done = AtomicBool::new(false);
    let kills = std::thread::scope(|s| {
        for ci in 0..ctx.clients {
            let chaos_done = &chaos_done;
            let (addr, n, batch, requests) = (ctx.addr, ctx.n, ctx.batch, ctx.requests);
            let (harmonic_all, card_baseline) = (ctx.harmonic_all, ctx.card_baseline);
            s.spawn(move || {
                let mut rng = SplitMix64::new(0xBAD_C0DE ^ ci as u64);
                let mut client = Client::connect(addr).expect("chaos client");
                let mut issued = 0usize;
                // Keep the load running until the scheduler has cycled
                // the whole fleet, even if the request quota runs out
                // first.
                while issued < requests || !chaos_done.load(Ordering::SeqCst) {
                    let nodes: Vec<NodeId> = (0..batch)
                        .map(|_| (rng.next_u64() % n as u64) as NodeId)
                        .collect();
                    if issued.is_multiple_of(2) {
                        let got = client.harmonic(&nodes).expect("chaos harmonic");
                        let want: Vec<f64> =
                            nodes.iter().map(|&v| harmonic_all[v as usize]).collect();
                        assert_eq!(got, want, "served harmonic diverged under chaos");
                    } else {
                        let queries: Vec<(NodeId, f64)> = nodes.iter().map(|&v| (v, 3.0)).collect();
                        let got = client.cardinality(&queries).expect("chaos cardinality");
                        let want: Vec<f64> =
                            nodes.iter().map(|&v| card_baseline[v as usize]).collect();
                        assert_eq!(got, want, "served cardinality diverged under chaos");
                    }
                    issued += 1;
                }
            });
        }
        // The scheduler runs in the scope's own thread: one full pass
        // over the fleet in replica-major order, so consecutive kills
        // always hit different shards and a killed replica gets a full
        // cycle to be re-adopted by the router's prober before its
        // sibling goes down. The flag is raised by a drop guard so a
        // scheduler panic still releases the client threads (the scope
        // would otherwise join them forever and mask the real failure).
        struct SetOnDrop<'a>(&'a AtomicBool);
        impl Drop for SetOnDrop<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let _done = SetOnDrop(&chaos_done);
        let mut order: Vec<usize> = (0..ctx.fleet.len()).collect();
        order.sort_by_key(|&i| (i % ctx.replicas, i / ctx.replicas));
        let mut kills = 0usize;
        for &i in &order {
            let shard = ctx.fleet[i].shard;
            let victim_addr = ctx.fleet[i].addr;
            // Never take a shard to zero live replicas: wait until a
            // sibling is demonstrably answering before the kill.
            let sibling = ctx
                .fleet
                .iter()
                .position(|s| s.shard == shard && s.addr != victim_addr)
                .expect("chaos needs >= 2 replicas per shard");
            wait_backend_healthy(ctx.fleet[sibling].addr);
            ctx.fleet[i].handle.shutdown();
            ctx.fleet[i]
                .join
                .take()
                .expect("running backend")
                .join()
                .expect("backend thread")
                .expect("backend run");
            // Let the router trip over the corpse for a while before the
            // replica returns on the same address.
            std::thread::sleep(Duration::from_millis(75));
            let (addr, handle, join) = spawn_backend(ctx.dir, shard, victim_addr, ctx.workers);
            assert_eq!(addr, victim_addr, "restarted replica must keep its address");
            ctx.fleet[i].handle = handle;
            ctx.fleet[i].join = Some(join);
            kills += 1;
            eprintln!("chaos: cycled replica at {victim_addr} (shard {shard})");
            // Give the prober a beat to re-adopt it before the next kill.
            std::thread::sleep(Duration::from_millis(75));
        }
        kills
    });
    assert!(kills > 0, "chaos scheduler must kill at least one replica");
    println!("chaos: {kills} replica kill/restart cycles, zero client-visible errors");
}

/// Blocks until the backend at `addr` answers a `Health` ping.
fn wait_backend_healthy(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok(mut c) = Client::connect_timeout(&addr, Duration::from_millis(250)) {
            let ready =
                c.set_read_timeout(Some(Duration::from_millis(500))).is_ok() && c.health().is_ok();
            if ready {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "backend at {addr} did not come back"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

enum WorkItem {
    Harmonic(Vec<NodeId>),
    Cardinality(Vec<(NodeId, f64)>),
}

struct RecordCtx<'a> {
    tier: &'static str,
    shards: usize,
    workers: usize,
    g: &'a adsketch_graph::Graph,
    k: usize,
    zipf_s: f64,
    cache: Option<&'a CacheStatsHandle>,
    cold_start_ms: f64,
}

/// A dedicated cold-start record for the direct tier: no traffic, only
/// the wall time from cold start to a query-ready store.
fn cold_start_record(
    workload: &'static str,
    ms: f64,
    g: &adsketch_graph::Graph,
    k: usize,
    workers: usize,
) -> Record {
    Record {
        workload,
        tier: "direct",
        shards: 1,
        workers,
        clients: 0,
        batch: 0,
        requests_per_client: 0,
        n: g.num_nodes(),
        m: g.num_arcs(),
        k,
        zipf_s: 0.0,
        node_queries_per_sec: 0.0,
        p50_us: 0.0,
        p99_us: 0.0,
        cache_hit_rate: None,
        cold_start_ms: ms,
        host_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
    }
}

/// Drives `clients` concurrent connections, each issuing `requests`
/// batches generated by `make`, and records throughput + latency.
#[allow(clippy::too_many_arguments)]
fn run_workload(
    workload: &'static str,
    addr: SocketAddr,
    clients: usize,
    requests: usize,
    batch: usize,
    n: usize,
    make: impl Fn(&mut SplitMix64, usize, usize) -> WorkItem + Sync,
    records: &mut Vec<Record>,
    ctx: RecordCtx<'_>,
) {
    let mut per_client: Vec<Vec<u64>> = vec![Vec::new(); clients];
    let counters_before = ctx.cache.map(|c| (c.hits(), c.misses()));
    let wall = Instant::now();
    std::thread::scope(|s| {
        for (ci, lat) in per_client.iter_mut().enumerate() {
            let make = &make;
            s.spawn(move || {
                let mut rng = SplitMix64::new(0xC0FFEE ^ (ci as u64) << 32 | workload.len() as u64);
                let mut client = Client::connect(addr).expect("loadgen client");
                for _ in 0..requests {
                    let item = make(&mut rng, batch, n);
                    let t0 = Instant::now();
                    match item {
                        WorkItem::Harmonic(nodes) => {
                            let got = client.harmonic(&nodes).expect("harmonic request");
                            assert_eq!(got.len(), nodes.len());
                        }
                        WorkItem::Cardinality(queries) => {
                            let got = client.cardinality(&queries).expect("cardinality request");
                            assert_eq!(got.len(), queries.len());
                        }
                    }
                    lat.push(t0.elapsed().as_nanos() as u64);
                }
            });
        }
    });
    let wall_s = wall.elapsed().as_secs_f64();

    let mut lats: Vec<u64> = per_client.into_iter().flatten().collect();
    lats.sort_unstable();
    let total_requests = lats.len();
    let node_queries = (total_requests * batch) as f64;
    let pct = |p: f64| -> f64 {
        if lats.is_empty() {
            return 0.0;
        }
        let idx = ((lats.len() as f64 - 1.0) * p).round() as usize;
        lats[idx] as f64 / 1_000.0
    };
    let (p50_us, p99_us) = (pct(0.50), pct(0.99));
    let qps = node_queries / wall_s;
    // Hit rate over exactly this workload's traffic (counter deltas, so
    // the identity gate's warm-up does not inflate it).
    let cache_hit_rate = ctx.cache.zip(counters_before).map(|(c, (h0, m0))| {
        let (h, m) = (c.hits() - h0, c.misses() - m0);
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    });
    let hit_note = cache_hit_rate.map_or(String::new(), |r| format!(", cache hit rate {r:.2}"));
    println!(
        "{workload}: shards={} clients={clients} batch={batch}: {total_requests} requests in \
         {wall_s:.2}s  →  {qps:.0} node-queries/s, p50 {p50_us:.0}µs, p99 {p99_us:.0}µs{hit_note}",
        ctx.shards
    );
    records.push(Record {
        workload,
        tier: ctx.tier,
        shards: ctx.shards,
        workers: ctx.workers,
        clients,
        batch,
        requests_per_client: requests,
        n: ctx.g.num_nodes(),
        m: ctx.g.num_arcs(),
        k: ctx.k,
        zipf_s: ctx.zipf_s,
        node_queries_per_sec: qps,
        p50_us,
        p99_us,
        cache_hit_rate,
        cold_start_ms: ctx.cold_start_ms,
        host_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
    });
}

fn render_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let hit_rate = r
            .cache_hit_rate
            .map_or_else(|| "null".to_string(), |h| format!("{h:.4}"));
        out.push_str(&format!(
            concat!(
                "  {{\"workload\": \"{}\", \"tier\": \"{}\", \"shards\": {}, \"workers\": {}, ",
                "\"clients\": {}, \"batch\": {}, \"requests_per_client\": {}, \"n\": {}, ",
                "\"m\": {}, \"k\": {}, \"zipf_s\": {:.2}, \"node_queries_per_sec\": {:.1}, ",
                "\"p50_us\": {:.1}, \"p99_us\": {:.1}, \"cache_hit_rate\": {}, ",
                "\"cold_start_ms\": {:.3}, \"host_threads\": {}}}{}\n"
            ),
            r.workload,
            r.tier,
            r.shards,
            r.workers,
            r.clients,
            r.batch,
            r.requests_per_client,
            r.n,
            r.m,
            r.k,
            r.zipf_s,
            r.node_queries_per_sec,
            r.p50_us,
            r.p99_us,
            hit_rate,
            r.cold_start_ms,
            r.host_threads,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}
