//! Wire protocol version 1: little-endian, length-prefixed binary frames
//! over any byte stream.
//!
//! # Handshake
//!
//! Immediately after connecting, the client sends 12 bytes — the magic
//! [`WIRE_MAGIC`] (`b"ADSKWIR1"`) followed by its protocol version
//! (`u32`). The server answers with 5 bytes: a status byte (`1` accept,
//! `0` reject) followed by the server's protocol version (`u32`), and on
//! reject closes the connection. Nothing else is exchanged until the
//! handshake completes, so version negotiation can evolve without
//! guessing at frame boundaries.
//!
//! # Frames
//!
//! Every subsequent message, in both directions, is one frame:
//!
//! ```text
//! u32  body length (≤ MAX_FRAME_LEN)
//! u8   message type
//! ...  type-specific payload
//! ```
//!
//! Request types (client → server), each carrying a batch:
//!
//! | type | payload |
//! |---|---|
//! | `0x01` Harmonic | `u32 count`, then `count × u32` node ids |
//! | `0x02` Decay | `u8` kernel tag, `u64` kernel parameter bits, `u32 count`, then `count × u32` node ids |
//! | `0x03` Cardinality | `u32 count`, then `count × (u32 node, u64 distance bits)` |
//! | `0x04` NeighborhoodFunction | `u32 count`, then `count × u32` node ids |
//! | `0x05` Jaccard | `u64 distance bits`, `u32 count`, then `count × (u32 u, u32 v)` |
//! | `0x06` SketchPrefix | `u64 distance bits`, `u32 count`, then `count × u32` node ids |
//! | `0x07` Health | empty — a liveness/ownership ping |
//! | `0x08` GenInfo | empty — asks which frozen generation is being served |
//!
//! Response types (server → client):
//!
//! | type | payload |
//! |---|---|
//! | `0x81` Floats | `u32 count`, then `count × u64` — `f64::to_bits` of each answer, so transport is lossless and served answers stay **bitwise identical** to the local engine |
//! | `0x82` Curves | `u32 count`, then per curve `u32 len` + `len × (u64 dist bits, u64 value bits)` |
//! | `0x83` Sketches | `u32 count`, then per node `u32 len` + `len × (u64 rank bits, u32 node id)` |
//! | `0x84` Partial | `u32 count`, then per slot a `u8` tag: `0` + `u64` answer bits (the query succeeded, bitwise identical to the local engine) or `1` + `u16` error code (the shard owning that query is down) |
//! | `0x85` Health | `u64 range start`, `u64 range end` — the node range this server owns |
//! | `0x86` GenInfo | `u64 generation` — the frozen generation currently served (`0` for a store that never swaps) |
//! | `0xEE` Error | `u16 code`, `u32 message length`, then the UTF-8 message |
//!
//! `SketchPrefix` is the distributed tier's join primitive: it returns,
//! per queried node `v`, the `(rank, node)` sequence of `ADS(v)`'s
//! entries within the query distance, in canonical `(dist, node)` order —
//! exactly the insertion sequence `AdsView::minhash_at` feeds a bottom-k
//! MinHash sketch. A router answering a *cross-shard* Jaccard pair
//! fetches each endpoint's prefix from its owning backend, replays the
//! insertions, and runs the same estimator the local engine runs — so
//! even answers that need two shards' data stay bitwise identical.
//!
//! Kernel tags encode [`DecayKernel`]: `0` Threshold (parameter = `d`),
//! `1` Exponential (parameter = `base`), `2` Harmonic, `3` Constant
//! (parameter bits are zero for the parameterless kernels).
//!
//! Requests are answered in order, one response frame per request frame,
//! so clients may pipeline any number of requests before reading.

use std::io::{Read, Write};

use adsketch_core::centrality::DecayKernel;
use adsketch_graph::NodeId;

use crate::error::ServeError;

/// Magic bytes opening the client handshake.
pub const WIRE_MAGIC: [u8; 8] = *b"ADSKWIR1";
/// The wire protocol version this build speaks.
pub const WIRE_VERSION: u32 = 1;
/// Upper bound on a frame body's length (64 MiB): reject runaway or
/// garbage length prefixes before allocating.
pub const MAX_FRAME_LEN: u32 = 1 << 26;

/// Error code: the client's protocol version is not supported.
pub const ERR_VERSION: u16 = 1;
/// Error code: unknown message type or undecodable payload.
pub const ERR_MALFORMED: u16 = 2;
/// Error code: a node id in the request is out of range for the store.
pub const ERR_NODE_RANGE: u16 = 3;
/// Error code: the batch's answer would not fit in one frame — split the
/// request into smaller batches.
pub const ERR_RESPONSE_TOO_LARGE: u16 = 4;
/// Error code: the node is inside `0..n` but this backend does not own
/// its shard range — the request was routed to the wrong backend.
pub const ERR_SHARD_RANGE: u16 = 5;
/// Error code: a shard backend required by the request could not be
/// reached (or kept failing) within the router's deadline and retry
/// budget. In the router's default all-or-nothing mode the whole request
/// gets this error frame instead of a partial merge.
pub const ERR_BACKEND: u16 = 6;
/// Error code: every replica of the shard owning this query was down, so
/// this slot of a degraded-mode [`Response::Partial`] batch has no
/// answer. Only appears inside `Partial` frames, never as a whole-frame
/// [`Response::Error`].
pub const ERR_SHARD_DOWN: u16 = 7;

const TYPE_HARMONIC: u8 = 0x01;
const TYPE_DECAY: u8 = 0x02;
const TYPE_CARDINALITY: u8 = 0x03;
const TYPE_NEIGHBORHOOD: u8 = 0x04;
const TYPE_JACCARD: u8 = 0x05;
const TYPE_SKETCH_PREFIX: u8 = 0x06;
const TYPE_HEALTH: u8 = 0x07;
const TYPE_GEN_INFO: u8 = 0x08;
const TYPE_FLOATS: u8 = 0x81;
const TYPE_CURVES: u8 = 0x82;
const TYPE_SKETCHES: u8 = 0x83;
const TYPE_PARTIAL: u8 = 0x84;
const TYPE_HEALTH_REPLY: u8 = 0x85;
const TYPE_GEN_INFO_REPLY: u8 = 0x86;
const TYPE_ERROR: u8 = 0xEE;
const SLOT_VALUE: u8 = 0;
const SLOT_DOWN: u8 = 1;

/// One client request: a batch of queries of a single kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Harmonic centrality of each node.
    Harmonic {
        /// Queried node ids.
        nodes: Vec<NodeId>,
    },
    /// Distance-decay centrality of each node under `kernel`.
    Decay {
        /// The decay kernel applied to each distance.
        kernel: DecayKernel,
        /// Queried node ids.
        nodes: Vec<NodeId>,
    },
    /// HIP neighborhood-cardinality estimate `|N_d(v)|` per query.
    Cardinality {
        /// `(node, query distance)` pairs.
        queries: Vec<(NodeId, f64)>,
    },
    /// The cumulative neighborhood function of each node.
    NeighborhoodFunction {
        /// Queried node ids.
        nodes: Vec<NodeId>,
    },
    /// Estimated Jaccard similarity of `N_d(u)` and `N_d(v)` per pair.
    Jaccard {
        /// The query distance shared by all pairs.
        d: f64,
        /// Queried node pairs.
        pairs: Vec<(NodeId, NodeId)>,
    },
    /// The `(rank, node)` MinHash insertion sequence of each node's
    /// distance-≤ `d` sketch prefix (the cross-shard join primitive; see
    /// the module docs).
    SketchPrefix {
        /// The query distance bounding each prefix.
        d: f64,
        /// Queried node ids.
        nodes: Vec<NodeId>,
    },
    /// A liveness/ownership ping. Servers answer [`Response::Health`]
    /// with the node range they own without touching any sketch data, so
    /// the router's health prober can verify a replica is alive *and*
    /// serving the shard it is configured for at negligible cost.
    Health,
    /// Asks which frozen generation the server currently answers from.
    /// A store that never swaps reports generation `0`; a hot-swapping
    /// [`crate::GenerationStore`] reports the generation it has pinned.
    /// Like [`Request::Health`] this touches no sketch data.
    GenInfo,
}

/// One slot of a degraded-mode [`Response::Partial`] batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchSlot {
    /// The query succeeded; the answer is bitwise identical to the local
    /// engine's.
    Value(f64),
    /// The shard owning this query had no reachable replica; the code is
    /// [`ERR_SHARD_DOWN`].
    Down(u16),
}

/// One server response (answers frame `i` pairs with request frame `i`).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One `f64` answer per query of the request batch.
    Floats(Vec<f64>),
    /// One `(distance, value)` step curve per queried node.
    Curves(Vec<Vec<(f64, f64)>>),
    /// One `(rank, node)` MinHash insertion sequence per queried node, in
    /// canonical order (answers a [`Request::SketchPrefix`]).
    Sketches(Vec<Vec<(f64, NodeId)>>),
    /// A degraded-mode float batch: one slot per query, each either a
    /// successful answer or a typed [`ERR_SHARD_DOWN`] marker. Only a
    /// router with `RouterConfig::degraded` enabled emits this frame.
    Partial(Vec<BatchSlot>),
    /// Answers [`Request::Health`]: the `[start, end)` node range this
    /// server owns (a backend reports its shard record; a router reports
    /// the full keyspace).
    Health {
        /// First owned node id.
        start: u64,
        /// One past the last owned node id.
        end: u64,
    },
    /// Answers [`Request::GenInfo`]: the frozen generation being served.
    GenInfo {
        /// The serving generation (`0` when the store never swaps).
        generation: u64,
    },
    /// The request could not be served; the connection stays usable.
    Error {
        /// Machine-readable code (`ERR_*`).
        code: u16,
        /// Human-readable description.
        message: String,
    },
}

pub(crate) fn kernel_to_wire(k: DecayKernel) -> (u8, u64) {
    match k {
        DecayKernel::Threshold(d) => (0, d.to_bits()),
        DecayKernel::Exponential { base } => (1, base.to_bits()),
        DecayKernel::Harmonic => (2, 0),
        DecayKernel::Constant => (3, 0),
    }
}

pub(crate) fn kernel_from_wire(tag: u8, bits: u64) -> Result<DecayKernel, ServeError> {
    Ok(match tag {
        0 => DecayKernel::Threshold(f64::from_bits(bits)),
        1 => DecayKernel::Exponential {
            base: f64::from_bits(bits),
        },
        2 => DecayKernel::Harmonic,
        3 => DecayKernel::Constant,
        _ => {
            return Err(ServeError::Protocol(format!(
                "unknown decay-kernel tag {tag}"
            )))
        }
    })
}

/// A bounds-checked little-endian decoder over one frame body.
struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        if self.0.len() < n {
            return Err(ServeError::Protocol(format!(
                "frame body too short: wanted {n} more bytes, have {}",
                self.0.len()
            )));
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ServeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2B")))
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    fn f64(&mut self) -> Result<f64, ServeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `count` declared inside a frame body can never describe more
    /// elements than the body has bytes for — reject before allocating.
    /// (Widened arithmetic: the count is untrusted and `count *
    /// elem_bytes` must not wrap on 32-bit targets.)
    fn count(&mut self, elem_bytes: usize) -> Result<usize, ServeError> {
        let count = self.u32()? as usize;
        if count as u64 * elem_bytes as u64 > self.0.len() as u64 {
            return Err(ServeError::Protocol(format!(
                "count {count} exceeds the frame body ({} bytes left)",
                self.0.len()
            )));
        }
        Ok(count)
    }

    fn finish(self) -> Result<(), ServeError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(ServeError::Protocol(format!(
                "{} trailing bytes in frame body",
                self.0.len()
            )))
        }
    }
}

impl Request {
    /// Encodes the request as one frame body (type byte + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Harmonic { nodes } => {
                out.push(TYPE_HARMONIC);
                push_nodes(&mut out, nodes);
            }
            Request::Decay { kernel, nodes } => {
                out.push(TYPE_DECAY);
                let (tag, bits) = kernel_to_wire(*kernel);
                out.push(tag);
                out.extend_from_slice(&bits.to_le_bytes());
                push_nodes(&mut out, nodes);
            }
            Request::Cardinality { queries } => {
                out.push(TYPE_CARDINALITY);
                out.extend_from_slice(&(queries.len() as u32).to_le_bytes());
                for &(v, d) in queries {
                    out.extend_from_slice(&v.to_le_bytes());
                    out.extend_from_slice(&d.to_bits().to_le_bytes());
                }
            }
            Request::NeighborhoodFunction { nodes } => {
                out.push(TYPE_NEIGHBORHOOD);
                push_nodes(&mut out, nodes);
            }
            Request::Jaccard { d, pairs } => {
                out.push(TYPE_JACCARD);
                out.extend_from_slice(&d.to_bits().to_le_bytes());
                out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
                for &(u, v) in pairs {
                    out.extend_from_slice(&u.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Request::SketchPrefix { d, nodes } => {
                out.push(TYPE_SKETCH_PREFIX);
                out.extend_from_slice(&d.to_bits().to_le_bytes());
                push_nodes(&mut out, nodes);
            }
            Request::Health => out.push(TYPE_HEALTH),
            Request::GenInfo => out.push(TYPE_GEN_INFO),
        }
        out
    }

    /// Decodes one frame body into a request, rejecting unknown types,
    /// short bodies, oversized counts, and trailing bytes.
    pub fn decode(body: &[u8]) -> Result<Self, ServeError> {
        let mut c = Cursor(body);
        let req = match c.u8()? {
            TYPE_HARMONIC => Request::Harmonic {
                nodes: take_nodes(&mut c)?,
            },
            TYPE_DECAY => {
                let tag = c.u8()?;
                let bits = c.u64()?;
                Request::Decay {
                    kernel: kernel_from_wire(tag, bits)?,
                    nodes: take_nodes(&mut c)?,
                }
            }
            TYPE_CARDINALITY => {
                let count = c.count(12)?;
                let mut queries = Vec::with_capacity(count);
                for _ in 0..count {
                    let v = c.u32()?;
                    queries.push((v, c.f64()?));
                }
                Request::Cardinality { queries }
            }
            TYPE_NEIGHBORHOOD => Request::NeighborhoodFunction {
                nodes: take_nodes(&mut c)?,
            },
            TYPE_JACCARD => {
                let d = c.f64()?;
                let count = c.count(8)?;
                let mut pairs = Vec::with_capacity(count);
                for _ in 0..count {
                    let u = c.u32()?;
                    pairs.push((u, c.u32()?));
                }
                Request::Jaccard { d, pairs }
            }
            TYPE_SKETCH_PREFIX => {
                let d = c.f64()?;
                Request::SketchPrefix {
                    d,
                    nodes: take_nodes(&mut c)?,
                }
            }
            TYPE_HEALTH => Request::Health,
            TYPE_GEN_INFO => Request::GenInfo,
            t => {
                return Err(ServeError::Protocol(format!(
                    "unknown request type {t:#04x}"
                )))
            }
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response as one frame body (type byte + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Floats(xs) => {
                out.push(TYPE_FLOATS);
                out.extend_from_slice(&(xs.len() as u32).to_le_bytes());
                for &x in xs {
                    out.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
            Response::Curves(curves) => {
                out.push(TYPE_CURVES);
                out.extend_from_slice(&(curves.len() as u32).to_le_bytes());
                for curve in curves {
                    out.extend_from_slice(&(curve.len() as u32).to_le_bytes());
                    for &(d, v) in curve {
                        out.extend_from_slice(&d.to_bits().to_le_bytes());
                        out.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                }
            }
            Response::Sketches(seqs) => {
                out.push(TYPE_SKETCHES);
                out.extend_from_slice(&(seqs.len() as u32).to_le_bytes());
                for seq in seqs {
                    out.extend_from_slice(&(seq.len() as u32).to_le_bytes());
                    for &(rank, node) in seq {
                        out.extend_from_slice(&rank.to_bits().to_le_bytes());
                        out.extend_from_slice(&node.to_le_bytes());
                    }
                }
            }
            Response::Partial(slots) => {
                out.push(TYPE_PARTIAL);
                out.extend_from_slice(&(slots.len() as u32).to_le_bytes());
                for &slot in slots {
                    match slot {
                        BatchSlot::Value(x) => {
                            out.push(SLOT_VALUE);
                            out.extend_from_slice(&x.to_bits().to_le_bytes());
                        }
                        BatchSlot::Down(code) => {
                            out.push(SLOT_DOWN);
                            out.extend_from_slice(&code.to_le_bytes());
                        }
                    }
                }
            }
            Response::Health { start, end } => {
                out.push(TYPE_HEALTH_REPLY);
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&end.to_le_bytes());
            }
            Response::GenInfo { generation } => {
                out.push(TYPE_GEN_INFO_REPLY);
                out.extend_from_slice(&generation.to_le_bytes());
            }
            Response::Error { code, message } => {
                out.push(TYPE_ERROR);
                out.extend_from_slice(&code.to_le_bytes());
                out.extend_from_slice(&(message.len() as u32).to_le_bytes());
                out.extend_from_slice(message.as_bytes());
            }
        }
        out
    }

    /// Decodes one frame body into a response.
    pub fn decode(body: &[u8]) -> Result<Self, ServeError> {
        let mut c = Cursor(body);
        let resp = match c.u8()? {
            TYPE_FLOATS => {
                let count = c.count(8)?;
                let mut xs = Vec::with_capacity(count);
                for _ in 0..count {
                    xs.push(c.f64()?);
                }
                Response::Floats(xs)
            }
            TYPE_CURVES => {
                let count = c.count(4)?;
                let mut curves = Vec::with_capacity(count);
                for _ in 0..count {
                    let len = c.count(16)?;
                    let mut curve = Vec::with_capacity(len);
                    for _ in 0..len {
                        let d = c.f64()?;
                        curve.push((d, c.f64()?));
                    }
                    curves.push(curve);
                }
                Response::Curves(curves)
            }
            TYPE_SKETCHES => {
                let count = c.count(4)?;
                let mut seqs = Vec::with_capacity(count);
                for _ in 0..count {
                    let len = c.count(12)?;
                    let mut seq = Vec::with_capacity(len);
                    for _ in 0..len {
                        let rank = c.f64()?;
                        seq.push((rank, c.u32()?));
                    }
                    seqs.push(seq);
                }
                Response::Sketches(seqs)
            }
            TYPE_PARTIAL => {
                // Smallest slot is 3 bytes (tag + u16 code).
                let count = c.count(3)?;
                let mut slots = Vec::with_capacity(count);
                for _ in 0..count {
                    slots.push(match c.u8()? {
                        SLOT_VALUE => BatchSlot::Value(c.f64()?),
                        SLOT_DOWN => BatchSlot::Down(c.u16()?),
                        t => {
                            return Err(ServeError::Protocol(format!(
                                "unknown partial-batch slot tag {t}"
                            )))
                        }
                    });
                }
                Response::Partial(slots)
            }
            TYPE_HEALTH_REPLY => {
                let start = c.u64()?;
                Response::Health {
                    start,
                    end: c.u64()?,
                }
            }
            TYPE_GEN_INFO_REPLY => Response::GenInfo {
                generation: c.u64()?,
            },
            TYPE_ERROR => {
                let code = c.u16()?;
                let len = c.count(1)?;
                let bytes = c.take(len)?;
                Response::Error {
                    code,
                    message: String::from_utf8_lossy(bytes).into_owned(),
                }
            }
            t => {
                return Err(ServeError::Protocol(format!(
                    "unknown response type {t:#04x}"
                )))
            }
        };
        c.finish()?;
        Ok(resp)
    }
}

fn push_nodes(out: &mut Vec<u8>, nodes: &[NodeId]) {
    out.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
    for &v in nodes {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn take_nodes(c: &mut Cursor<'_>) -> Result<Vec<NodeId>, ServeError> {
    let count = c.count(4)?;
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        nodes.push(c.u32()?);
    }
    Ok(nodes)
}

/// Writes one frame (`u32` length prefix + body) to `w`.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> Result<(), ServeError> {
    if body.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(ServeError::Protocol(format!(
            "frame body of {} bytes exceeds MAX_FRAME_LEN",
            body.len()
        )));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    Ok(())
}

/// Reads one frame body from `r`. Returns `Ok(None)` on clean EOF at a
/// frame boundary (the peer closed the connection between frames).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, ServeError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(ServeError::Protocol(
                    "connection closed mid frame header".into(),
                ))
            }
            Ok(m) => filled += m,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(ServeError::Protocol(format!(
            "frame length {len} exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => {
            ServeError::Protocol("connection closed mid frame body".into())
        }
        _ => ServeError::Io(e),
    })?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let body = req.encode();
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let body = resp.encode();
        assert_eq!(Response::decode(&body).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Harmonic {
            nodes: vec![0, 7, u32::MAX - 1],
        });
        roundtrip_request(Request::Decay {
            kernel: DecayKernel::Exponential { base: 2.5 },
            nodes: vec![3, 1, 4],
        });
        roundtrip_request(Request::Decay {
            kernel: DecayKernel::Threshold(4.25),
            nodes: vec![],
        });
        roundtrip_request(Request::Cardinality {
            queries: vec![(0, 0.0), (9, f64::INFINITY), (2, 1.5)],
        });
        roundtrip_request(Request::NeighborhoodFunction { nodes: vec![5] });
        roundtrip_request(Request::Jaccard {
            d: 3.0,
            pairs: vec![(0, 1), (2, 3)],
        });
        roundtrip_request(Request::SketchPrefix {
            d: f64::INFINITY,
            nodes: vec![0, 42],
        });
        roundtrip_request(Request::Health);
        roundtrip_request(Request::GenInfo);
    }

    #[test]
    fn responses_roundtrip_bitwise() {
        // NaN payloads survive because transport is f64::to_bits.
        let nan = f64::from_bits(0x7ff8_0000_0000_1234);
        let resp = Response::Floats(vec![0.0, -0.0, 1.5, nan, f64::INFINITY]);
        let body = resp.encode();
        match Response::decode(&body).unwrap() {
            Response::Floats(xs) => {
                assert_eq!(xs.len(), 5);
                assert_eq!(xs[1].to_bits(), (-0.0f64).to_bits());
                assert_eq!(xs[3].to_bits(), nan.to_bits());
            }
            other => panic!("wrong variant: {other:?}"),
        }
        roundtrip_response(Response::Curves(vec![vec![(1.0, 2.0), (2.0, 3.5)], vec![]]));
        roundtrip_response(Response::Sketches(vec![
            vec![(0.25, 3), (0.5, 1)],
            vec![],
            vec![(1.0, 7)],
        ]));
        roundtrip_response(Response::Error {
            code: ERR_NODE_RANGE,
            message: "node 99 out of range".into(),
        });
        roundtrip_response(Response::Health {
            start: 7,
            end: u64::MAX,
        });
        roundtrip_response(Response::GenInfo { generation: 0 });
        roundtrip_response(Response::GenInfo {
            generation: u64::MAX,
        });
        // Partial slots carry raw bits too — NaN values survive.
        let partial = Response::Partial(vec![
            BatchSlot::Value(-0.0),
            BatchSlot::Down(ERR_SHARD_DOWN),
            BatchSlot::Value(nan),
        ]);
        let body = partial.encode();
        match Response::decode(&body).unwrap() {
            Response::Partial(slots) => {
                assert_eq!(slots[1], BatchSlot::Down(ERR_SHARD_DOWN));
                match (slots[0], slots[2]) {
                    (BatchSlot::Value(a), BatchSlot::Value(b)) => {
                        assert_eq!(a.to_bits(), (-0.0f64).to_bits());
                        assert_eq!(b.to_bits(), nan.to_bits());
                    }
                    other => panic!("wrong slots: {other:?}"),
                }
            }
            other => panic!("wrong variant: {other:?}"),
        }
        roundtrip_response(Response::Partial(vec![]));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0x77]).is_err());
        // Truncated body.
        let mut body = Request::Harmonic {
            nodes: vec![1, 2, 3],
        }
        .encode();
        body.pop();
        assert!(Request::decode(&body).is_err());
        // Trailing bytes.
        let mut body = Request::Harmonic { nodes: vec![1] }.encode();
        body.push(0);
        assert!(Request::decode(&body).is_err());
        // A count larger than the body can hold must not allocate/pass.
        let mut huge = vec![TYPE_HARMONIC];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&huge).is_err());
        assert!(Response::decode(&[0x00]).is_err());
        // Health requests carry no payload; trailing bytes are rejected.
        assert!(Request::decode(&[TYPE_HEALTH, 0]).is_err());
        // Same for GenInfo, and its reply needs its full u64.
        assert!(Request::decode(&[TYPE_GEN_INFO, 0]).is_err());
        assert!(Response::decode(&[TYPE_GEN_INFO_REPLY, 1, 2, 3]).is_err());
        // Unknown partial-slot tag.
        let mut bad = vec![TYPE_PARTIAL];
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.extend_from_slice(&[9, 0, 0]);
        assert!(Response::decode(&bad).is_err());
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
        // Oversized length prefix is rejected before allocation.
        let bad = (MAX_FRAME_LEN + 1).to_le_bytes();
        assert!(read_frame(&mut &bad[..]).is_err());
        // EOF mid-header.
        assert!(read_frame(&mut &[0u8, 1][..]).is_err());
    }
}
