//! The router's sharded, size-bounded answer cache.
//!
//! A frozen store is **immutable per generation** — a shard file never
//! changes under a running server; the dynamic tier instead hot-swaps
//! whole generations atomically ([`crate::GenerationStore`]). That makes
//! per-node float answers perfectly cacheable *within* a generation, so
//! the generation number is simply part of the key: the cache maps one
//! [`CacheKey`] — `(generation, request kind, kernel tag, parameter
//! bits, node / pair)` — to the `f64::to_bits` of the answer a backend
//! already served, so a hit replays the **exact bits** the
//! scatter/gather path would produce and the router's bitwise-identity
//! guarantee is preserved verbatim. A swap invalidates stale entries by
//! key construction — old-generation bits can never answer a
//! new-generation lookup — and the orphaned entries age out of the LRU.
//!
//! Layout: [`NUM_SHARDS`] independent LRU segments, each behind its own
//! mutex (keys are spread by a mixed FNV hash), so concurrent router
//! workers rarely contend on the same lock. Each segment is a slab-backed
//! doubly-linked LRU with a fixed entry capacity derived from
//! [`crate::RouterConfig::cache_bytes`] at [`ENTRY_BYTES`] per entry —
//! inserting past capacity evicts the segment's least-recently-used
//! entry instead of growing.
//!
//! Only single-float answer kinds are cached (harmonic, decay,
//! cardinality, Jaccard). Curve and sketch-prefix responses are
//! variable-sized and serve as building blocks for other queries; they
//! bypass the cache entirely. Degraded-mode `Down` slots are never
//! inserted — a shard outage must not be remembered past its recovery.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Request-kind discriminants for cache keys. Values match the wire
/// protocol's request type bytes — stable, and meaningless outside the
/// cache (the key never travels).
pub(crate) const KIND_HARMONIC: u8 = 0x01;
pub(crate) const KIND_DECAY: u8 = 0x02;
pub(crate) const KIND_CARDINALITY: u8 = 0x03;
pub(crate) const KIND_JACCARD: u8 = 0x05;

/// Independent LRU segments (each behind its own lock).
const NUM_SHARDS: usize = 16;

/// Budgeted bytes per resident entry: key + value + slab links + hash
/// map slot, rounded up so the configured byte bound errs on the small
/// side.
pub(crate) const ENTRY_BYTES: usize = 64;

/// The identity of one cached float answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// The store generation the answer was served from. Frozen fleets
    /// (which never swap) report a constant `0`; dynamic fleets bump it
    /// on every hot-swap, retiring all older entries by mismatch.
    gen: u64,
    /// Request kind (`KIND_*`).
    kind: u8,
    /// Decay-kernel tag; zero for every other kind.
    tag: u8,
    /// Kernel parameter bits (decay) or query-distance bits
    /// (cardinality, Jaccard); zero for harmonic.
    params: u64,
    /// The queried node, or a Jaccard pair's first endpoint.
    a: u32,
    /// A Jaccard pair's second endpoint; zero otherwise.
    b: u32,
}

impl CacheKey {
    pub(crate) fn harmonic(gen: u64, v: u32) -> Self {
        Self {
            gen,
            kind: KIND_HARMONIC,
            tag: 0,
            params: 0,
            a: v,
            b: 0,
        }
    }

    pub(crate) fn decay(gen: u64, tag: u8, param_bits: u64, v: u32) -> Self {
        Self {
            gen,
            kind: KIND_DECAY,
            tag,
            params: param_bits,
            a: v,
            b: 0,
        }
    }

    pub(crate) fn cardinality(gen: u64, v: u32, d: f64) -> Self {
        Self {
            gen,
            kind: KIND_CARDINALITY,
            tag: 0,
            params: d.to_bits(),
            a: v,
            b: 0,
        }
    }

    /// Pairs are cached as queried — `(u, v)` and `(v, u)` are distinct
    /// keys, so a hit can only ever replay an answer the engine produced
    /// for the identical request.
    pub(crate) fn jaccard(gen: u64, d: f64, u: u32, v: u32) -> Self {
        Self {
            gen,
            kind: KIND_JACCARD,
            tag: 0,
            params: d.to_bits(),
            a: u,
            b: v,
        }
    }

    /// FNV-1a over the key's words with an avalanche finish — picks the
    /// LRU segment.
    fn mix(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for w in [
            self.gen,
            self.params,
            (u64::from(self.a) << 32) | u64::from(self.b),
            (u64::from(self.kind) << 8) | u64::from(self.tag),
        ] {
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^ (h >> 33)
    }
}

/// FNV-1a [`std::hash::Hasher`] for the segment maps. A [`CacheKey`] is
/// 24 bytes of plain words on the router's per-request hot path —
/// SipHash's DoS hardening there costs more than the whole LRU update,
/// and the keyspace (node ids + parameter bits) is not
/// attacker-expandable beyond the store's node range.
#[derive(Debug)]
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        // Avalanche the low bits — FNV-1a alone mixes upward only.
        self.0 ^ (self.0 >> 33)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

type FnvBuild = std::hash::BuildHasherDefault<FnvHasher>;

const NIL: u32 = u32::MAX;

/// One slab slot of an LRU segment.
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: CacheKey,
    bits: u64,
    prev: u32,
    next: u32,
}

/// A fixed-capacity slab LRU: `slots` never grows past `cap`, so the
/// segment's memory is bounded by construction.
#[derive(Debug)]
struct Lru {
    map: HashMap<CacheKey, u32, FnvBuild>,
    slots: Vec<Slot>,
    /// Most-recently-used slot (NIL when empty).
    head: u32,
    /// Least-recently-used slot (the eviction victim; NIL when empty).
    tail: u32,
    cap: usize,
}

impl Lru {
    fn new(cap: usize) -> Self {
        Self {
            map: HashMap::with_capacity_and_hasher(cap, FnvBuild::default()),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            cap,
        }
    }

    fn unlink(&mut self, i: u32) {
        let Slot { prev, next, .. } = self.slots[i as usize];
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, i: u32) {
        self.slots[i as usize].prev = NIL;
        self.slots[i as usize].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h as usize].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: &CacheKey) -> Option<u64> {
        let i = *self.map.get(key)?;
        // Already most-recent: skip the pointer churn (hot keys are, by
        // definition, the common case here).
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(self.slots[i as usize].bits)
    }

    /// Actual allocated bytes of this segment: the slab array plus the
    /// index map's table (one `(key, slot)` entry and one control byte
    /// per usable bucket). Bounded by construction — the slab never
    /// grows past `cap` and the map is pre-sized to it — but measures
    /// real allocation, not the [`ENTRY_BYTES`] budgeting estimate.
    fn alloc_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot>()
            + self.map.capacity() * (std::mem::size_of::<(CacheKey, u32)>() + 1)
    }

    fn insert(&mut self, key: CacheKey, bits: u64) {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i as usize].bits = bits;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        let i = if self.slots.len() < self.cap {
            self.slots.push(Slot {
                key,
                bits,
                prev: NIL,
                next: NIL,
            });
            (self.slots.len() - 1) as u32
        } else {
            // Full: evict the LRU tail and reuse its slot in place.
            let victim = self.tail;
            self.unlink(victim);
            let old = self.slots[victim as usize].key;
            self.map.remove(&old);
            self.slots[victim as usize].key = key;
            self.slots[victim as usize].bits = bits;
            victim
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

/// The shared answer cache: segment-sharded LRUs plus hit/miss counters.
#[derive(Debug)]
pub(crate) struct AnswerCache {
    segments: Vec<Mutex<Lru>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AnswerCache {
    /// Builds a cache bounded by `cache_bytes`, or `None` when the bound
    /// is zero (cache disabled). Capacity is distributed evenly over the
    /// segments; a tiny bound still grants each live segment one entry.
    pub(crate) fn new(cache_bytes: usize) -> Option<Arc<AnswerCache>> {
        if cache_bytes == 0 {
            return None;
        }
        let entries = (cache_bytes / ENTRY_BYTES).max(1);
        let segments = NUM_SHARDS.min(entries);
        let per_segment = entries.div_ceil(segments);
        Some(Arc::new(AnswerCache {
            segments: (0..segments)
                .map(|_| Mutex::new(Lru::new(per_segment)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }))
    }

    fn segment(&self, key: &CacheKey) -> &Mutex<Lru> {
        &self.segments[(key.mix() as usize) % self.segments.len()]
    }

    /// Looks up one answer's bits, refreshing its recency and counting
    /// the hit or miss.
    pub(crate) fn get(&self, key: &CacheKey) -> Option<u64> {
        let got = self
            .segment(key)
            .lock()
            .expect("cache segment lock")
            .get(key);
        match got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Inserts (or refreshes) one answer's bits, evicting the segment's
    /// LRU entry when full.
    pub(crate) fn insert(&self, key: CacheKey, bits: u64) {
        self.segment(&key)
            .lock()
            .expect("cache segment lock")
            .insert(key, bits);
    }

    fn resident_entries(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.lock().expect("cache segment lock").map.len())
            .sum()
    }

    fn capacity_entries(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.lock().expect("cache segment lock").cap)
            .sum()
    }
}

/// A cloneable, read-only view of a router's answer-cache counters.
///
/// Take one with [`crate::Router::cache_stats`] **before**
/// [`crate::Router::run`] (which consumes the router); the handle stays
/// valid while the router serves and after it stops, so load generators
/// can report end-of-run hit rates.
#[derive(Debug, Clone)]
pub struct CacheStatsHandle {
    pub(crate) inner: Arc<AnswerCache>,
}

impl CacheStatsHandle {
    /// Lookups answered from the cache since the router was bound.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to the backend fleet.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Entries currently resident across all segments.
    pub fn resident_entries(&self) -> usize {
        self.inner.resident_entries()
    }

    /// The fixed entry capacity across all segments — residency can
    /// never exceed this, whatever the workload.
    pub fn capacity_entries(&self) -> usize {
        self.inner.capacity_entries()
    }

    /// Actual allocated bytes across all segments: the LRU slab arrays
    /// plus the index maps' tables. This measures what the cache really
    /// holds in memory — **not** the per-entry budgeting estimate
    /// used to derive entry capacity from
    /// [`crate::RouterConfig::cache_bytes`] — so serve-tier size
    /// accounting reflects reality. Still bounded by construction: every
    /// segment's slab and map are capped at their fixed entry capacity,
    /// so this can exceed the configured byte budget only by allocator
    /// rounding, never grow with the workload.
    pub fn resident_bytes(&self) -> usize {
        self.inner
            .segments
            .iter()
            .map(|s| s.lock().expect("cache segment lock").alloc_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_budget_disables_the_cache() {
        assert!(AnswerCache::new(0).is_none());
    }

    #[test]
    fn hits_replay_exact_bits_and_counters_track() {
        let cache = AnswerCache::new(1 << 20).expect("enabled");
        let nan = f64::from_bits(0x7ff8_0000_0000_1234);
        let key = CacheKey::cardinality(0, 7, 2.5);
        assert_eq!(cache.get(&key), None);
        cache.insert(key, nan.to_bits());
        assert_eq!(cache.get(&key), Some(nan.to_bits()));
        // A different d is a different key.
        assert_eq!(cache.get(&CacheKey::cardinality(0, 7, 3.5)), None);
        // Pair order matters: (u, v) never answers (v, u).
        cache.insert(CacheKey::jaccard(0, 1.0, 1, 2), 42);
        assert_eq!(cache.get(&CacheKey::jaccard(0, 1.0, 2, 1)), None);
        assert_eq!(cache.get(&CacheKey::jaccard(0, 1.0, 1, 2)), Some(42));
        let handle = CacheStatsHandle { inner: cache };
        assert_eq!(handle.hits(), 2);
        assert_eq!(handle.misses(), 3);
        assert!((handle.hit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn generations_partition_the_keyspace() {
        // A hot-swap bumps the generation; old-generation bits must
        // never answer a new-generation lookup.
        let cache = AnswerCache::new(1 << 20).expect("enabled");
        cache.insert(CacheKey::harmonic(1, 9), 111);
        assert_eq!(cache.get(&CacheKey::harmonic(2, 9)), None);
        assert_eq!(cache.get(&CacheKey::harmonic(1, 9)), Some(111));
        cache.insert(CacheKey::jaccard(1, 0.5, 3, 4), 7);
        assert_eq!(cache.get(&CacheKey::jaccard(2, 0.5, 3, 4)), None);
    }

    #[test]
    fn filling_past_capacity_evicts_instead_of_growing() {
        // A deliberately tiny cache: every segment holds a handful of
        // entries.
        let cache = AnswerCache::new(64 * ENTRY_BYTES).expect("enabled");
        let cap = cache.capacity_entries();
        assert!(cap >= 64, "budget grants at least the requested entries");
        for v in 0..10_000u32 {
            cache.insert(CacheKey::harmonic(0, v), u64::from(v));
        }
        assert!(
            cache.resident_entries() <= cap,
            "resident {} exceeds capacity {}",
            cache.resident_entries(),
            cap
        );
        // The most recent insert of some segment must still be resident:
        // scan back from the end until one hits.
        assert!(
            (9_990..10_000u32).any(|v| {
                cache
                    .segment(&CacheKey::harmonic(0, v))
                    .lock()
                    .unwrap()
                    .map
                    .contains_key(&CacheKey::harmonic(0, v))
            }),
            "recent inserts survive eviction"
        );
    }

    #[test]
    fn lru_order_prefers_recently_used() {
        // One segment of capacity 2: touching an entry saves it.
        let mut lru = Lru::new(2);
        let (a, b, c) = (
            CacheKey::harmonic(0, 1),
            CacheKey::harmonic(0, 2),
            CacheKey::harmonic(0, 3),
        );
        lru.insert(a, 10);
        lru.insert(b, 20);
        assert_eq!(lru.get(&a), Some(10)); // refresh a; b becomes LRU
        lru.insert(c, 30); // evicts b
        assert_eq!(lru.get(&b), None);
        assert_eq!(lru.get(&a), Some(10));
        assert_eq!(lru.get(&c), Some(30));
    }
}
