//! The sharded frozen store: manifest-driven multi-file loading and
//! node-id routing behind the [`AdsView`] trait.
//!
//! A sharded store is a directory written by
//! [`adsketch_core::freeze_sharded`] (or
//! [`adsketch_core::freeze_sharded_format`]): `S` `FrozenAdsSet` files —
//! full-width v1 or compressed v2, and a directory may mix both — where
//! shard `i` populates only the node range its manifest record declares,
//! plus the checksummed `ADSKSHD1` manifest. [`ShardedStore::load`]
//! reads the manifest, then brings all shards up in **parallel** (one
//! thread per shard via the builders' `shard_slots` helper), mapping
//! each shard in place where the platform supports it (`mmap`; replicas
//! share the kernel page cache; mapped v2 shards stay compressed and
//! decode lazily per row block on first touch) and verifying for
//! each shard:
//!
//! * the store-level format checks (magic, version, checksum, structure —
//!   [`adsketch_core::FrozenAdsSet::from_reader`]),
//! * the manifest's whole-file FNV-1a digest (so a shard file from a
//!   different freeze, or one corrupted at rest, is rejected even if it
//!   is a valid store on its own),
//! * parameter agreement (`k`, `n`, per-shard entry counts), and
//! * that rows *outside* the shard's declared range are empty.
//!
//! The manifest itself rejects overlapping or gapped node-range tables,
//! so after a successful load every node id has exactly one owning shard
//! and [`ShardedStore`] can implement [`AdsView`] by routing each
//! per-node access to that shard. Because every row is byte-for-byte the
//! row of the unsharded store, **every estimator and every
//! [`QueryEngine`] batch answers bitwise identically to the unsharded
//! `FrozenAdsSet`** — the property the serving tier's end-to-end
//! guarantee is built on.

use std::path::{Path, PathBuf};

use adsketch_core::frozen::{shard_file_name, SHARD_MANIFEST_FILE};
use adsketch_core::{shard_slots, AdsView, FrozenAdsSet, LoadOptions, QueryEngine, ShardManifest};
use adsketch_graph::NodeId;

use crate::error::ServeError;

/// A loaded sharded store: the validated manifest plus one resident
/// [`FrozenAdsSet`] per shard, with per-node routing by the manifest's
/// node-range table.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedStore {
    manifest: ShardManifest,
    shards: Vec<FrozenAdsSet>,
}

impl ShardedStore {
    /// Loads a sharded store from a directory written by
    /// [`adsketch_core::freeze_sharded`], mapping every shard's columns
    /// in place (zero-copy where the platform supports it) in parallel
    /// and verifying every integrity property listed in the
    /// [module docs](self). Equivalent to [`ShardedStore::load_with`]
    /// with [`LoadOptions::mapped`].
    pub fn load(dir: impl AsRef<Path>) -> Result<Self, ServeError> {
        Self::load_with(dir, LoadOptions::mapped())
    }

    /// [`ShardedStore::load`] with explicit [`LoadOptions`]: `map` picks
    /// zero-copy vs. copying column backing, and `verify: false` skips
    /// the checksum, whole-file digest, and canonical-order scans for
    /// warm restarts of already-verified store directories (manifest
    /// parsing, parameter agreement, and range checks always run).
    pub fn load_with(dir: impl AsRef<Path>, opts: LoadOptions) -> Result<Self, ServeError> {
        let dir = dir.as_ref();
        let manifest = ShardManifest::load(dir.join(SHARD_MANIFEST_FILE))?;
        let mut slots: Vec<Option<Result<FrozenAdsSet, ServeError>>> =
            (0..manifest.num_shards()).map(|_| None).collect();
        shard_slots(
            &mut slots,
            0,
            || (),
            |(), i, slot| *slot = Some(load_shard(dir, &manifest, i, opts)),
        );
        let mut shards = Vec::with_capacity(manifest.num_shards());
        for slot in slots {
            shards.push(slot.expect("every slot filled")?);
        }
        Ok(Self { manifest, shards })
    }

    /// The validated manifest this store was loaded against.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning node `v` (the unique shard whose manifest range
    /// contains `v`). Callers must pass `v < num_nodes`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> usize {
        self.manifest.shard_of(v as u64)
    }

    /// Direct access to shard `i`'s resident store.
    pub fn shard(&self, i: usize) -> &FrozenAdsSet {
        &self.shards[i]
    }

    #[inline]
    fn owner(&self, v: NodeId) -> &FrozenAdsSet {
        &self.shards[self.shard_of(v)]
    }

    /// A batch query engine over this store (`threads = 0` ⇒ all cores).
    /// Answers are bitwise identical to an engine over the unsharded
    /// [`FrozenAdsSet`].
    pub fn engine(&self, threads: usize) -> QueryEngine<'_, ShardedStore> {
        QueryEngine::with_threads(self, threads)
    }

    /// Total resident memory of all shards in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.resident_bytes()).sum()
    }
}

/// Brings one shard off disk (mapped or copied per `opts`), verifying
/// digest and cross-shard consistency against the manifest. Shared with
/// the distributed tier's [`crate::backend::BackendStore`], which loads
/// exactly one shard this way.
pub(crate) fn load_shard(
    dir: &Path,
    manifest: &ShardManifest,
    i: usize,
    opts: LoadOptions,
) -> Result<FrozenAdsSet, ServeError> {
    let rec = manifest.records()[i];
    let path: PathBuf = dir.join(shard_file_name(i));
    // Trailing bytes are rejected by the store loader itself, so nothing
    // appended to a shard file can slip past the whole-file digest.
    let (shard, digest) = FrozenAdsSet::load_with_digest(&path, opts).map_err(|e| match e {
        adsketch_core::FrozenError::Io(ref io) if io.kind() == std::io::ErrorKind::NotFound => {
            ServeError::Store(format!("shard {i} missing: {}", path.display()))
        }
        e => ServeError::from(e),
    })?;
    if opts.verify {
        let digest = digest.expect("verified loads always produce a whole-file digest");
        if digest != rec.digest {
            // The digest pins the exact bytes, including the store-format
            // version — re-encoding a shard in another format (say v1 → v2)
            // without re-freezing the manifest lands here, so name the
            // format we actually read to make that case self-explanatory.
            return Err(ServeError::Store(format!(
                "shard {i}: file digest {digest:#018x} (a format-v{} store) does not match the \
                 manifest's {:#018x} (corrupt file, a shard from a different freeze, or a shard \
                 re-encoded in a different format version than the manifest was computed over)",
                shard.format_version(),
                rec.digest
            )));
        }
    }
    if shard.k() != manifest.k() {
        return Err(ServeError::Store(format!(
            "shard {i}: k = {} disagrees with the manifest's {}",
            shard.k(),
            manifest.k()
        )));
    }
    if shard.num_nodes() != manifest.num_nodes() {
        return Err(ServeError::Store(format!(
            "shard {i}: covers {} rows, manifest says {} (shards are full-width)",
            shard.num_nodes(),
            manifest.num_nodes()
        )));
    }
    if shard.num_entries() as u64 != rec.entries {
        return Err(ServeError::Store(format!(
            "shard {i}: holds {} entries, manifest records {}",
            shard.num_entries(),
            rec.entries
        )));
    }
    // Rows outside the declared range must be empty, or routing by the
    // manifest table would silently drop them. The shard's CSR offsets
    // are already validated monotone, so this collapses to two prefix
    // checks: no entries before `start`, all entries before `end`.
    if shard.entry_offset(rec.start as usize) != 0
        || shard.entry_offset(rec.end as usize) != shard.num_entries()
    {
        return Err(ServeError::Store(format!(
            "shard {i}: rows are populated outside the declared range {}..{}",
            rec.start, rec.end
        )));
    }
    Ok(shard)
}

impl AdsView for ShardedStore {
    #[inline]
    fn k(&self) -> usize {
        self.manifest.k()
    }

    #[inline]
    fn num_nodes(&self) -> usize {
        self.manifest.num_nodes()
    }

    #[inline]
    fn entry_count(&self, v: NodeId) -> usize {
        self.owner(v).entry_count(v)
    }

    fn for_each_entry(&self, v: NodeId, f: impl FnMut(adsketch_core::AdsEntry)) {
        self.owner(v).for_each_entry(v, f)
    }

    fn for_each_hip(&self, v: NodeId, f: impl FnMut(adsketch_core::HipItem)) {
        self.owner(v).for_each_hip(v, f)
    }

    #[inline]
    fn size_at(&self, v: NodeId, d: f64) -> usize {
        self.owner(v).size_at(v, d)
    }

    #[inline]
    fn total_entries(&self) -> usize {
        self.manifest.total_entries() as usize
    }

    // `minhash_at` deliberately stays on the trait default: it streams
    // the same canonical prefix the shard's own override would insert, so
    // the resulting sketch is identical, without this crate needing a
    // direct `adsketch-minhash` dependency.

    #[inline]
    fn hip_cardinality_at(&self, v: NodeId, d: f64) -> f64 {
        self.owner(v).hip_cardinality_at(v, d)
    }

    #[inline]
    fn hip_reachable(&self, v: NodeId) -> f64 {
        self.owner(v).hip_reachable(v)
    }
}
