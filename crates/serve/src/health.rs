//! Per-endpoint health tracking for the router's replica sets: a
//! lock-light circuit breaker shared by every router worker and the
//! background prober.
//!
//! Each `(shard, replica)` endpoint is in one of three states:
//!
//! * **Closed** — healthy; workers dial and send freely. Consecutive
//!   failures escalate an exponentially growing, jittered cooldown
//!   (`backoff_base`·2ⁱ capped at `backoff_cap`), during which the
//!   endpoint is *cooling*: workers prefer other replicas but may still
//!   fall back to it (a single-replica shard keeps its instant-recovery
//!   behavior rather than stalling behind a timer).
//! * **Open** — `failure_threshold` consecutive failures tripped the
//!   circuit. Workers never dial an open endpoint; requests that find
//!   every replica of a shard open fail fast with
//!   [`crate::error::ServeError::ShardUnavailable`] instead of eating
//!   connect timeouts on the hot path.
//! * **Probing** — the half-open state. Once the cooldown expires, the
//!   prober (only the prober) claims the endpoint with a CAS, pings it
//!   with the `0x07 Health` frame, and either closes the circuit (the
//!   replica answered *and* reported the node range the manifest assigns
//!   it) or re-opens it with a longer cooldown.
//!
//! Backoff jitter is deterministic — a [`SplitMix64`] stream seeded from
//! the endpoint's `(shard, replica)` coordinates — so fault-injection
//! tests can bound dial rates without a real entropy source, and a fleet
//! of routers restarted together still de-synchronizes its reconnects.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use adsketch_util::rng::{Rng64, SplitMix64};

const ST_CLOSED: u8 = 0;
const ST_OPEN: u8 = 1;
const ST_PROBING: u8 = 2;

/// How a worker should treat an endpoint right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tier {
    /// Circuit closed, no cooldown pending: first choice.
    Available,
    /// Circuit closed but inside a post-failure cooldown: use only when
    /// no replica of the shard is `Available`.
    Cooling,
    /// Circuit open (or mid-probe): never dialed by workers.
    Open,
}

struct Endpoint {
    state: AtomicU8,
    /// Consecutive failures since the last success.
    fails: AtomicU32,
    /// Cooldown expiry in milliseconds since the tracker started.
    retry_at_ms: AtomicU64,
    /// Deterministic per-endpoint jitter stream.
    jitter: Mutex<SplitMix64>,
}

/// The shared health table: one [`Endpoint`] per `(shard, replica)`.
pub(crate) struct HealthTracker {
    started: Instant,
    shards: Vec<Vec<Endpoint>>,
    backoff_base: Duration,
    backoff_cap: Duration,
    failure_threshold: u32,
}

impl HealthTracker {
    pub(crate) fn new(
        replicas_per_shard: &[usize],
        backoff_base: Duration,
        backoff_cap: Duration,
        failure_threshold: u32,
    ) -> Self {
        let shards = replicas_per_shard
            .iter()
            .enumerate()
            .map(|(shard, &reps)| {
                (0..reps)
                    .map(|rep| Endpoint {
                        state: AtomicU8::new(ST_CLOSED),
                        fails: AtomicU32::new(0),
                        retry_at_ms: AtomicU64::new(0),
                        jitter: Mutex::new(SplitMix64::new(
                            0x9E37_79B9_7F4A_7C15 ^ ((shard as u64) << 32 | rep as u64),
                        )),
                    })
                    .collect()
            })
            .collect();
        Self {
            started: Instant::now(),
            shards,
            backoff_base,
            backoff_cap,
            failure_threshold: failure_threshold.max(1),
        }
    }

    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn ep(&self, shard: usize, rep: usize) -> &Endpoint {
        &self.shards[shard][rep]
    }

    /// How a worker should treat `(shard, rep)` right now.
    pub(crate) fn tier(&self, shard: usize, rep: usize) -> Tier {
        let ep = self.ep(shard, rep);
        if ep.state.load(Ordering::SeqCst) != ST_CLOSED {
            return Tier::Open;
        }
        if self.now_ms() < ep.retry_at_ms.load(Ordering::SeqCst) {
            Tier::Cooling
        } else {
            Tier::Available
        }
    }

    /// A successful exchange: close the circuit and clear the backoff.
    pub(crate) fn record_success(&self, shard: usize, rep: usize) {
        let ep = self.ep(shard, rep);
        // Cheap fast path: already pristine (the common case on every
        // healthy response).
        if ep.fails.load(Ordering::Relaxed) == 0 && ep.state.load(Ordering::Relaxed) == ST_CLOSED {
            return;
        }
        ep.fails.store(0, Ordering::SeqCst);
        ep.retry_at_ms.store(0, Ordering::SeqCst);
        ep.state.store(ST_CLOSED, Ordering::SeqCst);
    }

    /// A failed dial/exchange/probe: escalate the jittered cooldown and
    /// open the circuit at the consecutive-failure threshold.
    pub(crate) fn record_failure(&self, shard: usize, rep: usize) {
        let ep = self.ep(shard, rep);
        let fails = ep.fails.fetch_add(1, Ordering::SeqCst) + 1;
        let base = self.backoff_base.as_millis().max(1) as u64;
        let cap = self.backoff_cap.as_millis().max(1) as u64;
        let raw = base
            .checked_shl((fails - 1).min(20))
            .unwrap_or(u64::MAX)
            .min(cap);
        // Jitter into [0.75, 1.0) of the nominal cooldown.
        let frac = {
            let mut rng = ep.jitter.lock().expect("jitter lock");
            (rng.next_u64() >> 40) as f64 / (1u64 << 24) as f64
        };
        let cooldown = ((raw as f64) * (0.75 + 0.25 * frac)) as u64;
        ep.retry_at_ms
            .store(self.now_ms() + cooldown.max(1), Ordering::SeqCst);
        if fails >= self.failure_threshold {
            ep.state.store(ST_OPEN, Ordering::SeqCst);
        }
    }

    /// Claims an open endpoint whose cooldown has expired for a
    /// half-open probe. Only one caller can win the CAS, so the prober
    /// sends exactly one ping per cooldown cycle.
    pub(crate) fn take_probe(&self, shard: usize, rep: usize) -> bool {
        let ep = self.ep(shard, rep);
        if ep.state.load(Ordering::SeqCst) != ST_OPEN
            || self.now_ms() < ep.retry_at_ms.load(Ordering::SeqCst)
        {
            return false;
        }
        ep.state
            .compare_exchange(ST_OPEN, ST_PROBING, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Whether any circuit is currently open or probing (tells the
    /// prober whether a round has anything to do).
    pub(crate) fn any_open(&self) -> bool {
        self.shards
            .iter()
            .flatten()
            .any(|ep| ep.state.load(Ordering::SeqCst) != ST_CLOSED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(threshold: u32) -> HealthTracker {
        HealthTracker::new(
            &[2, 1],
            Duration::from_millis(40),
            Duration::from_millis(200),
            threshold,
        )
    }

    #[test]
    fn threshold_opens_and_probe_claims_once() {
        let t = tracker(3);
        assert_eq!(t.tier(0, 0), Tier::Available);
        t.record_failure(0, 0);
        t.record_failure(0, 0);
        assert_eq!(t.tier(0, 0), Tier::Cooling);
        assert_eq!(t.tier(0, 1), Tier::Available);
        assert!(!t.any_open());
        t.record_failure(0, 0);
        assert_eq!(t.tier(0, 0), Tier::Open);
        assert!(t.any_open());
        // Cooldown not expired yet: no probe.
        assert!(!t.take_probe(0, 0));
        std::thread::sleep(Duration::from_millis(250));
        assert!(t.take_probe(0, 0));
        // Probing: still off-limits to workers, and not claimable twice.
        assert_eq!(t.tier(0, 0), Tier::Open);
        assert!(!t.take_probe(0, 0));
        t.record_success(0, 0);
        assert_eq!(t.tier(0, 0), Tier::Available);
        assert!(!t.any_open());
    }

    #[test]
    fn failed_probe_reopens_with_longer_cooldown() {
        let t = tracker(1);
        t.record_failure(1, 0);
        assert_eq!(t.tier(1, 0), Tier::Open);
        let first = t.ep(1, 0).retry_at_ms.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(60));
        assert!(t.take_probe(1, 0));
        t.record_failure(1, 0);
        assert_eq!(t.tier(1, 0), Tier::Open);
        let second = t.ep(1, 0).retry_at_ms.load(Ordering::SeqCst);
        // Escalated: the second cooldown expires later than the first.
        assert!(second > first);
    }

    #[test]
    fn backoff_is_capped_and_jitter_deterministic() {
        let a = tracker(10);
        let b = tracker(10);
        for _ in 0..12 {
            a.record_failure(0, 1);
            b.record_failure(0, 1);
        }
        let ra = a.ep(0, 1).retry_at_ms.load(Ordering::SeqCst);
        let rb = b.ep(0, 1).retry_at_ms.load(Ordering::SeqCst);
        // Same endpoint coordinates ⇒ same jitter stream; cooldowns are
        // capped at backoff_cap (200 ms here, within jitter).
        let now_a = a.now_ms();
        assert!(ra.saturating_sub(now_a) <= 200 + 5);
        assert!(ra.abs_diff(rb) <= 5, "jitter must be deterministic");
    }
}
