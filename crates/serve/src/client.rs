//! The blocking query client: batched requests, optional pipelining.
//!
//! [`Client::connect`] performs the version handshake; the typed helpers
//! ([`Client::harmonic`], [`Client::cardinality`], …) each send one
//! request frame and block on its response. [`Client::pipeline`] sends a
//! whole slice of requests before reading any response — the server
//! answers in order, so deep pipelines amortize the round trip without
//! any client-side bookkeeping.
//!
//! Answers arrive as `f64::to_bits` payloads, so everything a helper
//! returns is bitwise identical to the same batch evaluated locally with
//! [`adsketch_core::QueryEngine`] on the unsharded store.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use adsketch_core::centrality::DecayKernel;
use adsketch_graph::NodeId;

use crate::error::ServeError;
use crate::proto::{
    read_frame, write_frame, BatchSlot, Request, Response, MAX_FRAME_LEN, WIRE_MAGIC, WIRE_VERSION,
};

/// Partial progress of an incremental frame read: [`Client::recv_step`]
/// can give up at a deadline *without* desynchronizing the stream,
/// because the bytes read so far stay parked here and the next call
/// resumes exactly where this one stopped. This is what makes hedged
/// reads safe — the router can poll two replicas' connections in
/// alternation and neither ever loses frame alignment.
#[derive(Default)]
struct FrameRx {
    head: [u8; 4],
    /// Bytes filled of the current stage (header until `body` exists,
    /// then body).
    filled: usize,
    body: Option<Vec<u8>>,
}

/// A blocking connection to an `adsketch-serve` server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// A third handle onto the same socket, used to unwedge a pipeline
    /// whose reader failed while the writer is still blocked.
    stream: TcpStream,
    rx: FrameRx,
}

impl Client {
    /// Connects and performs the protocol handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        Self::handshake(stream)
    }

    /// Like [`Client::connect`], but bounds the TCP connect **and the
    /// handshake reply** — a backend that is down fails fast instead of
    /// waiting out the OS default (which can be minutes), and a backend
    /// that accepts the connection but never answers the handshake
    /// cannot hang the caller either. The handshake deadline is cleared
    /// before returning; use [`Client::set_read_timeout`] to bound
    /// subsequent reads.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Self, ServeError> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        let client = Self::handshake(stream)?;
        client.set_read_timeout(None)?;
        Ok(client)
    }

    fn handshake(stream: TcpStream) -> Result<Self, ServeError> {
        stream.set_nodelay(true)?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream.try_clone()?);
        writer.write_all(&WIRE_MAGIC)?;
        writer.write_all(&WIRE_VERSION.to_le_bytes())?;
        writer.flush()?;
        let mut reply = [0u8; 5];
        reader.read_exact(&mut reply).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ServeError::Protocol("server closed during handshake".into())
            } else {
                ServeError::Io(e)
            }
        })?;
        let server_version = u32::from_le_bytes(reply[1..5].try_into().expect("4B"));
        if reply[0] != 1 {
            return Err(ServeError::Protocol(format!(
                "server rejected the handshake (it speaks protocol version {server_version}, \
                 we speak {WIRE_VERSION})"
            )));
        }
        Ok(Self {
            reader,
            writer,
            stream,
            rx: FrameRx::default(),
        })
    }

    /// Bounds every subsequent blocking read on this connection. `None`
    /// removes the bound. A read that times out surfaces as
    /// [`ServeError::Io`] with kind `WouldBlock`/`TimedOut`.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and blocks on its response frame.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        self.send(req)?;
        self.recv_response()
    }

    /// Writes and flushes one request frame without reading anything —
    /// half of the scatter/gather split the router uses to pipeline over
    /// many backends from one thread.
    pub(crate) fn send(&mut self, req: &Request) -> Result<(), ServeError> {
        write_frame(&mut self.writer, &req.encode())?;
        self.writer.flush()?;
        Ok(())
    }

    /// Blocks on the next response frame (the gather half).
    pub(crate) fn recv_response(&mut self) -> Result<Response, ServeError> {
        self.read_response()
    }

    /// Waits up to `wait` for the next response frame. `Ok(None)` means
    /// the deadline passed with the frame still incomplete — the partial
    /// progress is retained (see [`FrameRx`]) and a later `recv_step`
    /// resumes it, so timing out never desynchronizes the connection.
    /// Any `Err` other than a timeout leaves the connection unusable.
    pub(crate) fn recv_step(&mut self, wait: Duration) -> Result<Option<Response>, ServeError> {
        let deadline = Instant::now() + wait;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            self.stream.set_read_timeout(Some(remaining))?;
            let read = match &mut self.rx.body {
                None => self.reader.read(&mut self.rx.head[self.rx.filled..]),
                Some(body) => self.reader.read(&mut body[self.rx.filled..]),
            };
            match read {
                Ok(0) => {
                    let clean = self.rx.body.is_none() && self.rx.filled == 0;
                    return Err(ServeError::Protocol(if clean {
                        "server closed the connection before responding".into()
                    } else {
                        "connection closed mid frame".into()
                    }));
                }
                Ok(m) => {
                    self.rx.filled += m;
                    if self.rx.body.is_none() && self.rx.filled == 4 {
                        let len = u32::from_le_bytes(self.rx.head);
                        if len > MAX_FRAME_LEN {
                            return Err(ServeError::Protocol(format!(
                                "frame length {len} exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})"
                            )));
                        }
                        self.rx.body = Some(vec![0u8; len as usize]);
                        self.rx.filled = 0;
                    }
                    if let Some(body) = &self.rx.body {
                        if self.rx.filled == body.len() {
                            let body = self.rx.body.take().expect("frame body");
                            self.rx.filled = 0;
                            return Response::decode(&body).map(Some);
                        }
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ServeError::Io(e)),
            }
        }
    }

    /// Pipelines a whole slice of requests: a scoped writer thread
    /// streams every frame while the calling thread reads responses, so
    /// arbitrarily deep pipelines can never deadlock on full socket
    /// buffers (the reader always drains while the writer fills).
    /// Responses come back index-aligned with `reqs` — the server
    /// answers strictly in order.
    pub fn pipeline(&mut self, reqs: &[Request]) -> Result<Vec<Response>, ServeError> {
        let Self {
            reader,
            writer,
            stream,
            rx: _,
        } = self;
        std::thread::scope(|s| {
            let sender = s.spawn(|| -> Result<(), ServeError> {
                for req in reqs {
                    write_frame(writer, &req.encode())?;
                }
                writer.flush()?;
                Ok(())
            });
            let mut responses = Vec::with_capacity(reqs.len());
            let mut read_err = None;
            for _ in 0..reqs.len() {
                let next = read_frame(reader).and_then(|body| {
                    let body = body.ok_or_else(|| {
                        ServeError::Protocol(
                            "server closed the connection before responding".into(),
                        )
                    })?;
                    Response::decode(&body)
                });
                match next {
                    Ok(resp) => responses.push(resp),
                    Err(e) => {
                        read_err = Some(e);
                        break;
                    }
                }
            }
            if read_err.is_some() {
                // The connection is unusable; unblock the writer thread
                // if it is wedged on a full send buffer.
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            let write_result = sender.join().expect("pipeline writer thread");
            match read_err {
                Some(e) => Err(e),
                None => {
                    write_result?;
                    Ok(responses)
                }
            }
        })
    }

    fn read_response(&mut self) -> Result<Response, ServeError> {
        let body = read_frame(&mut self.reader)?.ok_or_else(|| {
            ServeError::Protocol("server closed the connection before responding".into())
        })?;
        Response::decode(&body)
    }

    fn floats(&mut self, req: &Request) -> Result<Vec<f64>, ServeError> {
        match self.request(req)? {
            Response::Floats(xs) => Ok(xs),
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::Protocol(format!(
                "expected a Floats response, got {other:?}"
            ))),
        }
    }

    /// Harmonic centrality of each node in `nodes`.
    pub fn harmonic(&mut self, nodes: &[NodeId]) -> Result<Vec<f64>, ServeError> {
        self.floats(&Request::Harmonic {
            nodes: nodes.to_vec(),
        })
    }

    /// Distance-decay centrality of each node under `kernel`.
    pub fn decay(&mut self, kernel: DecayKernel, nodes: &[NodeId]) -> Result<Vec<f64>, ServeError> {
        self.floats(&Request::Decay {
            kernel,
            nodes: nodes.to_vec(),
        })
    }

    /// HIP neighborhood-cardinality estimate per `(node, distance)`
    /// query.
    pub fn cardinality(&mut self, queries: &[(NodeId, f64)]) -> Result<Vec<f64>, ServeError> {
        self.floats(&Request::Cardinality {
            queries: queries.to_vec(),
        })
    }

    /// The cumulative neighborhood function of each node.
    pub fn neighborhood_function(
        &mut self,
        nodes: &[NodeId],
    ) -> Result<Vec<Vec<(f64, f64)>>, ServeError> {
        match self.request(&Request::NeighborhoodFunction {
            nodes: nodes.to_vec(),
        })? {
            Response::Curves(curves) => Ok(curves),
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::Protocol(format!(
                "expected a Curves response, got {other:?}"
            ))),
        }
    }

    /// Estimated Jaccard similarity of `N_d(u)` and `N_d(v)` per pair.
    pub fn jaccard(&mut self, d: f64, pairs: &[(NodeId, NodeId)]) -> Result<Vec<f64>, ServeError> {
        self.floats(&Request::Jaccard {
            d,
            pairs: pairs.to_vec(),
        })
    }

    /// Pings the server's `0x07 Health` frame; returns the `[start, end)`
    /// node range the server owns.
    pub fn health(&mut self) -> Result<(u64, u64), ServeError> {
        match self.request(&Request::Health)? {
            Response::Health { start, end } => Ok((start, end)),
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::Protocol(format!(
                "expected a Health response, got {other:?}"
            ))),
        }
    }

    /// Asks which frozen generation the server currently answers from
    /// (`0` for a store that never swaps). A churn drill polls this to
    /// detect a [`crate::GenerationStore`] hot-swap landing.
    pub fn gen_info(&mut self) -> Result<u64, ServeError> {
        match self.request(&Request::GenInfo)? {
            Response::GenInfo { generation } => Ok(generation),
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::Protocol(format!(
                "expected a GenInfo response, got {other:?}"
            ))),
        }
    }

    /// Sends a float-batch request, accepting a degraded-mode
    /// [`Response::Partial`] answer: each slot comes back as `Ok(value)`
    /// (bitwise identical to the local engine) or `Err(code)`
    /// ([`crate::proto::ERR_SHARD_DOWN`] — every replica of the shard
    /// owning that query was down). Against a strict router or a plain
    /// backend, every slot is `Ok`.
    pub fn floats_partial(&mut self, req: &Request) -> Result<Vec<Result<f64, u16>>, ServeError> {
        match self.request(req)? {
            Response::Floats(xs) => Ok(xs.into_iter().map(Ok).collect()),
            Response::Partial(slots) => Ok(slots
                .into_iter()
                .map(|slot| match slot {
                    BatchSlot::Value(x) => Ok(x),
                    BatchSlot::Down(code) => Err(code),
                })
                .collect()),
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::Protocol(format!(
                "expected a Floats or Partial response, got {other:?}"
            ))),
        }
    }

    /// The `(rank, node)` MinHash insertion sequence of each node's
    /// distance-≤ `d` sketch prefix (see [`Request::SketchPrefix`]).
    pub fn sketch_prefixes(
        &mut self,
        d: f64,
        nodes: &[NodeId],
    ) -> Result<Vec<Vec<(f64, NodeId)>>, ServeError> {
        match self.request(&Request::SketchPrefix {
            d,
            nodes: nodes.to_vec(),
        })? {
            Response::Sketches(seqs) => Ok(seqs),
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::Protocol(format!(
                "expected a Sketches response, got {other:?}"
            ))),
        }
    }
}
