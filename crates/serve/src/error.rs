//! The serving error type.

use std::fmt;

use adsketch_core::FrozenError;

/// Errors surfaced by the sharded store loader, the wire protocol codec,
/// and the client/server endpoints.
#[derive(Debug)]
pub enum ServeError {
    /// An underlying socket or filesystem error.
    Io(std::io::Error),
    /// A shard file or the manifest failed `adsketch-core`'s format
    /// validation (bad magic/version, truncation, checksum mismatch,
    /// structural corruption).
    Frozen(FrozenError),
    /// The shard set is inconsistent with its manifest (missing shard
    /// file, whole-file digest mismatch, parameter disagreement, rows
    /// populated outside the declared range, …).
    Store(String),
    /// The peer violated the wire protocol (bad handshake, oversized or
    /// malformed frame, unknown message type).
    Protocol(String),
    /// The server answered with an error frame.
    Remote {
        /// Machine-readable error code (see [`crate::proto`] for the
        /// assigned codes).
        code: u16,
        /// Human-readable description from the server.
        message: String,
    },
    /// A shard backend could not be reached (or kept failing) within the
    /// router's deadline and retry budget.
    Backend {
        /// The shard index whose backend failed.
        shard: usize,
        /// What went wrong on the last attempt.
        message: String,
    },
    /// Every replica of a shard had its circuit open, so the request
    /// failed fast without dialing anyone (the router's health prober
    /// owns re-establishing contact).
    ShardUnavailable {
        /// The shard whose whole replica set is down.
        shard: usize,
        /// How many replicas the router is configured with for it.
        replicas: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Frozen(e) => write!(f, "frozen-store error: {e}"),
            ServeError::Store(msg) => write!(f, "sharded-store error: {msg}"),
            ServeError::Protocol(msg) => write!(f, "wire-protocol error: {msg}"),
            ServeError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ServeError::Backend { shard, message } => {
                write!(f, "backend for shard {shard} failed: {message}")
            }
            ServeError::ShardUnavailable { shard, replicas } => {
                write!(
                    f,
                    "all {replicas} replica(s) of shard {shard} are unavailable \
                     (circuits open)"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Frozen(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<FrozenError> for ServeError {
    fn from(e: FrozenError) -> Self {
        ServeError::Frozen(e)
    }
}
