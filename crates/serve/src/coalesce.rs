//! Cross-client request coalescing: merging concurrent workers'
//! same-shard sub-batches into one wire batch.
//!
//! Under high client concurrency, many router workers hold sub-batches
//! bound for the *same* backend at the same moment. Without coalescing,
//! each worker performs its own exchange — the backend pays per-request
//! framing, dispatch, and engine-batch overhead once per worker. With
//! [`crate::RouterConfig::coalesce_window`] set, workers briefly pool
//! those sub-batches: the first worker to open a `(shard, request kind,
//! parameters)` group becomes its **leader**, waits out the window while
//! other workers join, then sends one merged, deduplicated batch and
//! publishes the per-item answers for every participant to slice out.
//!
//! # Correctness
//!
//! Coalescing only touches per-node float kinds (harmonic, decay,
//! cardinality), whose answers are a pure function of `(item,
//! parameters)` — merging, deduplicating, and reordering items across
//! client requests cannot change a single answer bit, because each item's
//! answer is computed by the backend exactly as it would have been in
//! the participant's own batch. Every answer travels as `f64::to_bits`,
//! so fan-out replays exact bits.
//!
//! # Deadlock freedom and failure containment
//!
//! A worker first **submits** every shard leg of its request, then
//! performs **all** its leader duties (wait, close, merged exchange,
//! publish), and only then waits on the groups it joined — so no
//! participant ever waits on a join while another participant waits on
//! it. Joins are bounded: a joiner whose leader has not published by the
//! deadline falls back to its own individual exchange, and a leader
//! whose merged exchange fails publishes the failure so *every*
//! participant falls back individually — coalescing can delay an answer,
//! never change or lose one.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::proto::MAX_FRAME_LEN;

/// One deduplicatable query item: `(node, aux bits)`. The aux word is
/// the per-item query-distance bits for cardinality and zero for the
/// per-node kinds whose parameters live in the group key.
pub(crate) type Item = (u32, u64);

/// Published answers of a merged batch: item → `f64::to_bits` answer.
pub(crate) type AnswerMap = Arc<HashMap<Item, u64>>;

/// Bound on a merged batch's item count, chosen so the merged *request*
/// frame fits [`MAX_FRAME_LEN`] for the largest wire encoding
/// (cardinality: 12 bytes per item) — which is also well under the
/// response-side float-batch bound the backend enforces.
pub(crate) const MAX_COALESCED: usize = (MAX_FRAME_LEN as usize - 16) / 12;

/// What one merged batch coalesces: same shard, same request kind, same
/// request-level parameters (kernel tag + parameter bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct GroupKey {
    pub(crate) shard: usize,
    pub(crate) kind: u8,
    pub(crate) tag: u8,
    pub(crate) params: u64,
}

/// The shared coalescing state: at most one *open* batch per group key.
#[derive(Debug)]
pub(crate) struct Coalescer {
    window: Duration,
    groups: Mutex<HashMap<GroupKey, Arc<Batch>>>,
}

/// One in-flight merged batch.
#[derive(Debug)]
pub(crate) struct Batch {
    /// When the leader closes the batch and sends the merged exchange.
    pub(crate) close_at: Instant,
    state: Mutex<BatchState>,
    cv: Condvar,
}

#[derive(Debug)]
struct BatchState {
    items: Vec<Item>,
    /// `None` until the leader publishes; `Some(None)` = the merged
    /// exchange failed and every participant falls back individually;
    /// `Some(Some(map))` = per-item answer bits.
    outcome: Option<Option<AnswerMap>>,
}

/// A participant's role in one group.
#[derive(Debug)]
pub(crate) enum Ticket {
    /// Opened the batch; owes the leader duties (wait out the window,
    /// close, exchange, publish).
    Leader(Arc<Batch>),
    /// Joined an open batch; waits for the leader's publication.
    Joiner(Arc<Batch>),
    /// The open batch had no room; exchange individually.
    Solo,
}

impl Coalescer {
    pub(crate) fn new(window: Duration) -> Self {
        Self {
            window,
            groups: Mutex::new(HashMap::new()),
        }
    }

    /// Adds `items` to the group's open batch, opening one (and
    /// assigning leadership) if none exists. Batches whose item count
    /// would exceed [`MAX_COALESCED`] refuse the join ([`Ticket::Solo`]).
    pub(crate) fn submit(&self, key: GroupKey, items: &[Item]) -> Ticket {
        let mut groups = self.groups.lock().expect("coalescer groups lock");
        if let Some(batch) = groups.get(&key) {
            let mut st = batch.state.lock().expect("coalesce batch lock");
            if st.items.len() + items.len() > MAX_COALESCED {
                return Ticket::Solo;
            }
            st.items.extend_from_slice(items);
            drop(st);
            return Ticket::Joiner(Arc::clone(batch));
        }
        let batch = Arc::new(Batch {
            close_at: Instant::now() + self.window,
            state: Mutex::new(BatchState {
                items: items.to_vec(),
                outcome: None,
            }),
            cv: Condvar::new(),
        });
        groups.insert(key, Arc::clone(&batch));
        Ticket::Leader(batch)
    }

    /// Leader-only: closes the batch — removed from the group table
    /// first, so later submissions open a fresh batch — and returns the
    /// merged item list (duplicates included; the leader deduplicates).
    pub(crate) fn close(&self, key: GroupKey, batch: &Batch) -> Vec<Item> {
        self.groups
            .lock()
            .expect("coalescer groups lock")
            .remove(&key);
        std::mem::take(&mut batch.state.lock().expect("coalesce batch lock").items)
    }
}

impl Batch {
    /// Leader-only: records the merged exchange's outcome and wakes
    /// every waiting participant. `None` means "fall back individually".
    pub(crate) fn publish(&self, outcome: Option<AnswerMap>) {
        let mut st = self.state.lock().expect("coalesce batch lock");
        st.outcome = Some(outcome);
        self.cv.notify_all();
    }

    /// Blocks until the leader publishes or `deadline` passes. Both a
    /// timeout and a published failure come back as `None` — the caller
    /// falls back to its own exchange either way.
    pub(crate) fn wait(&self, deadline: Instant) -> Option<AnswerMap> {
        let mut st = self.state.lock().expect("coalesce batch lock");
        loop {
            if let Some(outcome) = &st.outcome {
                return outcome.clone();
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            st = self
                .cv
                .wait_timeout(st, deadline - now)
                .expect("coalesce batch wait")
                .0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: GroupKey = GroupKey {
        shard: 0,
        kind: 0x01,
        tag: 0,
        params: 0,
    };

    #[test]
    fn first_submit_leads_later_submits_join() {
        let co = Coalescer::new(Duration::from_millis(5));
        let t1 = co.submit(KEY, &[(1, 0), (2, 0)]);
        let Ticket::Leader(batch) = t1 else {
            panic!("first submit leads");
        };
        assert!(matches!(co.submit(KEY, &[(3, 0)]), Ticket::Joiner(_)));
        // A different group key opens its own batch.
        let other = GroupKey { shard: 1, ..KEY };
        assert!(matches!(co.submit(other, &[(9, 0)]), Ticket::Leader(_)));
        // Close merges the joined items and reopens the key.
        let items = co.close(KEY, &batch);
        assert_eq!(items, vec![(1, 0), (2, 0), (3, 0)]);
        assert!(matches!(co.submit(KEY, &[(4, 0)]), Ticket::Leader(_)));
    }

    #[test]
    fn publish_wakes_joiners_with_the_answer_map() {
        let co = Arc::new(Coalescer::new(Duration::from_millis(2)));
        let Ticket::Leader(batch) = co.submit(KEY, &[(1, 0)]) else {
            panic!("leads");
        };
        let Ticket::Joiner(joined) = co.submit(KEY, &[(2, 0)]) else {
            panic!("joins");
        };
        let waiter =
            std::thread::spawn(move || joined.wait(Instant::now() + Duration::from_secs(5)));
        let items = co.close(KEY, &batch);
        let map: HashMap<Item, u64> = items.into_iter().map(|it| (it, u64::from(it.0))).collect();
        batch.publish(Some(Arc::new(map)));
        let got = waiter.join().expect("waiter").expect("published");
        assert_eq!(got.get(&(2, 0)), Some(&2));
        // The leader's own wait resolves instantly post-publish.
        assert!(batch.wait(Instant::now()).is_some());
    }

    #[test]
    fn failed_merges_and_timeouts_mean_fall_back() {
        let co = Coalescer::new(Duration::from_millis(1));
        let Ticket::Leader(batch) = co.submit(KEY, &[(1, 0)]) else {
            panic!("leads");
        };
        // Timeout with nothing published.
        assert!(batch
            .wait(Instant::now() + Duration::from_millis(5))
            .is_none());
        batch.publish(None);
        assert!(batch.wait(Instant::now()).is_none());
    }

    #[test]
    fn full_batches_refuse_joins() {
        let co = Coalescer::new(Duration::from_millis(1));
        let big = vec![(0u32, 0u64); MAX_COALESCED];
        assert!(matches!(co.submit(KEY, &big), Ticket::Leader(_)));
        assert!(matches!(co.submit(KEY, &[(1, 0)]), Ticket::Solo));
    }
}
