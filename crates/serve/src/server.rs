//! The concurrent query server: `TcpListener` + a fixed worker pool.
//!
//! [`Server::run`] spawns its fixed thread pool with the same
//! `shard_slots` helper every parallel builder and the batch engine use:
//! `workers + 1` slots, one per pool thread — slot 0 runs the accept
//! loop, slots 1..=workers each run a connection worker draining a shared
//! queue. Each worker owns one connection at a time and answers its
//! request frames **in order** (clients may pipeline arbitrarily many
//! requests before reading), evaluating every batch through the same
//! [`QueryEngine`] code path local callers use, over the sharded store —
//! so served answers are bitwise identical to local ones by
//! construction.
//!
//! The pool machinery is shared: [`Server`] plugs an estimator-evaluating
//! handler into the crate-internal `serve_pool`, the distributed tier's
//! [`crate::router::Router`] plugs in a scatter/gather handler, and both
//! get identical handshake, pipelining, framing, and shutdown behavior.
//!
//! # Backend mode
//!
//! A [`Server`] is generic over its store via [`RequestStore`]. The
//! default [`ShardedStore`] owns every node; a
//! [`crate::backend::BackendStore`] owns one manifest shard range and
//! answers [`ERR_SHARD_RANGE`] for in-graph nodes routed to the wrong
//! process — so a misconfigured router fails loudly instead of serving
//! empty-row garbage.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] flips a shared flag and nudges the
//! listener awake. The accept loop stops taking connections; workers
//! notice the flag at their next frame boundary (connection sockets run
//! a short read timeout as a poll interval), finish the request in
//! flight, and exit. A request whose bytes have *started* to arrive is
//! committed: the worker keeps reading (within a bounded drain budget)
//! and answers it before exiting, so an accepted pipeline never loses a
//! response to shutdown. [`Server::run`] returns once the pool drains.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use adsketch_core::{shard_slots, thread_count, AdsView, QueryEngine};
use adsketch_graph::NodeId;

use crate::error::ServeError;
use crate::proto::{
    write_frame, Request, Response, ERR_MALFORMED, ERR_NODE_RANGE, ERR_RESPONSE_TOO_LARGE,
    ERR_SHARD_RANGE, MAX_FRAME_LEN, WIRE_MAGIC, WIRE_VERSION,
};
use crate::store::ShardedStore;

/// How often a blocked worker re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// How many poll intervals a worker will wait out, after shutdown, for
/// the rest of a request whose first bytes already arrived (bounds the
/// drain at ~5 s per read against a stalled client).
const DRAIN_POLL_BUDGET: u32 = 100;

/// How long a connection keeps answering *new* requests after shutdown
/// is observed. Requests a peer pipelined before the stop flag flipped
/// deserve their answers (they were accepted), and TCP offers no marker
/// for "written before stop" — so the drain is bounded by wall clock
/// instead. Without this cap a peer that never stops writing (a router
/// under continuous client load) would postpone worker exit forever.
const STOP_DRAIN_WINDOW: Duration = Duration::from_secs(1);

/// A store a [`Server`] can answer queries over: any [`AdsView`] plus a
/// declaration of which node range this process owns.
///
/// The default implementation owns everything — the single-process
/// topology. A backend process owning one manifest shard overrides
/// [`RequestStore::owned_range`] so requests for nodes it does not hold
/// are rejected with [`ERR_SHARD_RANGE`] instead of silently evaluated
/// over empty rows.
pub trait RequestStore: AdsView + Send + Sync {
    /// The contiguous node range `start..end` this process holds rows
    /// for. Nodes inside `0..num_nodes` but outside this range earn an
    /// [`ERR_SHARD_RANGE`] error frame.
    fn owned_range(&self) -> std::ops::Range<u64> {
        0..self.num_nodes() as u64
    }

    /// The frozen generation this store currently serves, reported by
    /// [`Request::GenInfo`]. A plain store loaded once never changes —
    /// generation `0`. A hot-swapping [`crate::GenerationStore`] reports
    /// the generation of the snapshot it has pinned.
    fn generation(&self) -> u64 {
        0
    }

    /// Answers one request batch. The default evaluates over `self`
    /// directly; [`crate::GenerationStore`] overrides this to pin one
    /// snapshot `Arc` for the whole request, so a concurrent generation
    /// swap can never mix two generations' rows inside a single answer.
    fn answer_request(&self, req: &Request) -> Response
    where
        Self: Sized,
    {
        answer(self, req)
    }
}

impl RequestStore for ShardedStore {}

// A heap `AdsSet` can serve directly too: the dynamic-graph tier swaps
// live snapshots into a [`crate::GenerationStore`] without freezing to
// disk first, and tests compare served answers against it.
impl RequestStore for adsketch_core::AdsSet {}

/// A bound query server over a [`RequestStore`].
pub struct Server<S: RequestStore = ShardedStore> {
    listener: TcpListener,
    store: Arc<S>,
    workers: usize,
    stop: Arc<AtomicBool>,
    wake: Arc<Wake>,
}

/// A condvar-backed shutdown signal. Worker threads poll the stop flag on
/// their short read timeouts, but long-sleeping auxiliary threads (the
/// router's health prober waits out a whole `probe_interval` between
/// rounds) must not inherit that poll cadence — they park on
/// [`Wake::wait_timeout`] and [`ServerHandle::shutdown`] interrupts the
/// sleep immediately via [`Wake::notify`].
#[derive(Debug, Default)]
pub(crate) struct Wake {
    stopped: Mutex<bool>,
    cv: Condvar,
}

impl Wake {
    /// Marks the signal stopped and wakes every parked waiter.
    pub(crate) fn notify(&self) {
        *self.stopped.lock().expect("wake lock") = true;
        self.cv.notify_all();
    }

    /// Sleeps up to `timeout` or until [`Wake::notify`]; returns whether
    /// the signal has stopped. The predicate lives under the mutex, so a
    /// notify can never slip between the check and the park.
    pub(crate) fn wait_timeout(&self, timeout: Duration) -> bool {
        let mut stopped = self.stopped.lock().expect("wake lock");
        if !*stopped {
            stopped = self.cv.wait_timeout(stopped, timeout).expect("wake wait").0;
        }
        *stopped
    }
}

/// A cloneable handle that can stop a running [`Server`] (or
/// [`crate::router::Router`]) from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wake: Arc<Wake>,
}

impl ServerHandle {
    pub(crate) fn new(addr: SocketAddr, stop: Arc<AtomicBool>, wake: Arc<Wake>) -> Self {
        Self { addr, stop, wake }
    }

    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown: stop accepting, let workers finish
    /// the requests in flight, then return from [`Server::run`].
    /// Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake.notify();
        // Nudge the accept loop awake; any error just means it already
        // stopped listening.
        let _ = TcpStream::connect(self.addr);
    }
}

impl<S: RequestStore> Server<S> {
    /// Binds a server to `addr` (use port 0 for an ephemeral port) with a
    /// fixed pool of `workers` connection threads (`0` ⇒ all cores).
    /// Call [`Server::run`] to start serving.
    pub fn bind(addr: impl ToSocketAddrs, store: Arc<S>, workers: usize) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            store,
            workers: thread_count(workers).max(1),
            stop: Arc::new(AtomicBool::new(false)),
            wake: Arc::new(Wake::default()),
        })
    }

    /// The address the listener is bound to (the OS-assigned port when
    /// bound to port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread. Take it
    /// before calling [`Server::run`].
    pub fn handle(&self) -> ServerHandle {
        ServerHandle::new(
            self.listener
                .local_addr()
                .expect("bound listener has an address"),
            Arc::clone(&self.stop),
            Arc::clone(&self.wake),
        )
    }

    /// Serves until [`ServerHandle::shutdown`]. Blocks the calling
    /// thread; the fixed pool (acceptor + workers) runs scoped inside.
    /// Returns the number of connections served.
    pub fn run(self) -> std::io::Result<u64> {
        let Server {
            listener,
            store,
            workers,
            stop,
            wake: _,
        } = self;
        let served = serve_pool(&listener, workers, &stop, &|_worker| {
            let store = Arc::clone(&store);
            move |req: &Request| store.answer_request(req)
        });
        Ok(served)
    }
}

/// The shared serving pool: `workers + 1` slots — slot 0 accepts, the
/// rest each build one handler via `make_handler(worker_index)` and serve
/// connections off a shared queue through it. Returns the number of
/// connections served. Used by both [`Server`] (estimator handler) and
/// [`crate::router::Router`] (scatter/gather handler).
pub(crate) fn serve_pool<M, H>(
    listener: &TcpListener,
    workers: usize,
    stop: &AtomicBool,
    make_handler: &M,
) -> u64
where
    M: Fn(usize) -> H + Sync,
    H: FnMut(&Request) -> Response,
{
    let (tx, rx) = std::sync::mpsc::channel::<TcpStream>();
    let rx = Mutex::new(rx);
    // Each slot records how many connections its thread handled.
    let mut served = vec![0u64; workers + 1];
    shard_slots(
        &mut served,
        workers + 1,
        || (),
        |(), i, slot| {
            if i == 0 {
                // The acceptor only exits once the stop flag is set (or
                // every worker is gone), and workers poll that same flag
                // on their receive timeout — so the pool always drains.
                accept_loop(listener, &tx, stop);
            } else {
                let mut handler = make_handler(i - 1);
                *slot = worker_loop(&rx, stop, &mut handler);
            }
        },
    );
    served.iter().sum()
}

/// Accepts connections until the stop flag flips, handing each off to
/// the worker queue.
fn accept_loop(listener: &TcpListener, tx: &Sender<TcpStream>, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                if tx.send(stream).is_err() {
                    break;
                }
            }
            // Transient accept errors (peer reset mid-handshake etc.)
            // must not kill the server.
            Err(_) => continue,
        }
    }
}

/// Serves connections off the shared queue until the queue closes or the
/// stop flag flips. Returns the number of connections handled.
fn worker_loop<H: FnMut(&Request) -> Response>(
    rx: &Mutex<Receiver<TcpStream>>,
    stop: &AtomicBool,
    handler: &mut H,
) -> u64 {
    let mut served = 0u64;
    loop {
        let conn = {
            let guard = rx.lock().expect("queue lock");
            guard.recv_timeout(POLL_INTERVAL)
        };
        match conn {
            Ok(stream) => {
                served += 1;
                // A broken connection only ends that connection.
                let _ = serve_connection(stream, stop, handler);
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    return served;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return served,
        }
    }
}

/// Outcome of a poll-aware exact read.
enum ReadOutcome {
    /// The buffer was filled.
    Full,
    /// Clean EOF before any byte of the buffer.
    Eof,
    /// The stop flag flipped while waiting at a clean boundary.
    Stopped,
}

/// Fills `buf` from a stream whose read timeout doubles as the shutdown
/// poll interval.
///
/// Shutdown semantics: with `committed` false and no byte of `buf` read
/// yet, a flipped stop flag returns [`ReadOutcome::Stopped`] — the
/// connection is between messages and can be dropped cleanly. But once
/// any byte has arrived (or the caller marked the read `committed`,
/// i.e. a frame header was already consumed), the peer has an accepted
/// request in flight — keep reading through [`DRAIN_POLL_BUDGET`] extra
/// poll intervals so the request can still be answered, and only then
/// give up with a timeout error.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    committed: bool,
) -> std::io::Result<ReadOutcome> {
    let mut filled = 0;
    let mut drain_polls = 0u32;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid message",
                ))
            }
            Ok(m) => filled += m,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    if !committed && filled == 0 {
                        return Ok(ReadOutcome::Stopped);
                    }
                    drain_polls += 1;
                    if drain_polls >= DRAIN_POLL_BUDGET {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "shutdown drain budget exhausted mid message",
                        ));
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Handshake + request/response loop for one connection, answering each
/// decoded request through `handler`.
fn serve_connection<H: FnMut(&Request) -> Response>(
    mut stream: TcpStream,
    stop: &AtomicBool,
    handler: &mut H,
) -> Result<(), ServeError> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;

    // Handshake: 8-byte magic + u32 client version.
    let mut hello = [0u8; 12];
    match read_full(&mut stream, &mut hello, stop, false)? {
        ReadOutcome::Full => {}
        ReadOutcome::Eof | ReadOutcome::Stopped => return Ok(()),
    }
    let version = u32::from_le_bytes(hello[8..12].try_into().expect("4B"));
    if hello[..8] != WIRE_MAGIC || version != WIRE_VERSION {
        let mut reject = [0u8; 5];
        reject[1..5].copy_from_slice(&WIRE_VERSION.to_le_bytes());
        let _ = stream.write_all(&reject);
        return Err(ServeError::Protocol(format!(
            "handshake rejected (magic {:02x?}, version {version})",
            &hello[..8]
        )));
    }
    let mut accept = [1u8; 5];
    accept[1..5].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    stream.write_all(&accept)?;

    // Request frames, answered in order until EOF or shutdown. A frame
    // whose header has started to arrive is committed — it gets its
    // answer even if shutdown lands mid-read. After shutdown, already
    // pipelined requests keep draining for [`STOP_DRAIN_WINDOW`]; then
    // the connection closes even if the peer is still writing.
    let mut writer = std::io::BufWriter::new(stream.try_clone()?);
    let mut stop_seen: Option<Instant> = None;
    loop {
        if stop.load(Ordering::SeqCst) {
            let seen = *stop_seen.get_or_insert_with(Instant::now);
            if seen.elapsed() >= STOP_DRAIN_WINDOW {
                return Ok(());
            }
        }
        let mut len_buf = [0u8; 4];
        match read_full(&mut stream, &mut len_buf, stop, false)? {
            ReadOutcome::Full => {}
            ReadOutcome::Eof | ReadOutcome::Stopped => return Ok(()),
        }
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME_LEN {
            write_frame(
                &mut writer,
                &Response::Error {
                    code: ERR_MALFORMED,
                    message: format!("frame length {len} exceeds MAX_FRAME_LEN"),
                }
                .encode(),
            )?;
            writer.flush()?;
            return Err(ServeError::Protocol("oversized frame".into()));
        }
        let mut body = vec![0u8; len as usize];
        match read_full(&mut stream, &mut body, stop, true)? {
            ReadOutcome::Full => {}
            // Mid-frame EOF: nothing sensible left to answer. (Stopped is
            // unreachable on a committed read.)
            ReadOutcome::Eof | ReadOutcome::Stopped => return Ok(()),
        }
        let response = match Request::decode(&body) {
            Ok(req) => handler(&req),
            Err(e) => Response::Error {
                code: ERR_MALFORMED,
                message: e.to_string(),
            },
        };
        // A legal request can still have an answer too big for one frame
        // (e.g. a huge neighborhood-function batch); answer with an error
        // frame instead of killing the connection.
        let mut encoded = response.encode();
        if encoded.len() as u64 > MAX_FRAME_LEN as u64 {
            encoded = Response::Error {
                code: ERR_RESPONSE_TOO_LARGE,
                message: format!(
                    "response of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame limit; \
                     split the batch",
                    encoded.len()
                ),
            }
            .encode();
        }
        write_frame(&mut writer, &encoded)?;
        writer.flush()?;
    }
}

/// Largest float batch whose response frame (type byte + count +
/// `count × 8` answer bits) still fits in [`MAX_FRAME_LEN`] — checked
/// *before* any estimator work, so an oversized-but-legal request costs
/// nothing but an error frame.
pub(crate) const MAX_FLOAT_BATCH: usize = (MAX_FRAME_LEN as usize - 5) / 8;

pub(crate) fn batch_too_large(count: usize) -> Option<Response> {
    (count > MAX_FLOAT_BATCH).then(|| Response::Error {
        code: ERR_RESPONSE_TOO_LARGE,
        message: format!(
            "batch of {count} answers cannot fit one response frame (max \
             {MAX_FLOAT_BATCH}); split the batch"
        ),
    })
}

/// The error frame for a node outside the store entirely — shared with
/// the router so pre-validation there produces byte-identical frames.
pub(crate) fn node_range_error(bad: NodeId, n: u64) -> Response {
    Response::Error {
        code: ERR_NODE_RANGE,
        message: format!("node {bad} out of range (store covers {n} nodes)"),
    }
}

/// Walks `nodes`, returning the error frame for the first node outside
/// `0..n` (or outside `owned`, for a backend holding one shard).
pub(crate) fn check_nodes(
    nodes: &mut dyn Iterator<Item = NodeId>,
    n: u64,
    owned: &std::ops::Range<u64>,
) -> Option<Response> {
    for v in nodes {
        if (v as u64) >= n {
            return Some(node_range_error(v, n));
        }
        if !owned.contains(&(v as u64)) {
            return Some(Response::Error {
                code: ERR_SHARD_RANGE,
                message: format!(
                    "node {v} is outside this backend's shard range {}..{}",
                    owned.start, owned.end
                ),
            });
        }
    }
    None
}

/// Evaluates one request batch over the store. All estimator work runs
/// through [`QueryEngine`] — the exact code path local callers use — on
/// this worker's thread (cross-request parallelism comes from the pool).
/// Response size is bounded *before or during* evaluation: float batches
/// are rejected up front when too long, and curve/sketch batches stop
/// evaluating the moment their running encoded size would overflow a
/// frame — a legal request can never force an unbounded allocation.
pub(crate) fn answer<S: RequestStore>(store: &S, req: &Request) -> Response {
    let n = store.num_nodes() as u64;
    let owned = store.owned_range();
    let check = |nodes: &mut dyn Iterator<Item = NodeId>| check_nodes(nodes, n, &owned);
    let engine = QueryEngine::with_threads(store, 1);
    match req {
        Request::Harmonic { nodes } => check(&mut nodes.iter().copied())
            .or_else(|| batch_too_large(nodes.len()))
            .unwrap_or_else(|| Response::Floats(engine.harmonic_batch(nodes))),
        Request::Decay { kernel, nodes } => check(&mut nodes.iter().copied())
            .or_else(|| batch_too_large(nodes.len()))
            .unwrap_or_else(|| Response::Floats(engine.decay_batch(*kernel, nodes))),
        Request::Cardinality { queries } => check(&mut queries.iter().map(|q| q.0))
            .or_else(|| batch_too_large(queries.len()))
            .unwrap_or_else(|| Response::Floats(engine.cardinality_batch(queries))),
        Request::NeighborhoodFunction { nodes } => check(&mut nodes.iter().copied())
            .unwrap_or_else(|| neighborhood_function_bounded(store, nodes)),
        Request::Jaccard { d, pairs } => check(&mut pairs.iter().flat_map(|&(u, v)| [u, v]))
            .or_else(|| batch_too_large(pairs.len()))
            .unwrap_or_else(|| Response::Floats(engine.jaccard_batch(pairs, *d))),
        Request::SketchPrefix { d, nodes } => check(&mut nodes.iter().copied())
            .unwrap_or_else(|| sketch_prefix_bounded(store, *d, nodes)),
        // Liveness + ownership ping: no sketch data touched, so a prober
        // can hammer this cheaply.
        Request::Health => Response::Health {
            start: owned.start,
            end: owned.end,
        },
        // Equally cheap: which frozen generation this store answers from.
        Request::GenInfo => Response::GenInfo {
            generation: store.generation(),
        },
    }
}

/// The canonical overflow error for a neighborhood-function batch —
/// shared with the router so merged curve batches fail identically.
pub(crate) fn nf_too_large(batch: usize) -> Response {
    Response::Error {
        code: ERR_RESPONSE_TOO_LARGE,
        message: format!(
            "neighborhood-function batch of {batch} nodes overflows one response \
             frame; split the batch"
        ),
    }
}

/// Evaluates a neighborhood-function batch with a running encoded-size
/// bound: per-node curves are computed exactly as
/// [`QueryEngine::neighborhood_function_batch`] does (same
/// [`AdsView::neighborhood_function_of`] call, in request order, so the
/// answers are bitwise identical), but evaluation aborts with an error
/// frame the moment the response could no longer fit one frame.
fn neighborhood_function_bounded<S: RequestStore>(store: &S, nodes: &[NodeId]) -> Response {
    // type byte + curve count, then per curve 4 + 16·len bytes.
    let mut size = 5u64;
    let mut curves = Vec::with_capacity(nodes.len().min(1 << 16));
    for &v in nodes {
        let curve = store.neighborhood_function_of(v);
        size += 4 + 16 * curve.len() as u64;
        if size > MAX_FRAME_LEN as u64 {
            return nf_too_large(nodes.len());
        }
        curves.push(curve);
    }
    Response::Curves(curves)
}

/// The canonical overflow error for a sketch-prefix batch — shared with
/// the router.
pub(crate) fn sketches_too_large(batch: usize) -> Response {
    Response::Error {
        code: ERR_RESPONSE_TOO_LARGE,
        message: format!(
            "sketch-prefix batch of {batch} nodes overflows one response frame; \
             split the batch"
        ),
    }
}

/// Evaluates a sketch-prefix batch with a running encoded-size bound.
/// Each sequence is exactly the `(rank, node)` insertion stream the
/// default [`AdsView::minhash_at`] would feed a bottom-k sketch for the
/// same `(v, d)` — the property the router's cross-shard Jaccard replay
/// relies on.
fn sketch_prefix_bounded<S: RequestStore>(store: &S, d: f64, nodes: &[NodeId]) -> Response {
    // type byte + sequence count, then per sequence 4 + 12·len bytes.
    let mut size = 5u64;
    let mut seqs = Vec::with_capacity(nodes.len().min(1 << 16));
    for &v in nodes {
        let mut seq: Vec<(f64, NodeId)> = Vec::new();
        store.for_each_entry(v, |e| {
            if e.dist <= d {
                seq.push((e.rank, e.node));
            }
        });
        size += 4 + 12 * seq.len() as u64;
        if size > MAX_FRAME_LEN as u64 {
            return sketches_too_large(nodes.len());
        }
        seqs.push(seq);
    }
    Response::Sketches(seqs)
}
