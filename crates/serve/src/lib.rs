//! Sharded sketch serving: a multi-file [`ShardedStore`], a versioned
//! binary wire protocol, and a std-only concurrent TCP [`Server`] /
//! [`Client`] pair for HIP query traffic.
//!
//! After `adsketch-core`'s PR-3 read path, every sketch answers inside
//! one process over one monolithic `FrozenAdsSet` file. This crate adds
//! the network tier on top, in the shape DegreeSketch and gSketch use for
//! distributed sketch serving — partition the per-node sketch state,
//! route queries by node id — while preserving the workspace's core
//! guarantee: **every answer returned over the wire is bitwise identical
//! to the local [`adsketch_core::QueryEngine`] on the unsharded store**,
//! for every shard count and thread count.
//!
//! | module | contents |
//! |---|---|
//! | [`store`] | [`ShardedStore`]: manifest-driven multi-file store, parallel load, digest verification, [`adsketch_core::AdsView`] routing |
//! | [`proto`] | the length-prefixed wire protocol v1 (handshake, request/response frames, error frames) |
//! | [`server`] | [`Server`]: `TcpListener` + fixed thread pool (the builders' `shard_slots` helper), per-connection pipelining, graceful shutdown; generic over [`RequestStore`] |
//! | [`client`] | [`Client`]: blocking client with batched and pipelined requests |
//! | [`backend`] | [`BackendStore`]: one shard resident in one backend process, serving its manifest node range |
//! | [`generation`] | [`GenerationStore`]: hot-swappable store wrapper — a live server atomically switches to a new frozen generation mid-traffic (`GenInfo` reports which) |
//! | [`router`] | [`Router`]: stateless scatter/gather over replica sets of backends, merging answers bitwise identical to the single-process engine |
//! | `health` (internal) | per-endpoint circuit breaker (closed / cooling / open / half-open probe) shared by the router's workers and prober |
//! | `cache` (internal) | the router's sharded, size-bounded LRU answer cache ([`RouterConfig::cache_bytes`]); counters via [`CacheStatsHandle`] |
//! | `coalesce` (internal) | cross-client request coalescing ([`RouterConfig::coalesce_window`]): merged same-shard wire batches with per-participant fan-out |
//! | [`error`] | [`ServeError`] |
//!
//! Everything runs on `std` threads and `std::net` only — the crate has
//! zero external dependencies, so it serves in fully offline
//! environments.
//!
//! # Distributed topology
//!
//! Each shard runs as a **replica set** of processes (every replica a
//! [`BackendStore`] behind the same [`Server`]), any number of stateless
//! [`Router`] processes in front: the router partitions each client
//! batch by the manifest's node-range table, scatters over pipelined
//! backend connections — round-robin across a shard's healthy replicas,
//! with circuit-breaker health tracking, failover, exponential-backoff
//! reconnects, and optional hedged reads — and merges in request order.
//! Failures stay typed and bounded: deadlines and retries cap every
//! exchange, a dead shard yields a [`proto::ERR_BACKEND`] error frame
//! (or, opted in via [`RouterConfig::degraded`], a
//! [`Response::Partial`] frame whose [`proto::BatchSlot::Down`] slots
//! carry [`proto::ERR_SHARD_DOWN`] for exactly the affected queries) —
//! never a hang, never a silently partial answer.
//!
//! # Quick example
//!
//! ```
//! use std::sync::Arc;
//! use adsketch_core::{freeze_sharded, AdsSet, QueryEngine};
//! use adsketch_graph::generators;
//! use adsketch_serve::{Client, Server, ShardedStore};
//!
//! // Build and freeze into 2 shards.
//! let g = generators::barabasi_albert(200, 3, 7);
//! let ads = AdsSet::build(&g, 8, 42);
//! let dir = std::env::temp_dir().join("adsketch_serve_doc_example");
//! freeze_sharded(&ads, 2, &dir).unwrap();
//! let store = Arc::new(ShardedStore::load(&dir).unwrap());
//!
//! // Serve on an ephemeral port; query over TCP; shut down.
//! let server = Server::bind("127.0.0.1:0", Arc::clone(&store), 2).unwrap();
//! let handle = server.handle();
//! let addr = server.local_addr().unwrap();
//! let join = std::thread::spawn(move || server.run());
//! let mut client = Client::connect(addr).unwrap();
//! let served = client.harmonic(&[0, 1, 2]).unwrap();
//!
//! // Bitwise identical to the local engine on the unsharded store.
//! let frozen = ads.freeze();
//! let local = QueryEngine::new(&frozen).harmonic_batch(&[0, 1, 2]);
//! assert_eq!(served, local);
//!
//! drop(client);
//! handle.shutdown();
//! join.join().unwrap().unwrap();
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub(crate) mod cache;
pub mod client;
pub(crate) mod coalesce;
pub mod error;
pub mod generation;
pub(crate) mod health;
pub mod proto;
pub mod router;
pub mod server;
pub mod store;

pub use backend::BackendStore;
pub use cache::CacheStatsHandle;
pub use client::Client;
pub use error::ServeError;
pub use generation::GenerationStore;
pub use proto::{BatchSlot, Request, Response};
pub use router::{Router, RouterConfig};
pub use server::{RequestStore, Server, ServerHandle};
pub use store::ShardedStore;
