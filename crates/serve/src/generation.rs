//! Zero-downtime generation hot-swap: an `ArcSwap`-style store wrapper.
//!
//! A [`GenerationStore`] wraps any [`RequestStore`] behind a
//! `Mutex<Arc<_>>` slot (std-only — the mutex guards only a pointer
//! clone, never a query) so a running [`crate::Server`] can be pointed
//! at a freshly frozen generation **mid-traffic**: readers pin the
//! current snapshot with one `Arc` clone, [`GenerationStore::swap`]
//! publishes the next one, and the old generation is freed when its last
//! in-flight request drops its pin. No connection is dropped, no request
//! observes a half-installed store.
//!
//! # Consistency under swap
//!
//! [`GenerationStore::answer_request`] pins **once per request frame**:
//! every row read and the generation number reported for that frame come
//! from the same snapshot, so a swap landing between two pipelined
//! requests is clean (each frame is entirely old or entirely new) and a
//! swap landing *during* a frame is invisible to it. Answers after a
//! swap are bitwise identical to a fresh process that loaded the new
//! generation — gated end-to-end by the `dynamic_e2e` suite.
//!
//! The generation number is what [`crate::proto::Request::GenInfo`]
//! reports; the router tags its answer-cache entries with it, so a swap
//! invalidates stale cached bits *by key construction* (see
//! [`crate::router`]).

use std::sync::{Arc, Mutex};

use adsketch_core::{AdsEntry, AdsView, HipItem, HipWeights};
use adsketch_graph::NodeId;
use adsketch_minhash::BottomKSketch;

use crate::proto::{Request, Response};
use crate::server::{answer, RequestStore};

/// One published snapshot: a store plus the generation number it was
/// frozen as.
#[derive(Debug)]
struct Pinned<S> {
    store: S,
    generation: u64,
}

/// A hot-swappable [`RequestStore`]: serves one generation at a time and
/// atomically switches to the next without disturbing traffic.
///
/// Share it with a server via `Arc` and keep a clone of that `Arc` for
/// the swapper (the freezer's publish callback, typically):
///
/// ```ignore
/// let store = Arc::new(GenerationStore::new(gen1_store, 1));
/// let server = Server::bind(addr, Arc::clone(&store), workers)?;
/// // ... later, while the server runs:
/// store.swap(gen2_store, 2);
/// ```
#[derive(Debug)]
pub struct GenerationStore<S> {
    slot: Mutex<Arc<Pinned<S>>>,
}

impl<S> GenerationStore<S> {
    /// Wraps `store` as generation `generation`.
    pub fn new(store: S, generation: u64) -> Self {
        Self {
            slot: Mutex::new(Arc::new(Pinned { store, generation })),
        }
    }

    /// Atomically publishes `store` as generation `generation` and
    /// returns the previous generation number. In-flight requests keep
    /// their pinned snapshot; new requests see the new one.
    pub fn swap(&self, store: S, generation: u64) -> u64 {
        let next = Arc::new(Pinned { store, generation });
        let mut slot = self.slot.lock().expect("generation slot");
        let old = slot.generation;
        *slot = next;
        old
    }

    /// The currently published generation number.
    pub fn generation(&self) -> u64 {
        self.pin().generation
    }

    /// Pins the current snapshot: one mutex-guarded `Arc` clone.
    fn pin(&self) -> Arc<Pinned<S>> {
        Arc::clone(&self.slot.lock().expect("generation slot"))
    }
}

// Per-call delegation so the wrapper satisfies `AdsView`. Single-call
// reads pin per call; batch request evaluation goes through
// `answer_request`, which pins once for the whole frame.
impl<S: AdsView> AdsView for GenerationStore<S> {
    fn k(&self) -> usize {
        self.pin().store.k()
    }

    fn num_nodes(&self) -> usize {
        self.pin().store.num_nodes()
    }

    fn entry_count(&self, v: NodeId) -> usize {
        self.pin().store.entry_count(v)
    }

    fn for_each_entry(&self, v: NodeId, f: impl FnMut(AdsEntry)) {
        self.pin().store.for_each_entry(v, f)
    }

    fn for_each_hip(&self, v: NodeId, f: impl FnMut(HipItem)) {
        self.pin().store.for_each_hip(v, f)
    }

    fn size_at(&self, v: NodeId, d: f64) -> usize {
        self.pin().store.size_at(v, d)
    }

    // The defaults below re-derive from `for_each_*`; forward them so a
    // wrapped store's precomputed fast paths (e.g. the frozen store's
    // stored HIP weights) stay in effect. Either path is bitwise
    // identical — forwarding preserves the speed, not the answer.
    fn total_entries(&self) -> usize {
        self.pin().store.total_entries()
    }

    fn minhash_at(&self, v: NodeId, d: f64) -> BottomKSketch {
        self.pin().store.minhash_at(v, d)
    }

    fn hip_weights_of(&self, v: NodeId) -> HipWeights {
        self.pin().store.hip_weights_of(v)
    }

    fn hip_cardinality_at(&self, v: NodeId, d: f64) -> f64 {
        self.pin().store.hip_cardinality_at(v, d)
    }

    fn hip_reachable(&self, v: NodeId) -> f64 {
        self.pin().store.hip_reachable(v)
    }

    fn neighborhood_function_of(&self, v: NodeId) -> Vec<(f64, f64)> {
        self.pin().store.neighborhood_function_of(v)
    }
}

impl<S: RequestStore> RequestStore for GenerationStore<S> {
    fn owned_range(&self) -> std::ops::Range<u64> {
        self.pin().store.owned_range()
    }

    fn generation(&self) -> u64 {
        GenerationStore::generation(self)
    }

    /// Pins one snapshot for the whole request frame: rows and the
    /// reported generation are consistent even if a swap lands mid-batch.
    fn answer_request(&self, req: &Request) -> Response {
        let pinned = self.pin();
        match req {
            Request::GenInfo => Response::GenInfo {
                generation: pinned.generation,
            },
            _ => answer(&pinned.store, req),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_core::{AdsSet, QueryEngine};
    use adsketch_graph::generators;

    fn sample(seed: u64) -> AdsSet {
        let g = generators::gnp_directed(60, 0.06, seed);
        AdsSet::build(&g, 4, seed + 9)
    }

    #[test]
    fn swap_changes_answers_and_generation() {
        let (a, b) = (sample(1), sample(2));
        let store = GenerationStore::new(a.clone(), 1);
        assert_eq!(RequestStore::generation(&store), 1);
        let nodes: Vec<NodeId> = (0..60).collect();
        let req = Request::Harmonic {
            nodes: nodes.clone(),
        };
        let before = store.answer_request(&req);
        assert_eq!(
            before,
            Response::Floats(QueryEngine::new(&a).harmonic_batch(&nodes))
        );
        assert_eq!(store.swap(b.clone(), 2), 1);
        assert_eq!(RequestStore::generation(&store), 2);
        let after = store.answer_request(&req);
        assert_eq!(
            after,
            Response::Floats(QueryEngine::new(&b).harmonic_batch(&nodes))
        );
        assert_eq!(
            store.answer_request(&Request::GenInfo),
            Response::GenInfo { generation: 2 }
        );
    }

    #[test]
    fn view_delegates_to_current_generation() {
        let (a, b) = (sample(3), sample(4));
        let store = GenerationStore::new(a.clone(), 7);
        assert_eq!(store.k(), a.k());
        assert_eq!(store.total_entries(), a.total_entries());
        assert_eq!(store.hip_reachable(5), a.hip_reachable(5));
        store.swap(b.clone(), 8);
        assert_eq!(store.total_entries(), b.total_entries());
        assert_eq!(store.hip_reachable(5), b.hip_reachable(5));
    }

    #[test]
    fn old_generation_survives_until_unpinned() {
        let store = GenerationStore::new(sample(5), 1);
        let pinned = store.pin();
        store.swap(sample(6), 2);
        // The pre-swap pin still reads generation-1 data.
        assert_eq!(pinned.generation, 1);
        assert!(pinned.store.num_nodes() > 0);
        assert_eq!(RequestStore::generation(&store), 2);
    }
}
