//! Backend mode for the distributed tier: one process, one shard.
//!
//! A [`BackendStore`] loads the `ADSKSHD1` manifest plus exactly one of
//! the shard files it describes — with every integrity check the full
//! [`crate::ShardedStore`] loader runs on that shard (format validation,
//! whole-file digest, parameter agreement, range emptiness). Serving it
//! through the generic [`crate::Server`] gives a **backend**: a process
//! that speaks the ordinary `ADSKWIR1` protocol but only owns its
//! manifest record's node range, answering
//! [`crate::proto::ERR_SHARD_RANGE`] for any in-graph node it does not
//! hold. A fleet of backends (one per shard) behind a
//! [`crate::router::Router`] serves the whole store horizontally.
//!
//! Because the shard file is a full-width `FrozenAdsSet` whose rows
//! inside the owned range are byte-for-byte the rows of the unsharded
//! store, every estimator a backend evaluates over an owned node is
//! bitwise identical to the single-process answer — the router's merge
//! guarantee reduces to routing each node to its owner.

use std::path::Path;
use std::sync::Arc;

use adsketch_core::frozen::SHARD_MANIFEST_FILE;
use adsketch_core::{AdsView, FrozenAdsSet, LoadOptions, ShardManifest};
use adsketch_graph::NodeId;

use crate::error::ServeError;
use crate::server::{RequestStore, Server};
use crate::store::load_shard;

/// One shard of a sharded store, resident in one backend process.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendStore {
    manifest: ShardManifest,
    index: usize,
    shard: FrozenAdsSet,
}

impl BackendStore {
    /// Loads shard `index` (and the manifest) from a directory written by
    /// [`adsketch_core::freeze_sharded`], verifying the shard exactly as
    /// [`crate::ShardedStore::load`] would — columns mapped in place
    /// where the platform supports it. Equivalent to
    /// [`BackendStore::load_with`] with [`LoadOptions::mapped`].
    pub fn load(dir: impl AsRef<Path>, index: usize) -> Result<Self, ServeError> {
        Self::load_with(dir, index, LoadOptions::mapped())
    }

    /// [`BackendStore::load`] with explicit [`LoadOptions`]. Passing
    /// [`LoadOptions::trusted`] is the warm-restart fast path: a replica
    /// that already verified this store directory once remaps it without
    /// re-hashing a few hundred megabytes of columns, making backend
    /// cold-start effectively O(1).
    pub fn load_with(
        dir: impl AsRef<Path>,
        index: usize,
        opts: LoadOptions,
    ) -> Result<Self, ServeError> {
        let dir = dir.as_ref();
        let manifest = ShardManifest::load(dir.join(SHARD_MANIFEST_FILE))?;
        if index >= manifest.num_shards() {
            return Err(ServeError::Store(format!(
                "shard index {index} out of range: the manifest describes {} shards",
                manifest.num_shards()
            )));
        }
        let shard = load_shard(dir, &manifest, index, opts)?;
        Ok(Self {
            manifest,
            index,
            shard,
        })
    }

    /// The validated manifest this shard was loaded against.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Which manifest shard this store holds.
    pub fn shard_index(&self) -> usize {
        self.index
    }

    /// Binds a backend server over this store (a thin convenience over
    /// [`Server::bind`]).
    pub fn into_server(
        self,
        addr: impl std::net::ToSocketAddrs,
        workers: usize,
    ) -> std::io::Result<Server<BackendStore>> {
        Server::bind(addr, Arc::new(self), workers)
    }
}

impl AdsView for BackendStore {
    #[inline]
    fn k(&self) -> usize {
        self.shard.k()
    }

    #[inline]
    fn num_nodes(&self) -> usize {
        // Shard files are full-width; nodes outside the owned range have
        // empty rows and are fenced off by `owned_range`.
        self.shard.num_nodes()
    }

    #[inline]
    fn entry_count(&self, v: NodeId) -> usize {
        self.shard.entry_count(v)
    }

    fn for_each_entry(&self, v: NodeId, f: impl FnMut(adsketch_core::AdsEntry)) {
        self.shard.for_each_entry(v, f)
    }

    fn for_each_hip(&self, v: NodeId, f: impl FnMut(adsketch_core::HipItem)) {
        self.shard.for_each_hip(v, f)
    }

    #[inline]
    fn size_at(&self, v: NodeId, d: f64) -> usize {
        self.shard.size_at(v, d)
    }

    #[inline]
    fn total_entries(&self) -> usize {
        self.shard.num_entries()
    }

    #[inline]
    fn hip_cardinality_at(&self, v: NodeId, d: f64) -> f64 {
        self.shard.hip_cardinality_at(v, d)
    }

    #[inline]
    fn hip_reachable(&self, v: NodeId) -> f64 {
        self.shard.hip_reachable(v)
    }
}

impl RequestStore for BackendStore {
    fn owned_range(&self) -> std::ops::Range<u64> {
        let rec = self.manifest.records()[self.index];
        rec.start..rec.end
    }
}
