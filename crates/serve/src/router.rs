//! The stateless scatter/gather router of the distributed tier.
//!
//! A [`Router`] binds the ordinary `ADSKWIR1` listener — clients cannot
//! tell it from a single-process [`crate::Server`] — but holds **no
//! sketch data**. It keeps only the `ADSKSHD1` manifest's node-range
//! table plus one backend address per shard. Each worker thread owns a
//! lazily-connected [`crate::Client`] per backend; an incoming batch is
//! pre-validated exactly as the single-process server would validate it,
//! partitioned by owning shard, scattered (pipelined) over the backend
//! connections, and the answers are merged back into request order.
//!
//! # Merge guarantee
//!
//! Every merged answer is **bitwise identical** to the single-process
//! engine on the unsharded store:
//!
//! * Per-node requests (harmonic, decay, cardinality, neighborhood
//!   function, sketch prefix) are answered entirely by each node's
//!   owning backend, whose rows are byte-for-byte the unsharded rows —
//!   merging is pure index placement, no arithmetic.
//! * Jaccard pairs whose endpoints share a shard go to that backend
//!   directly. A **cross-shard** pair is answered by fetching each
//!   endpoint's `(rank, node)` sketch prefix from its owner and
//!   replaying the insertions into the same bottom-k sketch
//!   [`AdsView::minhash_at`] builds locally — the similarity is then
//!   computed by the same `adsketch_minhash` routine the local engine
//!   calls, on identical sketches.
//!
//! [`AdsView::minhash_at`]: adsketch_core::AdsView::minhash_at
//!
//! # Failure semantics
//!
//! Backends are contacted with a bounded connect timeout, every read is
//! bounded by a read deadline, and each leg of a scatter gets a bounded
//! retry with reconnect. If a required backend stays unreachable, the
//! *whole* request is answered with one [`ERR_BACKEND`] error frame —
//! never a hang, never a partially merged answer — and the client's
//! connection stays usable. The router holds no per-request state across
//! connections, so once the backend returns, the next attempt simply
//! reconnects and succeeds.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use adsketch_core::{thread_count, ShardManifest};
use adsketch_graph::NodeId;
use adsketch_minhash::{similarity, BottomKSketch};

use crate::client::Client;
use crate::error::ServeError;
use crate::proto::{Request, Response, ERR_BACKEND, ERR_RESPONSE_TOO_LARGE, MAX_FRAME_LEN};
use crate::server::{
    batch_too_large, check_nodes, nf_too_large, serve_pool, sketches_too_large, ServerHandle,
};

/// Deadlines and retry budget for the router's backend connections.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bound on each TCP connect to a backend.
    pub connect_timeout: Duration,
    /// Bound on each blocking read from a backend.
    pub read_timeout: Duration,
    /// How many times a failed leg is retried (with reconnect) before
    /// the whole request is failed with [`ERR_BACKEND`].
    pub retries: u32,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(2),
            retries: 1,
        }
    }
}

/// A bound scatter/gather router over a fleet of shard backends.
pub struct Router {
    listener: TcpListener,
    manifest: Arc<ShardManifest>,
    backends: Arc<Vec<SocketAddr>>,
    workers: usize,
    config: RouterConfig,
    stop: Arc<AtomicBool>,
}

impl Router {
    /// Binds a router to `addr` with one backend address per manifest
    /// shard (`backends[i]` must serve shard `i`) and a fixed pool of
    /// `workers` connection threads (`0` ⇒ all cores).
    pub fn bind(
        addr: impl ToSocketAddrs,
        manifest: ShardManifest,
        backends: Vec<SocketAddr>,
        workers: usize,
        config: RouterConfig,
    ) -> Result<Self, ServeError> {
        if backends.len() != manifest.num_shards() {
            return Err(ServeError::Store(format!(
                "router needs one backend per shard: the manifest describes {} shards, \
                 got {} backend addresses",
                manifest.num_shards(),
                backends.len()
            )));
        }
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            manifest: Arc::new(manifest),
            backends: Arc::new(backends),
            workers: thread_count(workers).max(1),
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this router from another thread (same
    /// graceful-shutdown contract as [`crate::Server`]).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle::new(
            self.listener
                .local_addr()
                .expect("bound listener has an address"),
            Arc::clone(&self.stop),
        )
    }

    /// Routes until [`ServerHandle::shutdown`]. Blocks the calling
    /// thread; returns the number of client connections served.
    pub fn run(self) -> std::io::Result<u64> {
        let Router {
            listener,
            manifest,
            backends,
            workers,
            config,
            stop,
        } = self;
        let served = serve_pool(&listener, workers, &stop, &|_worker| {
            let mut fleet =
                Fleet::new(Arc::clone(&manifest), Arc::clone(&backends), config.clone());
            move |req: &Request| fleet.route(req)
        });
        Ok(served)
    }
}

/// One sub-request of a scatter: the target shard plus the request to
/// send it. Legs to the same shard are pipelined on its connection in
/// slice order.
type Leg = (usize, Request);

/// A worker thread's view of the backend fleet: one lazily (re)connected
/// client per shard.
struct Fleet {
    manifest: Arc<ShardManifest>,
    addrs: Arc<Vec<SocketAddr>>,
    config: RouterConfig,
    conns: Vec<Option<Client>>,
    /// Bumped whenever a shard's connection is dropped; a pipelined leg
    /// remembers the epoch it was sent under, so the gather phase can
    /// tell "response still in flight" from "connection was replaced".
    epochs: Vec<u64>,
}

impl Fleet {
    fn new(
        manifest: Arc<ShardManifest>,
        addrs: Arc<Vec<SocketAddr>>,
        config: RouterConfig,
    ) -> Self {
        let shards = addrs.len();
        Self {
            manifest,
            addrs,
            config,
            conns: (0..shards).map(|_| None).collect(),
            epochs: vec![0; shards],
        }
    }

    /// The standing connection to `shard`, dialing (with deadlines) if
    /// there is none.
    fn conn(&mut self, shard: usize) -> Result<&mut Client, ServeError> {
        if self.conns[shard].is_none() {
            let client = Client::connect_timeout(&self.addrs[shard], self.config.connect_timeout)?;
            client.set_read_timeout(Some(self.config.read_timeout))?;
            self.conns[shard] = Some(client);
        }
        Ok(self.conns[shard].as_mut().expect("just connected"))
    }

    /// Drops `shard`'s connection (its request/response pairing can no
    /// longer be trusted after any failure).
    fn drop_conn(&mut self, shard: usize) {
        self.conns[shard] = None;
        self.epochs[shard] += 1;
    }

    /// One request/response exchange with `shard`, retried with
    /// reconnect up to the configured budget. Exhausting the budget
    /// yields [`ServeError::Backend`] — the typed whole-request failure.
    fn exchange(&mut self, shard: usize, req: &Request) -> Result<Response, ServeError> {
        let mut last: Option<ServeError> = None;
        for _ in 0..=self.config.retries {
            let attempt = self.conn(shard).and_then(|c| {
                c.send(req)?;
                c.recv_response()
            });
            match attempt {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    self.drop_conn(shard);
                    last = Some(e);
                }
            }
        }
        Err(ServeError::Backend {
            shard,
            message: last.expect("at least one attempt ran").to_string(),
        })
    }

    /// Scatter/gather: pipelines every leg's send before reading any
    /// response, then gathers in leg order. A failed leg falls back to a
    /// fresh [`Fleet::exchange`] (reconnect + resend + bounded retries);
    /// if that also fails, the whole scatter fails.
    fn scatter(&mut self, legs: &[Leg]) -> Result<Vec<Response>, ServeError> {
        // Send phase: remember the connection epoch each leg was sent
        // under; a send failure just leaves the leg for the gather
        // phase's exchange fallback.
        let mut sent: Vec<Option<u64>> = Vec::with_capacity(legs.len());
        for (shard, req) in legs {
            let ok = self.conn(*shard).and_then(|c| c.send(req)).is_ok();
            if ok {
                sent.push(Some(self.epochs[*shard]));
            } else {
                self.drop_conn(*shard);
                sent.push(None);
            }
        }
        // Gather phase, in leg order (which is per-connection send
        // order, so pipelined responses pair up correctly).
        let mut out = Vec::with_capacity(legs.len());
        for ((shard, req), sent_epoch) in legs.iter().zip(sent) {
            let live = sent_epoch == Some(self.epochs[*shard]);
            let resp = if live {
                match self.conns[*shard]
                    .as_mut()
                    .expect("live epoch implies a connection")
                    .recv_response()
                {
                    Ok(resp) => resp,
                    Err(_) => {
                        self.drop_conn(*shard);
                        self.exchange(*shard, req)?
                    }
                }
            } else {
                self.exchange(*shard, req)?
            };
            out.push(resp);
        }
        Ok(out)
    }

    /// Groups batch-item indices by owning shard. Shards come out in
    /// ascending order; each index list preserves request order.
    fn partition(&self, nodes: impl Iterator<Item = NodeId>) -> Vec<(usize, Vec<usize>)> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.addrs.len()];
        for (i, v) in nodes.enumerate() {
            by_shard[self.manifest.shard_of(v as u64)].push(i);
        }
        by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, idxs)| !idxs.is_empty())
            .collect()
    }

    /// Answers one client request. Infallible at this level: every
    /// failure becomes a typed error frame.
    fn route(&mut self, req: &Request) -> Response {
        match self.try_route(req) {
            Ok(resp) => resp,
            Err(e) => {
                let (shard, message) = match e {
                    ServeError::Backend { shard, message } => (Some(shard), message),
                    other => (None, other.to_string()),
                };
                Response::Error {
                    code: ERR_BACKEND,
                    message: match shard {
                        Some(s) => format!("backend for shard {s} unavailable: {message}"),
                        None => format!("backend fleet failure: {message}"),
                    },
                }
            }
        }
    }

    fn try_route(&mut self, req: &Request) -> Result<Response, ServeError> {
        let n = self.manifest.num_nodes() as u64;
        let all = 0..n;
        // Pre-validate in the same iteration order as the single-process
        // server, so invalid batches earn byte-identical error frames
        // without touching any backend.
        let precheck = match req {
            Request::Harmonic { nodes }
            | Request::Decay { nodes, .. }
            | Request::NeighborhoodFunction { nodes }
            | Request::SketchPrefix { nodes, .. } => {
                check_nodes(&mut nodes.iter().copied(), n, &all)
            }
            Request::Cardinality { queries } => {
                check_nodes(&mut queries.iter().map(|q| q.0), n, &all)
            }
            Request::Jaccard { pairs, .. } => {
                check_nodes(&mut pairs.iter().flat_map(|&(u, v)| [u, v]), n, &all)
            }
        };
        if let Some(err) = precheck {
            return Ok(err);
        }
        let too_large = match req {
            Request::Harmonic { nodes } | Request::Decay { nodes, .. } => {
                batch_too_large(nodes.len())
            }
            Request::Cardinality { queries } => batch_too_large(queries.len()),
            Request::Jaccard { pairs, .. } => batch_too_large(pairs.len()),
            Request::NeighborhoodFunction { .. } | Request::SketchPrefix { .. } => None,
        };
        if let Some(err) = too_large {
            return Ok(err);
        }
        match req {
            Request::Harmonic { nodes } => {
                self.route_floats(req, nodes, |sub| Request::Harmonic { nodes: sub })
            }
            Request::Decay { kernel, nodes } => {
                let kernel = *kernel;
                self.route_floats(req, nodes, move |sub| Request::Decay { kernel, nodes: sub })
            }
            Request::Cardinality { queries } => self.route_cardinality(req, queries),
            Request::NeighborhoodFunction { nodes } => self.route_curves(req, nodes),
            Request::SketchPrefix { d, nodes } => self.route_sketches(req, *d, nodes),
            Request::Jaccard { d, pairs } => self.route_jaccard(*d, pairs),
        }
    }

    /// Per-node float batches (harmonic / decay): partition, scatter,
    /// place each backend's answers back at their request indices.
    fn route_floats(
        &mut self,
        req: &Request,
        nodes: &[NodeId],
        make: impl Fn(Vec<NodeId>) -> Request,
    ) -> Result<Response, ServeError> {
        let parts = self.partition(nodes.iter().copied());
        if let [(shard, _)] = parts[..] {
            return self.exchange(shard, req);
        }
        let legs: Vec<Leg> = parts
            .iter()
            .map(|(shard, idxs)| (*shard, make(idxs.iter().map(|&i| nodes[i]).collect())))
            .collect();
        let resps = self.scatter(&legs)?;
        let mut out = vec![0.0f64; nodes.len()];
        for ((shard, idxs), resp) in parts.iter().zip(resps) {
            let xs = expect_floats(*shard, resp, idxs.len())?;
            for (&i, x) in idxs.iter().zip(xs) {
                out[i] = x;
            }
        }
        Ok(Response::Floats(out))
    }

    fn route_cardinality(
        &mut self,
        req: &Request,
        queries: &[(NodeId, f64)],
    ) -> Result<Response, ServeError> {
        let parts = self.partition(queries.iter().map(|q| q.0));
        if let [(shard, _)] = parts[..] {
            return self.exchange(shard, req);
        }
        let legs: Vec<Leg> = parts
            .iter()
            .map(|(shard, idxs)| {
                (
                    *shard,
                    Request::Cardinality {
                        queries: idxs.iter().map(|&i| queries[i]).collect(),
                    },
                )
            })
            .collect();
        let resps = self.scatter(&legs)?;
        let mut out = vec![0.0f64; queries.len()];
        for ((shard, idxs), resp) in parts.iter().zip(resps) {
            let xs = expect_floats(*shard, resp, idxs.len())?;
            for (&i, x) in idxs.iter().zip(xs) {
                out[i] = x;
            }
        }
        Ok(Response::Floats(out))
    }

    fn route_curves(&mut self, req: &Request, nodes: &[NodeId]) -> Result<Response, ServeError> {
        let parts = self.partition(nodes.iter().copied());
        if let [(shard, _)] = parts[..] {
            return self.exchange(shard, req);
        }
        let legs: Vec<Leg> = parts
            .iter()
            .map(|(shard, idxs)| {
                (
                    *shard,
                    Request::NeighborhoodFunction {
                        nodes: idxs.iter().map(|&i| nodes[i]).collect(),
                    },
                )
            })
            .collect();
        let resps = self.scatter(&legs)?;
        let mut out: Vec<Vec<(f64, f64)>> = vec![Vec::new(); nodes.len()];
        for ((shard, idxs), resp) in parts.iter().zip(resps) {
            let curves = match resp {
                Response::Curves(cs) if cs.len() == idxs.len() => cs,
                // A sub-batch too big for one frame means the merged
                // batch is too — answer with the canonical error the
                // single-process server produces for the full batch.
                Response::Error { code, .. } if code == ERR_RESPONSE_TOO_LARGE => {
                    return Ok(nf_too_large(nodes.len()))
                }
                other => return Err(unexpected(*shard, other)),
            };
            for (&i, c) in idxs.iter().zip(curves) {
                out[i] = c;
            }
        }
        // The merged response must obey the same frame bound each
        // backend enforced on its sub-batch.
        let size = 5u64 + out.iter().map(|c| 4 + 16 * c.len() as u64).sum::<u64>();
        if size > MAX_FRAME_LEN as u64 {
            return Ok(nf_too_large(nodes.len()));
        }
        Ok(Response::Curves(out))
    }

    fn route_sketches(
        &mut self,
        req: &Request,
        d: f64,
        nodes: &[NodeId],
    ) -> Result<Response, ServeError> {
        let parts = self.partition(nodes.iter().copied());
        if let [(shard, _)] = parts[..] {
            return self.exchange(shard, req);
        }
        let legs: Vec<Leg> = parts
            .iter()
            .map(|(shard, idxs)| {
                (
                    *shard,
                    Request::SketchPrefix {
                        d,
                        nodes: idxs.iter().map(|&i| nodes[i]).collect(),
                    },
                )
            })
            .collect();
        let resps = self.scatter(&legs)?;
        let mut out: Vec<Vec<(f64, NodeId)>> = vec![Vec::new(); nodes.len()];
        for ((shard, idxs), resp) in parts.iter().zip(resps) {
            let seqs = match resp {
                Response::Sketches(ss) if ss.len() == idxs.len() => ss,
                Response::Error { code, .. } if code == ERR_RESPONSE_TOO_LARGE => {
                    return Ok(sketches_too_large(nodes.len()))
                }
                other => return Err(unexpected(*shard, other)),
            };
            for (&i, s) in idxs.iter().zip(seqs) {
                out[i] = s;
            }
        }
        let size = 5u64 + out.iter().map(|s| 4 + 12 * s.len() as u64).sum::<u64>();
        if size > MAX_FRAME_LEN as u64 {
            return Ok(sketches_too_large(nodes.len()));
        }
        Ok(Response::Sketches(out))
    }

    /// Jaccard: same-shard pairs go straight to their owner; cross-shard
    /// pairs are merged from per-endpoint sketch prefixes (see the
    /// module docs for why this stays bitwise identical).
    fn route_jaccard(
        &mut self,
        d: f64,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<Response, ServeError> {
        let shards = self.addrs.len();
        let mut same: Vec<Vec<usize>> = vec![Vec::new(); shards];
        let mut cross: Vec<usize> = Vec::new();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let su = self.manifest.shard_of(u as u64);
            let sv = self.manifest.shard_of(v as u64);
            if su == sv {
                same[su].push(i);
            } else {
                cross.push(i);
            }
        }
        // Deduplicated prefix nodes needed per shard for the cross pairs.
        let mut need: Vec<Vec<NodeId>> = vec![Vec::new(); shards];
        let mut seen: HashMap<NodeId, ()> = HashMap::new();
        for &i in &cross {
            for v in [pairs[i].0, pairs[i].1] {
                if seen.insert(v, ()).is_none() {
                    need[self.manifest.shard_of(v as u64)].push(v);
                }
            }
        }
        enum Merge {
            Pairs(Vec<usize>),
            Prefixes(Vec<NodeId>),
        }
        let mut legs: Vec<Leg> = Vec::new();
        let mut merges: Vec<Merge> = Vec::new();
        for (shard, idxs) in same.into_iter().enumerate() {
            if !idxs.is_empty() {
                legs.push((
                    shard,
                    Request::Jaccard {
                        d,
                        pairs: idxs.iter().map(|&i| pairs[i]).collect(),
                    },
                ));
                merges.push(Merge::Pairs(idxs));
            }
        }
        for (shard, nodes) in need.into_iter().enumerate() {
            if !nodes.is_empty() {
                legs.push((
                    shard,
                    Request::SketchPrefix {
                        d,
                        nodes: nodes.clone(),
                    },
                ));
                merges.push(Merge::Prefixes(nodes));
            }
        }
        if cross.is_empty() {
            if let [(shard, Request::Jaccard { .. })] = &legs[..] {
                // Every pair lives on one shard: forward verbatim.
                return self.exchange(
                    *shard,
                    &Request::Jaccard {
                        d,
                        pairs: pairs.to_vec(),
                    },
                );
            }
        }
        let resps = self.scatter(&legs)?;
        let mut out = vec![0.0f64; pairs.len()];
        let k = self.manifest.k();
        let mut sketches: HashMap<NodeId, BottomKSketch> = HashMap::new();
        for (((shard, _req), merge), resp) in legs.iter().zip(&merges).zip(resps) {
            match merge {
                Merge::Pairs(idxs) => {
                    let xs = expect_floats(*shard, resp, idxs.len())?;
                    for (&i, x) in idxs.iter().zip(xs) {
                        out[i] = x;
                    }
                }
                Merge::Prefixes(nodes) => {
                    let seqs = match resp {
                        Response::Sketches(ss) if ss.len() == nodes.len() => ss,
                        Response::Error { code, .. } if code == ERR_RESPONSE_TOO_LARGE => {
                            // The one-shot prefix fetch overflowed a
                            // frame; split it until it fits.
                            self.fetch_prefixes_split(*shard, d, nodes)?
                        }
                        other => return Err(unexpected(*shard, other)),
                    };
                    for (&v, seq) in nodes.iter().zip(seqs) {
                        sketches.insert(v, replay(k, &seq));
                    }
                }
            }
        }
        for &i in &cross {
            let (u, v) = pairs[i];
            let su = &sketches[&u];
            let sv = &sketches[&v];
            out[i] = similarity::jaccard(su, sv);
        }
        Ok(Response::Floats(out))
    }

    /// Fetches sketch prefixes with recursive halving when a batch's
    /// response cannot fit one frame.
    fn fetch_prefixes_split(
        &mut self,
        shard: usize,
        d: f64,
        nodes: &[NodeId],
    ) -> Result<Vec<Vec<(f64, NodeId)>>, ServeError> {
        let resp = self.exchange(
            shard,
            &Request::SketchPrefix {
                d,
                nodes: nodes.to_vec(),
            },
        )?;
        match resp {
            Response::Sketches(ss) if ss.len() == nodes.len() => Ok(ss),
            Response::Error { code, .. } if code == ERR_RESPONSE_TOO_LARGE && nodes.len() > 1 => {
                let (a, b) = nodes.split_at(nodes.len() / 2);
                let mut out = self.fetch_prefixes_split(shard, d, a)?;
                out.extend(self.fetch_prefixes_split(shard, d, b)?);
                Ok(out)
            }
            other => Err(unexpected(shard, other)),
        }
    }
}

/// Rebuilds the bottom-k MinHash sketch from a served `(rank, node)`
/// insertion sequence — the same insertions, in the same order, as the
/// local `minhash_at`.
fn replay(k: usize, seq: &[(f64, NodeId)]) -> BottomKSketch {
    let mut sketch = BottomKSketch::new(k);
    for &(rank, node) in seq {
        sketch.insert_ranked(rank, node as u64);
    }
    sketch
}

fn expect_floats(shard: usize, resp: Response, want: usize) -> Result<Vec<f64>, ServeError> {
    match resp {
        Response::Floats(xs) if xs.len() == want => Ok(xs),
        other => Err(unexpected(shard, other)),
    }
}

/// A response the merge cannot use (an error frame where data was due,
/// a mismatched count, a wrong variant) — fail the whole request with a
/// typed backend error rather than guess.
fn unexpected(shard: usize, resp: Response) -> ServeError {
    let message = match resp {
        Response::Error { code, message } => format!("answered error frame {code}: {message}"),
        other => format!("answered an unexpected response: {other:?}"),
    };
    ServeError::Backend { shard, message }
}
