//! The stateless scatter/gather router of the distributed tier.
//!
//! A [`Router`] binds the ordinary `ADSKWIR1` listener — clients cannot
//! tell it from a single-process [`crate::Server`] — but holds **no
//! sketch data**. It keeps only the `ADSKSHD1` manifest's node-range
//! table plus a **replica set** of backend addresses per shard. Each
//! worker thread owns a lazily-connected [`crate::Client`] per endpoint;
//! an incoming batch is pre-validated exactly as the single-process
//! server would validate it, partitioned by owning shard, scattered
//! (pipelined) over backend connections, and the answers are merged back
//! into request order.
//!
//! # Merge guarantee
//!
//! Every merged answer is **bitwise identical** to the single-process
//! engine on the unsharded store:
//!
//! * Per-node requests (harmonic, decay, cardinality, neighborhood
//!   function, sketch prefix) are answered entirely by each node's
//!   owning shard, whose replicas hold byte-for-byte the unsharded rows —
//!   merging is pure index placement, no arithmetic. Because replicas of
//!   a shard are interchangeable *bitwise*, the router is free to spread
//!   legs across them, fail a leg over, or hedge it — none of which can
//!   change a single answer bit.
//! * Jaccard pairs whose endpoints share a shard go to that shard
//!   directly. A **cross-shard** pair is answered by fetching each
//!   endpoint's `(rank, node)` sketch prefix from its owner and
//!   replaying the insertions into the same bottom-k sketch
//!   [`AdsView::minhash_at`] builds locally — the similarity is then
//!   computed by the same `adsketch_minhash` routine the local engine
//!   calls, on identical sketches.
//!
//! [`AdsView::minhash_at`]: adsketch_core::AdsView::minhash_at
//!
//! # Replica sets, failover, and health
//!
//! `Router::bind` takes one *list* of addresses per shard. Legs
//! round-robin across a shard's healthy replicas; a failed leg fails
//! over to the next healthy replica *before* spending the retry budget.
//! A shared circuit breaker (the crate-internal `health` module) tracks
//! every endpoint:
//! consecutive failures escalate a jittered exponential cooldown and
//! eventually open the endpoint's circuit, after which only the
//! background prober (a cheap `0x07 Health` ping that also verifies the
//! replica serves the shard range the manifest assigns it) may touch it.
//! A request that finds **every** replica of a needed shard open fails
//! fast — no connect timeouts on the hot path.
//!
//! With [`RouterConfig::hedge_delay`] set, a leg that has not answered
//! after the delay is duplicated to a second healthy replica and the
//! first answer wins. This is safe precisely because answers are bitwise
//! identical; the loser's frame is drained (or its connection retired —
//! connections are generation-counted) so pipelined replies can never
//! cross-pair.
//!
//! # Failure semantics
//!
//! Backends are contacted with a bounded connect timeout, every read is
//! bounded by a read deadline, and each leg gets replica failover plus a
//! bounded retry. By default the router is all-or-nothing: if a required
//! shard stays unreachable, the *whole* request is answered with one
//! [`ERR_BACKEND`] error frame — never a hang, never a partially merged
//! answer — and the client's connection stays usable. With
//! [`RouterConfig::degraded`] enabled, float-valued batches (harmonic,
//! decay, cardinality, Jaccard) instead come back as a
//! [`Response::Partial`] frame: per-request [`ERR_SHARD_DOWN`] slots for
//! exactly the queries owned by dead shards, bitwise-correct answers for
//! everything else. Curve and sketch batches stay all-or-nothing in
//! either mode.
//!
//! # Serving generation
//!
//! The background prober also polls every endpoint's `GenInfo` frame each
//! interval and tracks the fleet's **serving generation**: the minimum
//! generation reported across the endpoints that answered the poll. The
//! router answers `GenInfo` from this number and tags every answer-cache
//! key with it, so a [`crate::GenerationStore`] hot-swap behind the fleet
//! retires the router's cached bits *by key construction*: the serving
//! generation advances only once every polled endpoint reports the new
//! generation, and generations only move forward (a replica rejoins the
//! fleet at the current or a newer generation, never an older one), so a
//! cached entry's bits always came from the generation its key names.
//! Static frozen fleets never swap, report generation `0` forever, and
//! pay nothing.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adsketch_core::{thread_count, ShardManifest, ShardRecord};
use adsketch_graph::NodeId;
use adsketch_minhash::{similarity, BottomKSketch};

use crate::cache::{
    AnswerCache, CacheKey, CacheStatsHandle, KIND_CARDINALITY, KIND_DECAY, KIND_HARMONIC,
};
use crate::client::Client;
use crate::coalesce::{AnswerMap, Coalescer, GroupKey, Item, Ticket};
use crate::error::ServeError;
use crate::health::{HealthTracker, Tier};
use crate::proto::{
    kernel_from_wire, kernel_to_wire, BatchSlot, Request, Response, ERR_BACKEND,
    ERR_RESPONSE_TOO_LARGE, ERR_SHARD_DOWN, MAX_FRAME_LEN,
};
use crate::server::{
    batch_too_large, check_nodes, nf_too_large, serve_pool, sketches_too_large, ServerHandle, Wake,
};

/// How long each alternating poll on a hedged pair of connections waits
/// before giving the other racer a turn.
const HEDGE_POLL: Duration = Duration::from_millis(2);

/// How long the hedge loser gets to deliver its (already-answered) frame
/// before its connection is retired instead of drained.
const LOSER_DRAIN: Duration = Duration::from_millis(2);

/// Deadlines, retry budget, and replica-set policy for the router's
/// backend connections.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bound on each TCP connect (and handshake read) to a backend
    /// replica. Default **1 s**.
    pub connect_timeout: Duration,
    /// Deadline for one replica to answer one leg. With hedging enabled
    /// the hedge fires partway through this window; the window itself is
    /// unchanged. Default **2 s**.
    pub read_timeout: Duration,
    /// Extra failover passes after the first. Each pass offers the leg
    /// to every dialable replica of the shard at most once, so a shard
    /// with `R` live replicas sees at most `(retries + 1) × R` attempts
    /// before the leg is failed — failover across replicas does **not**
    /// consume the retry budget, it multiplies it. Default **1**.
    pub retries: u32,
    /// First post-failure reconnect cooldown for an endpoint; doubles on
    /// every consecutive failure (deterministic per-endpoint jitter in
    /// `[0.75, 1.0)` of nominal) until [`RouterConfig::backoff_cap`].
    /// Replaces immediate-reconnect hammering; a shard's *only* replica
    /// is still dialed on demand during its cooldown so single-replica
    /// recovery stays instant. Default **50 ms**.
    pub backoff_base: Duration,
    /// Ceiling on the per-endpoint reconnect cooldown, and therefore the
    /// slowest rate at which a dead endpoint is probed. Default **2 s**.
    pub backoff_cap: Duration,
    /// Consecutive failures that open an endpoint's circuit. While open,
    /// workers never dial the endpoint (only the background prober
    /// does), and a request needing a shard whose replicas are *all*
    /// open fails fast without any dial — so this bounds how long a dead
    /// replica can keep eating `connect_timeout`s on the hot path.
    /// `retries` interaction: one failed request can record up to
    /// `(retries + 1) × R + 1` failures across a shard's endpoints, so a
    /// threshold at or below that can open a circuit from a single
    /// request. Default **3**.
    pub failure_threshold: u32,
    /// Cadence of the background half-open prober that re-checks open
    /// circuits (each probe is one `Health` ping, rate-limited further
    /// by the endpoint's own cooldown). Shutdown does not wait out this
    /// interval — the prober is condvar-nudged. Default **100 ms**.
    pub probe_interval: Duration,
    /// Hedged reads: when set, a leg silent for this long is duplicated
    /// to a second healthy replica of the same shard and the first
    /// answer wins (identical bits either way). `None` disables hedging.
    /// Values at or above [`RouterConfig::read_timeout`] never fire.
    /// Default **None**.
    pub hedge_delay: Option<Duration>,
    /// Degraded mode: answer float-valued batches with a
    /// [`Response::Partial`] frame carrying [`ERR_SHARD_DOWN`] slots for
    /// queries whose shard has no reachable replica, instead of failing
    /// the whole batch with [`ERR_BACKEND`]. Clients must opt in to
    /// handling the `0x84` frame, so this defaults to **false**
    /// (all-or-nothing).
    pub degraded: bool,
    /// Byte budget for the router's **answer cache**: a sharded LRU over
    /// per-node float answers (harmonic, decay, cardinality, Jaccard)
    /// keyed by `(request kind, parameter bits, node)`. The frozen store
    /// is immutable per generation, so cached answers never need
    /// invalidation, and because they are stored as `f64::to_bits` a hit
    /// replays the *exact* bits the backend served — batch requests peel
    /// cached nodes off before the scatter and splice them back in merge
    /// order, preserving bitwise identity verbatim. `0` disables the
    /// cache (the default: fault-injection and failover tests rely on
    /// every query reaching a backend).
    pub cache_bytes: usize,
    /// Cross-client coalescing window: when set, a worker's per-shard
    /// sub-batch of a per-node float kind briefly pools with other
    /// workers' concurrent sub-batches for the same `(shard, kind,
    /// parameters)` group; one merged, deduplicated wire batch is
    /// exchanged and the answers fan back out to every participant.
    /// Adds up to one window of latency per request in exchange for
    /// fewer, larger backend exchanges under high client concurrency.
    /// Failed merges fall back to individual exchanges, so coalescing
    /// can delay an answer but never change or lose one. Default
    /// **None** (off).
    pub coalesce_window: Option<Duration>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(2),
            retries: 1,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            failure_threshold: 3,
            probe_interval: Duration::from_millis(100),
            hedge_delay: None,
            degraded: false,
            cache_bytes: 0,
            coalesce_window: None,
        }
    }
}

/// A bound scatter/gather router over a fleet of shard replica sets.
pub struct Router {
    listener: TcpListener,
    manifest: Arc<ShardManifest>,
    replicas: Arc<Vec<Vec<SocketAddr>>>,
    workers: usize,
    config: RouterConfig,
    stop: Arc<AtomicBool>,
    wake: Arc<Wake>,
    health: Arc<HealthTracker>,
    cache: Option<Arc<AnswerCache>>,
    coalescer: Option<Arc<Coalescer>>,
    /// The fleet-wide serving generation (see the module docs): advanced
    /// by the prober, read by workers for `GenInfo` answers and cache
    /// keys.
    serving_gen: Arc<AtomicU64>,
}

impl Router {
    /// Binds a router to `addr` with one replica set per manifest shard
    /// (every address in `replicas[i]` must serve shard `i`) and a fixed
    /// pool of `workers` connection threads (`0` ⇒ all cores). A replica
    /// set must not be empty; a single-address set reproduces the
    /// unreplicated topology exactly.
    pub fn bind(
        addr: impl ToSocketAddrs,
        manifest: ShardManifest,
        replicas: Vec<Vec<SocketAddr>>,
        workers: usize,
        config: RouterConfig,
    ) -> Result<Self, ServeError> {
        if replicas.len() != manifest.num_shards() {
            return Err(ServeError::Store(format!(
                "router needs one replica set per shard: the manifest describes {} shards, \
                 got {} replica sets",
                manifest.num_shards(),
                replicas.len()
            )));
        }
        if let Some(shard) = replicas.iter().position(Vec::is_empty) {
            return Err(ServeError::Store(format!(
                "shard {shard} has an empty replica set; every shard needs at least one backend"
            )));
        }
        let listener = TcpListener::bind(addr)?;
        let sizes: Vec<usize> = replicas.iter().map(Vec::len).collect();
        let health = HealthTracker::new(
            &sizes,
            config.backoff_base,
            config.backoff_cap,
            config.failure_threshold,
        );
        let cache = AnswerCache::new(config.cache_bytes);
        let coalescer = config
            .coalesce_window
            .map(|window| Arc::new(Coalescer::new(window)));
        Ok(Self {
            listener,
            manifest: Arc::new(manifest),
            replicas: Arc::new(replicas),
            workers: thread_count(workers).max(1),
            config,
            stop: Arc::new(AtomicBool::new(false)),
            wake: Arc::new(Wake::default()),
            health: Arc::new(health),
            cache,
            coalescer,
            serving_gen: Arc::new(AtomicU64::new(0)),
        })
    }

    /// A handle onto the answer cache's hit/miss counters, or `None`
    /// when [`RouterConfig::cache_bytes`] is zero. Take it before
    /// [`Router::run`] (which consumes the router); it stays valid for
    /// the router's whole life and after shutdown.
    pub fn cache_stats(&self) -> Option<CacheStatsHandle> {
        self.cache.as_ref().map(|inner| CacheStatsHandle {
            inner: Arc::clone(inner),
        })
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this router from another thread (same
    /// graceful-shutdown contract as [`crate::Server`], plus a prompt
    /// condvar nudge for the health prober).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle::new(
            self.listener
                .local_addr()
                .expect("bound listener has an address"),
            Arc::clone(&self.stop),
            Arc::clone(&self.wake),
        )
    }

    /// Routes until [`ServerHandle::shutdown`]. Blocks the calling
    /// thread; returns the number of client connections served.
    pub fn run(self) -> std::io::Result<u64> {
        let Router {
            listener,
            manifest,
            replicas,
            workers,
            config,
            stop,
            wake,
            health,
            cache,
            coalescer,
            serving_gen,
        } = self;
        let served = std::thread::scope(|scope| {
            let prober = scope.spawn(|| {
                prober_loop(
                    &manifest,
                    &replicas,
                    &config,
                    &health,
                    &serving_gen,
                    &stop,
                    &wake,
                )
            });
            let served = serve_pool(&listener, workers, &stop, &|_worker| {
                let mut fleet = Fleet::new(
                    Arc::clone(&manifest),
                    Arc::clone(&replicas),
                    config.clone(),
                    Arc::clone(&health),
                    cache.clone(),
                    coalescer.clone(),
                    Arc::clone(&serving_gen),
                );
                move |req: &Request| fleet.route(req)
            });
            // The pool has drained; make sure the prober exits even when
            // run() ends without a ServerHandle::shutdown call.
            stop.store(true, Ordering::SeqCst);
            wake.notify();
            prober.join().expect("prober thread");
            served
        });
        Ok(served)
    }
}

/// The background half-open prober: wakes every `probe_interval` (or
/// instantly on shutdown, via the condvar), refreshes the fleet's
/// serving generation, then claims open endpoints whose cooldown expired
/// and pings each with a `Health` frame.
fn prober_loop(
    manifest: &ShardManifest,
    replicas: &[Vec<SocketAddr>],
    config: &RouterConfig,
    health: &HealthTracker,
    serving_gen: &AtomicU64,
    stop: &AtomicBool,
    wake: &Wake,
) {
    loop {
        if wake.wait_timeout(config.probe_interval) || stop.load(Ordering::SeqCst) {
            return;
        }
        // Generation tracking runs every interval, independent of circuit
        // state — a hot-swap must surface even when the whole fleet is
        // healthy (which is exactly when swaps normally happen).
        poll_serving_generation(replicas, config, serving_gen, stop);
        if !health.any_open() {
            continue;
        }
        for (shard, reps) in replicas.iter().enumerate() {
            for (rep, addr) in reps.iter().enumerate() {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                if !health.take_probe(shard, rep) {
                    continue;
                }
                if probe(addr, &manifest.records()[shard], config) {
                    health.record_success(shard, rep);
                } else {
                    health.record_failure(shard, rep);
                }
            }
        }
    }
}

/// One serving-generation sweep: ask every endpoint for its `GenInfo`
/// and advance `serving_gen` to the **minimum** generation the answering
/// endpoints report. Unanswered polls (endpoint down) don't hold the
/// fleet back — a replica rejoins at the current or a newer generation —
/// and the advance is monotone (`fetch_max`), so the number can never
/// regress even across interleaved sweeps.
fn poll_serving_generation(
    replicas: &[Vec<SocketAddr>],
    config: &RouterConfig,
    serving_gen: &AtomicU64,
    stop: &AtomicBool,
) {
    let mut fleet_min: Option<u64> = None;
    for reps in replicas {
        for addr in reps {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            if let Some(g) = poll_generation(addr, config) {
                fleet_min = Some(fleet_min.map_or(g, |m| m.min(g)));
            }
        }
    }
    if let Some(g) = fleet_min {
        serving_gen.fetch_max(g, Ordering::SeqCst);
    }
}

/// One bounded `GenInfo` poll against one endpoint; `None` if the
/// endpoint is unreachable or misbehaves (the sweep just skips it).
fn poll_generation(addr: &SocketAddr, config: &RouterConfig) -> Option<u64> {
    let mut client = Client::connect_timeout(addr, config.connect_timeout).ok()?;
    client.set_read_timeout(Some(config.read_timeout)).ok()?;
    client.gen_info().ok()
}

/// One half-open probe: connect, handshake, `Health` ping. The endpoint
/// only closes its circuit if it is reachable *and* reports the node
/// range the manifest assigns its shard — a replica wired to the wrong
/// shard stays fenced off instead of serving wrong-shard errors.
fn probe(addr: &SocketAddr, record: &ShardRecord, config: &RouterConfig) -> bool {
    let mut client = match Client::connect_timeout(addr, config.connect_timeout) {
        Ok(c) => c,
        Err(_) => return false,
    };
    if client.set_read_timeout(Some(config.read_timeout)).is_err() {
        return false;
    }
    match client.health() {
        Ok((start, end)) => start == record.start && end == record.end,
        Err(_) => false,
    }
}

/// One sub-request of a scatter: the target shard plus the request to
/// send it. Legs to the same connection are pipelined in slice order.
type Leg = (usize, Request);

/// Which racer of a hedged wait a poll belongs to.
#[derive(Clone, Copy, PartialEq)]
enum Racer {
    Primary,
    Hedge,
}

/// A worker thread's view of the backend fleet: one lazily (re)connected
/// client per `(shard, replica)` endpoint, plus the bookkeeping that
/// keeps pipelined frames paired across failover and hedging.
struct Fleet {
    manifest: Arc<ShardManifest>,
    addrs: Arc<Vec<Vec<SocketAddr>>>,
    config: RouterConfig,
    health: Arc<HealthTracker>,
    conns: Vec<Vec<Option<Client>>>,
    /// Bumped whenever an endpoint's connection is dropped; a pipelined
    /// leg remembers the epoch it was sent under, so the gather phase
    /// can tell "response still in flight" from "connection was
    /// replaced".
    epochs: Vec<Vec<u64>>,
    /// Frames sent but not yet gathered per endpoint. An endpoint with
    /// in-flight frames must not serve an out-of-band exchange (its next
    /// frames belong to earlier legs) nor host a hedge.
    inflight: Vec<Vec<u32>>,
    /// Round-robin cursor per shard.
    rr: Vec<usize>,
    /// The router-wide answer cache (shared across workers); `None`
    /// when [`RouterConfig::cache_bytes`] is zero.
    cache: Option<Arc<AnswerCache>>,
    /// The router-wide cross-client coalescer; `None` when
    /// [`RouterConfig::coalesce_window`] is unset.
    coalescer: Option<Arc<Coalescer>>,
    /// The prober-maintained fleet serving generation — read for
    /// `GenInfo` answers and to tag answer-cache keys.
    serving_gen: Arc<AtomicU64>,
}

impl Fleet {
    fn new(
        manifest: Arc<ShardManifest>,
        addrs: Arc<Vec<Vec<SocketAddr>>>,
        config: RouterConfig,
        health: Arc<HealthTracker>,
        cache: Option<Arc<AnswerCache>>,
        coalescer: Option<Arc<Coalescer>>,
        serving_gen: Arc<AtomicU64>,
    ) -> Self {
        let sizes: Vec<usize> = addrs.iter().map(Vec::len).collect();
        Self {
            manifest,
            addrs,
            config,
            health,
            cache,
            coalescer,
            serving_gen,
            conns: sizes
                .iter()
                .map(|&r| (0..r).map(|_| None).collect())
                .collect(),
            epochs: sizes.iter().map(|&r| vec![0; r]).collect(),
            inflight: sizes.iter().map(|&r| vec![0; r]).collect(),
            rr: vec![0; sizes.len()],
        }
    }

    /// Drops an endpoint's connection (its request/response pairing can
    /// no longer be trusted after any failure). The epoch bump strands
    /// any frames still in flight on it — their legs re-exchange.
    fn drop_conn(&mut self, shard: usize, rep: usize) {
        self.conns[shard][rep] = None;
        self.epochs[shard][rep] += 1;
        self.inflight[shard][rep] = 0;
    }

    /// Records a failure with the circuit breaker and retires the
    /// connection.
    fn fail(&mut self, shard: usize, rep: usize) {
        self.health.record_failure(shard, rep);
        self.drop_conn(shard, rep);
    }

    /// A gathered leg releases its in-flight slot — unless the
    /// connection was already replaced (the epoch guard prevents
    /// decrementing a successor connection's count).
    fn leg_done(&mut self, shard: usize, rep: usize, epoch: u64) {
        if self.epochs[shard][rep] == epoch {
            self.inflight[shard][rep] = self.inflight[shard][rep].saturating_sub(1);
        }
    }

    /// Round-robin choice of the replica to carry the next leg to
    /// `shard`: available endpoints (circuit closed, no cooldown) first;
    /// failing that, a cooling endpoint (so a shard whose only replica
    /// just hiccuped is still dialed on demand — instant recovery);
    /// `None` when every circuit is open.
    fn pick(&mut self, shard: usize) -> Option<usize> {
        let reps = self.addrs[shard].len();
        let start = self.rr[shard];
        self.rr[shard] = (start + 1) % reps;
        let mut cooling = None;
        for i in 0..reps {
            let rep = (start + i) % reps;
            match self.health.tier(shard, rep) {
                Tier::Available => return Some(rep),
                Tier::Cooling if cooling.is_none() => cooling = Some(rep),
                _ => {}
            }
        }
        cooling
    }

    /// Dials (if needed) and sends one frame to an endpoint.
    fn try_send(&mut self, shard: usize, rep: usize, req: &Request) -> Result<(), ServeError> {
        if self.conns[shard][rep].is_none() {
            let client =
                Client::connect_timeout(&self.addrs[shard][rep], self.config.connect_timeout)?;
            self.conns[shard][rep] = Some(client);
        }
        self.conns[shard][rep]
            .as_mut()
            .expect("just connected")
            .send(req)
    }

    /// Scatter-phase send of one leg with replica failover: returns the
    /// endpoint and epoch the request is in flight on, or `None` when no
    /// replica would take it (the gather phase then runs the full
    /// exchange fallback).
    fn send_leg(&mut self, shard: usize, req: &Request) -> Option<(usize, u64)> {
        for _ in 0..self.addrs[shard].len() {
            let rep = self.pick(shard)?;
            match self.try_send(shard, rep, req) {
                Ok(()) => {
                    self.inflight[shard][rep] += 1;
                    return Some((rep, self.epochs[shard][rep]));
                }
                Err(_) => self.fail(shard, rep),
            }
        }
        None
    }

    /// One poll step on an endpoint's connection that has a frame due.
    fn step(
        &mut self,
        shard: usize,
        rep: usize,
        wait: Duration,
    ) -> Result<Option<Response>, ServeError> {
        self.conns[shard][rep]
            .as_mut()
            .expect("stepping a live connection")
            .recv_step(wait)
    }

    /// Primes a hedge: a *different* replica, circuit fully closed, with
    /// no frames in flight on its connection (so the hedged response is
    /// the very next frame it delivers). Sends `req` on it.
    fn send_hedge(&mut self, shard: usize, primary: usize, req: &Request) -> Option<usize> {
        let reps = self.addrs[shard].len();
        let start = self.rr[shard];
        self.rr[shard] = (start + 1) % reps;
        for i in 0..reps {
            let rep = (start + i) % reps;
            if rep == primary
                || self.inflight[shard][rep] > 0
                || self.health.tier(shard, rep) != Tier::Available
            {
                continue;
            }
            match self.try_send(shard, rep, req) {
                Ok(()) => return Some(rep),
                Err(_) => self.fail(shard, rep),
            }
        }
        None
    }

    /// The hedge loser still owes one response frame (already computed —
    /// the winner answered the same request). Give it a brief chance to
    /// deliver so the warm connection survives; otherwise retire the
    /// connection, whose epoch bump strands the frame harmlessly. Either
    /// way the *next* frame read from this endpoint pairs with the next
    /// request — no cross-pairing.
    fn settle_loser(&mut self, shard: usize, rep: usize) {
        let drained = matches!(
            self.conns[shard][rep]
                .as_mut()
                .map(|c| c.recv_step(LOSER_DRAIN)),
            Some(Ok(Some(_)))
        );
        if !drained {
            self.drop_conn(shard, rep);
        }
    }

    /// Waits out one leg already in flight on `(shard, rep)`, hedging to
    /// a second replica once [`RouterConfig::hedge_delay`] passes. On
    /// success the circuit breaker hears about it; on failure the
    /// endpoint(s) are failed and the caller decides about retrying.
    fn await_response(
        &mut self,
        shard: usize,
        rep: usize,
        req: &Request,
    ) -> Result<Response, ServeError> {
        let deadline = Instant::now() + self.config.read_timeout;
        let hedge_at = self
            .config
            .hedge_delay
            .filter(|_| self.addrs[shard].len() > 1)
            .map(|d| Instant::now() + d);
        // Phase 1: the primary alone, up to the hedge point (or the whole
        // window when hedging is off).
        let phase1 = hedge_at.map_or(deadline, |t| t.min(deadline));
        match self.step(shard, rep, phase1.saturating_duration_since(Instant::now())) {
            Ok(Some(resp)) => {
                self.health.record_success(shard, rep);
                return Ok(resp);
            }
            Ok(None) => {}
            Err(e) => {
                self.fail(shard, rep);
                return Err(e);
            }
        }
        if hedge_at.is_none() || Instant::now() >= deadline {
            self.fail(shard, rep);
            return Err(timeout_error());
        }
        // Phase 2: race the straggler against a hedge, alternating short
        // polls. recv_step keeps partial frame progress across polls, so
        // neither connection can desynchronize.
        let mut primary = Some(rep);
        let mut hedge = self.send_hedge(shard, rep, req);
        let mut last_err: Option<ServeError> = None;
        while primary.is_some() || hedge.is_some() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let slice = HEDGE_POLL.min(deadline.saturating_duration_since(now));
            for who in [Racer::Primary, Racer::Hedge] {
                let racer = match who {
                    Racer::Primary => primary,
                    Racer::Hedge => hedge,
                };
                let Some(r) = racer else { continue };
                match self.step(shard, r, slice) {
                    Ok(Some(resp)) => {
                        self.health.record_success(shard, r);
                        let loser = match who {
                            Racer::Primary => hedge,
                            Racer::Hedge => primary,
                        };
                        if let Some(l) = loser {
                            self.settle_loser(shard, l);
                        }
                        return Ok(resp);
                    }
                    Ok(None) => {}
                    Err(e) => {
                        self.fail(shard, r);
                        match who {
                            Racer::Primary => primary = None,
                            Racer::Hedge => hedge = None,
                        }
                        last_err = Some(e);
                    }
                }
            }
        }
        // Deadline passed (or both racers errored out).
        for r in [primary, hedge].into_iter().flatten() {
            self.fail(shard, r);
        }
        Err(last_err.unwrap_or_else(timeout_error))
    }

    /// One request/response with any replica of `shard`: round-robin
    /// with failover across replicas, then up to `retries` more full
    /// passes. Finding every circuit open fails fast with
    /// [`ServeError::ShardUnavailable`] — no dial at all.
    fn exchange(&mut self, shard: usize, req: &Request) -> Result<Response, ServeError> {
        let mut last: Option<ServeError> = None;
        for _pass in 0..=self.config.retries {
            let mut attempted = false;
            for _ in 0..self.addrs[shard].len() {
                let Some(rep) = self.pick(shard) else { break };
                attempted = true;
                // An endpoint with frames in flight cannot serve an
                // out-of-band exchange (its next frames belong to other
                // legs): retire the connection — the epoch bump makes the
                // stranded legs re-exchange — and dial fresh.
                if self.inflight[shard][rep] > 0 {
                    self.drop_conn(shard, rep);
                }
                match self.try_send(shard, rep, req) {
                    Ok(()) => {
                        let epoch = self.epochs[shard][rep];
                        self.inflight[shard][rep] += 1;
                        let res = self.await_response(shard, rep, req);
                        self.leg_done(shard, rep, epoch);
                        match res {
                            Ok(resp) => return Ok(resp),
                            Err(e) => last = Some(e),
                        }
                    }
                    Err(e) => {
                        self.fail(shard, rep);
                        last = Some(e);
                    }
                }
            }
            if !attempted {
                break;
            }
        }
        Err(match last {
            Some(e) => ServeError::Backend {
                shard,
                message: e.to_string(),
            },
            None => ServeError::ShardUnavailable {
                shard,
                replicas: self.addrs[shard].len(),
            },
        })
    }

    /// Scatter/gather: pipelines every leg's send (with replica
    /// failover) before reading any response, then gathers in leg order.
    /// Each leg resolves independently — a failed leg falls back to a
    /// fresh [`Fleet::exchange`], and only if that also fails does the
    /// leg's slot carry an error (degraded mode answers around it;
    /// strict mode fails the whole request).
    fn scatter(&mut self, legs: &[Leg]) -> Vec<Result<Response, ServeError>> {
        let sent: Vec<Option<(usize, u64)>> = legs
            .iter()
            .map(|(shard, req)| self.send_leg(*shard, req))
            .collect();
        // Gather in leg order (which is per-connection send order, so
        // pipelined responses pair up correctly).
        legs.iter()
            .zip(sent)
            .map(|((shard, req), sent)| {
                if let Some((rep, epoch)) = sent {
                    if self.epochs[*shard][rep] == epoch {
                        let res = self.await_response(*shard, rep, req);
                        self.leg_done(*shard, rep, epoch);
                        if let Ok(resp) = res {
                            return Ok(resp);
                        }
                    }
                }
                self.exchange(*shard, req)
            })
            .collect()
    }

    /// Like [`Fleet::scatter`] but all-or-nothing: the first leg error
    /// fails the lot (the non-degradable curve/sketch paths).
    fn scatter_strict(&mut self, legs: &[Leg]) -> Result<Vec<Response>, ServeError> {
        self.scatter(legs).into_iter().collect()
    }

    /// Groups batch-item indices by owning shard. Shards come out in
    /// ascending order; each index list preserves request order.
    fn partition(&self, nodes: impl Iterator<Item = NodeId>) -> Vec<(usize, Vec<usize>)> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.addrs.len()];
        for (i, v) in nodes.enumerate() {
            by_shard[self.manifest.shard_of(v as u64)].push(i);
        }
        by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, idxs)| !idxs.is_empty())
            .collect()
    }

    /// Answers one client request. Infallible at this level: every
    /// failure becomes a typed error frame.
    fn route(&mut self, req: &Request) -> Response {
        match self.try_route(req) {
            Ok(resp) => resp,
            Err(e) => {
                let (shard, message) = match e {
                    ServeError::Backend { shard, message } => (Some(shard), message),
                    ServeError::ShardUnavailable { shard, replicas } => (
                        Some(shard),
                        format!("all {replicas} replica(s) unreachable (circuits open)"),
                    ),
                    other => (None, other.to_string()),
                };
                Response::Error {
                    code: ERR_BACKEND,
                    message: match shard {
                        Some(s) => format!("backend for shard {s} unavailable: {message}"),
                        None => format!("backend fleet failure: {message}"),
                    },
                }
            }
        }
    }

    fn try_route(&mut self, req: &Request) -> Result<Response, ServeError> {
        let n = self.manifest.num_nodes() as u64;
        let all = 0..n;
        // Pre-validate in the same iteration order as the single-process
        // server, so invalid batches earn byte-identical error frames
        // without touching any backend.
        let precheck = match req {
            Request::Harmonic { nodes }
            | Request::Decay { nodes, .. }
            | Request::NeighborhoodFunction { nodes }
            | Request::SketchPrefix { nodes, .. } => {
                check_nodes(&mut nodes.iter().copied(), n, &all)
            }
            Request::Cardinality { queries } => {
                check_nodes(&mut queries.iter().map(|q| q.0), n, &all)
            }
            Request::Jaccard { pairs, .. } => {
                check_nodes(&mut pairs.iter().flat_map(|&(u, v)| [u, v]), n, &all)
            }
            Request::Health | Request::GenInfo => None,
        };
        if let Some(err) = precheck {
            return Ok(err);
        }
        let too_large = match req {
            Request::Harmonic { nodes } | Request::Decay { nodes, .. } => {
                batch_too_large(nodes.len())
            }
            Request::Cardinality { queries } => batch_too_large(queries.len()),
            Request::Jaccard { pairs, .. } => batch_too_large(pairs.len()),
            Request::NeighborhoodFunction { .. }
            | Request::SketchPrefix { .. }
            | Request::Health
            | Request::GenInfo => None,
        };
        if let Some(err) = too_large {
            return Ok(err);
        }
        match req {
            Request::Harmonic { nodes } => {
                self.route_floats(req, nodes, |sub| Request::Harmonic { nodes: sub })
            }
            Request::Decay { kernel, nodes } => {
                let kernel = *kernel;
                self.route_floats(req, nodes, move |sub| Request::Decay { kernel, nodes: sub })
            }
            Request::Cardinality { queries } => self.route_cardinality(req, queries),
            Request::NeighborhoodFunction { nodes } => self.route_curves(req, nodes),
            Request::SketchPrefix { d, nodes } => self.route_sketches(req, *d, nodes),
            Request::Jaccard { d, pairs } => self.route_jaccard(*d, pairs),
            // The router owns (routes for) the whole keyspace.
            Request::Health => Ok(Response::Health { start: 0, end: n }),
            // Answered locally from the prober's fleet-wide view: the
            // generation every polled endpoint has reached (module docs).
            Request::GenInfo => Ok(Response::GenInfo {
                generation: self.serving_gen.load(Ordering::SeqCst),
            }),
        }
    }

    /// Whether degraded mode should answer around this error (a shard
    /// that is down / failing) rather than fail the request (protocol
    /// violations still do).
    fn degrade(&self, e: &ServeError) -> bool {
        self.config.degraded
            && matches!(
                e,
                ServeError::Backend { .. } | ServeError::ShardUnavailable { .. }
            )
    }

    /// Single-shard fast path for float batches, with the degraded-mode
    /// fallback (the whole batch lives on the dead shard ⇒ every slot is
    /// down).
    fn exchange_floats(
        &mut self,
        shard: usize,
        req: &Request,
        count: usize,
    ) -> Result<Response, ServeError> {
        match self.exchange(shard, req) {
            Ok(resp) => Ok(resp),
            Err(e) if self.degrade(&e) => {
                Ok(Response::Partial(vec![
                    BatchSlot::Down(ERR_SHARD_DOWN);
                    count
                ]))
            }
            Err(e) => Err(e),
        }
    }

    /// Merges per-shard float legs back into request order: all-Value
    /// slot vectors collapse to the classic [`Response::Floats`]; any
    /// down shard (degraded mode only) yields [`Response::Partial`].
    fn merge_floats(
        &mut self,
        count: usize,
        parts: &[(usize, Vec<usize>)],
        results: Vec<Result<Response, ServeError>>,
    ) -> Result<Response, ServeError> {
        let mut out = vec![BatchSlot::Down(ERR_SHARD_DOWN); count];
        let mut any_down = false;
        for ((shard, idxs), res) in parts.iter().zip(results) {
            match res {
                Ok(resp) => {
                    let xs = expect_floats(*shard, resp, idxs.len())?;
                    for (&i, x) in idxs.iter().zip(xs) {
                        out[i] = BatchSlot::Value(x);
                    }
                }
                Err(e) if self.degrade(&e) => any_down = true,
                Err(e) => return Err(e),
            }
        }
        Ok(finish_floats(out, any_down))
    }

    /// The answer-cache key stream for a cacheable per-node float batch,
    /// or `None` when the cache is off (the request kinds dispatched
    /// here — harmonic, decay, cardinality — are all cacheable).
    fn cache_keys(&self, req: &Request) -> Option<Vec<CacheKey>> {
        self.cache.as_ref()?;
        let gen = self.serving_gen.load(Ordering::SeqCst);
        Some(match req {
            Request::Harmonic { nodes } => {
                nodes.iter().map(|&v| CacheKey::harmonic(gen, v)).collect()
            }
            Request::Decay { kernel, nodes } => {
                let (tag, bits) = kernel_to_wire(*kernel);
                nodes
                    .iter()
                    .map(|&v| CacheKey::decay(gen, tag, bits, v))
                    .collect()
            }
            Request::Cardinality { queries } => queries
                .iter()
                .map(|&(v, d)| CacheKey::cardinality(gen, v, d))
                .collect(),
            _ => return None,
        })
    }

    /// Per-node float batches (harmonic / decay): peel cached answers,
    /// serve the misses through the cold path, splice the hits back in.
    fn route_floats<F: Fn(Vec<NodeId>) -> Request>(
        &mut self,
        req: &Request,
        nodes: &[NodeId],
        make: F,
    ) -> Result<Response, ServeError> {
        let Some(keys) = self.cache_keys(req) else {
            return self.route_floats_cold(req, nodes, &make);
        };
        let cache = Arc::clone(self.cache.as_ref().expect("cache_keys implies a cache"));
        let (hits, miss) = peel(&cache, &keys);
        if miss.is_empty() {
            return Ok(all_hits(hits));
        }
        let sub: Vec<NodeId> = miss.iter().map(|&i| nodes[i]).collect();
        let resp = self.route_floats_cold(&make(sub.clone()), &sub, &make)?;
        Ok(splice_floats(&cache, &keys, hits, &miss, resp))
    }

    /// The uncached float-batch path: partition, scatter (or coalesce),
    /// place each shard's answers back at their request indices.
    fn route_floats_cold<F: Fn(Vec<NodeId>) -> Request>(
        &mut self,
        req: &Request,
        nodes: &[NodeId],
        make: &F,
    ) -> Result<Response, ServeError> {
        if self.coalescer.is_some() {
            if let Some((kind, tag, params, items)) = coalesce_items(req) {
                return self.route_items_coalesced(kind, tag, params, &items);
            }
        }
        let parts = self.partition(nodes.iter().copied());
        if let [(shard, _)] = parts[..] {
            return self.exchange_floats(shard, req, nodes.len());
        }
        let legs: Vec<Leg> = parts
            .iter()
            .map(|(shard, idxs)| (*shard, make(idxs.iter().map(|&i| nodes[i]).collect())))
            .collect();
        let results = self.scatter(&legs);
        self.merge_floats(nodes.len(), &parts, results)
    }

    fn route_cardinality(
        &mut self,
        req: &Request,
        queries: &[(NodeId, f64)],
    ) -> Result<Response, ServeError> {
        let Some(keys) = self.cache_keys(req) else {
            return self.route_cardinality_cold(req, queries);
        };
        let cache = Arc::clone(self.cache.as_ref().expect("cache_keys implies a cache"));
        let (hits, miss) = peel(&cache, &keys);
        if miss.is_empty() {
            return Ok(all_hits(hits));
        }
        let sub: Vec<(NodeId, f64)> = miss.iter().map(|&i| queries[i]).collect();
        let resp = self.route_cardinality_cold(
            &Request::Cardinality {
                queries: sub.clone(),
            },
            &sub,
        )?;
        Ok(splice_floats(&cache, &keys, hits, &miss, resp))
    }

    fn route_cardinality_cold(
        &mut self,
        req: &Request,
        queries: &[(NodeId, f64)],
    ) -> Result<Response, ServeError> {
        if self.coalescer.is_some() {
            if let Some((kind, tag, params, items)) = coalesce_items(req) {
                return self.route_items_coalesced(kind, tag, params, &items);
            }
        }
        let parts = self.partition(queries.iter().map(|q| q.0));
        if let [(shard, _)] = parts[..] {
            return self.exchange_floats(shard, req, queries.len());
        }
        let legs: Vec<Leg> = parts
            .iter()
            .map(|(shard, idxs)| {
                (
                    *shard,
                    Request::Cardinality {
                        queries: idxs.iter().map(|&i| queries[i]).collect(),
                    },
                )
            })
            .collect();
        let results = self.scatter(&legs);
        self.merge_floats(queries.len(), &parts, results)
    }

    /// Routes a per-node float batch through the cross-client coalescer:
    /// submit every shard leg, perform this worker's leader duties, then
    /// collect — joiners wait for their leader's publication and fall
    /// back to an individual exchange on any failure or timeout.
    fn route_items_coalesced(
        &mut self,
        kind: u8,
        tag: u8,
        params: u64,
        items: &[Item],
    ) -> Result<Response, ServeError> {
        let co = Arc::clone(self.coalescer.as_ref().expect("coalescer present"));
        let parts = self.partition(items.iter().map(|it| it.0));
        let subs: Vec<(usize, Vec<Item>)> = parts
            .iter()
            .map(|(shard, idxs)| (*shard, idxs.iter().map(|&i| items[i]).collect()))
            .collect();
        // Phase 1: submit every leg before any wait, so no participant
        // blocks on a join while owing leader duties elsewhere.
        let tickets: Vec<Ticket> = subs
            .iter()
            .map(|(shard, sub)| {
                co.submit(
                    GroupKey {
                        shard: *shard,
                        kind,
                        tag,
                        params,
                    },
                    sub,
                )
            })
            .collect();
        // Phase 2: leader duties. A failed merged exchange publishes
        // `None`, sending every participant down the individual-exchange
        // fallback — coalescing never introduces a new failure mode.
        for ((shard, _), ticket) in subs.iter().zip(&tickets) {
            let Ticket::Leader(batch) = ticket else {
                continue;
            };
            let now = Instant::now();
            if batch.close_at > now {
                std::thread::sleep(batch.close_at - now);
            }
            let key = GroupKey {
                shard: *shard,
                kind,
                tag,
                params,
            };
            let merged = co.close(key, batch);
            let mut uniq: Vec<Item> = Vec::with_capacity(merged.len());
            let mut seen = std::collections::HashSet::with_capacity(merged.len());
            for it in merged {
                if seen.insert(it) {
                    uniq.push(it);
                }
            }
            let outcome = match self.exchange(*shard, &items_request(kind, tag, params, &uniq)) {
                Ok(Response::Floats(xs)) if xs.len() == uniq.len() => Some(Arc::new(
                    uniq.into_iter()
                        .zip(xs.into_iter().map(f64::to_bits))
                        .collect::<HashMap<Item, u64>>(),
                )),
                _ => None,
            };
            batch.publish(outcome);
        }
        // A bound on how long a joiner waits for its leader: the window
        // plus a full exchange's worth of deadlines. Expiring early is
        // safe — the fallback recomputes identical bits.
        let wait_budget = co_window_budget(&self.config);
        // Phase 3: collect per leg, in request order.
        let mut slots = vec![BatchSlot::Down(ERR_SHARD_DOWN); items.len()];
        let mut any_down = false;
        for (((shard, idxs), (_, sub)), ticket) in parts.iter().zip(&subs).zip(tickets) {
            let answers: Option<AnswerMap> = match &ticket {
                Ticket::Leader(batch) | Ticket::Joiner(batch) => {
                    batch.wait(Instant::now() + wait_budget)
                }
                Ticket::Solo => None,
            };
            if let Some(map) = answers {
                for (&i, it) in idxs.iter().zip(sub) {
                    let bits = *map
                        .get(it)
                        .expect("a published merge covers every submitted item");
                    slots[i] = BatchSlot::Value(f64::from_bits(bits));
                }
                continue;
            }
            // Individual fallback: exactly this request's sub-batch, with
            // the usual degraded-mode handling.
            match self.exchange(*shard, &items_request(kind, tag, params, sub)) {
                Ok(resp) => {
                    let xs = expect_floats(*shard, resp, sub.len())?;
                    for (&i, x) in idxs.iter().zip(xs) {
                        slots[i] = BatchSlot::Value(x);
                    }
                }
                Err(e) if self.degrade(&e) => any_down = true,
                Err(e) => return Err(e),
            }
        }
        Ok(finish_floats(slots, any_down))
    }

    fn route_curves(&mut self, req: &Request, nodes: &[NodeId]) -> Result<Response, ServeError> {
        let parts = self.partition(nodes.iter().copied());
        if let [(shard, _)] = parts[..] {
            return self.exchange(shard, req);
        }
        let legs: Vec<Leg> = parts
            .iter()
            .map(|(shard, idxs)| {
                (
                    *shard,
                    Request::NeighborhoodFunction {
                        nodes: idxs.iter().map(|&i| nodes[i]).collect(),
                    },
                )
            })
            .collect();
        let resps = self.scatter_strict(&legs)?;
        let mut out: Vec<Vec<(f64, f64)>> = vec![Vec::new(); nodes.len()];
        for ((shard, idxs), resp) in parts.iter().zip(resps) {
            let curves = match resp {
                Response::Curves(cs) if cs.len() == idxs.len() => cs,
                // A sub-batch too big for one frame means the merged
                // batch is too — answer with the canonical error the
                // single-process server produces for the full batch.
                Response::Error { code, .. } if code == ERR_RESPONSE_TOO_LARGE => {
                    return Ok(nf_too_large(nodes.len()))
                }
                other => return Err(unexpected(*shard, other)),
            };
            for (&i, c) in idxs.iter().zip(curves) {
                out[i] = c;
            }
        }
        // The merged response must obey the same frame bound each
        // backend enforced on its sub-batch.
        let size = 5u64 + out.iter().map(|c| 4 + 16 * c.len() as u64).sum::<u64>();
        if size > MAX_FRAME_LEN as u64 {
            return Ok(nf_too_large(nodes.len()));
        }
        Ok(Response::Curves(out))
    }

    fn route_sketches(
        &mut self,
        req: &Request,
        d: f64,
        nodes: &[NodeId],
    ) -> Result<Response, ServeError> {
        let parts = self.partition(nodes.iter().copied());
        if let [(shard, _)] = parts[..] {
            return self.exchange(shard, req);
        }
        let legs: Vec<Leg> = parts
            .iter()
            .map(|(shard, idxs)| {
                (
                    *shard,
                    Request::SketchPrefix {
                        d,
                        nodes: idxs.iter().map(|&i| nodes[i]).collect(),
                    },
                )
            })
            .collect();
        let resps = self.scatter_strict(&legs)?;
        let mut out: Vec<Vec<(f64, NodeId)>> = vec![Vec::new(); nodes.len()];
        for ((shard, idxs), resp) in parts.iter().zip(resps) {
            let seqs = match resp {
                Response::Sketches(ss) if ss.len() == idxs.len() => ss,
                Response::Error { code, .. } if code == ERR_RESPONSE_TOO_LARGE => {
                    return Ok(sketches_too_large(nodes.len()))
                }
                other => return Err(unexpected(*shard, other)),
            };
            for (&i, s) in idxs.iter().zip(seqs) {
                out[i] = s;
            }
        }
        let size = 5u64 + out.iter().map(|s| 4 + 12 * s.len() as u64).sum::<u64>();
        if size > MAX_FRAME_LEN as u64 {
            return Ok(sketches_too_large(nodes.len()));
        }
        Ok(Response::Sketches(out))
    }

    /// Jaccard with the answer cache in front: pairs are cached exactly
    /// as queried (`(u, v)` and `(v, u)` are distinct keys), misses go
    /// through the cold path, hits splice back in request order.
    fn route_jaccard(
        &mut self,
        d: f64,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<Response, ServeError> {
        let Some(cache) = self.cache.clone() else {
            return self.route_jaccard_cold(d, pairs);
        };
        let gen = self.serving_gen.load(Ordering::SeqCst);
        let keys: Vec<CacheKey> = pairs
            .iter()
            .map(|&(u, v)| CacheKey::jaccard(gen, d, u, v))
            .collect();
        let (hits, miss) = peel(&cache, &keys);
        if miss.is_empty() {
            return Ok(all_hits(hits));
        }
        let sub: Vec<(NodeId, NodeId)> = miss.iter().map(|&i| pairs[i]).collect();
        let resp = self.route_jaccard_cold(d, &sub)?;
        Ok(splice_floats(&cache, &keys, hits, &miss, resp))
    }

    /// Jaccard: same-shard pairs go straight to their owner; cross-shard
    /// pairs are merged from per-endpoint sketch prefixes (see the
    /// module docs for why this stays bitwise identical). Degraded mode:
    /// a down shard takes out exactly the pairs that need it — same-
    /// shard pairs it owns, cross pairs with an endpoint on it.
    fn route_jaccard_cold(
        &mut self,
        d: f64,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<Response, ServeError> {
        let shards = self.addrs.len();
        let mut same: Vec<Vec<usize>> = vec![Vec::new(); shards];
        let mut cross: Vec<usize> = Vec::new();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let su = self.manifest.shard_of(u as u64);
            let sv = self.manifest.shard_of(v as u64);
            if su == sv {
                same[su].push(i);
            } else {
                cross.push(i);
            }
        }
        // Deduplicated prefix nodes needed per shard for the cross pairs.
        let mut need: Vec<Vec<NodeId>> = vec![Vec::new(); shards];
        let mut seen: HashMap<NodeId, ()> = HashMap::new();
        for &i in &cross {
            for v in [pairs[i].0, pairs[i].1] {
                if seen.insert(v, ()).is_none() {
                    need[self.manifest.shard_of(v as u64)].push(v);
                }
            }
        }
        enum Merge {
            Pairs(Vec<usize>),
            Prefixes(Vec<NodeId>),
        }
        let mut legs: Vec<Leg> = Vec::new();
        let mut merges: Vec<Merge> = Vec::new();
        for (shard, idxs) in same.into_iter().enumerate() {
            if !idxs.is_empty() {
                legs.push((
                    shard,
                    Request::Jaccard {
                        d,
                        pairs: idxs.iter().map(|&i| pairs[i]).collect(),
                    },
                ));
                merges.push(Merge::Pairs(idxs));
            }
        }
        for (shard, nodes) in need.into_iter().enumerate() {
            if !nodes.is_empty() {
                legs.push((
                    shard,
                    Request::SketchPrefix {
                        d,
                        nodes: nodes.clone(),
                    },
                ));
                merges.push(Merge::Prefixes(nodes));
            }
        }
        if cross.is_empty() {
            if let [(shard, Request::Jaccard { .. })] = &legs[..] {
                // Every pair lives on one shard: forward verbatim.
                let shard = *shard;
                return self.exchange_floats(
                    shard,
                    &Request::Jaccard {
                        d,
                        pairs: pairs.to_vec(),
                    },
                    pairs.len(),
                );
            }
        }
        let results = self.scatter(&legs);
        let mut out = vec![BatchSlot::Down(ERR_SHARD_DOWN); pairs.len()];
        let mut any_down = false;
        let k = self.manifest.k();
        let mut sketches: HashMap<NodeId, BottomKSketch> = HashMap::new();
        for (((shard, _req), merge), res) in legs.iter().zip(&merges).zip(results) {
            let resp = match res {
                Ok(resp) => resp,
                Err(e) if self.degrade(&e) => {
                    // Pairs legs: their indices stay Down. Prefix legs:
                    // the missing sketches mark the cross pairs below.
                    any_down = true;
                    continue;
                }
                Err(e) => return Err(e),
            };
            match merge {
                Merge::Pairs(idxs) => {
                    let xs = expect_floats(*shard, resp, idxs.len())?;
                    for (&i, x) in idxs.iter().zip(xs) {
                        out[i] = BatchSlot::Value(x);
                    }
                }
                Merge::Prefixes(nodes) => {
                    let seqs = match resp {
                        Response::Sketches(ss) if ss.len() == nodes.len() => ss,
                        Response::Error { code, .. } if code == ERR_RESPONSE_TOO_LARGE => {
                            // The one-shot prefix fetch overflowed a
                            // frame; split it until it fits.
                            match self.fetch_prefixes_split(*shard, d, nodes) {
                                Ok(ss) => ss,
                                Err(e) if self.degrade(&e) => {
                                    any_down = true;
                                    continue;
                                }
                                Err(e) => return Err(e),
                            }
                        }
                        other => return Err(unexpected(*shard, other)),
                    };
                    for (&v, seq) in nodes.iter().zip(seqs) {
                        sketches.insert(v, replay(k, &seq));
                    }
                }
            }
        }
        for &i in &cross {
            let (u, v) = pairs[i];
            match (sketches.get(&u), sketches.get(&v)) {
                (Some(su), Some(sv)) => out[i] = BatchSlot::Value(similarity::jaccard(su, sv)),
                // An endpoint's prefix shard was down; the slot stays
                // typed-down (strict mode never gets here — a failed
                // prefix leg already returned Err above).
                _ => any_down = true,
            }
        }
        Ok(finish_floats(out, any_down))
    }

    /// Fetches sketch prefixes with recursive halving when a batch's
    /// response cannot fit one frame.
    fn fetch_prefixes_split(
        &mut self,
        shard: usize,
        d: f64,
        nodes: &[NodeId],
    ) -> Result<Vec<Vec<(f64, NodeId)>>, ServeError> {
        let resp = self.exchange(
            shard,
            &Request::SketchPrefix {
                d,
                nodes: nodes.to_vec(),
            },
        )?;
        match resp {
            Response::Sketches(ss) if ss.len() == nodes.len() => Ok(ss),
            Response::Error { code, .. } if code == ERR_RESPONSE_TOO_LARGE && nodes.len() > 1 => {
                let (a, b) = nodes.split_at(nodes.len() / 2);
                let mut out = self.fetch_prefixes_split(shard, d, a)?;
                out.extend(self.fetch_prefixes_split(shard, d, b)?);
                Ok(out)
            }
            other => Err(unexpected(shard, other)),
        }
    }
}

/// Looks every key up in the answer cache: per-index hit bits plus the
/// indices that must still be served.
fn peel(cache: &AnswerCache, keys: &[CacheKey]) -> (Vec<Option<u64>>, Vec<usize>) {
    let hits: Vec<Option<u64>> = keys.iter().map(|k| cache.get(k)).collect();
    let miss: Vec<usize> = hits
        .iter()
        .enumerate()
        .filter_map(|(i, h)| h.is_none().then_some(i))
        .collect();
    (hits, miss)
}

/// A fully cache-answered batch: every slot's exact bits, no backend
/// touched.
fn all_hits(hits: Vec<Option<u64>>) -> Response {
    Response::Floats(
        hits.into_iter()
            .map(|h| f64::from_bits(h.expect("all slots hit")))
            .collect(),
    )
}

/// Splices cached bits back into a miss-only served response (in merge
/// order: hit slots keep their cached bits, miss slots consume the
/// served answers in request order), inserting freshly served values
/// into the cache on the way through. Responses that carry no per-query
/// answers (whole-request error frames) pass through untouched, exactly
/// as the uncached path would have returned them.
fn splice_floats(
    cache: &AnswerCache,
    keys: &[CacheKey],
    hits: Vec<Option<u64>>,
    miss: &[usize],
    resp: Response,
) -> Response {
    match resp {
        Response::Floats(xs) if xs.len() == miss.len() => {
            for (&i, &x) in miss.iter().zip(&xs) {
                cache.insert(keys[i], x.to_bits());
            }
            let mut served = xs.into_iter();
            Response::Floats(
                hits.into_iter()
                    .map(|h| match h {
                        Some(bits) => f64::from_bits(bits),
                        None => served.next().expect("one served answer per miss"),
                    })
                    .collect(),
            )
        }
        Response::Partial(slots) if slots.len() == miss.len() => {
            // Only successful answers are remembered — a Down slot must
            // not outlive its shard's outage.
            for (&i, slot) in miss.iter().zip(&slots) {
                if let BatchSlot::Value(x) = slot {
                    cache.insert(keys[i], x.to_bits());
                }
            }
            let mut served = slots.into_iter();
            Response::Partial(
                hits.into_iter()
                    .map(|h| match h {
                        Some(bits) => BatchSlot::Value(f64::from_bits(bits)),
                        None => served.next().expect("one served slot per miss"),
                    })
                    .collect(),
            )
        }
        other => other,
    }
}

/// The coalescing profile of a per-node float request: group-key bits
/// plus the per-index item list. Only harmonic, decay, and cardinality
/// coalesce — their answers are pure per-item functions.
fn coalesce_items(req: &Request) -> Option<(u8, u8, u64, Vec<Item>)> {
    match req {
        Request::Harmonic { nodes } => {
            Some((KIND_HARMONIC, 0, 0, nodes.iter().map(|&v| (v, 0)).collect()))
        }
        Request::Decay { kernel, nodes } => {
            let (tag, bits) = kernel_to_wire(*kernel);
            Some((
                KIND_DECAY,
                tag,
                bits,
                nodes.iter().map(|&v| (v, 0)).collect(),
            ))
        }
        Request::Cardinality { queries } => Some((
            KIND_CARDINALITY,
            0,
            0,
            queries.iter().map(|&(v, d)| (v, d.to_bits())).collect(),
        )),
        _ => None,
    }
}

/// Rebuilds the wire request for a merged (or fallback) item list —
/// the inverse of [`coalesce_items`], bit-exact by construction.
fn items_request(kind: u8, tag: u8, params: u64, items: &[Item]) -> Request {
    match kind {
        KIND_HARMONIC => Request::Harmonic {
            nodes: items.iter().map(|it| it.0).collect(),
        },
        KIND_DECAY => Request::Decay {
            kernel: kernel_from_wire(tag, params).expect("round-tripped kernel tag"),
            nodes: items.iter().map(|it| it.0).collect(),
        },
        KIND_CARDINALITY => Request::Cardinality {
            queries: items
                .iter()
                .map(|&(v, bits)| (v, f64::from_bits(bits)))
                .collect(),
        },
        _ => unreachable!("only per-node float kinds coalesce"),
    }
}

/// How long a coalescing participant waits for its leader before
/// falling back: the window itself plus a full exchange's deadlines
/// (generous — an early fallback merely duplicates work, never changes
/// an answer).
fn co_window_budget(config: &RouterConfig) -> Duration {
    let window = config.coalesce_window.unwrap_or_default();
    window + (config.connect_timeout + config.read_timeout) * (config.retries + 2)
}

/// The typed error for a leg that timed out without a protocol failure.
fn timeout_error() -> ServeError {
    ServeError::Io(std::io::Error::new(
        std::io::ErrorKind::TimedOut,
        "backend response deadline exceeded",
    ))
}

/// Collapses a slot vector: all-Value ⇒ the classic bitwise
/// [`Response::Floats`]; any down slot ⇒ [`Response::Partial`].
fn finish_floats(slots: Vec<BatchSlot>, any_down: bool) -> Response {
    if any_down {
        Response::Partial(slots)
    } else {
        Response::Floats(
            slots
                .into_iter()
                .map(|s| match s {
                    BatchSlot::Value(x) => x,
                    BatchSlot::Down(_) => unreachable!("no down slots"),
                })
                .collect(),
        )
    }
}

/// Rebuilds the bottom-k MinHash sketch from a served `(rank, node)`
/// insertion sequence — the same insertions, in the same order, as the
/// local `minhash_at`.
fn replay(k: usize, seq: &[(f64, NodeId)]) -> BottomKSketch {
    let mut sketch = BottomKSketch::new(k);
    for &(rank, node) in seq {
        sketch.insert_ranked(rank, node as u64);
    }
    sketch
}

fn expect_floats(shard: usize, resp: Response, want: usize) -> Result<Vec<f64>, ServeError> {
    match resp {
        Response::Floats(xs) if xs.len() == want => Ok(xs),
        other => Err(unexpected(shard, other)),
    }
}

/// A response the merge cannot use (an error frame where data was due,
/// a mismatched count, a wrong variant) — fail the whole request with a
/// typed backend error rather than guess.
fn unexpected(shard: usize, resp: Response) -> ServeError {
    let message = match resp {
        Response::Error { code, message } => format!("answered error frame {code}: {message}"),
        other => format!("answered an unexpected response: {other:?}"),
    };
    ServeError::Backend { shard, message }
}
