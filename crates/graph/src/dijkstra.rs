//! Dijkstra's single-source shortest paths with a pruning visitor.
//!
//! The ADS construction algorithm PrunedDijkstra (paper, Algorithm 1) runs
//! one Dijkstra per node *in rank order* and prunes the search at nodes
//! whose sketch was not improved. [`dijkstra_visit`] exposes exactly that
//! control point: the visitor is called once per settled node and decides
//! whether the search continues through it.
//!
//! [`dijkstra_visit_filtered_scratch`] additionally exposes the *relax-time*
//! control point via [`FrontierVisitor::admit`]: a candidate can be kept out
//! of the frontier before ever paying a heap push. The frontier itself is a
//! flat 4-ary heap over monotone-packed keys ([`crate::heap::FlatHeap`]),
//! popping in the canonical `(distance, node id)` order.

use crate::csr::{Graph, NodeId};
use crate::heap::FlatHeap;

/// Visitor verdict for a settled node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visit {
    /// Relax the node's out-arcs and continue.
    Continue,
    /// Do not relax out of this node (PrunedDijkstra's prune), but keep
    /// processing the rest of the frontier.
    Prune,
    /// Abort the whole search.
    Stop,
}

/// Combined relax-time filter and settle-time visitor for the pruned
/// searches ([`dijkstra_visit_filtered_scratch`],
/// [`crate::bfs::bfs_visit_filtered_scratch`]).
///
/// `admit` is consulted *before* a tentative candidate enters the frontier
/// (a heap push here, a next-level enqueue in the BFS); returning `false`
/// suppresses the push entirely. `visit` is the classic settle hook, called
/// once per node that reached the frontier and was popped.
///
/// # Output-equivalence contract
///
/// A filtered search produces the same settle sequence as the unfiltered
/// one *minus* nodes that would only ever have been visited to return
/// [`Visit::Prune`], provided the filter is **monotone-safe**: if
/// `admit(v, d)` returns `false`, then `visit(v, d')` would return
/// [`Visit::Prune`] for every `d' ≥ d` — and the filter keeps rejecting
/// `(v, d'' ≥ d)` for the rest of the search. Threshold-style filters
/// whose thresholds only tighten over time satisfy this by construction.
/// (On distance improvement the search re-consults `admit` with the
/// smaller tentative distance, so rejecting a longer path never hides a
/// shorter one.)
pub trait FrontierVisitor {
    /// Relax-time admission test for a tentative frontier candidate.
    fn admit(&mut self, node: NodeId, dist: f64) -> bool;
    /// Settle-time visit; the verdict steers the search exactly as in
    /// [`dijkstra_visit`].
    fn visit(&mut self, node: NodeId, dist: f64) -> Visit;
}

/// Adapter turning a plain settle closure into a [`FrontierVisitor`] that
/// admits every candidate (the unfiltered searches are expressed through
/// it, so there is exactly one search loop to maintain).
pub(crate) struct AdmitAll<F>(pub F);

impl<F: FnMut(NodeId, f64) -> Visit> FrontierVisitor for AdmitAll<F> {
    #[inline(always)]
    fn admit(&mut self, _node: NodeId, _dist: f64) -> bool {
        true
    }
    #[inline(always)]
    fn visit(&mut self, node: NodeId, dist: f64) -> Visit {
        (self.0)(node, dist)
    }
}

/// Reusable search state for [`dijkstra_visit_scratch`].
///
/// Algorithms that run one search per node (PrunedDijkstra, brute-force
/// sketch builders) would otherwise pay an `O(n)` allocation + memset per
/// source; the scratch amortizes that to a single allocation with
/// epoch-stamped visited/settled marks, so starting a new search is `O(1)`.
#[derive(Debug, Clone, Default)]
pub struct DijkstraScratch {
    dist: Vec<f64>,
    seen: Vec<u32>,
    done: Vec<u32>,
    epoch: u32,
    heap: FlatHeap,
}

impl DijkstraScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, n: usize) {
        if self.seen.len() < n {
            self.dist.resize(n, 0.0);
            self.seen.resize(n, 0);
            self.done.resize(n, 0);
        }
        self.heap.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wraparound (once per 2^32 searches): reset and restart.
            self.seen.fill(0);
            self.done.fill(0);
            self.epoch = 1;
        }
    }
}

/// Runs Dijkstra from `src`, invoking `visitor(node, dist)` exactly once per
/// settled (reachable) node in non-decreasing distance order; ties are
/// popped in ascending node id when simultaneously queued.
///
/// Edge weights must be non-negative (guaranteed by [`Graph`] construction).
/// Unweighted graphs use weight 1 per arc.
pub fn dijkstra_visit<F>(g: &Graph, src: NodeId, visitor: F)
where
    F: FnMut(NodeId, f64) -> Visit,
{
    dijkstra_visit_scratch(g, src, &mut DijkstraScratch::new(), visitor)
}

/// [`dijkstra_visit`] with caller-provided scratch state, for tight loops
/// running many single-source searches over the same graph. Semantics are
/// identical; only the allocation behavior differs.
pub fn dijkstra_visit_scratch<F>(g: &Graph, src: NodeId, scratch: &mut DijkstraScratch, visitor: F)
where
    F: FnMut(NodeId, f64) -> Visit,
{
    dijkstra_visit_filtered_scratch(g, src, scratch, &mut AdmitAll(visitor))
}

/// The relax-time-filtered pruned Dijkstra: like [`dijkstra_visit_scratch`]
/// but every tentative frontier candidate is first offered to
/// [`FrontierVisitor::admit`], and only admitted candidates pay a heap
/// push. See the trait docs for the monotone-filter contract that keeps the
/// output identical to the unfiltered search.
///
/// When a node's tentative distance improves, `admit` is consulted again
/// with the shorter distance (an earlier rejection never hides a shorter
/// path found later).
pub fn dijkstra_visit_filtered_scratch<V: FrontierVisitor>(
    g: &Graph,
    src: NodeId,
    scratch: &mut DijkstraScratch,
    vis: &mut V,
) {
    let n = g.num_nodes();
    debug_assert!((src as usize) < n);
    scratch.prepare(n);
    let e = scratch.epoch;
    scratch.dist[src as usize] = 0.0;
    scratch.seen[src as usize] = e;
    scratch.heap.push(0.0, src);
    while let Some((d, v)) = scratch.heap.pop() {
        if scratch.done[v as usize] == e {
            continue;
        }
        scratch.done[v as usize] = e;
        match vis.visit(v, d) {
            Visit::Stop => return,
            Visit::Prune => continue,
            Visit::Continue => {}
        }
        for (u, w) in g.arcs(v) {
            let nd = d + w;
            if scratch.seen[u as usize] != e || nd < scratch.dist[u as usize] {
                // Record the improved tentative distance even when the
                // candidate is rejected below: the rejection only tightens
                // with distance, so an equal-or-longer rediscovery can be
                // cut by the cheap `dist` compare alone.
                scratch.seen[u as usize] = e;
                scratch.dist[u as usize] = nd;
                if vis.admit(u, nd) {
                    scratch.heap.push(nd, u);
                }
            }
        }
    }
}

/// Shortest-path distances from `src`; `f64::INFINITY` marks unreachable
/// nodes. Uses BFS when the graph is unweighted.
pub fn dijkstra_distances(g: &Graph, src: NodeId) -> Vec<f64> {
    if !g.is_weighted() {
        return crate::bfs::bfs_distances(g, src)
            .into_iter()
            .map(|d| {
                if d == crate::bfs::UNREACHABLE {
                    f64::INFINITY
                } else {
                    d as f64
                }
            })
            .collect();
    }
    let mut out = vec![f64::INFINITY; g.num_nodes()];
    dijkstra_visit(g, src, |v, d| {
        out[v as usize] = d;
        Visit::Continue
    });
    out
}

/// Reachable nodes from `src` sorted by the canonical `(distance, id)`
/// order, paired with their distance.
pub fn dijkstra_order_canonical(g: &Graph, src: NodeId) -> Vec<(NodeId, f64)> {
    let dist = dijkstra_distances(g, src);
    let mut order: Vec<(NodeId, f64)> = dist
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_finite())
        .map(|(v, &d)| (v as NodeId, d))
        .collect();
    order.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_diamond() -> Graph {
        // 0→1 (1), 0→2 (4), 1→2 (2), 1→3 (6), 2→3 (3)
        Graph::directed_weighted(
            4,
            &[
                (0, 1, 1.0),
                (0, 2, 4.0),
                (1, 2, 2.0),
                (1, 3, 6.0),
                (2, 3, 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn shortest_distances() {
        let d = dijkstra_distances(&weighted_diamond(), 0);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 6.0]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = Graph::directed_weighted(3, &[(0, 1, 1.0)]).unwrap();
        let d = dijkstra_distances(&g, 0);
        assert_eq!(d[1], 1.0);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn visitor_sees_nondecreasing_distances() {
        let mut last = -1.0;
        dijkstra_visit(&weighted_diamond(), 0, |_, d| {
            assert!(d >= last);
            last = d;
            Visit::Continue
        });
        assert_eq!(last, 6.0);
    }

    #[test]
    fn visitor_called_once_per_node() {
        let mut seen = vec![0usize; 4];
        dijkstra_visit(&weighted_diamond(), 0, |v, _| {
            seen[v as usize] += 1;
            Visit::Continue
        });
        assert_eq!(seen, vec![1, 1, 1, 1]);
    }

    #[test]
    fn prune_cuts_subtree() {
        // Path 0→1→2; pruning at 1 must keep 2 unvisited.
        let g = Graph::directed_weighted(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let mut visited = Vec::new();
        dijkstra_visit(&g, 0, |v, _| {
            visited.push(v);
            if v == 1 {
                Visit::Prune
            } else {
                Visit::Continue
            }
        });
        assert_eq!(visited, vec![0, 1]);
    }

    #[test]
    fn prune_does_not_stop_other_branches() {
        // 0→1 (1), 0→2 (2): pruning at 1 must still reach 2.
        let g = Graph::directed_weighted(3, &[(0, 1, 1.0), (0, 2, 2.0)]).unwrap();
        let mut visited = Vec::new();
        dijkstra_visit(&g, 0, |v, _| {
            visited.push(v);
            if v == 1 {
                Visit::Prune
            } else {
                Visit::Continue
            }
        });
        assert_eq!(visited, vec![0, 1, 2]);
    }

    #[test]
    fn stop_aborts() {
        let mut count = 0;
        dijkstra_visit(&weighted_diamond(), 0, |_, _| {
            count += 1;
            Visit::Stop
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn unweighted_falls_back_to_bfs() {
        let g = Graph::directed(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(dijkstra_distances(&g, 0), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn canonical_order_ties_by_id() {
        // Two equal-length routes: nodes 1 and 2 both at distance 1.
        let g = Graph::directed_weighted(3, &[(0, 2, 1.0), (0, 1, 1.0)]).unwrap();
        let order = dijkstra_order_canonical(&g, 0);
        assert_eq!(order, vec![(0, 0.0), (1, 1.0), (2, 1.0)]);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        // The same scratch across many sources (and a Stop mid-search that
        // leaves the heap dirty) must not leak state between searches.
        let g = weighted_diamond();
        let mut scratch = DijkstraScratch::new();
        dijkstra_visit_scratch(&g, 0, &mut scratch, |_, _| Visit::Stop);
        for src in 0..4u32 {
            let mut fresh = Vec::new();
            dijkstra_visit(&g, src, |v, d| {
                fresh.push((v, d));
                Visit::Continue
            });
            let mut reused = Vec::new();
            dijkstra_visit_scratch(&g, src, &mut scratch, |v, d| {
                reused.push((v, d));
                Visit::Continue
            });
            assert_eq!(fresh, reused, "src {src}");
        }
    }

    /// Threshold filter used by the frontier tests: admits only candidates
    /// at distance ≤ the per-node cap, logging every decision.
    struct CapFilter<'a> {
        cap: &'a [f64],
        admitted: Vec<(NodeId, f64)>,
        rejected: Vec<(NodeId, f64)>,
        visited: Vec<(NodeId, f64)>,
    }

    impl FrontierVisitor for CapFilter<'_> {
        fn admit(&mut self, node: NodeId, dist: f64) -> bool {
            if dist <= self.cap[node as usize] {
                self.admitted.push((node, dist));
                true
            } else {
                self.rejected.push((node, dist));
                false
            }
        }
        fn visit(&mut self, node: NodeId, dist: f64) -> Visit {
            self.visited.push((node, dist));
            // Monotone-safe counterpart of the filter: pruning exactly where
            // the filter would have rejected.
            if dist <= self.cap[node as usize] {
                Visit::Continue
            } else {
                Visit::Prune
            }
        }
    }

    #[test]
    fn filter_keeps_candidates_out_of_the_frontier() {
        // Path 0→1→2→3 with unit weights; cap cuts at distance 1: node 2
        // (distance 2) must never be pushed nor visited.
        let g = Graph::directed_weighted(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let cap = vec![f64::INFINITY, 1.0, 1.0, 1.0];
        let mut f = CapFilter {
            cap: &cap,
            admitted: Vec::new(),
            rejected: Vec::new(),
            visited: Vec::new(),
        };
        dijkstra_visit_filtered_scratch(&g, 0, &mut DijkstraScratch::new(), &mut f);
        assert_eq!(f.visited, vec![(0, 0.0), (1, 1.0)]);
        assert_eq!(f.admitted, vec![(1, 1.0)]);
        assert_eq!(f.rejected, vec![(2, 2.0)]);
    }

    #[test]
    fn filter_is_reconsulted_on_distance_improvement() {
        // 0→1 (5) is rejected by node 1's cap of 2, but the longer route
        // 0→2→1 improves the tentative distance to 2 and must be admitted.
        let g = Graph::directed_weighted(3, &[(0, 1, 5.0), (0, 2, 1.0), (2, 1, 1.0)]).unwrap();
        let cap = vec![f64::INFINITY, 2.0, f64::INFINITY];
        let mut f = CapFilter {
            cap: &cap,
            admitted: Vec::new(),
            rejected: Vec::new(),
            visited: Vec::new(),
        };
        dijkstra_visit_filtered_scratch(&g, 0, &mut DijkstraScratch::new(), &mut f);
        assert_eq!(f.rejected, vec![(1, 5.0)]);
        assert_eq!(f.admitted, vec![(2, 1.0), (1, 2.0)]);
        assert_eq!(f.visited, vec![(0, 0.0), (2, 1.0), (1, 2.0)]);
    }

    #[test]
    fn filtered_settles_match_unfiltered_accepts() {
        // Against a monotone threshold filter, the filtered search must
        // settle exactly the nodes the unfiltered search settles with a
        // non-Prune verdict, in the same order with the same distances.
        use adsketch_util::rng::{Rng64, SplitMix64};
        for seed in 0..6u64 {
            let mut rng = SplitMix64::new(seed * 77 + 1);
            let n = 50usize;
            let mut arcs = Vec::new();
            for u in 0..n as NodeId {
                for _ in 0..3 {
                    let v = rng.range_usize(n) as NodeId;
                    arcs.push((u, v, rng.unit_f64() * 4.0));
                }
            }
            let g = Graph::directed_weighted(n, &arcs).unwrap();
            let cap: Vec<f64> = (0..n).map(|_| rng.unit_f64() * 6.0).collect();
            let mut unfiltered = Vec::new();
            dijkstra_visit(&g, 0, |v, d| {
                if d <= cap[v as usize] {
                    unfiltered.push((v, d));
                    Visit::Continue
                } else {
                    Visit::Prune
                }
            });
            let mut f = CapFilter {
                cap: &cap,
                admitted: Vec::new(),
                rejected: Vec::new(),
                visited: Vec::new(),
            };
            dijkstra_visit_filtered_scratch(&g, 0, &mut DijkstraScratch::new(), &mut f);
            // The source settles unconditionally in the filtered run; all
            // other settles must be exactly the unfiltered accepts.
            let accepted: Vec<(NodeId, f64)> = f
                .visited
                .iter()
                .copied()
                .filter(|&(v, d)| d <= cap[v as usize])
                .collect();
            assert_eq!(accepted, unfiltered, "seed {seed}");
        }
    }

    #[test]
    fn matches_bellman_ford_on_random_graph() {
        use adsketch_util::rng::{Rng64, SplitMix64};
        let mut rng = SplitMix64::new(42);
        let n = 60usize;
        let mut arcs = Vec::new();
        for u in 0..n as NodeId {
            for _ in 0..4 {
                let v = rng.range_usize(n) as NodeId;
                let w = rng.unit_f64() * 10.0;
                arcs.push((u, v, w));
            }
        }
        let g = Graph::directed_weighted(n, &arcs).unwrap();
        let d = dijkstra_distances(&g, 0);
        // Bellman–Ford reference.
        let mut bf = vec![f64::INFINITY; n];
        bf[0] = 0.0;
        for _ in 0..n {
            let mut changed = false;
            for &(u, v, w) in &arcs {
                if bf[u as usize] + w < bf[v as usize] - 1e-15 {
                    bf[v as usize] = bf[u as usize] + w;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for v in 0..n {
            if bf[v].is_finite() {
                assert!(
                    (d[v] - bf[v]).abs() < 1e-9,
                    "node {v}: {} vs {}",
                    d[v],
                    bf[v]
                );
            } else {
                assert!(d[v].is_infinite());
            }
        }
    }
}
