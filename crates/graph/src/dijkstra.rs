//! Dijkstra's single-source shortest paths with a pruning visitor.
//!
//! The ADS construction algorithm PrunedDijkstra (paper, Algorithm 1) runs
//! one Dijkstra per node *in rank order* and prunes the search at nodes
//! whose sketch was not improved. [`dijkstra_visit`] exposes exactly that
//! control point: the visitor is called once per settled node and decides
//! whether the search continues through it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::csr::{Graph, NodeId};

/// Visitor verdict for a settled node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visit {
    /// Relax the node's out-arcs and continue.
    Continue,
    /// Do not relax out of this node (PrunedDijkstra's prune), but keep
    /// processing the rest of the frontier.
    Prune,
    /// Abort the whole search.
    Stop,
}

/// Totally ordered f64 wrapper for heap keys.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Runs Dijkstra from `src`, invoking `visitor(node, dist)` exactly once per
/// settled (reachable) node in non-decreasing distance order; ties are
/// popped in ascending node id when simultaneously queued.
///
/// Edge weights must be non-negative (guaranteed by [`Graph`] construction).
/// Unweighted graphs use weight 1 per arc.
pub fn dijkstra_visit<F>(g: &Graph, src: NodeId, mut visitor: F)
where
    F: FnMut(NodeId, f64) -> Visit,
{
    let n = g.num_nodes();
    debug_assert!((src as usize) < n);
    let mut dist = vec![f64::INFINITY; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(OrdF64, NodeId)>> = BinaryHeap::new();
    dist[src as usize] = 0.0;
    heap.push(Reverse((OrdF64(0.0), src)));
    while let Some(Reverse((OrdF64(d), v))) = heap.pop() {
        if settled[v as usize] {
            continue;
        }
        settled[v as usize] = true;
        match visitor(v, d) {
            Visit::Stop => return,
            Visit::Prune => continue,
            Visit::Continue => {}
        }
        for (u, w) in g.arcs(v) {
            let nd = d + w;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((OrdF64(nd), u)));
            }
        }
    }
}

/// Shortest-path distances from `src`; `f64::INFINITY` marks unreachable
/// nodes. Uses BFS when the graph is unweighted.
pub fn dijkstra_distances(g: &Graph, src: NodeId) -> Vec<f64> {
    if !g.is_weighted() {
        return crate::bfs::bfs_distances(g, src)
            .into_iter()
            .map(|d| {
                if d == crate::bfs::UNREACHABLE {
                    f64::INFINITY
                } else {
                    d as f64
                }
            })
            .collect();
    }
    let mut out = vec![f64::INFINITY; g.num_nodes()];
    dijkstra_visit(g, src, |v, d| {
        out[v as usize] = d;
        Visit::Continue
    });
    out
}

/// Reachable nodes from `src` sorted by the canonical `(distance, id)`
/// order, paired with their distance.
pub fn dijkstra_order_canonical(g: &Graph, src: NodeId) -> Vec<(NodeId, f64)> {
    let dist = dijkstra_distances(g, src);
    let mut order: Vec<(NodeId, f64)> = dist
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_finite())
        .map(|(v, &d)| (v as NodeId, d))
        .collect();
    order.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_diamond() -> Graph {
        // 0→1 (1), 0→2 (4), 1→2 (2), 1→3 (6), 2→3 (3)
        Graph::directed_weighted(
            4,
            &[
                (0, 1, 1.0),
                (0, 2, 4.0),
                (1, 2, 2.0),
                (1, 3, 6.0),
                (2, 3, 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn shortest_distances() {
        let d = dijkstra_distances(&weighted_diamond(), 0);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 6.0]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = Graph::directed_weighted(3, &[(0, 1, 1.0)]).unwrap();
        let d = dijkstra_distances(&g, 0);
        assert_eq!(d[1], 1.0);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn visitor_sees_nondecreasing_distances() {
        let mut last = -1.0;
        dijkstra_visit(&weighted_diamond(), 0, |_, d| {
            assert!(d >= last);
            last = d;
            Visit::Continue
        });
        assert_eq!(last, 6.0);
    }

    #[test]
    fn visitor_called_once_per_node() {
        let mut seen = vec![0usize; 4];
        dijkstra_visit(&weighted_diamond(), 0, |v, _| {
            seen[v as usize] += 1;
            Visit::Continue
        });
        assert_eq!(seen, vec![1, 1, 1, 1]);
    }

    #[test]
    fn prune_cuts_subtree() {
        // Path 0→1→2; pruning at 1 must keep 2 unvisited.
        let g = Graph::directed_weighted(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let mut visited = Vec::new();
        dijkstra_visit(&g, 0, |v, _| {
            visited.push(v);
            if v == 1 {
                Visit::Prune
            } else {
                Visit::Continue
            }
        });
        assert_eq!(visited, vec![0, 1]);
    }

    #[test]
    fn prune_does_not_stop_other_branches() {
        // 0→1 (1), 0→2 (2): pruning at 1 must still reach 2.
        let g = Graph::directed_weighted(3, &[(0, 1, 1.0), (0, 2, 2.0)]).unwrap();
        let mut visited = Vec::new();
        dijkstra_visit(&g, 0, |v, _| {
            visited.push(v);
            if v == 1 {
                Visit::Prune
            } else {
                Visit::Continue
            }
        });
        assert_eq!(visited, vec![0, 1, 2]);
    }

    #[test]
    fn stop_aborts() {
        let mut count = 0;
        dijkstra_visit(&weighted_diamond(), 0, |_, _| {
            count += 1;
            Visit::Stop
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn unweighted_falls_back_to_bfs() {
        let g = Graph::directed(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(dijkstra_distances(&g, 0), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn canonical_order_ties_by_id() {
        // Two equal-length routes: nodes 1 and 2 both at distance 1.
        let g = Graph::directed_weighted(3, &[(0, 2, 1.0), (0, 1, 1.0)]).unwrap();
        let order = dijkstra_order_canonical(&g, 0);
        assert_eq!(order, vec![(0, 0.0), (1, 1.0), (2, 1.0)]);
    }

    #[test]
    fn matches_bellman_ford_on_random_graph() {
        use adsketch_util::rng::{Rng64, SplitMix64};
        let mut rng = SplitMix64::new(42);
        let n = 60usize;
        let mut arcs = Vec::new();
        for u in 0..n as NodeId {
            for _ in 0..4 {
                let v = rng.range_usize(n) as NodeId;
                let w = rng.unit_f64() * 10.0;
                arcs.push((u, v, w));
            }
        }
        let g = Graph::directed_weighted(n, &arcs).unwrap();
        let d = dijkstra_distances(&g, 0);
        // Bellman–Ford reference.
        let mut bf = vec![f64::INFINITY; n];
        bf[0] = 0.0;
        for _ in 0..n {
            let mut changed = false;
            for &(u, v, w) in &arcs {
                if bf[u as usize] + w < bf[v as usize] - 1e-15 {
                    bf[v as usize] = bf[u as usize] + w;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for v in 0..n {
            if bf[v].is_finite() {
                assert!(
                    (d[v] - bf[v]).abs() < 1e-9,
                    "node {v}: {} vs {}",
                    d[v],
                    bf[v]
                );
            } else {
                assert!(d[v].is_infinite());
            }
        }
    }
}
