//! Plain-text edge-list I/O.
//!
//! Format: one arc per line, `u v` or `u v w`, whitespace separated;
//! blank lines and lines starting with `#` or `%` are ignored. Node count
//! is `max id + 1` unless a larger count is given.

use std::io::{BufRead, Write};

use crate::csr::{Graph, NodeId};
use crate::error::GraphError;

/// A parsed edge list: arcs plus the inferred node count.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeList {
    /// Number of nodes (max id + 1, or the explicit override).
    pub num_nodes: usize,
    /// Arcs with optional weights (all-or-nothing: mixing weighted and
    /// unweighted lines is a parse error).
    pub arcs: Vec<(NodeId, NodeId, f64)>,
    /// Whether the file carried weights.
    pub weighted: bool,
}

impl EdgeList {
    /// Builds a directed [`Graph`] from the list.
    pub fn into_directed(self) -> Result<Graph, GraphError> {
        if self.weighted {
            Graph::directed_weighted(self.num_nodes, &self.arcs)
        } else {
            let arcs: Vec<(NodeId, NodeId)> = self.arcs.iter().map(|&(u, v, _)| (u, v)).collect();
            Graph::directed(self.num_nodes, &arcs)
        }
    }

    /// Builds an undirected [`Graph`], treating each line as an edge.
    pub fn into_undirected(self) -> Result<Graph, GraphError> {
        if self.weighted {
            Graph::undirected_weighted(self.num_nodes, &self.arcs)
        } else {
            let edges: Vec<(NodeId, NodeId)> = self.arcs.iter().map(|&(u, v, _)| (u, v)).collect();
            Graph::undirected(self.num_nodes, &edges)
        }
    }
}

/// Reads an edge list from `reader`.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<EdgeList, GraphError> {
    let mut arcs = Vec::new();
    let mut weighted: Option<bool> = None;
    let mut max_id: u64 = 0;
    let mut any = false;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse_node = |s: Option<&str>, what: &str| -> Result<NodeId, GraphError> {
            let s = s.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: format!("missing {what}"),
            })?;
            s.parse::<NodeId>().map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad {what} `{s}`: {e}"),
            })
        };
        let u = parse_node(parts.next(), "source node")?;
        let v = parse_node(parts.next(), "target node")?;
        let w = match parts.next() {
            Some(ws) => {
                let w = ws.parse::<f64>().map_err(|e| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("bad weight `{ws}`: {e}"),
                })?;
                Some(w)
            }
            None => None,
        };
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: lineno + 1,
                message: "trailing fields after weight".into(),
            });
        }
        let this_weighted = w.is_some();
        match weighted {
            None => weighted = Some(this_weighted),
            Some(prev) if prev != this_weighted => {
                return Err(GraphError::Parse {
                    line: lineno + 1,
                    message: "mixed weighted and unweighted lines".into(),
                });
            }
            _ => {}
        }
        max_id = max_id.max(u as u64).max(v as u64);
        any = true;
        arcs.push((u, v, w.unwrap_or(1.0)));
    }
    Ok(EdgeList {
        num_nodes: if any { max_id as usize + 1 } else { 0 },
        arcs,
        weighted: weighted.unwrap_or(false),
    })
}

/// Writes a graph as an edge list (weights included when present).
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> Result<(), GraphError> {
    for (u, v, w) in g.all_arcs() {
        if g.is_weighted() {
            writeln!(writer, "{u} {v} {w}")?;
        } else {
            writeln!(writer, "{u} {v}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_unweighted_with_comments() {
        let text = "# comment\n0 1\n\n% other comment\n1 2\n";
        let el = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(el.num_nodes, 3);
        assert!(!el.weighted);
        assert_eq!(el.arcs.len(), 2);
        let g = el.into_directed().unwrap();
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn parse_weighted() {
        let text = "0 1 2.5\n1 0 0.5\n";
        let el = read_edge_list(text.as_bytes()).unwrap();
        assert!(el.weighted);
        let g = el.into_directed().unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.arcs(0).next().unwrap(), (1, 2.5));
    }

    #[test]
    fn mixed_lines_rejected() {
        let text = "0 1\n1 2 3.0\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("mixed"));
    }

    #[test]
    fn bad_tokens_rejected() {
        assert!(read_edge_list("0\n".as_bytes()).is_err());
        assert!(read_edge_list("a b\n".as_bytes()).is_err());
        assert!(read_edge_list("0 1 x\n".as_bytes()).is_err());
        assert!(read_edge_list("0 1 2.0 junk\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let el = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(el.num_nodes, 0);
        assert!(el.arcs.is_empty());
    }

    #[test]
    fn roundtrip_weighted() {
        let g = Graph::directed_weighted(3, &[(0, 1, 1.5), (2, 0, 2.0)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice())
            .unwrap()
            .into_directed()
            .unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn roundtrip_unweighted_undirected() {
        let g = Graph::undirected(4, &[(0, 1), (2, 3)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        // The written file contains both arc directions; reading it back as
        // directed reproduces the same CSR.
        let back = read_edge_list(buf.as_slice())
            .unwrap()
            .into_directed()
            .unwrap();
        assert_eq!(back, g);
    }
}
