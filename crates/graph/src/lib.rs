//! Graph substrate for the `adsketch` workspace.
//!
//! The ADS algorithms of the paper (PrunedDijkstra, DP, LocalUpdates) need a
//! compact digraph representation with fast forward/transpose traversal;
//! the experiments need graph generators and *exact* ground truth to
//! validate estimates against. This crate provides all of it:
//!
//! * [`csr`] — a compressed-sparse-row [`Graph`] (directed or undirected,
//!   optionally weighted) with O(1) neighbor slices and a transpose
//!   operation.
//! * [`bfs`] / [`dijkstra`] — single-source shortest paths with a visitor
//!   interface supporting *pruning* (the operation PrunedDijkstra is built
//!   on). Both come in scratch-reusing variants for many-source loops, and
//!   [`bfs::bfs_visit`] replays the exact pruned-Dijkstra visit sequence on
//!   unit-weight graphs ([`Graph::is_unit_weight`]) without a heap. The
//!   [`FrontierVisitor`] variants add a *relax-time* admission hook that
//!   keeps doomed candidates out of the frontier entirely.
//! * [`heap`] — the flat 4-ary min-heap over monotone-packed
//!   `(distance, node)` keys backing the Dijkstra frontier.
//! * [`generators`] — Erdős–Rényi G(n,p)/G(n,m), Barabási–Albert,
//!   Watts–Strogatz, and structured graphs (path, cycle, star, complete,
//!   2-D grid), plus random edge-weight assignment.
//! * [`exact`] — exact neighborhood functions, distance distributions and
//!   closeness/harmonic centralities (the quantities the sketches estimate).
//! * [`io`] — plain-text edge-list reading/writing.
//! * [`components`] — union-find and weakly-connected components.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bfs;
pub mod components;
pub mod csr;
pub mod dijkstra;
pub mod error;
pub mod exact;
pub mod generators;
pub mod heap;
pub mod io;

pub use csr::{Graph, NodeId};
pub use dijkstra::{FrontierVisitor, Visit};
pub use error::GraphError;
