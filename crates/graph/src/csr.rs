//! Compressed-sparse-row graph representation.
//!
//! Nodes are dense `u32` ids `0..n`. Arcs are stored in CSR form: a single
//! offsets array plus a targets array (and a parallel weights array when the
//! graph is weighted). Undirected graphs are stored as symmetric arc pairs,
//! so all traversal code handles one representation.

use crate::error::GraphError;

/// Node identifier: dense `0..n`.
pub type NodeId = u32;

/// A finite directed graph in CSR form, optionally edge-weighted.
///
/// # Examples
///
/// ```
/// use adsketch_graph::Graph;
///
/// // A directed triangle 0→1→2→0.
/// let g = Graph::directed(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_arcs(), 3);
/// assert_eq!(g.neighbors(0), &[1]);
/// assert!(!g.is_weighted());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    weights: Option<Vec<f64>>,
    /// Cached at construction: true iff every arc costs exactly 1 (always
    /// true for unweighted graphs). Lets shortest-path consumers dispatch
    /// to BFS without rescanning the weights array.
    unit_weight: bool,
}

impl Graph {
    /// Builds a directed, unweighted graph from arcs `(u, v)`.
    pub fn directed(n: usize, arcs: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        Self::build(n, arcs.iter().map(|&(u, v)| (u, v, 1.0)), false)
    }

    /// Builds a directed, weighted graph from arcs `(u, v, w)`; weights must
    /// be finite and non-negative.
    pub fn directed_weighted(n: usize, arcs: &[(NodeId, NodeId, f64)]) -> Result<Self, GraphError> {
        Self::build(n, arcs.iter().copied(), true)
    }

    /// Builds an undirected, unweighted graph: each edge `(u, v)` becomes
    /// the arc pair `u→v, v→u` (self-loops become a single arc).
    pub fn undirected(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let arcs = symmetrize(edges.iter().map(|&(u, v)| (u, v, 1.0)));
        Self::build(n, arcs.into_iter(), false)
    }

    /// Builds an undirected, weighted graph (symmetric arc weights).
    pub fn undirected_weighted(
        n: usize,
        edges: &[(NodeId, NodeId, f64)],
    ) -> Result<Self, GraphError> {
        let arcs = symmetrize(edges.iter().copied());
        Self::build(n, arcs.into_iter(), true)
    }

    fn build(
        n: usize,
        arcs: impl Iterator<Item = (NodeId, NodeId, f64)>,
        weighted: bool,
    ) -> Result<Self, GraphError> {
        let mut triples: Vec<(NodeId, NodeId, f64)> = Vec::with_capacity(arcs.size_hint().0);
        for (u, v, w) in arcs {
            if u as usize >= n {
                return Err(GraphError::InvalidNode {
                    node: u as u64,
                    num_nodes: n,
                });
            }
            if v as usize >= n {
                return Err(GraphError::InvalidNode {
                    node: v as u64,
                    num_nodes: n,
                });
            }
            if weighted && !(w.is_finite() && w >= 0.0) {
                return Err(GraphError::InvalidWeight { weight: w });
            }
            triples.push((u, v, w));
        }
        // Canonical adjacency order: sort by (src, dst, weight). The weight
        // participates so parallel arcs with different weights land in a
        // deterministic order regardless of input order (weights are
        // validated finite and non-negative above, so the bit pattern is
        // order-preserving); `transpose` sorts the same way.
        triples.sort_unstable_by_key(|a| (a.0, a.1, a.2.to_bits()));
        let mut offsets = vec![0usize; n + 1];
        for &(u, _, _) in &triples {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<NodeId> = triples.iter().map(|t| t.1).collect();
        let unit_weight = !weighted || triples.iter().all(|t| t.2 == 1.0);
        let weights = weighted.then(|| triples.iter().map(|t| t.2).collect());
        Ok(Self {
            offsets,
            targets,
            weights,
            unit_weight,
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs (an undirected edge counts twice).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Whether per-arc weights are stored.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// True iff every arc costs exactly 1 — either no weights are stored or
    /// all stored weights equal `1.0`. On such graphs hop counts are
    /// shortest-path distances, so a level-synchronous BFS
    /// ([`crate::bfs::bfs_visit`]) replaces binary-heap Dijkstra. O(1):
    /// the flag is computed once at construction.
    #[inline]
    pub fn is_unit_weight(&self) -> bool {
        self.unit_weight
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Out-neighbors of `v` in ascending id order.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Out-arcs of `v` as `(target, weight)`; the weight is `1.0` for
    /// unweighted graphs.
    #[inline]
    pub fn arcs(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let lo = self.offsets[v as usize];
        let hi = self.offsets[v as usize + 1];
        let ws = self.weights.as_deref();
        self.targets[lo..hi]
            .iter()
            .enumerate()
            .map(move |(i, &t)| (t, ws.map_or(1.0, |w| w[lo + i])))
    }

    /// All arcs `(u, v, w)` of the graph in canonical order.
    pub fn all_arcs(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.num_nodes() as NodeId).flat_map(move |u| self.arcs(u).map(move |(v, w)| (u, v, w)))
    }

    /// The transpose graph (every arc reversed). Weights are preserved.
    ///
    /// Forward all-distances sketches of every node are computed by running
    /// searches on the transpose (paper, Algorithm 1).
    pub fn transpose(&self) -> Self {
        let n = self.num_nodes();
        let mut offsets = vec![0usize; n + 1];
        for &t in &self.targets {
            offsets[t as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as NodeId; self.targets.len()];
        let mut weights = self.weights.as_ref().map(|_| vec![0.0; self.targets.len()]);
        for u in 0..n as NodeId {
            for (v, w) in self.arcs(u) {
                let slot = cursor[v as usize];
                cursor[v as usize] += 1;
                targets[slot] = u;
                if let Some(ws) = weights.as_mut() {
                    ws[slot] = w;
                }
            }
        }
        // Targets within each source may be unsorted after bucketing;
        // restore canonical order (stable w.r.t. weights).
        let mut g = Self {
            offsets,
            targets,
            weights,
            // Transposing preserves the multiset of weights.
            unit_weight: self.unit_weight,
        };
        g.sort_adjacency();
        g
    }

    fn sort_adjacency(&mut self) {
        let n = self.num_nodes();
        for u in 0..n {
            let lo = self.offsets[u];
            let hi = self.offsets[u + 1];
            if let Some(ws) = self.weights.as_mut() {
                let mut pairs: Vec<(NodeId, f64)> = self.targets[lo..hi]
                    .iter()
                    .copied()
                    .zip(ws[lo..hi].iter().copied())
                    .collect();
                pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
                for (i, (t, w)) in pairs.into_iter().enumerate() {
                    self.targets[lo + i] = t;
                    ws[lo + i] = w;
                }
            } else {
                self.targets[lo..hi].sort_unstable();
            }
        }
    }

    /// Total weight of all arcs (arc count if unweighted).
    pub fn total_weight(&self) -> f64 {
        match &self.weights {
            Some(ws) => ws.iter().sum(),
            None => self.num_arcs() as f64,
        }
    }
}

fn symmetrize(edges: impl Iterator<Item = (NodeId, NodeId, f64)>) -> Vec<(NodeId, NodeId, f64)> {
    let mut arcs = Vec::with_capacity(edges.size_hint().0 * 2);
    for (u, v, w) in edges {
        arcs.push((u, v, w));
        if u != v {
            arcs.push((v, u, w));
        }
    }
    arcs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_basics() {
        let g = Graph::directed(4, &[(0, 1), (0, 2), (1, 3), (3, 0)]).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[] as &[NodeId]);
        assert_eq!(g.out_degree(1), 1);
        assert_eq!(g.total_weight(), 4.0);
    }

    #[test]
    fn adjacency_is_sorted_regardless_of_input_order() {
        let g = Graph::directed(3, &[(0, 2), (0, 1)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn undirected_doubles_arcs() {
        let g = Graph::undirected(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn self_loop_is_single_arc_in_undirected() {
        let g = Graph::undirected(2, &[(0, 0), (0, 1)]).unwrap();
        assert_eq!(g.neighbors(0), &[0, 1]);
        assert_eq!(g.num_arcs(), 3);
    }

    #[test]
    fn weighted_arcs_kept() {
        let g = Graph::directed_weighted(2, &[(0, 1, 2.5)]).unwrap();
        assert!(g.is_weighted());
        let arcs: Vec<_> = g.arcs(0).collect();
        assert_eq!(arcs, vec![(1, 2.5)]);
        assert_eq!(g.total_weight(), 2.5);
    }

    #[test]
    fn unweighted_arcs_report_unit_weight() {
        let g = Graph::directed(2, &[(0, 1)]).unwrap();
        let arcs: Vec<_> = g.arcs(0).collect();
        assert_eq!(arcs, vec![(1, 1.0)]);
    }

    #[test]
    fn invalid_node_rejected() {
        assert!(matches!(
            Graph::directed(2, &[(0, 5)]),
            Err(GraphError::InvalidNode { node: 5, .. })
        ));
        assert!(matches!(
            Graph::directed(2, &[(7, 0)]),
            Err(GraphError::InvalidNode { node: 7, .. })
        ));
    }

    #[test]
    fn invalid_weight_rejected() {
        assert!(matches!(
            Graph::directed_weighted(2, &[(0, 1, f64::NAN)]),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            Graph::directed_weighted(2, &[(0, 1, -3.0)]),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn transpose_reverses_arcs() {
        let g = Graph::directed(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
        let t = g.transpose();
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.neighbors(0), &[] as &[NodeId]);
        assert_eq!(t.transpose(), g, "double transpose is identity");
    }

    #[test]
    fn transpose_preserves_weights() {
        let g = Graph::directed_weighted(3, &[(0, 1, 2.0), (2, 1, 5.0)]).unwrap();
        let t = g.transpose();
        let arcs: Vec<_> = t.arcs(1).collect();
        assert_eq!(arcs, vec![(0, 2.0), (2, 5.0)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::directed(0, &[]).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_arcs(), 0);
        let t = g.transpose();
        assert_eq!(t.num_nodes(), 0);
    }

    #[test]
    fn all_arcs_roundtrip() {
        let arcs = vec![(0, 1, 1.5), (1, 2, 0.5), (2, 0, 3.0)];
        let g = Graph::directed_weighted(3, &arcs).unwrap();
        let got: Vec<_> = g.all_arcs().collect();
        assert_eq!(got, arcs);
    }

    #[test]
    fn unit_weight_detection() {
        // Unweighted graphs are unit-weight by definition.
        assert!(Graph::directed(2, &[(0, 1)]).unwrap().is_unit_weight());
        // Weighted graphs with all-1 weights qualify too.
        let ones = Graph::directed_weighted(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        assert!(ones.is_unit_weight());
        assert!(ones.is_weighted());
        // Any other weight (including 0) disqualifies.
        let zero = Graph::directed_weighted(3, &[(0, 1, 1.0), (1, 2, 0.0)]).unwrap();
        assert!(!zero.is_unit_weight());
        let frac = Graph::directed_weighted(2, &[(0, 1, 0.5)]).unwrap();
        assert!(!frac.is_unit_weight());
        // Arc-less graphs are trivially unit-weight.
        assert!(Graph::directed_weighted(2, &[]).unwrap().is_unit_weight());
    }

    #[test]
    fn unit_weight_survives_transpose() {
        let g = Graph::directed_weighted(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        assert!(g.transpose().is_unit_weight());
        let w = Graph::directed_weighted(3, &[(0, 1, 2.0)]).unwrap();
        assert!(!w.transpose().is_unit_weight());
    }

    #[test]
    fn parallel_arcs_are_kept() {
        // Multigraph support: duplicates allowed (shortest-path code just
        // sees both).
        let g = Graph::directed(2, &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(g.num_arcs(), 2);
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    fn parallel_weighted_arcs_sort_deterministically() {
        // Regression: parallel arcs with differing weights must come out in
        // the same (ascending-weight) order no matter the input order —
        // `Graph` equality, iteration order and the transpose all depend on
        // it.
        let fwd = Graph::directed_weighted(3, &[(0, 1, 2.0), (0, 1, 0.5), (0, 1, 1.0)]).unwrap();
        let rev = Graph::directed_weighted(3, &[(0, 1, 1.0), (0, 1, 2.0), (0, 1, 0.5)]).unwrap();
        assert_eq!(fwd, rev);
        let ws: Vec<f64> = fwd.arcs(0).map(|(_, w)| w).collect();
        assert_eq!(ws, vec![0.5, 1.0, 2.0]);
        // The transpose sorts adjacency the same way, so it is
        // input-order-independent too (and still the identity under double
        // transpose).
        assert_eq!(fwd.transpose(), rev.transpose());
        assert_eq!(fwd.transpose().transpose(), fwd);
    }
}
