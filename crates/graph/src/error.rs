//! Error type for graph construction and I/O.

use std::fmt;

/// Errors produced by graph constructors and the edge-list parser.
#[derive(Debug)]
pub enum GraphError {
    /// An endpoint referenced a node id outside `0..n`.
    InvalidNode {
        /// The offending node id.
        node: u64,
        /// The number of nodes in the graph.
        num_nodes: usize,
    },
    /// An edge weight was not finite and non-negative.
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
    /// A malformed line in an edge-list file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidNode { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::InvalidWeight { weight } => {
                write!(f, "edge weight {weight} must be finite and non-negative")
            }
            GraphError::Parse { line, message } => {
                write!(f, "edge-list parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::InvalidNode {
            node: 9,
            num_nodes: 5,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("5"));
        let e = GraphError::Parse {
            line: 3,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = GraphError::InvalidWeight { weight: -1.0 };
        assert!(e.to_string().contains("-1"));
    }

    #[test]
    fn io_error_source_preserved() {
        use std::error::Error;
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = GraphError::from(inner);
        assert!(e.source().is_some());
    }
}
