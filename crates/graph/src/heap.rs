//! Flat 4-ary min-heap over monotone-packed `(distance, node)` keys.
//!
//! The Dijkstra frontier only ever holds finite, non-negative distances
//! (guaranteed by [`crate::csr::Graph`] construction), and for such floats
//! `f64::to_bits` is order-preserving. That lets a `(dist, node)` pair pack
//! into a single 96-bit integer key — `dist_bits << 32 | node` — so every
//! heap comparison collapses to one branchless integer compare: no NaN
//! handling, no tuple compare, no `Reverse` wrapper. Tie-breaking on node
//! id comes for free from the low 32 bits, which is exactly the canonical
//! `(distance, id)` pop order the sketch builders define their output over.
//!
//! The 4-ary layout halves tree height versus the binary
//! `std::collections::BinaryHeap` and keeps all children of a node in one
//! cache line, which is what the pop-heavy lazy-deletion workload of
//! [`crate::dijkstra::dijkstra_visit`] wants.

use crate::csr::NodeId;

/// Fan-out of the implicit heap tree.
const ARITY: usize = 4;

/// Packs a finite non-negative distance and a node id into one totally
/// ordered integer key (lexicographic on `(dist, node)`).
#[inline(always)]
fn pack(dist: f64, node: NodeId) -> u128 {
    debug_assert!(
        dist >= 0.0,
        "monotone key packing requires finite non-negative distances, got {dist}"
    );
    ((dist.to_bits() as u128) << 32) | node as u128
}

/// Inverse of [`pack`].
#[inline(always)]
fn unpack(key: u128) -> (f64, NodeId) {
    (f64::from_bits((key >> 32) as u64), key as NodeId)
}

/// A flat 4-ary min-heap of `(distance, node)` pairs in canonical order:
/// [`FlatHeap::pop`] yields ascending `(distance, node id)`.
///
/// # Examples
///
/// ```
/// use adsketch_graph::heap::FlatHeap;
///
/// let mut h = FlatHeap::new();
/// h.push(2.0, 7);
/// h.push(1.0, 9);
/// h.push(1.0, 3); // distance tie: smaller id pops first
/// assert_eq!(h.pop(), Some((1.0, 3)));
/// assert_eq!(h.pop(), Some((1.0, 9)));
/// assert_eq!(h.pop(), Some((2.0, 7)));
/// assert_eq!(h.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlatHeap {
    keys: Vec<u128>,
}

impl FlatHeap {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued entries (duplicates under lazy deletion included).
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the heap holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Removes all entries, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.keys.clear();
    }

    /// Queues `(dist, node)`; `dist` must be finite and non-negative.
    #[inline]
    pub fn push(&mut self, dist: f64, node: NodeId) {
        let key = pack(dist, node);
        let mut i = self.keys.len();
        self.keys.push(key);
        // Sift up: shift parents down until the key's slot is found.
        while i > 0 {
            let p = (i - 1) / ARITY;
            if self.keys[p] <= key {
                break;
            }
            self.keys[i] = self.keys[p];
            i = p;
        }
        self.keys[i] = key;
    }

    /// Removes and returns the canonically smallest `(dist, node)` pair.
    #[inline]
    pub fn pop(&mut self) -> Option<(f64, NodeId)> {
        let top = *self.keys.first()?;
        let last = self.keys.pop().expect("non-empty");
        let len = self.keys.len();
        if len > 0 {
            // Sift the displaced tail key down from the root.
            let mut i = 0usize;
            loop {
                let c0 = ARITY * i + 1;
                if c0 >= len {
                    break;
                }
                let mut m = c0;
                for c in (c0 + 1)..(c0 + ARITY).min(len) {
                    if self.keys[c] < self.keys[m] {
                        m = c;
                    }
                }
                if last <= self.keys[m] {
                    break;
                }
                self.keys[i] = self.keys[m];
                i = m;
            }
            self.keys[i] = last;
        }
        Some(unpack(top))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_util::rng::{Rng64, SplitMix64};

    #[test]
    fn pack_is_monotone_on_canonical_order() {
        let keys = [
            (0.0, 0),
            (0.0, 1),
            (0.5, 0),
            (1.0, 3),
            (1.0, 4),
            (1.5, 0),
            (f64::MAX, u32::MAX),
        ];
        for w in keys.windows(2) {
            assert!(
                pack(w[0].0, w[0].1) < pack(w[1].0, w[1].1),
                "{w:?} must pack in order"
            );
        }
        for &(d, v) in &keys {
            assert_eq!(unpack(pack(d, v)), (d, v), "roundtrip of ({d}, {v})");
        }
    }

    #[test]
    fn pops_in_canonical_order() {
        let mut h = FlatHeap::new();
        for (d, v) in [(3.0, 1), (1.0, 9), (2.0, 2), (1.0, 4), (0.0, 7)] {
            h.push(d, v);
        }
        let mut out = Vec::new();
        while let Some(x) = h.pop() {
            out.push(x);
        }
        assert_eq!(out, vec![(0.0, 7), (1.0, 4), (1.0, 9), (2.0, 2), (3.0, 1)]);
    }

    #[test]
    fn matches_binary_heap_under_random_workload() {
        // Interleaved pushes and pops against std's BinaryHeap on the same
        // (dist, node) reference ordering, including duplicates and ties.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        for seed in 0..8u64 {
            let mut rng = SplitMix64::new(seed);
            let mut flat = FlatHeap::new();
            let mut refh: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
            for _ in 0..2_000 {
                if rng.bernoulli(0.6) || refh.is_empty() {
                    let d = (rng.range_usize(16) as f64) * 0.25;
                    let v = rng.range_usize(32) as NodeId;
                    flat.push(d, v);
                    refh.push(Reverse((d.to_bits(), v)));
                } else {
                    let Reverse((db, v)) = refh.pop().unwrap();
                    assert_eq!(flat.pop(), Some((f64::from_bits(db), v)), "seed {seed}");
                }
                assert_eq!(flat.len(), refh.len());
            }
            while let Some(Reverse((db, v))) = refh.pop() {
                assert_eq!(
                    flat.pop(),
                    Some((f64::from_bits(db), v)),
                    "seed {seed} drain"
                );
            }
            assert!(flat.is_empty());
        }
    }

    #[test]
    fn clear_keeps_working() {
        let mut h = FlatHeap::new();
        h.push(1.0, 1);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
        h.push(0.5, 2);
        assert_eq!(h.pop(), Some((0.5, 2)));
    }
}
